//! End-to-end shape tests: miniature versions of the paper's headline
//! results, run through the full stack (topology → routing → simulation →
//! sweep). These are the regression guards for the reproduction claims.

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::topo::{SlParams, SwParams};
use wsdf::traffic::{PermKind, RingDirection};
use wsdf::{saturation_rate, Bench, PatternSpec, Session, SweepConfig, SweepPoint};

fn sweep(bench: &Bench, cfg: &SweepConfig, spec: PatternSpec, rates: &[f64]) -> Vec<SweepPoint> {
    Session::bench(bench)
        .sweep(cfg, spec, rates)
        .unwrap()
        .report
}

fn quick() -> SweepConfig {
    SweepConfig::default().scaled(0.12)
}

fn rates(max: f64, steps: usize) -> Vec<f64> {
    (1..=steps).map(|i| max * i as f64 / steps as f64).collect()
}

/// Fig. 10(a): the C-group mesh beats a single switch on intra-group
/// uniform traffic by well over 2×.
#[test]
fn intra_cgroup_mesh_beats_switch() {
    let mesh = Bench::single_mesh(4, 2, 1);
    let sw = Bench::single_switch(16);
    let sat_mesh = saturation_rate(&sweep(
        &mesh,
        &quick(),
        PatternSpec::Uniform,
        &rates(3.6, 9),
    ));
    let sat_sw = saturation_rate(&sweep(&sw, &quick(), PatternSpec::Uniform, &rates(1.4, 7)));
    assert!(
        sat_sw > 0.85 && sat_sw <= 1.05,
        "ideal switch ≈ 1: {sat_sw}"
    );
    assert!(
        sat_mesh > 2.5,
        "mesh should approach 3 flits/cycle/chip: {sat_mesh}"
    );
}

/// Fig. 10(c): switch-less local throughput exceeds switch-based, and 2B
/// extends the lead.
#[test]
fn local_uniform_ordering() {
    let sw = Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal);
    let sl = Bench::switchless(
        &SlParams::radix16().with_wgroups(1),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let sl2 = Bench::switchless(
        &SlParams::radix16().with_wgroups(1).with_mesh_width(2),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let r = rates(2.4, 8);
    let sat_sw = saturation_rate(&sweep(&sw, &quick(), PatternSpec::Uniform, &rates(1.4, 7)));
    let sat_sl = saturation_rate(&sweep(&sl, &quick(), PatternSpec::Uniform, &r));
    let sat_sl2 = saturation_rate(&sweep(&sl2, &quick(), PatternSpec::Uniform, &r));
    assert!(
        sat_sl > sat_sw,
        "SW-less ({sat_sl:.2}) must beat SW-based ({sat_sw:.2})"
    );
    assert!(
        sat_sl2 > sat_sl * 1.15,
        "2B ({sat_sl2:.2}) must extend the lead over 1B ({sat_sl:.2})"
    );
}

/// Fig. 10(e): under bit-shuffle the bottleneck is the inter-C-group
/// links, so the switch-less fabric does NOT win and 2B does not help —
/// the paper's own negative result.
#[test]
fn bit_shuffle_negative_result() {
    let spec = PatternSpec::Permutation(PermKind::BitShuffle);
    let sw = Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal);
    let sl = Bench::switchless(
        &SlParams::radix16().with_wgroups(1),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let sl2 = Bench::switchless(
        &SlParams::radix16().with_wgroups(1).with_mesh_width(2),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let r = rates(0.8, 6);
    let sat_sw = saturation_rate(&sweep(&sw, &quick(), spec, &r));
    let sat_sl = saturation_rate(&sweep(&sl, &quick(), spec, &r));
    let sat_sl2 = saturation_rate(&sweep(&sl2, &quick(), spec, &r));
    assert!(
        sat_sl < sat_sw * 1.15,
        "switch-less must not clearly win bit-shuffle ({sat_sl:.2} vs {sat_sw:.2})"
    );
    assert!(
        sat_sl2 < sat_sl * 1.5,
        "2B must not rescue bit-shuffle ({sat_sl2:.2} vs {sat_sl:.2})"
    );
}

/// Fig. 13(b): worst-case traffic collapses minimal routing; Valiant
/// misrouting recovers an order of magnitude.
#[test]
fn valiant_rescues_worst_case() {
    let slp = SlParams::radix16().with_wgroups(9);
    let minimal = Bench::switchless(&slp, RouteMode::Minimal, VcScheme::Baseline);
    let valiant = Bench::switchless(&slp, RouteMode::Valiant, VcScheme::Baseline);
    let sat_min = saturation_rate(&sweep(
        &minimal,
        &quick(),
        PatternSpec::WorstCase,
        &rates(0.25, 5),
    ));
    let sat_mis = saturation_rate(&sweep(
        &valiant,
        &quick(),
        PatternSpec::WorstCase,
        &rates(0.6, 6),
    ));
    // At 9 W-groups minimal routing still finds 1/8 of the global links,
    // so the rescue factor is ~2.5× here; at the paper's 41 groups it is
    // an order of magnitude (`repro fig13`).
    assert!(
        sat_mis > 2.0 * sat_min,
        "Valiant ({sat_mis:.3}) must be a multiple of minimal ({sat_min:.3})"
    );
}

/// Fig. 14(a): ring AllReduce inside a C-group reaches ≈2 (uni) and ≈4
/// (bi) flits/cycle/chip on the mesh, while the switch caps at ≈1 for
/// both directions.
#[test]
fn allreduce_ring_multipliers() {
    let r = rates(4.4, 11);
    let mesh_uni = saturation_rate(&sweep(
        &Bench::single_mesh(4, 2, 1),
        &quick(),
        PatternSpec::RingCGroup(RingDirection::Unidirectional),
        &r,
    ));
    let mesh_bi = saturation_rate(&sweep(
        &Bench::single_mesh(4, 2, 1),
        &quick(),
        PatternSpec::RingCGroup(RingDirection::Bidirectional),
        &r,
    ));
    let sw_uni = saturation_rate(&sweep(
        &Bench::single_switch(16),
        &quick(),
        PatternSpec::RingCGroup(RingDirection::Unidirectional),
        &rates(1.5, 6),
    ));
    let sw_bi = saturation_rate(&sweep(
        &Bench::single_switch(16),
        &quick(),
        PatternSpec::RingCGroup(RingDirection::Bidirectional),
        &rates(1.5, 6),
    ));
    assert!((sw_uni - 1.0).abs() < 0.1, "switch uni ≈ 1: {sw_uni}");
    assert!((sw_bi - 1.0).abs() < 0.1, "switch bi ≈ 1: {sw_bi}");
    assert!((mesh_uni - 2.0).abs() < 0.25, "mesh uni ≈ 2: {mesh_uni}");
    assert!(mesh_bi > 3.2, "mesh bi ≈ 4: {mesh_bi}");
}

/// Fig. 15 direction: the switch-less fabric spends less energy per bit
/// than the switch-based baseline under minimal routing.
#[test]
fn energy_per_bit_direction() {
    use wsdf::analysis::EnergyModel;
    use wsdf::sim::SimConfig;
    let cfg = SimConfig::default().scaled(0.15);
    let sw = Bench::switchbased(&SwParams::radix16().with_groups(5), RouteMode::Minimal);
    let pat = sw.pattern(PatternSpec::Uniform, 0.2);
    let m_sw = Session::bench(&sw)
        .sim(cfg.clone())
        .metrics(pat.as_ref())
        .unwrap()
        .report;
    let e_sw = EnergyModel::switchbased_paper().from_metrics(&m_sw);

    let sl = Bench::switchless(
        &SlParams::radix16().with_wgroups(5),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let pat = sl.pattern(PatternSpec::Uniform, 0.05);
    let m_sl = Session::bench(&sl)
        .sim(cfg.clone())
        .metrics(pat.as_ref())
        .unwrap()
        .report;
    let e_sl = EnergyModel::switchless_paper().from_metrics(&m_sl);
    assert!(
        e_sl < e_sw,
        "switch-less {e_sl:.1} pJ/bit must undercut switch-based {e_sw:.1}"
    );
    // Both in the Fig. 15 ballpark (tens of pJ/bit).
    assert!(e_sw > 40.0 && e_sw < 130.0, "{e_sw}");
    assert!(e_sl > 20.0 && e_sl < 110.0, "{e_sl}");
}
