//! Counter-backed audit of the sparse boundary exchange.
//!
//! The engine compiles one mailbox per *adjacent* directed partition pair
//! (pairs sharing a live boundary channel) instead of a dense P×P grid.
//! These tests pin that contract down from the outside: the edge set
//! reported by [`Simulation::exchange_edges`] must equal the adjacency
//! computed independently from the `NetworkDesc`, the per-edge lifetime
//! counters must conserve (`written == drained + pending`), and a
//! non-adjacent pair must have no exchange state at all — there is no
//! cell a message could even be misrouted into.

use std::collections::BTreeSet;
use std::sync::Arc;

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::{NetworkDesc, RouteOracle, SimConfig, Simulation};
use wsdf::topo::{contiguous_blocks, locality_partition, FaultSet, FaultSpec, SlParams};
use wsdf::{Bench, PatternSpec};

/// Directed partition pairs that share at least one live router-router
/// channel under `assign`, computed from the network description alone.
/// Each boundary channel carries flits home(src)→home(dst) and credits
/// home(dst)→home(src), so both directions are adjacency edges.
/// Endpoints are colocated with their attach router, so injection and
/// ejection channels never cross a partition boundary.
fn expected_adjacency(
    net: &NetworkDesc,
    assign: &[u32],
    dead: impl Fn(usize) -> bool,
) -> BTreeSet<(u32, u32)> {
    let mut set = BTreeSet::new();
    for (c, ch) in net.channels.iter().enumerate() {
        if dead(c) {
            continue;
        }
        if let (Some(a), Some(b)) = (ch.src.router(), ch.dst.router()) {
            let (pa, pb) = (assign[a as usize], assign[b as usize]);
            if pa != pb {
                set.insert((pa, pb));
                set.insert((pb, pa));
            }
        }
    }
    set
}

/// Run `bench` under an explicit partition map and audit the exchange:
/// edge set equality, counter conservation, and real boundary traffic.
/// Returns the observed edge set for extra per-test assertions.
fn audit(bench: &Bench, assign: &[u32], rate: f64) -> BTreeSet<(u32, u32)> {
    let net = bench.fabric.net();
    let mut cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 300,
        drain_cycles: 2_000,
        partitions: 1, // ignored: the explicit map below wins
        ..Default::default()
    };
    cfg.num_vcs = cfg.num_vcs.max(bench.oracle.num_vcs());
    cfg.partition_map = Some(Arc::new(assign.to_vec()));
    let pattern = bench.pattern(PatternSpec::Uniform, rate);
    let faults = bench.fault_map();
    let mut sim = Simulation::with_faults(net, &cfg, &bench.oracle, faults).unwrap();
    let m = sim.run(pattern.as_ref()).unwrap();
    assert!(m.packets_ejected > 0, "no traffic delivered");

    let expected = expected_adjacency(net, assign, |c| {
        faults.is_some_and(|f| f.channel_dead(c as u32))
    });
    let edges = sim.exchange_edges();
    let observed: BTreeSet<(u32, u32)> = edges.iter().map(|e| (e.src, e.dst)).collect();
    assert_eq!(
        edges.len(),
        observed.len(),
        "duplicate (src, dst) exchange edges"
    );
    assert_eq!(
        observed, expected,
        "exchange edges != partition adjacency of the network"
    );

    let p = sim.partitions() as u32;
    for e in &edges {
        assert!(e.src < p && e.dst < p && e.src != e.dst, "malformed edge");
        assert_eq!(
            e.written,
            e.drained + e.pending,
            "edge ({}, {}): {} written but {} drained + {} pending",
            e.src,
            e.dst,
            e.written,
            e.drained,
            e.pending
        );
    }
    let total: u64 = edges.iter().map(|e| e.written).sum();
    assert!(total > 0, "no messages ever crossed a partition boundary");
    observed
}

/// Contiguous blocks on a standalone mesh form strips: partition 0 and
/// partition 3 share no channel, so the exchange must have no (0, 3)
/// edge — and the whole edge set must be strictly sparser than the dense
/// P×(P−1) grid the old mailbox walk allocated.
#[test]
fn mesh_blocks_exchange_is_adjacent_only() {
    let bench = Bench::single_mesh(8, 1, 1);
    let net = bench.fabric.net();
    let assign = contiguous_blocks(net, 4);
    let observed = audit(&bench, &assign, 0.1);
    assert!(
        observed.len() < 4 * 3,
        "strip partitioning must be sparse, got {} of 12 pairs",
        observed.len()
    );
    assert!(
        !observed.contains(&(0, 3)) && !observed.contains(&(3, 0)),
        "opposite strips are not adjacent but the exchange connects them"
    );
}

/// Same audit under the locality partitioner (quads on a square mesh are
/// also strictly sparse: diagonal quads share no channel).
#[test]
fn mesh_locality_exchange_is_adjacent_only() {
    let bench = Bench::single_mesh(8, 1, 1);
    let net = bench.fabric.net();
    let assign = locality_partition(net, 4, None);
    let observed = audit(&bench, &assign, 0.1);
    assert!(
        observed.len() < 4 * 3,
        "quad partitioning must be sparse, got {} of 12 pairs",
        observed.len()
    );
}

/// The switch-less fabric under both assignment schemes: whatever the
/// adjacency turns out to be, it must match the independent computation
/// and conserve counters (the audit does both).
#[test]
fn switchless_exchange_matches_adjacency_both_schemes() {
    let bench = Bench::switchless(
        &SlParams::radix16().with_wgroups(2),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let net = bench.fabric.net();
    for parts in [3usize, 5] {
        audit(&bench, &contiguous_blocks(net, parts), 0.12);
        audit(&bench, &locality_partition(net, parts, None), 0.12);
    }
}

/// An adversarial hand-built map — interleaved strips assigned 0,1,2,0 so
/// partition 0 is split across two far-apart regions — must still produce
/// exactly the adjacency the channels imply (the engine never assumes
/// partitions are contiguous or connected).
#[test]
fn disconnected_partition_map_still_audits_clean() {
    let bench = Bench::single_mesh(8, 1, 1);
    let net = bench.fabric.net();
    let nr = net.num_routers();
    let assign: Vec<u32> = (0..nr).map(|r| ((r * 4 / nr) % 3) as u32).collect();
    audit(&bench, &assign, 0.1);
}

/// The fault path: dead channels are compiled out of the exchange, so the
/// adjacency must be recomputed over *live* channels only, and the
/// locality partitioner's fault-aware map must audit clean end to end.
#[test]
fn faulted_exchange_matches_live_adjacency() {
    let pristine = Bench::switchless(
        &SlParams::radix16().with_wgroups(2),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let fs = FaultSet::sample(
        pristine.fabric.net(),
        &FaultSpec {
            link_fraction: 0.10,
            router_fraction: 0.05,
            ..Default::default()
        },
    );
    let bench = pristine.with_fault_set(&fs);
    let net = bench.fabric.net();
    let assign = locality_partition(net, 4, bench.fault_map());
    audit(&bench, &assign, 0.12);
}
