//! Shim compatibility: the deprecated 0.5-era entry points must keep
//! returning bit-identical results to the [`Session`] builder that
//! replaced them, until they are removed.
//!
//! This is the **only** place in the tree allowed to call the deprecated
//! functions — CI builds everything else with `-D deprecated`, and this
//! file opts out with the crate-level `allow` below.
#![allow(deprecated)]

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::SimConfig;
use wsdf::topo::SlParams;
use wsdf::workload::tenancy::{ArrivalProcess, JobClass, Placement, ServingSpec};
use wsdf::{
    adaptive_sweep, resilience_sweep, run_serving, run_workload, sweep, AdaptiveConfig, Bench,
    PatternSpec, ResilienceConfig, Session, SweepConfig, Workload, WorkloadUnits,
};

fn bench() -> Bench {
    Bench::switchless(
        &SlParams::radix16().with_wgroups(1),
        RouteMode::Minimal,
        VcScheme::Baseline,
    )
}

fn sim() -> SimConfig {
    SimConfig {
        warmup_cycles: 100,
        measure_cycles: 200,
        drain_cycles: 100,
        ..Default::default()
    }
}

/// `Bench::run` / `Bench::run_dyn` ≡ `Session::metrics`.
#[test]
fn run_shims_match_session_metrics() {
    let bench = bench();
    let pattern = bench.pattern(PatternSpec::Uniform, 0.2);
    let new = Session::bench(&bench)
        .sim(sim())
        .metrics(pattern.as_ref())
        .unwrap()
        .report;
    let old = bench.run(&sim(), pattern.as_ref()).unwrap();
    let old_dyn = bench.run_dyn(&sim(), pattern.as_ref()).unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"), "Bench::run");
    assert_eq!(format!("{old_dyn:?}"), format!("{new:?}"), "Bench::run_dyn");
}

/// `sweep` / `adaptive_sweep` ≡ `Session::{sweep, adaptive}`.
#[test]
fn sweep_shims_match_session() {
    let bench = bench();
    let cfg = SweepConfig::default().scaled(0.1);
    let rates = [0.3, 0.6];
    let new = Session::bench(&bench)
        .sweep(&cfg, PatternSpec::Uniform, &rates)
        .unwrap()
        .report;
    let old = sweep(&bench, &cfg, PatternSpec::Uniform, &rates);
    assert_eq!(format!("{old:?}"), format!("{new:?}"), "sweep");

    let acfg = AdaptiveConfig {
        base: SweepConfig::default().scaled(0.1),
        start_chip: 0.2,
        max_points: 8,
        ..Default::default()
    };
    let new = Session::bench(&bench)
        .adaptive(&acfg, PatternSpec::Uniform)
        .unwrap()
        .report;
    let old = adaptive_sweep(&bench, &acfg, PatternSpec::Uniform);
    assert_eq!(format!("{old:?}"), format!("{new:?}"), "adaptive_sweep");
}

/// `run_workload` ≡ `Session::workload`.
#[test]
fn workload_shim_matches_session() {
    let bench = bench();
    let participants: Vec<u32> = (0..8).collect();
    let wl = Workload::ring_allreduce(&participants, 32);
    let units = WorkloadUnits::default();
    let new = Session::bench(&bench)
        .sim(sim())
        .workload(&wl, &units)
        .unwrap()
        .report;
    let old = run_workload(&bench, &sim(), &wl, &units).unwrap();
    assert_eq!(format!("{old:?}"), format!("{new:?}"), "run_workload");
}

/// `run_serving` ≡ `Session::serving`.
#[test]
fn serving_shim_matches_session() {
    let bench = bench();
    let spec = ServingSpec {
        seed: 0x51,
        arrivals: ArrivalProcess::Trace {
            cycles: vec![0, 150],
        },
        max_jobs: 4,
        classes: vec![JobClass {
            name: "train".into(),
            collective: "ring_allreduce".into(),
            flits: 8,
            microbatches: 1,
            participants: 6,
            placement: Placement::Block,
            slo_cycles: 40_000,
            weight: 1.0,
        }],
    };
    let new = Session::bench(&bench)
        .sim(sim())
        .serving(&spec)
        .unwrap()
        .report;
    let old = run_serving(&bench, &sim(), &spec).unwrap();
    assert_eq!(old, new, "run_serving");
}

/// `resilience_sweep` ≡ `Session::resilience`.
#[test]
fn resilience_shim_matches_session() {
    let bench = bench();
    let cfg = ResilienceConfig {
        fractions: vec![0.0, 0.15],
        collective_flits: 16,
        ..Default::default()
    }
    .scaled(0.08);
    let new = Session::bench(&bench)
        .resilience(&cfg, PatternSpec::Uniform)
        .unwrap()
        .report;
    let old = resilience_sweep(&bench, &cfg, PatternSpec::Uniform);
    assert_eq!(format!("{old:?}"), format!("{new:?}"), "resilience_sweep");
}
