//! Cross-crate invariants: BSP determinism on a real fabric, seed
//! stability, deadlock freedom of every routing discipline near
//! saturation, and flit conservation.

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::SimConfig;
use wsdf::sim::{Metrics, TrafficPattern};
use wsdf::topo::{SlParams, SwParams};
use wsdf::{AdaptiveConfig, Bench, PatternSpec, Session, SweepConfig};

fn run(bench: &Bench, cfg: &SimConfig, pat: &dyn TrafficPattern) -> Metrics {
    Session::bench(bench)
        .sim(cfg.clone())
        .metrics(pat)
        .unwrap()
        .report
}

fn cfg(partitions: usize) -> SimConfig {
    SimConfig {
        warmup_cycles: 400,
        measure_cycles: 800,
        drain_cycles: 400,
        partitions,
        ..Default::default()
    }
}

/// The engine must produce bit-identical metrics no matter how the fabric
/// is partitioned (sequential, 3-way, 8-way).
#[test]
fn bsp_partitioning_is_invisible() {
    let p = SlParams::radix16().with_wgroups(2);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    let pattern = bench.pattern(PatternSpec::Uniform, 0.15);
    let runs: Vec<_> = [1usize, 3, 8]
        .iter()
        .map(|&parts| run(&bench, &cfg(parts), pattern.as_ref()))
        .collect();
    for m in &runs[1..] {
        assert_eq!(m.packets_created, runs[0].packets_created);
        assert_eq!(m.packets_ejected, runs[0].packets_ejected);
        assert_eq!(m.latency_sum, runs[0].latency_sum);
        assert_eq!(m.class_hops.total(), runs[0].class_hops.total());
    }
}

/// Partition counts {1, 2, 4, 7} must produce bit-identical `Metrics` on
/// both evaluated topology families — the invariant the monomorphized
/// engine core and the fixed-capacity channel rings must preserve. Every
/// counter is compared, including the optional per-endpoint/per-channel
/// vectors.
#[test]
fn partitions_bit_identical_on_both_topologies() {
    let benches: Vec<(&str, Bench, f64)> = vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(2),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
            0.12,
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(3), RouteMode::Minimal),
            0.25,
        ),
    ];
    for (name, bench, rate) in benches {
        let pattern = bench.pattern(PatternSpec::Uniform, rate);
        let run = |parts: usize| {
            let mut c = cfg(parts);
            c.per_endpoint_stats = true;
            c.per_channel_stats = true;
            run(&bench, &c, pattern.as_ref())
        };
        let base = run(1);
        assert!(base.packets_ejected > 0, "{name}: no traffic delivered");
        for parts in [2usize, 4, 7] {
            let m = run(parts);
            assert_eq!(m.packets_created, base.packets_created, "{name} p={parts}");
            assert_eq!(m.packets_ejected, base.packets_ejected, "{name} p={parts}");
            assert_eq!(m.latency_sum, base.latency_sum, "{name} p={parts}");
            assert_eq!(m.latency_max, base.latency_max, "{name} p={parts}");
            assert_eq!(
                m.flits_injected_measured, base.flits_injected_measured,
                "{name} p={parts}"
            );
            assert_eq!(
                m.flits_ejected_measured, base.flits_ejected_measured,
                "{name} p={parts}"
            );
            assert_eq!(
                m.class_hops.flit_hops, base.class_hops.flit_hops,
                "{name} p={parts}"
            );
            assert_eq!(
                m.ejected_per_endpoint, base.ejected_per_endpoint,
                "{name} p={parts}"
            );
            assert_eq!(
                m.flits_per_channel, base.flits_per_channel,
                "{name} p={parts}"
            );
            assert_eq!(m.latency_hist, base.latency_hist, "{name} p={parts}");
            assert_eq!(m.deadlocked, base.deadlocked, "{name} p={parts}");
        }
    }
}

/// The executor must be invisible too: partitions {1, 2, 4, 7} × worker
/// counts {1, 2, 4} must all produce bit-identical `Metrics` on both
/// topology families. Partition invariance is the BSP/mailbox contract;
/// worker invariance is the `BspPool` contract (a broadcast only hands out
/// slot indices — it never re-splits or re-orders work). Worker pools are
/// created explicitly so the matrix is exercised even on one-core CI boxes
/// (threads need not map to distinct cores for determinism).
#[test]
fn determinism_matrix_partitions_x_workers() {
    use wsdf::exec::BspPool;
    let pools: Vec<BspPool> = [1usize, 2, 4].into_iter().map(BspPool::new).collect();
    let benches: Vec<(&str, Bench, f64)> = vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(2),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
            0.12,
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(3), RouteMode::Minimal),
            0.25,
        ),
    ];
    // Shorter windows than the partition-only test: the matrix multiplies
    // run count by 12 and determinism does not need long measurements.
    let quick = |parts: usize| SimConfig {
        warmup_cycles: 150,
        measure_cycles: 300,
        drain_cycles: 150,
        partitions: parts,
        ..Default::default()
    };
    for (name, bench, rate) in benches {
        let pattern = bench.pattern(PatternSpec::Uniform, rate);
        let base = Session::bench(&bench)
            .sim(quick(1))
            .pool(&pools[0])
            .metrics(pattern.as_ref())
            .unwrap()
            .report;
        assert!(base.packets_ejected > 0, "{name}: no traffic delivered");
        for parts in [1usize, 2, 4, 7] {
            for pool in &pools {
                let w = pool.workers();
                let m = Session::bench(&bench)
                    .sim(quick(parts))
                    .pool(pool)
                    .metrics(pattern.as_ref())
                    .unwrap()
                    .report;
                assert_eq!(
                    m.packets_created, base.packets_created,
                    "{name} p={parts} w={w}"
                );
                assert_eq!(
                    m.packets_ejected, base.packets_ejected,
                    "{name} p={parts} w={w}"
                );
                assert_eq!(m.latency_sum, base.latency_sum, "{name} p={parts} w={w}");
                assert_eq!(m.latency_max, base.latency_max, "{name} p={parts} w={w}");
                assert_eq!(
                    m.flits_injected_measured, base.flits_injected_measured,
                    "{name} p={parts} w={w}"
                );
                assert_eq!(
                    m.flits_ejected_measured, base.flits_ejected_measured,
                    "{name} p={parts} w={w}"
                );
                assert_eq!(
                    m.class_hops.flit_hops, base.class_hops.flit_hops,
                    "{name} p={parts} w={w}"
                );
            }
        }
    }
}

/// Explicit router→partition maps are invisible: on both families and
/// both stepping modes, the bench default (the locality partitioner), an
/// explicit contiguous-blocks map, and an explicit locality map must all
/// reproduce the sequential baseline bit-for-bit at partition counts
/// {2, 4} × worker counts {1, 4}. This is the assignment-freedom half of
/// the BSP contract: `partitions_bit_identical_on_both_topologies` varies
/// the partition *count*, this test varies the *assignment* (and routes
/// it through the sparse exchange in a different adjacency every time).
#[test]
fn partition_maps_bit_identical() {
    use std::sync::Arc;
    use wsdf::exec::BspPool;
    use wsdf::topo::{contiguous_blocks, locality_partition};
    let pools: Vec<BspPool> = [1usize, 4].into_iter().map(BspPool::new).collect();
    let benches: Vec<(&str, Bench, f64)> = vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(2),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
            0.12,
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(3), RouteMode::Minimal),
            0.25,
        ),
    ];
    let quick = |parts: usize, event: bool| SimConfig {
        warmup_cycles: 100,
        measure_cycles: 200,
        drain_cycles: 100,
        partitions: parts,
        event_driven: event,
        ..Default::default()
    };
    for (name, bench, rate) in benches {
        let net = bench.fabric.net();
        let pattern = bench.pattern(PatternSpec::Uniform, rate);
        for event in [false, true] {
            let base = Session::bench(&bench)
                .sim(quick(1, event))
                .pool(&pools[0])
                .metrics(pattern.as_ref())
                .unwrap()
                .report;
            assert!(base.packets_ejected > 0, "{name}: no traffic delivered");
            for parts in [2usize, 4] {
                let maps: Vec<(&str, Option<Vec<u32>>)> = vec![
                    ("default", None),
                    ("blocks", Some(contiguous_blocks(net, parts))),
                    ("locality", Some(locality_partition(net, parts, None))),
                ];
                for (scheme, map) in maps {
                    for pool in &pools {
                        let w = pool.workers();
                        let mut c = quick(parts, event);
                        c.partition_map = map.clone().map(Arc::new);
                        let m = Session::bench(&bench)
                            .sim(c)
                            .pool(pool)
                            .metrics(pattern.as_ref())
                            .unwrap()
                            .report;
                        let tag = format!("{name} ev={event} p={parts} map={scheme} w={w}");
                        assert_eq!(m.packets_created, base.packets_created, "{tag}");
                        assert_eq!(m.packets_ejected, base.packets_ejected, "{tag}");
                        assert_eq!(m.latency_sum, base.latency_sum, "{tag}");
                        assert_eq!(m.latency_max, base.latency_max, "{tag}");
                        assert_eq!(
                            m.flits_injected_measured, base.flits_injected_measured,
                            "{tag}"
                        );
                        assert_eq!(
                            m.flits_ejected_measured, base.flits_ejected_measured,
                            "{tag}"
                        );
                        assert_eq!(m.class_hops.flit_hops, base.class_hops.flit_hops, "{tag}");
                        assert_eq!(m.latency_hist, base.latency_hist, "{tag}");
                    }
                }
            }
        }
    }
}

/// The adaptive bisection sweep must be bit-identical across partition
/// counts {1, 2, 4} on both topology families: the driver's rate
/// decisions depend only on merged metrics, which the BSP contract makes
/// partition-invariant — so the whole search trajectory (every probed
/// rate, every percentile, the final saturation estimate) must reproduce
/// exactly.
#[test]
fn adaptive_sweep_bit_identical_across_partitions() {
    let benches: Vec<(&str, Bench)> = vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(1),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal),
        ),
    ];
    for (name, bench) in benches {
        let run = |parts: usize| {
            let mut base = SweepConfig::default().scaled(0.1);
            base.sim.partitions = parts;
            let cfg = AdaptiveConfig {
                base,
                start_chip: 0.2,
                max_points: 16,
                ..Default::default()
            };
            Session::bench(&bench)
                .adaptive(&cfg, PatternSpec::Uniform)
                .unwrap()
                .report
        };
        let base = run(1);
        assert!(base.points.len() >= 3, "{name}: sweep too short");
        assert!(base.sat_chip > 0.0, "{name}: no saturation estimate");
        for parts in [2usize, 4] {
            let m = run(parts);
            assert_eq!(m, base, "{name} p={parts}: adaptive sweep diverged");
        }
    }
}

/// Different seeds give different (but sane) results; same seed repeats.
#[test]
fn seed_stability() {
    let p = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    // Keep well below the knee: near saturation the latency estimate is
    // noisy at short windows and seed comparisons get meaningless.
    let pattern = bench.pattern(PatternSpec::Uniform, 0.08);
    let mut c1 = cfg(1);
    c1.seed = 1;
    let a = run(&bench, &c1, pattern.as_ref());
    let b = run(&bench, &c1, pattern.as_ref());
    assert_eq!(a.latency_sum, b.latency_sum, "same seed must repeat");
    let mut c2 = cfg(1);
    c2.seed = 2;
    let c = run(&bench, &c2, pattern.as_ref());
    assert_ne!(a.latency_sum, c.latency_sum, "different seed must differ");
    // But statistics must agree.
    let la = a.avg_latency().unwrap();
    let lc = c.avg_latency().unwrap();
    assert!((la - lc).abs() / la < 0.2, "{la} vs {lc}");
}

/// Every (mode, scheme) combination of the switch-less oracle survives a
/// near-saturation run with the deadlock watchdog armed. This is the
/// empirical arm of the paper's deadlock-freedom claims (the analytic arm
/// is the up*/down* legality test in wsdf-routing).
#[test]
fn no_deadlock_near_saturation_all_schemes() {
    let p = SlParams::radix16().with_wgroups(5);
    for (mode, scheme) in [
        (RouteMode::Minimal, VcScheme::Baseline),
        (RouteMode::Minimal, VcScheme::Reduced),
        (RouteMode::Valiant, VcScheme::Baseline),
        (RouteMode::Valiant, VcScheme::Reduced),
    ] {
        let bench = Bench::switchless(&p, mode, scheme);
        // Push well past saturation: source queues overflow but flits must
        // keep moving.
        let pattern = bench.pattern(PatternSpec::Uniform, 0.6);
        let m = Session::bench(&bench)
            .sim(cfg(0))
            .metrics(pattern.as_ref())
            .unwrap_or_else(|e| panic!("{mode:?}/{scheme:?}: {e}"))
            .report;
        assert!(!m.deadlocked, "{mode:?}/{scheme:?} deadlocked");
        assert!(m.packets_ejected > 0);
    }
}

/// Same for the switch-based baseline.
#[test]
fn no_deadlock_switchbased() {
    let p = SwParams::radix16().with_groups(5);
    for mode in [RouteMode::Minimal, RouteMode::Valiant] {
        let bench = Bench::switchbased(&p, mode);
        let pattern = bench.pattern(PatternSpec::WorstCase, 0.8);
        let m = run(&bench, &cfg(0), pattern.as_ref());
        assert!(!m.deadlocked);
    }
}

/// Flit conservation: below saturation with a drain phase, everything
/// created is delivered.
#[test]
fn flit_conservation_below_saturation() {
    let p = SlParams::radix16().with_wgroups(2);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    let pattern = bench.pattern(PatternSpec::Uniform, 0.1);
    let mut c = cfg(1);
    c.drain_cycles = 20_000; // effectively unlimited; early-exits when empty
    let m = run(&bench, &c, pattern.as_ref());
    assert_eq!(
        m.packets_created, m.packets_ejected,
        "all measured packets must drain"
    );
}

/// The Reduced scheme really runs with fewer VCs (the paper's claim),
/// at some throughput cost quantified by the ablation bench.
#[test]
fn reduced_scheme_uses_fewer_vcs() {
    let p = SlParams::radix16().with_wgroups(2);
    let base = Bench::switchless(&p, RouteMode::Valiant, VcScheme::Baseline);
    let redu = Bench::switchless(&p, RouteMode::Valiant, VcScheme::Reduced);
    assert!(redu.num_vcs() < base.num_vcs());
    // 6 vs 4 deadlock classes, times the HOL spread of 2.
    assert_eq!(base.num_vcs(), 12);
    assert_eq!(redu.num_vcs(), 8);
}
