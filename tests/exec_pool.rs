//! Executor lifecycle torture test: many short-lived pools each driving a
//! short simulation must leave no threads behind, and the process-wide
//! pool must stay usable throughout.

use wsdf::exec::{global_pool, BspPool};
use wsdf::sim::SimConfig;
use wsdf::{Bench, PatternSpec};

/// Current thread count of this process (Linux; the CI and dev
/// environments are Linux — elsewhere the leak assertion is skipped).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn short_cfg(partitions: usize) -> SimConfig {
    SimConfig {
        warmup_cycles: 50,
        measure_cycles: 150,
        drain_cycles: 100,
        partitions,
        ..Default::default()
    }
}

/// Create/run/drop many pools and simulations back to back. Every pool
/// joins its workers on drop, so the process thread count must return to
/// the baseline, and results must stay bit-identical run over run.
#[test]
fn pool_torture_create_run_drop_leaks_nothing() {
    let bench = Bench::single_mesh(4, 2, 1);
    let pattern = bench.pattern(PatternSpec::Uniform, 0.2);
    // Warm everything lazy (global pool included) before taking the
    // thread-count baseline.
    let run_global = |bench: &Bench, pattern: &dyn wsdf::sim::TrafficPattern| {
        wsdf::Session::bench(bench)
            .sim(short_cfg(2))
            .metrics(pattern)
            .unwrap()
            .report
    };
    let reference = run_global(&bench, pattern.as_ref());
    assert!(reference.packets_ejected > 0);
    let baseline = thread_count();

    for round in 0..25 {
        // Cycle through pool sizes, including more workers than partitions
        // (idle slots) and more workers than this machine has cores.
        let workers = 1 + round % 4;
        let pool = BspPool::new(workers);
        let m = wsdf::Session::bench(&bench)
            .sim(short_cfg(2))
            .pool(&pool)
            .metrics(pattern.as_ref())
            .unwrap()
            .report;
        assert_eq!(
            m.latency_sum, reference.latency_sum,
            "round {round} (workers={workers}) diverged"
        );
        drop(pool);
    }

    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert!(
            after <= before,
            "leaked threads: {before} before torture, {after} after"
        );
    }

    // The global pool is unaffected by foreign pools coming and going.
    let again = run_global(&bench, pattern.as_ref());
    assert_eq!(again.latency_sum, reference.latency_sum);
    assert!(global_pool().workers() >= 1);

    // Pools that never ran a broadcast must also join cleanly on drop.
    // (Kept in this one test so thread-count sampling never races another
    // test thread creating pools concurrently.)
    for _ in 0..50 {
        let pool = BspPool::new(3);
        assert_eq!(pool.workers(), 3);
    }
    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert!(
            after <= before,
            "idle pools leaked threads: {before} -> {after}"
        );
    }
}
