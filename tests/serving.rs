//! Multi-tenant serving invariants: the full [`ServingReport`] — job
//! records, CT percentiles and histogram, per-class slowdowns, fairness,
//! SLO misses — is a property of the network and the spec, not of the
//! BSP execution schedule.
//!
//! The acceptance matrix: partitions {1, 2, 4} × workers {1, 4} ×
//! {event, dense} stepping × {contiguous blocks, locality} partition
//! maps, on both evaluated Dragonfly families. Within a stepping mode
//! every field must be bit-identical; across modes everything but the
//! busy/skipped cycle split must match (the split is the one metric the
//! fast-forward optimization is *supposed* to change — same contract as
//! `tests/event_equivalence.rs`).
//!
//! The arrival process gets its own property tests: keyed per-cycle
//! draws make the arrival set prefix-closed in the horizon (so
//! event-driven cycle skipping cannot change who arrives), and fixed
//! traces admit exactly their listed cycles.

use std::sync::Arc;

use wsdf::exec::BspPool;
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::{SimConfig, SplitMix64};
use wsdf::topo::{locality_partition, SlParams, SwParams};
use wsdf::workload::tenancy::{ArrivalProcess, JobClass, Placement, ServingSpec};
use wsdf::{Bench, ServingReport, Session};

fn families() -> Vec<(&'static str, Bench)> {
    vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(1),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal),
        ),
    ]
}

/// A small but genuinely concurrent mix: three classes, three placement
/// schemes, arrivals tight enough that jobs overlap in flight.
fn acceptance_spec() -> ServingSpec {
    ServingSpec {
        seed: 0xACCE_5511,
        arrivals: ArrivalProcess::Trace {
            cycles: (0..8).map(|k| k * 60).collect(),
        },
        max_jobs: 32,
        classes: vec![
            JobClass {
                name: "train".into(),
                collective: "ring_allreduce".into(),
                flits: 12,
                microbatches: 1,
                participants: 6,
                placement: Placement::Block,
                slo_cycles: 50_000,
                weight: 2.0,
            },
            JobClass {
                name: "infer".into(),
                collective: "pipeline".into(),
                flits: 6,
                microbatches: 2,
                participants: 3,
                placement: Placement::Strided,
                slo_cycles: 25_000,
                weight: 1.0,
            },
            JobClass {
                name: "shard".into(),
                collective: "all_to_all".into(),
                flits: 2,
                microbatches: 1,
                participants: 4,
                placement: Placement::Overlapping,
                slo_cycles: 0,
                weight: 1.0,
            },
        ],
    }
}

/// One cell of the matrix.
fn run_cell(
    bench: &Bench,
    spec: &ServingSpec,
    partitions: usize,
    workers: usize,
    event: bool,
    locality: bool,
) -> ServingReport {
    let mut cfg = SimConfig {
        partitions,
        event_driven: event,
        ..Default::default()
    };
    if locality {
        cfg.partition_map = Some(Arc::new(locality_partition(
            bench.fabric.net(),
            partitions,
            None,
        )));
    }
    let pool = BspPool::new(workers);
    Session::bench(bench)
        .sim(cfg)
        .pool(&pool)
        .serving(spec)
        .map(|o| o.report)
        .unwrap_or_else(|e| {
            panic!("P={partitions} W={workers} event={event} locality={locality}: {e}")
        })
}

/// The same report with the busy/skipped split zeroed — the only fields
/// event-driven stepping is allowed to change.
fn sans_stepping_split(r: &ServingReport) -> ServingReport {
    let mut r = r.clone();
    r.busy_cycles = 0;
    r.skipped_cycles = 0;
    r
}

/// The full acceptance matrix on both families.
#[test]
fn serving_reports_bit_identical_across_schedules() {
    let spec = acceptance_spec();
    for (name, bench) in families() {
        // Per-mode references at P=1, W=1, contiguous blocks.
        let base_event = run_cell(&bench, &spec, 1, 1, true, false);
        let base_dense = run_cell(&bench, &spec, 1, 1, false, false);

        // Sanity: the mix really runs — all 8 jobs, every class served.
        assert_eq!(base_event.jobs.len(), 8, "{name}");
        assert_eq!(base_event.classes.len(), 3, "{name}");
        assert!(base_event.classes.iter().all(|c| c.jobs > 0), "{name}");
        assert_eq!(base_event.ct_hist.count(), 8, "{name}");
        assert!(
            base_event.fairness > 0.0 && base_event.fairness <= 1.0,
            "{name}"
        );

        // Stepping modes agree on everything but the busy/skipped split,
        // and the split itself must tile the dense cycle count.
        assert_eq!(
            sans_stepping_split(&base_event),
            sans_stepping_split(&base_dense),
            "{name}: event vs dense"
        );
        assert_eq!(base_dense.skipped_cycles, 0, "{name}: dense must not skip");
        assert_eq!(
            base_event.busy_cycles + base_event.skipped_cycles,
            base_dense.busy_cycles,
            "{name}: busy + skipped accounting"
        );

        for partitions in [1usize, 2, 4] {
            for workers in [1usize, 4] {
                for event in [true, false] {
                    for locality in [false, true] {
                        let r = run_cell(&bench, &spec, partitions, workers, event, locality);
                        let base = if event { &base_event } else { &base_dense };
                        assert_eq!(
                            r, *base,
                            "{name}: P={partitions} W={workers} event={event} \
                             locality={locality} diverged"
                        );
                    }
                }
            }
        }
    }
}

/// Cases per arrival-process property (same harness style as
/// `tests/proptests.rs`: seeded SplitMix64 sampling, bit-reproducible).
const CASES: usize = 24;

/// Keyed per-cycle draws make Poisson arrivals prefix-closed in the
/// horizon: shortening the horizon never changes *which* cycles arrive
/// below it, so idle fast-forward (which never lands mid-horizon on a
/// skipped cycle) cannot perturb the process.
#[test]
fn poisson_arrivals_are_prefix_closed_in_horizon() {
    let mut rng = SplitMix64::new(0x5EED_0A01);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let rate = (1 + rng.next_below(400)) as f64; // per kcycle
        let long = 500 + rng.next_below(4_000);
        let short = 1 + rng.next_below(long);
        let cap = u64::MAX; // no truncation: test the raw process
        let full = ArrivalProcess::Poisson {
            rate_per_kcycle: rate,
            horizon: long,
        }
        .cycles(seed, cap);
        let prefix = ArrivalProcess::Poisson {
            rate_per_kcycle: rate,
            horizon: short,
        }
        .cycles(seed, cap);
        let expected: Vec<u64> = full.iter().copied().filter(|&c| c < short).collect();
        assert_eq!(prefix, expected, "case {case}: seed {seed:#x} rate {rate}");
        // Arrivals are strictly increasing (≤ 1 per cycle) and in-horizon.
        assert!(full.windows(2).all(|w| w[0] < w[1]), "case {case}");
        assert!(full.iter().all(|&c| c < long), "case {case}");
    }
}

/// The `max_jobs` cap truncates the same stream rather than resampling:
/// capped arrivals are a prefix of the uncapped ones, with exact length.
#[test]
fn arrival_cap_truncates_the_same_stream() {
    let mut rng = SplitMix64::new(0x5EED_0A02);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let p = ArrivalProcess::Poisson {
            rate_per_kcycle: 250.0,
            horizon: 2_000,
        };
        let full = p.cycles(seed, u64::MAX);
        let cap = rng.next_below(full.len() as u64 + 2);
        let capped = p.cycles(seed, cap);
        assert_eq!(
            capped.len() as u64,
            cap.min(full.len() as u64),
            "case {case}"
        );
        assert_eq!(capped[..], full[..capped.len()], "case {case}");
    }
}

/// Fixed traces admit exactly their listed cycles, sorted, regardless of
/// input order; the cap takes the first `max_jobs` *listed* arrivals.
#[test]
fn trace_arrivals_are_exact() {
    let mut rng = SplitMix64::new(0x5EED_0A03);
    for case in 0..CASES {
        let n = 1 + rng.next_below(40) as usize;
        let cycles: Vec<u64> = (0..n).map(|_| rng.next_below(10_000)).collect();
        let t = ArrivalProcess::Trace {
            cycles: cycles.clone(),
        };
        let all = t.cycles(rng.next_u64(), u64::MAX);
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(all, sorted, "case {case}: trace must sort, not resample");
        let cap = 1 + rng.next_below(n as u64 + 3);
        let capped = t.cycles(0, cap);
        let mut expected: Vec<u64> = cycles.iter().copied().take(cap as usize).collect();
        expected.sort_unstable();
        assert_eq!(capped, expected, "case {case}: cap then sort");
    }
}
