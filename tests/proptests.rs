//! Property-based tests over random configurations, traffic and routes.
//!
//! The build environment is offline, so instead of the `proptest` crate
//! these use a small deterministic sampling harness: every test draws a
//! fixed number of random cases from a seeded [`SplitMix64`] stream and
//! asserts the property on each. Failures print the offending case, and
//! runs are bit-reproducible.

use wsdf::routing::{PortMap, RouteMode, SlOracle, SwOracle, VcScheme, Walker};
use wsdf::sim::flit::NO_INTERMEDIATE;
use wsdf::sim::{LatencyHistogram, SimConfig, SplitMix64, TrafficPattern};
use wsdf::topo::{SlParams, SwParams, SwitchFabric, SwitchlessFabric};
use wsdf::traffic::{PermKind, PermutationPattern, RingAllReduce, RingDirection, Scope};
use wsdf::{Bench, PatternSpec};

/// Cases per property (mirrors the old `ProptestConfig::with_cases(24)`).
const CASES: usize = 24;

/// Draw until `gen` produces a valid case, with a sanity bound.
fn draw<T>(rng: &mut SplitMix64, mut gen: impl FnMut(&mut SplitMix64) -> Option<T>) -> T {
    for _ in 0..10_000 {
        if let Some(v) = gen(rng) {
            return v;
        }
    }
    panic!("case generator rejected 10000 draws in a row");
}

/// Random small-but-valid switch-less configurations.
fn sl_params(rng: &mut SplitMix64) -> Option<SlParams> {
    let m = 2 + rng.next_below(4) as u32; // 2..=5
    let a = 1 + rng.next_below(3) as u32; // 1..=3
    let b = 1 + rng.next_below(3) as u32; // 1..=3
    let wg_seed = 1 + rng.next_below(4) as u32; // 1..=4
    let mut p = SlParams {
        a,
        b,
        m,
        chiplet: 1,
        wgroups: 1,
        mesh_width: 1,
        nodes_per_chip: 1.0,
    };
    if p.ab() > p.k() {
        return None;
    }
    let max = p.max_wgroups();
    p.wgroups = 1 + (wg_seed % max.min(6));
    p.validate().ok()?;
    Some(p)
}

/// Random switch-based configurations.
fn sw_params(rng: &mut SplitMix64) -> Option<SwParams> {
    let t = 1 + rng.next_below(4) as u32; // 1..=4
    let l = 1 + rng.next_below(7) as u32; // 1..=7
    let g = rng.next_below(5) as u32; // 0..=4
    let grp_seed = 1 + rng.next_below(5) as u32; // 1..=5
    let mut p = SwParams {
        terminals: t,
        locals: l,
        globals: g,
        groups: 1,
    };
    let max = p.max_groups();
    p.groups = 1 + (grp_seed % max.min(6));
    if p.groups > 1 && g == 0 {
        return None;
    }
    p.validate().ok()?;
    Some(p)
}

/// Any valid switch-less config builds a structurally valid network whose
/// router/endpoint counts match the arithmetic.
#[test]
fn switchless_builds_consistently() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for _ in 0..CASES {
        let p = draw(&mut rng, sl_params);
        let f = SwitchlessFabric::build(&p);
        assert_eq!(f.net.num_routers() as u32, p.num_routers(), "{p:?}");
        assert_eq!(f.net.num_endpoints() as u32, p.num_endpoints(), "{p:?}");
        assert!(f.net.validate().is_ok(), "{p:?}");
    }
}

/// Minimal routing delivers random pairs on random fabrics, within the
/// Eq. (7) hop structure.
#[test]
fn switchless_minimal_routes_random_pairs() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for _ in 0..CASES {
        let p = draw(&mut rng, sl_params);
        let f = SwitchlessFabric::build(&p);
        let map = PortMap::new(&f.net);
        let o = SlOracle::minimal(&p);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        for _ in 0..16 {
            let s = rng.next_below(n as u64) as u32;
            let d = rng.next_below(n as u64) as u32;
            if s == d {
                continue;
            }
            let t = walker
                .walk(s, d, NO_INTERMEDIATE)
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(
                t.hops_of(wsdf::sim::ChannelClass::LongReachGlobal) <= 1,
                "{p:?}"
            );
            assert!(
                t.hops_of(wsdf::sim::ChannelClass::LongReachLocal) <= 2,
                "{p:?}"
            );
        }
    }
}

/// Same for the Reduced scheme wherever it is applicable (h ≥ m).
#[test]
fn switchless_reduced_routes_random_pairs() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for _ in 0..CASES {
        let p = draw(&mut rng, |r| sl_params(r).filter(|p| p.h() >= p.m));
        let f = SwitchlessFabric::build(&p);
        let map = PortMap::new(&f.net);
        let o = SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        for _ in 0..12 {
            let s = rng.next_below(n as u64) as u32;
            let d = rng.next_below(n as u64) as u32;
            if s == d {
                continue;
            }
            walker
                .walk(s, d, NO_INTERMEDIATE)
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
        }
    }
}

/// Switch-based minimal routing: random fabrics, random pairs, ≤ 3 switch
/// hops.
#[test]
fn switchbased_minimal_routes_random_pairs() {
    let mut rng = SplitMix64::new(0x5EED_0004);
    for _ in 0..CASES {
        let p = draw(&mut rng, |r| {
            sw_params(r).filter(|p| p.num_endpoints() >= 2)
        });
        let f = SwitchFabric::build(&p);
        let map = PortMap::new(&f.net);
        let o = SwOracle::minimal(&p);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        for _ in 0..16 {
            let s = rng.next_below(n as u64) as u32;
            let d = rng.next_below(n as u64) as u32;
            if s == d {
                continue;
            }
            let t = walker
                .walk(s, d, NO_INTERMEDIATE)
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(t.network_hops() <= 3, "{p:?}: {s} → {d}");
        }
    }
}

/// Permutation patterns always produce in-range, non-self destinations.
#[test]
fn permutations_produce_valid_destinations() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    for _ in 0..CASES {
        let n = 2 + rng.next_below(510) as u32; // 2..512
        let kind = [
            PermKind::BitReverse,
            PermKind::BitShuffle,
            PermKind::BitTranspose,
        ][rng.next_below(3) as usize];
        let pat = PermutationPattern::new(kind, n, 0.5);
        for src in 0..n {
            if let Some(d) = pat.dest(src, 0, &mut rng) {
                assert!(d < n, "{kind:?} n={n} src={src} dst={d}");
                assert_ne!(d, src, "{kind:?} n={n}");
            } else {
                assert_eq!(pat.rate(src), 0.0, "{kind:?} n={n} src={src}");
            }
        }
    }
}

/// Ring patterns are permutations per direction: every endpoint has a
/// unique successor within its unit, at the same intra-chip position.
#[test]
fn ring_is_bijective() {
    let mut rng = SplitMix64::new(0x5EED_0006);
    for _ in 0..CASES {
        let p = draw(&mut rng, |r| {
            let mut p = sl_params(r).filter(|p| p.m % 2 == 0)?;
            p.chiplet = p.m / 2;
            p.nodes_per_chip = (p.chiplet * p.chiplet) as f64;
            p.validate().ok()?;
            let scope = Scope::switchless(&p);
            (scope.chips_per_cgroup >= 2).then_some(p)
        });
        let scope = Scope::switchless(&p);
        let ring = RingAllReduce::new(
            &scope,
            scope.chips_per_cgroup,
            RingDirection::Unidirectional,
            0.5,
        );
        let n = scope.endpoints();
        let mut seen = vec![false; n as usize];
        for ep in 0..n {
            let d = ring.successor(ep);
            assert!(!seen[d as usize], "{p:?}: duplicate successor {d}");
            seen[d as usize] = true;
            assert_eq!(ring.predecessor(d), ep, "{p:?}");
        }
    }
}

/// A random latency value drawn across the full magnitude range (uniform
/// in bit width, then uniform within it — stresses every bucket group).
fn any_latency(rng: &mut SplitMix64) -> u64 {
    let width = 1 + rng.next_below(64) as u32;
    rng.next_u64() >> (64 - width)
}

/// Every value lands in exactly one histogram bucket whose bounds contain
/// it, and the bucket's relative width respects the 1/SUBS quantization
/// guarantee.
#[test]
fn histogram_buckets_contain_their_values() {
    let mut rng = SplitMix64::new(0x5EED_0008);
    for _ in 0..CASES {
        for _ in 0..64 {
            let v = any_latency(&mut rng);
            let idx = LatencyHistogram::bucket_index(v);
            let lower = LatencyHistogram::bucket_lower(idx);
            assert!(lower <= v, "v={v}: below bucket {idx} lower {lower}");
            if idx + 1 < LatencyHistogram::BUCKETS {
                let next = LatencyHistogram::bucket_lower(idx + 1);
                assert!(v < next, "v={v}: at/above bucket {} lower {next}", idx + 1);
                // Bucket width ≤ max(1, lower/SUBS): the quantization bound.
                assert!(
                    next - lower <= (lower / LatencyHistogram::SUBS).max(1),
                    "bucket {idx} too wide: [{lower}, {next})"
                );
            }
        }
    }
}

/// Histogram merging is associative and commutative, and merging matches
/// recording the concatenated stream directly.
#[test]
fn histogram_merge_is_associative() {
    let mut rng = SplitMix64::new(0x5EED_0009);
    for _ in 0..CASES {
        let mut parts: Vec<LatencyHistogram> = Vec::new();
        let mut all = LatencyHistogram::default();
        for _ in 0..3 {
            let mut h = LatencyHistogram::default();
            for _ in 0..rng.next_below(40) {
                let v = any_latency(&mut rng);
                h.record(v);
                all.record(v);
            }
            parts.push(h);
        }
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);
        // (a ⊕ b) ⊕ c
        let mut ab_c = a.clone();
        ab_c.merge(b);
        ab_c.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associativity");
        // b ⊕ a == a ⊕ b
        let mut ba = b.clone();
        ba.merge(a);
        let mut ab = a.clone();
        ab.merge(b);
        assert_eq!(ab, ba, "commutativity");
        assert_eq!(ab_c, all, "merge must equal the concatenated stream");
    }
}

/// Quantiles are monotone in q and bracket the exact order statistics:
/// `quantile(q)` is the lower bound of the bucket holding the true
/// nearest-rank sample.
#[test]
fn histogram_quantiles_are_monotone_and_tight() {
    let mut rng = SplitMix64::new(0x5EED_000A);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(200) as usize;
        let mut values: Vec<u64> = Vec::with_capacity(n);
        let mut h = LatencyHistogram::default();
        for _ in 0..n {
            let v = any_latency(&mut rng);
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let got = h.quantile(q).unwrap();
            assert!(got >= prev, "quantile not monotone at q={q}");
            prev = got;
            // Exact nearest-rank reference value.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            assert_eq!(
                LatencyHistogram::bucket_index(got),
                LatencyHistogram::bucket_index(exact),
                "q={q}: reported {got} not in exact sample {exact}'s bucket"
            );
            assert!(got <= exact, "q={q}: lower bound {got} above exact {exact}");
        }
    }
}

/// Short simulations on random fabrics deliver traffic and never trip the
/// deadlock watchdog.
#[test]
fn random_fabric_simulations_deliver() {
    let mut rng = SplitMix64::new(0x5EED_0007);
    for _ in 0..CASES {
        let p = draw(&mut rng, |r| {
            sl_params(r).filter(|p| p.num_endpoints() <= 2000)
        });
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        let cfg = SimConfig {
            warmup_cycles: 150,
            measure_cycles: 350,
            drain_cycles: 150,
            ..Default::default()
        };
        let pattern = bench.pattern(PatternSpec::Uniform, 0.1);
        let m = wsdf::Session::bench(&bench)
            .sim(cfg)
            .metrics(pattern.as_ref())
            .unwrap()
            .report;
        assert!(!m.deadlocked, "{p:?}");
        assert!(m.packets_ejected > 0, "{p:?}");
    }
}

/// Boundary-message conservation on the sparse exchange: for random
/// fabrics of both families under random partition counts and assignment
/// schemes (contiguous blocks, the locality partitioner, and an
/// adversarial round-robin map that shreds locality entirely), every
/// (src, dst) exchange edge conserves messages — `written == drained +
/// pending` — and the edge set equals the partition adjacency computed
/// independently from the channel list, so the exchange provably never
/// touches a non-adjacent pair. (`pending` is almost always zero after
/// the drain; the exception is credits emitted on the very cycle the
/// early drain exit fires, which stay undelivered in the read buffer.)
#[test]
fn exchange_conserves_boundary_messages() {
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use wsdf::sim::Simulation;
    use wsdf::topo::{contiguous_blocks, locality_partition};
    let mut rng = SplitMix64::new(0x5EED_000B);
    for case in 0..8 {
        let (bench, rate) = if case % 2 == 0 {
            let p = draw(&mut rng, |r| {
                sl_params(r).filter(|p| (4..=1200).contains(&p.num_endpoints()))
            });
            let b = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
            (b, 0.1)
        } else {
            let p = draw(&mut rng, |r| {
                sw_params(r).filter(|p| (4..=1200).contains(&p.num_endpoints()) && p.groups >= 2)
            });
            (Bench::switchbased(&p, RouteMode::Minimal), 0.2)
        };
        let net = bench.fabric.net();
        let nr = net.num_routers();
        let parts = (2 + rng.next_below(7) as usize).min(nr);
        let assign: Vec<u32> = match rng.next_below(3) {
            0 => contiguous_blocks(net, parts),
            1 => locality_partition(net, parts, None),
            _ => (0..nr).map(|r| (r % parts) as u32).collect(),
        };
        let mut cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 250,
            drain_cycles: 1_500,
            ..Default::default()
        };
        cfg.num_vcs = cfg.num_vcs.max(bench.num_vcs());
        cfg.partition_map = Some(Arc::new(assign.clone()));
        let pattern = bench.pattern(PatternSpec::Uniform, rate);
        let mut sim = Simulation::new(net, &cfg, &bench.oracle)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let m = sim
            .run(pattern.as_ref())
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(m.packets_ejected > 0, "case {case}: no traffic");

        // Independent adjacency: both directions per cross-partition
        // router-router channel (flits one way, credits the other).
        let mut expected = BTreeSet::new();
        for ch in &net.channels {
            if let (Some(a), Some(b)) = (ch.src.router(), ch.dst.router()) {
                let (pa, pb) = (assign[a as usize], assign[b as usize]);
                if pa != pb {
                    expected.insert((pa, pb));
                    expected.insert((pb, pa));
                }
            }
        }
        let edges = sim.exchange_edges();
        let observed: BTreeSet<(u32, u32)> = edges.iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(edges.len(), observed.len(), "case {case}: duplicate edges");
        assert_eq!(observed, expected, "case {case}: adjacency mismatch");
        for e in &edges {
            assert_eq!(
                e.written,
                e.drained + e.pending,
                "case {case}: edge ({}, {}) leaked messages",
                e.src,
                e.dst
            );
        }
        if parts > 1 {
            let written: u64 = edges.iter().map(|e| e.written).sum();
            assert!(written > 0, "case {case}: no boundary traffic at P={parts}");
        } else {
            assert!(edges.is_empty(), "case {case}: edges at P=1");
        }
    }
}

/// Random closed-loop workload spec: a named collective half the time,
/// an explicit layered DAG otherwise.
fn any_workload_spec(rng: &mut SplitMix64) -> wsdf::scenario::WorkloadSpec {
    use wsdf::scenario::{Participants, WorkloadSpec};
    use wsdf::workload::{Message, Workload};
    if rng.chance(0.5) {
        let kinds = [
            "ring_allreduce",
            "rd_allreduce",
            "all_to_all",
            "broadcast",
            "reduce",
            "pipeline",
        ];
        let kind = kinds[rng.next_below(kinds.len() as u64) as usize];
        let participants = if rng.chance(0.5) {
            Participants::Chips
        } else {
            let stride = 1 + rng.next_below(4) as u32;
            let n = 2 + rng.next_below(6) as u32;
            Participants::List((0..n).map(|i| i * stride).collect())
        };
        WorkloadSpec::Collective {
            kind: kind.to_string(),
            participants,
            flits: 1 + rng.next_below(128),
            microbatches: if kind == "pipeline" {
                1 + rng.next_below(4) as u32
            } else {
                1
            },
        }
    } else {
        let mut wl = Workload::new("prop-dag");
        let phase = wl.phase("p0");
        let mut prev: Vec<u32> = Vec::new();
        for _ in 0..1 + rng.next_below(5) {
            let deps: Vec<u32> = prev.iter().copied().filter(|_| rng.chance(0.3)).collect();
            let src = rng.next_below(16) as u32;
            let dst = (src + 1 + rng.next_below(10) as u32) % 16;
            let id = wl.push(
                Message {
                    src,
                    dst,
                    flits: 1 + rng.next_below(20),
                    phase,
                },
                &deps,
            );
            prev.push(id);
        }
        WorkloadSpec::Dag(wl)
    }
}

/// Random serving spec: valid arrivals (both processes), a class mix
/// over the registered collectives, all three placement schemes.
fn any_serving_spec(rng: &mut SplitMix64) -> wsdf::workload::tenancy::ServingSpec {
    use wsdf::workload::tenancy::{ArrivalProcess, JobClass, Placement, ServingSpec};
    let kinds = [
        "ring_allreduce",
        "rd_allreduce",
        "all_to_all",
        "broadcast",
        "reduce",
        "pipeline",
    ];
    let classes = (0..1 + rng.next_below(3))
        .map(|i| {
            let kind = kinds[rng.next_below(kinds.len() as u64) as usize];
            JobClass {
                name: format!("class{i}"),
                collective: kind.to_string(),
                flits: 1 + rng.next_below(128),
                microbatches: if kind == "pipeline" {
                    1 + rng.next_below(4) as u32
                } else {
                    1
                },
                participants: 2 + rng.next_below(8) as u32,
                placement: [Placement::Block, Placement::Strided, Placement::Overlapping]
                    [rng.next_below(3) as usize],
                slo_cycles: rng.next_below(1 << 20),
                weight: (1 + rng.next_below(40)) as f64 / 8.0,
            }
        })
        .collect();
    ServingSpec {
        seed: rng.next_below(1 << 32),
        arrivals: if rng.chance(0.5) {
            ArrivalProcess::Poisson {
                rate_per_kcycle: (1 + rng.next_below(1000)) as f64,
                horizon: 1 + rng.next_below(50_000),
            }
        } else {
            ArrivalProcess::Trace {
                cycles: (0..1 + rng.next_below(10))
                    .map(|_| rng.next_below(1 << 20))
                    .collect(),
            }
        },
        max_jobs: 1 + rng.next_below(256),
        classes,
    }
}

/// Random *valid* scenario across every topology family, run kind and
/// optional section. Structurally valid (it parses back), but not
/// necessarily cheap to execute — runnable cases are drawn separately.
/// All integers stay below 2^53 so they survive the JSON number type.
fn any_scenario(rng: &mut SplitMix64) -> wsdf::scenario::Scenario {
    use wsdf::scenario::{
        pattern_from_name, FaultsSpec, PartitionerKind, Partitioning, RunSpec, Scenario, SimSpec,
        Stepping, Topology, TrafficSpec,
    };
    use wsdf::topo::{FaultSchedule, FaultSpec};

    let topology = match rng.next_below(4) {
        0 => Topology::Switchless(draw(rng, sl_params)),
        1 => Topology::Switchbased(draw(rng, sw_params)),
        2 => {
            let m = 2 + rng.next_below(4) as u32; // 2..=5
            let divisors: Vec<u32> = (1..=m).filter(|c| m.is_multiple_of(*c)).collect();
            let chiplet = divisors[rng.next_below(divisors.len() as u64) as usize];
            Topology::Mesh {
                m,
                chiplet,
                width: 1 + rng.next_below(2) as u8,
            }
        }
        _ => Topology::Switch {
            terminals: 2 + rng.next_below(30) as u32,
        },
    };
    let dragonfly = matches!(topology, Topology::Switchless(_) | Topology::Switchbased(_));
    let route = if dragonfly && rng.chance(0.5) {
        RouteMode::Valiant
    } else {
        RouteMode::Minimal
    };
    let vcs = if matches!(topology, Topology::Switchless(_)) && rng.chance(0.5) {
        VcScheme::Reduced
    } else {
        VcScheme::Baseline
    };
    let packet_len = 1 + rng.next_below(8);
    let sim = SimSpec {
        warmup_cycles: rng.next_below(500),
        measure_cycles: 1 + rng.next_below(1000),
        drain_cycles: rng.next_below(500),
        seed: rng.next_below(1 << 32),
        packet_len: packet_len as u8,
        buffer_flits: (packet_len + rng.next_below(60)) as u16,
    };
    let run = match rng.next_below(5) {
        0 => RunSpec::OpenLoop {
            rates_chip: rng.chance(0.5).then(|| {
                (0..1 + rng.next_below(4))
                    .map(|_| (1 + rng.next_below(4000)) as f64 / 1000.0)
                    .collect()
            }),
        },
        1 => RunSpec::Adaptive {
            start_chip: (1 + rng.next_below(2000)) as f64 / 500.0,
            growth: 1.0 + (1 + rng.next_below(100)) as f64 / 50.0,
            rel_tol: (1 + rng.next_below(100)) as f64 / 200.0,
            max_points: 3 + rng.next_below(10),
        },
        2 => RunSpec::ClosedLoop {
            workload: any_workload_spec(rng),
            flit_bytes: (1 + rng.next_below(512)) as f64,
            clock_ghz: (1 + rng.next_below(40)) as f64 / 10.0,
        },
        3 => RunSpec::Serving {
            spec: any_serving_spec(rng),
        },
        _ => RunSpec::Resilience {
            rate_chip: (1 + rng.next_below(1000)) as f64 / 500.0,
            fractions: (0..1 + rng.next_below(3))
                .map(|_| rng.next_below(101) as f64 / 100.0)
                .collect(),
            router_ratio: rng.next_below(101) as f64 / 100.0,
            seed: rng.next_below(1 << 32),
            collective_flits: rng.next_below(64),
        },
    };
    // Traffic is forbidden on closed-loop and serving runs and required
    // elsewhere; a
    // single-point rate is required exactly when a fixed-grid open-loop
    // run gives no rates_chip. Hotspot needs 4+ W-groups.
    let wgroups = match &topology {
        Topology::Switchless(p) => p.wgroups,
        Topology::Switchbased(p) => p.groups,
        _ => 1,
    };
    let mut patterns = vec![
        "uniform",
        "bit_reverse",
        "bit_shuffle",
        "bit_transpose",
        "worst_case",
        "ring_cgroup",
        "ring_cgroup_bidir",
        "ring_wgroup",
        "ring_wgroup_bidir",
    ];
    if wgroups >= 4 {
        patterns.push("hotspot");
    }
    let needs_rate = matches!(run, RunSpec::OpenLoop { rates_chip: None });
    let traffic = if matches!(run, RunSpec::ClosedLoop { .. } | RunSpec::Serving { .. }) {
        None
    } else {
        Some(TrafficSpec {
            pattern: pattern_from_name(patterns[rng.next_below(patterns.len() as u64) as usize])
                .unwrap(),
            rate: needs_rate.then(|| (1 + rng.next_below(1000)) as f64 / 1000.0),
        })
    };
    // Faults are forbidden on resilience runs (they sample their own).
    let faults = if matches!(run, RunSpec::Resilience { .. }) || rng.chance(0.5) {
        None
    } else if rng.chance(0.5) {
        Some(FaultsSpec::Spec(FaultSpec {
            seed: rng.next_below(1 << 32),
            link_fraction: rng.next_below(101) as f64 / 100.0,
            router_fraction: rng.next_below(101) as f64 / 100.0,
            explicit_links: (0..rng.next_below(4))
                .map(|_| rng.next_below(100) as u32)
                .collect(),
            explicit_routers: (0..rng.next_below(4))
                .map(|_| rng.next_below(50) as u32)
                .collect(),
        }))
    } else {
        let mut schedule = FaultSchedule::new();
        for _ in 0..1 + rng.next_below(3) {
            schedule.push(
                rng.next_below(1000),
                FaultSpec::links(rng.next_below(101) as f64 / 100.0, rng.next_below(1 << 32)),
            );
        }
        Some(FaultsSpec::Schedule {
            schedule,
            at_cycle: rng.next_below(2000),
        })
    };
    Scenario {
        name: format!("prop-{}", rng.next_below(1_000_000)),
        topology,
        route,
        vcs,
        sim,
        stepping: if rng.chance(0.5) {
            Stepping::Event
        } else {
            Stepping::Dense
        },
        telemetry: None,
        partitioning: match rng.next_below(3) {
            0 => Partitioning::Auto {
                partitions: rng.next_below(9),
                partitioner: PartitionerKind::Locality,
            },
            1 => Partitioning::Auto {
                partitions: rng.next_below(9),
                partitioner: PartitionerKind::Blocks,
            },
            // An arbitrary map: only parsed (never executed) here, so
            // density/length against a real fabric is not required.
            _ => Partitioning::Map(
                (0..1 + rng.next_below(12))
                    .map(|_| rng.next_below(4) as u32)
                    .collect(),
            ),
        },
        faults,
        traffic,
        run,
    }
}

/// Scenario documents round-trip: any valid scenario serializes to
/// canonical JSON that parses back to the identical value, and the
/// serialization is a fixed point.
#[test]
fn scenario_json_round_trips() {
    use wsdf::scenario::Scenario;
    let mut rng = SplitMix64::new(0x5EED_000C);
    for case in 0..CASES {
        let s = any_scenario(&mut rng);
        let text = s.to_json();
        let back =
            Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, s, "case {case}: round-trip drift\n{text}");
        assert_eq!(back.to_json(), text, "case {case}: not a fixed point");
    }
}

/// Round-tripping preserves behaviour, not just structure: the reparsed
/// scenario produces a bit-identical report digest. Cases are drawn
/// cheap on purpose (16-router meshes, short windows).
#[test]
fn scenario_round_trip_preserves_report_digest() {
    use wsdf::scenario::{
        Participants, Partitioning, RunSpec, Scenario, SimSpec, Stepping, Topology, TrafficSpec,
        WorkloadSpec,
    };
    let mut rng = SplitMix64::new(0x5EED_000D);
    for case in 0..6 {
        let m = if rng.chance(0.5) { 2 } else { 4 };
        let open = case % 2 == 0;
        let run = if open {
            RunSpec::OpenLoop {
                rates_chip: Some(vec![(1 + rng.next_below(800)) as f64 / 1000.0]),
            }
        } else {
            RunSpec::ClosedLoop {
                workload: WorkloadSpec::Collective {
                    kind: "ring_allreduce".to_string(),
                    participants: Participants::Chips,
                    flits: 8 + rng.next_below(24),
                    microbatches: 1,
                },
                flit_bytes: 64.0,
                clock_ghz: 1.0,
            }
        };
        let s = Scenario {
            name: format!("prop-run-{case}"),
            topology: Topology::Mesh {
                m,
                chiplet: if rng.chance(0.5) { 1 } else { m / 2 },
                width: 1,
            },
            route: RouteMode::Minimal,
            vcs: VcScheme::Baseline,
            sim: SimSpec {
                warmup_cycles: 0,
                measure_cycles: 300,
                seed: rng.next_below(1 << 32),
                ..SimSpec::default()
            },
            stepping: Stepping::Event,
            partitioning: Partitioning::default(),
            telemetry: None,
            faults: None,
            traffic: open.then_some(TrafficSpec {
                pattern: PatternSpec::Uniform,
                rate: None,
            }),
            run,
        };
        let back =
            Scenario::from_json_str(&s.to_json()).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(back, s, "case {case}");
        let a = s
            .run()
            .unwrap_or_else(|e| panic!("case {case}: {e}"))
            .digest();
        let b = back
            .run()
            .unwrap_or_else(|e| panic!("case {case} (reparsed): {e}"))
            .digest();
        assert_eq!(a, b, "case {case}: digest drift after round-trip");
    }
}

/// Closed-loop conservation over random workload DAGs: every message's
/// flits are injected exactly once (`flits_injected == Σ size`), every
/// message reassembles exactly once (over-delivery panics inside the
/// driver; under-delivery would hang and trip the watchdog), and
/// completion respects the dependency order.
#[test]
fn workload_flit_conservation() {
    use wsdf::workload::{packet_count, run_collective, Message, Workload};
    let mut rng = SplitMix64::new(0x5EED_0009);
    for case in 0..10 {
        let p = draw(&mut rng, |r| {
            sl_params(r).filter(|p| (2..=600).contains(&p.num_endpoints()))
        });
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        let n = bench.endpoints() as u64;
        // A random layered DAG: each layer's messages depend on a random
        // subset of the previous layer.
        let mut wl = Workload::new(format!("random-{case}"));
        let layers = 1 + rng.next_below(3);
        let mut prev: Vec<u32> = Vec::new();
        for l in 0..layers {
            let phase = wl.phase(format!("layer{l}"));
            let count = 1 + rng.next_below(6) as usize;
            let mut layer = Vec::with_capacity(count);
            for _ in 0..count {
                let src = rng.next_below(n) as u32;
                let mut dst = rng.next_below(n) as u32;
                if dst == src {
                    dst = (dst + 1) % n as u32;
                }
                let flits = 1 + rng.next_below(19);
                let deps: Vec<u32> = prev.iter().copied().filter(|_| rng.chance(0.5)).collect();
                layer.push(wl.push(
                    Message {
                        src,
                        dst,
                        flits,
                        phase,
                    },
                    &deps,
                ));
            }
            prev = layer;
        }
        let mut cfg = SimConfig::default();
        cfg.num_vcs = cfg.num_vcs.max(bench.num_vcs());
        let out = run_collective(bench.fabric.net(), &cfg, &bench.oracle, &wl)
            .unwrap_or_else(|e| panic!("case {case} ({p:?}): {e}"));
        // Conservation: flits injected per message == its size, and every
        // flit that entered came back out.
        let total = wl.total_flits();
        assert_eq!(out.metrics.flits_injected_measured, total, "case {case}");
        assert_eq!(out.metrics.flits_ejected_measured, total, "case {case}");
        let packets: u64 = wl
            .messages()
            .iter()
            .map(|m| packet_count(m.flits, cfg.packet_len))
            .sum();
        assert_eq!(out.metrics.packets_created, packets, "case {case}");
        assert_eq!(out.metrics.packets_ejected, packets, "case {case}");
        // Exactly-once reassembly with a completion cycle for everyone,
        // bounded by the reported end-to-end time.
        assert_eq!(out.message_completion.len(), wl.len());
        for (m, &done) in out.message_completion.iter().enumerate() {
            assert!(done >= 1 && done <= out.completion_cycles, "case {case}");
            for &pred in wl.preds(m as u32) {
                assert!(
                    done > out.message_completion[pred as usize],
                    "case {case}: message {m} completed before its dependency {pred}"
                );
            }
        }
    }
}

/// A consistent random [`wsdf::ServingReport`]: every class serves at
/// least one job (NaN-free, since NaN breaks `PartialEq` round-trip
/// comparison), the CT histogram matches the job records, and the
/// percentiles come from that histogram — exactly the invariants the
/// real runner maintains.
fn any_serving_report(rng: &mut SplitMix64) -> wsdf::ServingReport {
    use wsdf::{ClassStat, JobRecord, ServingReport};
    let class_names = ["alpha", "beta", "gamma"];
    let nclasses = 1 + rng.next_below(3) as usize;
    let njobs = nclasses * (1 + rng.next_below(4) as usize);
    let mut hist = LatencyHistogram::default();
    let jobs: Vec<JobRecord> = (0..njobs)
        .map(|i| {
            let arrival = rng.next_below(1 << 40);
            let ct = 1 + rng.next_below(1 << 40);
            hist.record(ct);
            JobRecord {
                id: i as u32,
                class: class_names[i % nclasses].to_string(),
                arrival,
                completion: arrival + ct,
                ct,
            }
        })
        .collect();
    let makespan = jobs.iter().map(|j| j.completion).max().unwrap();
    let classes: Vec<ClassStat> = (0..nclasses)
        .map(|ci| {
            let mine: Vec<&JobRecord> =
                jobs.iter().filter(|j| j.class == class_names[ci]).collect();
            let n = mine.len() as u64;
            let mean_ct = mine.iter().map(|r| r.ct as f64).sum::<f64>() / n as f64;
            let isolated_ct = 1 + rng.next_below(1 << 30);
            let flits = 1 + rng.next_below(1 << 40);
            ClassStat {
                name: class_names[ci].to_string(),
                jobs: n,
                flits,
                mean_ct,
                isolated_ct,
                slowdown: mean_ct / isolated_ct as f64,
                throughput_flits_per_kcycle: flits as f64 * 1000.0 / makespan as f64,
                slo_cycles: rng.next_below(1 << 40),
                slo_misses: rng.next_below(n + 1),
            }
        })
        .collect();
    let fairness = wsdf::serving::jain_fairness(
        &classes
            .iter()
            .map(|c| c.throughput_flits_per_kcycle)
            .collect::<Vec<f64>>(),
    );
    let pct = |q: Option<u64>| q.unwrap() as f64;
    ServingReport {
        label: format!("prop-{}", rng.next_below(1000)),
        makespan_cycles: makespan,
        ct_p50: pct(hist.p50()),
        ct_p95: pct(hist.p95()),
        ct_p99: pct(hist.p99()),
        fairness,
        ct_hist: hist,
        jobs,
        classes,
        busy_cycles: rng.next_below(1 << 40),
        skipped_cycles: rng.next_below(1 << 40),
    }
}

/// Serving reports round-trip through JSON — histogram included (it is
/// rebuilt from the job records on parse) — and the serialization is a
/// fixed point.
#[test]
fn serving_report_json_round_trips() {
    use wsdf::ServingReport;
    let mut rng = SplitMix64::new(0x5EED_000E);
    for case in 0..CASES {
        let r = any_serving_report(&mut rng);
        let text = r.to_json();
        let back = ServingReport::from_json(&text).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(back, r, "case {case}: round-trip drift");
        assert_eq!(back.to_json(), text, "case {case}: not a fixed point");
    }
}

/// Forward compatibility of serving reports: any subset of the optional
/// sections may be missing and the parse still succeeds, with missing
/// numeric summaries reading as NaN, counters as 0, and arrays as empty.
#[test]
fn serving_report_parses_with_any_optional_subset() {
    use wsdf::ServingReport;
    let mut rng = SplitMix64::new(0x5EED_000F);
    for case in 0..CASES {
        let makespan = rng.chance(0.5).then(|| rng.next_below(1 << 40));
        let p50 = rng.chance(0.5).then(|| rng.next_below(1 << 30) as f64);
        let fairness = rng.chance(0.5).then(|| rng.next_below(101) as f64 / 100.0);
        let with_jobs = rng.chance(0.5);
        let with_classes = rng.chance(0.5);
        let mut s = String::from("{\"label\": \"legacy\"");
        if let Some(m) = makespan {
            s.push_str(&format!(", \"makespan_cycles\": {m}"));
        }
        if let Some(p) = p50 {
            s.push_str(&format!(", \"ct_p50\": {p}"));
        }
        if let Some(f) = fairness {
            s.push_str(&format!(", \"fairness\": {f}"));
        }
        if with_jobs {
            s.push_str(
                ", \"jobs\": [{\"id\": 0, \"class\": \"a\", \"arrival\": 3, \
                 \"completion\": 10, \"ct\": 7}]",
            );
        }
        if with_classes {
            // A class written by an older serializer: only name and jobs.
            s.push_str(", \"classes\": [{\"name\": \"a\", \"jobs\": 1}]");
        }
        s.push('}');
        let r = ServingReport::from_json(&s).unwrap_or_else(|e| panic!("case {case}: {e}\n{s}"));
        assert_eq!(r.label, "legacy", "case {case}");
        assert_eq!(r.makespan_cycles, makespan.unwrap_or(0), "case {case}");
        match p50 {
            Some(p) => assert_eq!(r.ct_p50, p, "case {case}"),
            None => assert!(r.ct_p50.is_nan(), "case {case}"),
        }
        match fairness {
            Some(f) => assert_eq!(r.fairness, f, "case {case}"),
            None => assert!(r.fairness.is_nan(), "case {case}"),
        }
        // Never-written fields always default.
        assert!(r.ct_p95.is_nan() && r.ct_p99.is_nan(), "case {case}");
        assert_eq!(r.busy_cycles, 0, "case {case}");
        if with_jobs {
            assert_eq!(r.jobs.len(), 1, "case {case}");
            assert_eq!(r.ct_hist.count(), 1, "case {case}");
            assert_eq!(r.jobs[0].ct, 7, "case {case}");
        } else {
            assert!(r.jobs.is_empty() && r.ct_hist.is_empty(), "case {case}");
        }
        if with_classes {
            let c = &r.classes[0];
            assert_eq!((c.jobs, c.flits, c.slo_misses), (1, 0, 0), "case {case}");
            assert!(c.mean_ct.is_nan() && c.slowdown.is_nan(), "case {case}");
        } else {
            assert!(r.classes.is_empty(), "case {case}");
        }
    }
}

/// Forward compatibility of workload reports: `phases`, `latency` (whole
/// or any subset of its fields) and the busy/skipped counters may all be
/// missing — older files parse with empty/NaN/0 defaults.
#[test]
fn workload_report_parses_with_any_optional_subset() {
    use wsdf::WorkloadReport;
    let mut rng = SplitMix64::new(0x5EED_0010);
    for case in 0..CASES {
        let cc = rng.next_below(1 << 40);
        let with_phases = rng.chance(0.5);
        let latency = rng.chance(0.5).then(|| {
            (
                rng.chance(0.5).then(|| rng.next_below(1 << 30)),
                rng.chance(0.5).then(|| rng.next_below(1 << 20) as f64),
            )
        });
        let busy = rng.chance(0.5).then(|| rng.next_below(cc + 1));
        let mut s = format!(
            "{{\"label\": \"l\", \"workload\": \"w\", \"completion_cycles\": {cc}, \
             \"messages\": 2, \"flits\": 64, \"achieved_flits_per_cycle\": 0.5, \
             \"achieved_gbps\": 1.25"
        );
        if with_phases {
            s.push_str(
                ", \"phases\": [{\"name\": \"p0\", \"messages\": 2, \"flits\": 64, \
                 \"start_cycle\": 1, \"end_cycle\": 9, \"achieved_flits_per_cycle\": 8, \
                 \"achieved_gbps\": 16}]",
            );
        }
        if let Some((count, p50)) = &latency {
            s.push_str(", \"latency\": {");
            let mut parts = Vec::new();
            if let Some(c) = count {
                parts.push(format!("\"count\": {c}"));
            }
            if let Some(p) = p50 {
                parts.push(format!("\"p50\": {p}"));
            }
            s.push_str(&parts.join(", "));
            s.push('}');
        }
        if let Some(b) = busy {
            s.push_str(&format!(", \"busy_cycles\": {b}"));
        }
        s.push('}');
        let r = WorkloadReport::from_json(&s).unwrap_or_else(|e| panic!("case {case}: {e}\n{s}"));
        assert_eq!(r.completion_cycles, cc, "case {case}");
        assert_eq!(r.phases.len(), usize::from(with_phases), "case {case}");
        match &latency {
            None => {
                assert_eq!(r.latency.count, 0, "case {case}");
                assert!(
                    r.latency.mean.is_nan() && r.latency.p50.is_nan(),
                    "case {case}"
                );
            }
            Some((count, p50)) => {
                assert_eq!(r.latency.count, count.unwrap_or(0), "case {case}");
                match p50 {
                    Some(p) => assert_eq!(r.latency.p50, *p, "case {case}"),
                    None => assert!(r.latency.p50.is_nan(), "case {case}"),
                }
                // Never-written subfields default to NaN.
                assert!(
                    r.latency.p99.is_nan() && r.latency.max.is_nan(),
                    "case {case}"
                );
            }
        }
        assert_eq!(r.busy_cycles, busy.unwrap_or(0), "case {case}");
        assert_eq!(r.skipped_cycles, 0, "case {case}");
    }
}
