//! Property-based tests over random configurations, traffic and routes.

use proptest::prelude::*;
use wsdf::routing::{PortMap, RouteMode, SlOracle, SwOracle, VcScheme, Walker};
use wsdf::sim::flit::NO_INTERMEDIATE;
use wsdf::sim::{SimConfig, SplitMix64, TrafficPattern};
use wsdf::topo::{SlParams, SwParams, SwitchFabric, SwitchlessFabric};
use wsdf::traffic::{PermKind, PermutationPattern, RingAllReduce, RingDirection, Scope};
use wsdf::{Bench, PatternSpec};

/// Random small-but-valid switch-less configurations.
fn sl_params() -> impl Strategy<Value = SlParams> {
    (2u32..=5, 1u32..=3, 1u32..=3, 1u32..=4).prop_filter_map(
        "valid switch-less config",
        |(m, a, b, wg_seed)| {
            let mut p = SlParams {
                a,
                b,
                m,
                chiplet: 1,
                wgroups: 1,
                mesh_width: 1,
                nodes_per_chip: 1.0,
            };
            if p.ab() > p.k() {
                return None;
            }
            let max = p.max_wgroups();
            p.wgroups = 1 + (wg_seed % max.min(6));
            p.validate().ok()?;
            Some(p)
        },
    )
}

/// Random switch-based configurations.
fn sw_params() -> impl Strategy<Value = SwParams> {
    (1u32..=4, 1u32..=7, 0u32..=4, 1u32..=5).prop_filter_map(
        "valid switch-based config",
        |(t, l, g, grp_seed)| {
            let mut p = SwParams {
                terminals: t,
                locals: l,
                globals: g,
                groups: 1,
            };
            let max = p.max_groups();
            p.groups = 1 + (grp_seed % max.min(6));
            if p.groups > 1 && g == 0 {
                return None;
            }
            p.validate().ok()?;
            Some(p)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid switch-less config builds a structurally valid network
    /// whose router/endpoint counts match the arithmetic.
    #[test]
    fn switchless_builds_consistently(p in sl_params()) {
        let f = SwitchlessFabric::build(&p);
        prop_assert_eq!(f.net.num_routers() as u32, p.num_routers());
        prop_assert_eq!(f.net.num_endpoints() as u32, p.num_endpoints());
        prop_assert!(f.net.validate().is_ok());
    }

    /// Minimal routing delivers random pairs on random fabrics, within the
    /// Eq. (7) hop structure.
    #[test]
    fn switchless_minimal_routes_random_pairs(
        p in sl_params(),
        pair_seed in any::<u64>(),
    ) {
        let f = SwitchlessFabric::build(&p);
        let map = PortMap::new(&f.net);
        let o = SlOracle::minimal(&p);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        let mut rng = SplitMix64::new(pair_seed);
        for _ in 0..16 {
            let s = rng.next_below(n as u64) as u32;
            let d = rng.next_below(n as u64) as u32;
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE)
                .map_err(|e| TestCaseError::fail(e))?;
            prop_assert!(t.hops_of(wsdf::sim::ChannelClass::LongReachGlobal) <= 1);
            prop_assert!(t.hops_of(wsdf::sim::ChannelClass::LongReachLocal) <= 2);
        }
    }

    /// Same for the Reduced scheme wherever it is applicable (h ≥ m).
    #[test]
    fn switchless_reduced_routes_random_pairs(
        p in sl_params().prop_filter("reduced applicable", |p| p.h() >= p.m),
        pair_seed in any::<u64>(),
    ) {
        let f = SwitchlessFabric::build(&p);
        let map = PortMap::new(&f.net);
        let o = SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        let mut rng = SplitMix64::new(pair_seed);
        for _ in 0..12 {
            let s = rng.next_below(n as u64) as u32;
            let d = rng.next_below(n as u64) as u32;
            if s == d {
                continue;
            }
            walker.walk(s, d, NO_INTERMEDIATE).map_err(TestCaseError::fail)?;
        }
    }

    /// Switch-based minimal routing: random fabrics, random pairs, ≤ 3
    /// switch hops.
    #[test]
    fn switchbased_minimal_routes_random_pairs(
        p in sw_params(),
        pair_seed in any::<u64>(),
    ) {
        let f = SwitchFabric::build(&p);
        let map = PortMap::new(&f.net);
        let o = SwOracle::minimal(&p);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        prop_assume!(n >= 2);
        let mut rng = SplitMix64::new(pair_seed);
        for _ in 0..16 {
            let s = rng.next_below(n as u64) as u32;
            let d = rng.next_below(n as u64) as u32;
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE).map_err(TestCaseError::fail)?;
            prop_assert!(t.network_hops() <= 3);
        }
    }

    /// Permutation patterns always produce in-range, non-self destinations.
    #[test]
    fn permutations_produce_valid_destinations(
        n in 2u32..512,
        kind_pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        let kind = [PermKind::BitReverse, PermKind::BitShuffle, PermKind::BitTranspose]
            [kind_pick as usize];
        let pat = PermutationPattern::new(kind, n, 0.5);
        let mut rng = SplitMix64::new(seed);
        for src in 0..n {
            if let Some(d) = pat.dest(src, 0, &mut rng) {
                prop_assert!(d < n);
                prop_assert_ne!(d, src);
            } else {
                prop_assert_eq!(pat.rate(src), 0.0);
            }
        }
    }

    /// Ring patterns are permutations per direction: every endpoint has a
    /// unique successor within its unit, at the same intra-chip position.
    #[test]
    fn ring_is_bijective(p in sl_params().prop_filter("even chip grid", |p| p.m % 2 == 0)) {
        let mut p = p;
        p.chiplet = if p.m % 2 == 0 { p.m / 2 } else { 1 };
        p.nodes_per_chip = (p.chiplet * p.chiplet) as f64;
        prop_assume!(p.validate().is_ok());
        let scope = Scope::switchless(&p);
        prop_assume!(scope.chips_per_cgroup >= 2);
        let ring = RingAllReduce::new(
            &scope,
            scope.chips_per_cgroup,
            RingDirection::Unidirectional,
            0.5,
        );
        let n = scope.endpoints();
        let mut seen = vec![false; n as usize];
        for ep in 0..n {
            let d = ring.successor(ep);
            prop_assert!(!seen[d as usize]);
            seen[d as usize] = true;
            prop_assert_eq!(ring.predecessor(d), ep);
        }
    }

    /// Short simulations on random fabrics deliver traffic and never trip
    /// the deadlock watchdog.
    #[test]
    fn random_fabric_simulations_deliver(p in sl_params()) {
        prop_assume!(p.num_endpoints() <= 2000);
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        let cfg = SimConfig {
            warmup_cycles: 150,
            measure_cycles: 350,
            drain_cycles: 150,
            ..Default::default()
        };
        let pattern = bench.pattern(PatternSpec::Uniform, 0.1);
        let m = bench.run(&cfg, pattern.as_ref()).unwrap();
        prop_assert!(!m.deadlocked);
        prop_assert!(m.packets_ejected > 0);
    }
}
