//! Dense vs event-driven stepping equivalence: the engine's event mode
//! (active-set worklists + idle fast-forward, `SimConfig::event_driven`)
//! must be a pure scheduling optimization. Every metric — including the
//! full latency histogram and the optional per-endpoint/per-channel
//! vectors — must be bit-identical to the dense loop, across partition
//! counts {1, 2, 4} × worker counts {1, 2, 4}, on both evaluated topology
//! families, in both the open-loop and the closed-loop (collective
//! workload) schedules. The only permitted divergence is the stepping
//! accounting itself: dense runs report `skipped_cycles == 0`, event runs
//! split the same `cycles_run` into busy + skipped.

use wsdf::exec::BspPool;
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::{Metrics, SimConfig};
use wsdf::topo::{SlParams, SwParams};
use wsdf::{Bench, PatternSpec, Session, Workload, WorkloadUnits};

fn families() -> Vec<(&'static str, Bench)> {
    vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(1),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal),
        ),
    ]
}

fn cfg(parts: usize, event: bool) -> SimConfig {
    SimConfig {
        warmup_cycles: 150,
        measure_cycles: 300,
        drain_cycles: 150,
        partitions: parts,
        per_endpoint_stats: true,
        per_channel_stats: true,
        event_driven: event,
        ..Default::default()
    }
}

/// Every observable metric must match; only the busy/skipped split may
/// differ, and it must satisfy its own invariants on both sides.
fn assert_equiv(dense: &Metrics, event: &Metrics, tag: &str) {
    assert_eq!(dense.cycles_run, event.cycles_run, "{tag}: cycles_run");
    assert_eq!(
        dense.measure_cycles, event.measure_cycles,
        "{tag}: measure_cycles"
    );
    assert_eq!(dense.endpoints, event.endpoints, "{tag}: endpoints");
    assert_eq!(
        dense.packets_created, event.packets_created,
        "{tag}: packets_created"
    );
    assert_eq!(
        dense.packets_ejected, event.packets_ejected,
        "{tag}: packets_ejected"
    );
    assert_eq!(dense.latency_sum, event.latency_sum, "{tag}: latency_sum");
    assert_eq!(dense.latency_max, event.latency_max, "{tag}: latency_max");
    assert_eq!(
        dense.latency_hist, event.latency_hist,
        "{tag}: latency_hist"
    );
    assert_eq!(
        dense.flits_injected_measured, event.flits_injected_measured,
        "{tag}: flits_injected_measured"
    );
    assert_eq!(
        dense.flits_ejected_measured, event.flits_ejected_measured,
        "{tag}: flits_ejected_measured"
    );
    assert_eq!(
        dense.class_hops.flit_hops, event.class_hops.flit_hops,
        "{tag}: class_hops"
    );
    assert_eq!(
        dense.ejected_per_endpoint, event.ejected_per_endpoint,
        "{tag}: ejected_per_endpoint"
    );
    assert_eq!(
        dense.flits_per_channel, event.flits_per_channel,
        "{tag}: flits_per_channel"
    );
    assert_eq!(dense.deadlocked, event.deadlocked, "{tag}: deadlocked");
    // Stepping accounting: the one permitted divergence.
    assert_eq!(dense.skipped_cycles, 0, "{tag}: dense must not skip");
    assert_eq!(
        dense.busy_cycles, dense.cycles_run,
        "{tag}: dense busy accounting"
    );
    assert_eq!(
        event.busy_cycles + event.skipped_cycles,
        event.cycles_run,
        "{tag}: event busy + skipped accounting"
    );
}

/// Open-loop runs: dense and event metrics are bit-identical over the
/// full partitions × workers matrix on both topology families, at a
/// light load (idle stretches to fast-forward), a moderate one
/// (back-to-back work, worklists nearly full), and a saturating one
/// (exercises the storm regime: dense fallback plus the post-storm wheel
/// reseed when the fabric finally drains).
#[test]
fn open_loop_event_matches_dense_across_matrix() {
    let pools: Vec<BspPool> = [1usize, 2, 4].into_iter().map(BspPool::new).collect();
    for (name, bench) in families() {
        for rate in [0.02f64, 0.25, 0.6] {
            let pattern = bench.pattern(PatternSpec::Uniform, rate);
            for parts in [1usize, 2, 4] {
                for pool in &pools {
                    let open_loop = |event: bool| {
                        Session::bench(&bench)
                            .sim(cfg(parts, event))
                            .pool(pool)
                            .metrics(pattern.as_ref())
                            .unwrap()
                            .report
                    };
                    let dense = open_loop(false);
                    let event = open_loop(true);
                    assert!(dense.packets_ejected > 0, "{name}: no traffic");
                    let tag = format!("{name} rate={rate} p={parts} w={}", pool.workers());
                    assert_equiv(&dense, &event, &tag);
                }
            }
        }
    }
}

/// At light open-loop load the event engine must actually fast-forward —
/// the optimization is observable through `skipped_cycles`, not just a
/// no-op flag.
#[test]
fn light_load_actually_skips_cycles() {
    let (_, bench) = families().remove(0);
    let pattern = bench.pattern(PatternSpec::Uniform, 0.005);
    let m = Session::bench(&bench)
        .sim(cfg(1, true))
        .metrics(pattern.as_ref())
        .unwrap()
        .report;
    assert!(
        m.skipped_cycles > 0,
        "no cycles skipped at near-zero load (busy={}, run={})",
        m.busy_cycles,
        m.cycles_run
    );
    assert_eq!(m.busy_cycles + m.skipped_cycles, m.cycles_run);
}

/// Closed-loop runs: the full `WorkloadReport` of a ring-allreduce — the
/// completion cycle above all — is bit-identical between dense and event
/// stepping over the same matrix. The stepping counters are compared by
/// their own invariants (they are the one designed difference).
#[test]
fn closed_loop_event_matches_dense_across_matrix() {
    let pools: Vec<BspPool> = [1usize, 2, 4].into_iter().map(BspPool::new).collect();
    for (name, bench) in families() {
        let participants: Vec<u32> = (0..bench.scope.num_chips())
            .map(|c| bench.scope.node_of(c, 0))
            .collect();
        let wl = Workload::ring_allreduce(&participants, 64);
        for parts in [1usize, 2, 4] {
            for pool in &pools {
                let run = |event: bool| {
                    Session::bench(&bench)
                        .sim(cfg(parts, event))
                        .pool(pool)
                        .workload(&wl, &WorkloadUnits::default())
                        .unwrap()
                        .report
                };
                let dense = run(false);
                let mut event = run(true);
                let tag = format!("{name}/{} p={parts} w={}", wl.name, pool.workers());
                assert!(dense.completion_cycles > 0, "{tag}: no completion");
                assert_eq!(dense.busy_cycles, dense.completion_cycles, "{tag}");
                assert_eq!(dense.skipped_cycles, 0, "{tag}");
                assert_eq!(
                    event.busy_cycles + event.skipped_cycles,
                    event.completion_cycles,
                    "{tag}"
                );
                // Everything else must match exactly: normalize the
                // stepping split and compare whole reports.
                event.busy_cycles = dense.busy_cycles;
                event.skipped_cycles = dense.skipped_cycles;
                assert_eq!(event, dense, "{tag}: report diverged");
            }
        }
    }
}
