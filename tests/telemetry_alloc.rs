//! Zero-cost-when-disabled: a run without telemetry must not allocate
//! for it.
//!
//! A counting `#[global_allocator]` wraps the system allocator (this
//! test binary holds exactly one test, so the counter sees only this
//! test's allocations — including those made on BSP worker threads).
//! Telemetry state is allocated solely by `Simulation::attach_trace`,
//! so an untraced run's allocation count must be *exactly* reproducible
//! run over run — any telemetry residue (lazily grown buffers, leaked
//! channel state) would break the equality — while the identical traced
//! run must allocate strictly more (proving the counter actually sees
//! telemetry's buffers and writer machinery).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::SimConfig;
use wsdf::topo::SlParams;
use wsdf::{Bench, PatternSpec, Session, TraceConfig};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates directly to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_telemetry_allocates_nothing() {
    let bench = Bench::switchless(
        &SlParams::radix16().with_wgroups(1),
        RouteMode::Minimal,
        VcScheme::Baseline,
    );
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 200,
        drain_cycles: 100,
        ..Default::default()
    };
    let pattern = bench.pattern(PatternSpec::Uniform, 0.2);
    let untraced = || {
        Session::bench(&bench)
            .sim(cfg.clone())
            .metrics(pattern.as_ref())
            .unwrap();
    };

    // Warm up one-time state (global pool threads, allocator pools),
    // then measure twice: with telemetry off the engine's allocation
    // pattern is fully deterministic, so any drift would be telemetry
    // (or other hidden) state smuggled into the disabled path.
    untraced();
    let first = allocs_during(untraced);
    let second = allocs_during(untraced);
    assert_eq!(
        first, second,
        "telemetry-disabled runs must have identical allocation counts"
    );

    // Sanity: the counter is live — the same run with telemetry enabled
    // allocates strictly more (per-partition buffers, writer thread,
    // JSONL serialization).
    let traced = allocs_during(|| {
        Session::bench(&bench)
            .sim(cfg.clone())
            .trace(TraceConfig {
                stride: 64,
                ..TraceConfig::default()
            })
            .metrics(pattern.as_ref())
            .unwrap();
    });
    assert!(
        traced > first,
        "traced run should allocate more than untraced ({traced} vs {first})"
    );
}
