//! Resilience-subsystem invariants at the full-stack level.
//!
//! The acceptance bar for fault injection: every [`wsdf::Session::resilience`]
//! report field must be bit-identical across BSP partition counts
//! {1, 2, 4} × worker counts {1, 2, 4} on both evaluated topology
//! families, the zero-fault point must match the pristine sweep exactly,
//! and the detour discipline must survive saturation without deadlocking.

use wsdf::exec::BspPool;
use wsdf::routing::{PathVerdict, RouteMode, VcScheme};
use wsdf::topo::{FaultSet, FaultSpec, SlParams, SwParams};
use wsdf::{Bench, PatternSpec, ResilienceConfig, ResilienceReport, Session, SweepConfig};

fn families() -> Vec<(&'static str, Bench)> {
    vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(1),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal),
        ),
    ]
}

fn quick(partitions: usize) -> ResilienceConfig {
    let mut cfg = ResilienceConfig {
        fractions: vec![0.0, 0.15],
        collective_flits: 16,
        ..Default::default()
    }
    .scaled(0.08);
    cfg.sim.partitions = partitions;
    cfg
}

/// The headline determinism matrix: partitions {1,2,4} × workers {1,2,4},
/// both families, every report field bit-identical.
#[test]
fn resilience_reports_bit_identical_across_partitions_and_workers() {
    for (name, bench) in families() {
        let mut base: Option<ResilienceReport> = None;
        for parts in [1usize, 2, 4] {
            for workers in [1usize, 2, 4] {
                let pool = BspPool::new(workers);
                let r = Session::bench(&bench)
                    .pool(&pool)
                    .resilience(&quick(parts), PatternSpec::Uniform)
                    .unwrap()
                    .report;
                match &base {
                    None => base = Some(r),
                    Some(b) => assert_eq!(
                        &r, b,
                        "[{name}] p={parts} w={workers} diverged from p=1 w=1"
                    ),
                }
            }
        }
        let base = base.unwrap();
        assert!(base.points[0].completion_cycles > 0);
        assert!(
            base.points[1].dead_links > 0,
            "[{name}] 15% faults must kill links: {:?}",
            base.points[1]
        );
    }
}

/// The zero-fault point is the pristine path: identical to an ordinary
/// sweep at the same rate, on both families.
#[test]
fn zero_fault_point_matches_pristine_sweep_on_both_families() {
    for (name, bench) in families() {
        let cfg = quick(1);
        let pool = BspPool::new(1);
        let report = Session::bench(&bench)
            .pool(&pool)
            .resilience(&cfg, PatternSpec::Uniform)
            .unwrap()
            .report;
        let p0 = &report.points[0];
        let scfg = SweepConfig {
            sim: cfg.sim.clone(),
            ..Default::default()
        };
        let q = Session::bench(&bench)
            .pool(&pool)
            .sweep(&scfg, PatternSpec::Uniform, &[cfg.rate_chip])
            .unwrap()
            .report
            .pop()
            .unwrap();
        assert_eq!(p0.accepted_chip, q.accepted_chip, "[{name}]");
        assert_eq!(p0.latency, q.latency, "[{name}]");
        assert_eq!(p0.p50, q.p50, "[{name}]");
        assert_eq!(p0.p99, q.p99, "[{name}]");
        assert_eq!(p0.delivered, q.delivered, "[{name}]");
    }
}

/// Saturating a degraded fabric must congest, not deadlock: the detour
/// discipline (up*/down* over the live graph, up-phase VC 0 → down-phase
/// VC 1) keeps the channel dependency graph acyclic at any load.
#[test]
fn degraded_fabric_saturates_without_deadlock() {
    let (_, bench) = families().swap_remove(0);
    let fs = FaultSet::sample(
        bench.fabric.net(),
        &FaultSpec {
            link_fraction: 0.15,
            router_fraction: 0.08,
            ..Default::default()
        },
    );
    assert!(!fs.is_empty());
    let fb = bench.with_fault_set(&fs);
    let mut sim = wsdf::sim::SimConfig::default().scaled(0.1);
    sim.drain_cycles = 100;
    // Far past saturation for a degraded W-group.
    let pattern = fb.pattern(PatternSpec::Uniform, 0.8);
    let m = Session::bench(&fb)
        .sim(sim)
        .metrics(pattern.as_ref())
        .expect("must not deadlock")
        .report;
    assert!(m.packets_ejected > 0);
    assert!(!m.deadlocked);
}

/// The detour oracle's verdicts agree with the reach map the patterns use:
/// a routable pair really walks, an unreachable one is flagged.
#[test]
fn verdicts_and_reach_map_agree_on_degraded_wgroup() {
    let (_, bench) = families().swap_remove(0);
    let fs = FaultSet::sample(
        bench.fabric.net(),
        &FaultSpec {
            router_fraction: 0.12,
            ..Default::default()
        },
    );
    let oracle = wsdf::routing::DetourOracle::build(bench.fabric.net(), fs.map());
    let reach = oracle.reach_map();
    let n = bench.endpoints();
    let mut unreachable = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            match oracle.verdict(s, d) {
                PathVerdict::Routed => assert!(reach.routable(s, d)),
                PathVerdict::Unreachable => {
                    assert!(!reach.routable(s, d));
                    unreachable += 1;
                }
            }
        }
    }
    assert_eq!(unreachable, reach.unreachable_pairs());
    assert!(unreachable > 0, "12% router faults must strand endpoints");
}
