//! Streaming-telemetry integration tests over the [`Session`] frontend.
//!
//! * **Bit-identity matrix.** The trace byte stream must be identical
//!   across partition counts {1, 2, 4} × worker counts {1, 4} ×
//!   dense/event-driven stepping — the same contract the summary report
//!   already carries, extended to the JSONL stream so trace files can be
//!   digest-pinned.
//! * **Reconciliation.** The `lat` stream is gated exactly like the
//!   summary report, so recomputing the latency aggregates from the
//!   trace must reproduce `Metrics::{packets_ejected, latency_sum,
//!   latency_max}` — on randomized topologies, rates and strides.

use wsdf::exec::BspPool;
use wsdf::json::{read, Value};
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::{SimConfig, SplitMix64};
use wsdf::topo::SlParams;
use wsdf::workload::tenancy::{ArrivalProcess, JobClass, Placement, ServingSpec};
use wsdf::{Bench, PatternSpec, Session, TraceConfig};

fn bench() -> Bench {
    Bench::switchless(
        &SlParams::radix16().with_wgroups(1),
        RouteMode::Minimal,
        VcScheme::Baseline,
    )
}

fn cfg(parts: usize, event: bool) -> SimConfig {
    SimConfig {
        warmup_cycles: 100,
        measure_cycles: 200,
        drain_cycles: 100,
        partitions: parts,
        event_driven: event,
        ..Default::default()
    }
}

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        stride: 64,
        ..TraceConfig::default()
    }
}

/// The open-loop trace stream is bit-identical across every partition
/// count × worker count × stepping mode combination.
#[test]
fn open_loop_trace_bit_identical_across_matrix() {
    let bench = bench();
    let pattern = bench.pattern(PatternSpec::Uniform, 0.2);
    let pools = [BspPool::new(1), BspPool::new(4)];
    let mut baseline: Option<(String, String)> = None;
    for parts in [1usize, 2, 4] {
        for pool in &pools {
            for event in [false, true] {
                let out = Session::bench(&bench)
                    .sim(cfg(parts, event))
                    .pool(pool)
                    .trace(trace_cfg())
                    .metrics(pattern.as_ref())
                    .unwrap();
                let t = out.trace.expect("trace was configured");
                let (jsonl, digest) = (t.jsonl.unwrap(), t.digest.unwrap());
                assert!(!jsonl.is_empty(), "trace stream should not be empty");
                let tag = format!("parts={parts} workers={} event={event}", pool.workers());
                match &baseline {
                    None => baseline = Some((jsonl, digest)),
                    Some((want_jsonl, want_digest)) => {
                        assert_eq!(&digest, want_digest, "{tag}: trace digest diverged");
                        assert_eq!(&jsonl, want_jsonl, "{tag}: trace bytes diverged");
                    }
                }
            }
        }
    }
}

/// The serving trace (job admit/retire stream included) is bit-identical
/// across partition counts, and every admitted job retires.
#[test]
fn serving_trace_bit_identical_across_partitions() {
    let bench = bench();
    let spec = ServingSpec {
        seed: 0x7E1E,
        arrivals: ArrivalProcess::Trace {
            cycles: vec![0, 100, 200, 300],
        },
        max_jobs: 8,
        classes: vec![
            JobClass {
                name: "train".into(),
                collective: "ring_allreduce".into(),
                flits: 8,
                microbatches: 1,
                participants: 6,
                placement: Placement::Block,
                slo_cycles: 40_000,
                weight: 2.0,
            },
            JobClass {
                name: "shard".into(),
                collective: "all_to_all".into(),
                flits: 4,
                microbatches: 1,
                participants: 4,
                placement: Placement::Overlapping,
                slo_cycles: 20_000,
                weight: 1.0,
            },
        ],
    };
    let mut baseline: Option<String> = None;
    for parts in [1usize, 2, 4] {
        let out = Session::bench(&bench)
            .sim(cfg(parts, false))
            .trace(trace_cfg())
            .serving(&spec)
            .unwrap();
        let jsonl = out.trace.unwrap().jsonl.unwrap();
        let admits = jsonl
            .lines()
            .filter(|l| l.starts_with("{\"t\": \"admit\""))
            .count();
        let retires = jsonl
            .lines()
            .filter(|l| l.starts_with("{\"t\": \"retire\""))
            .count();
        assert_eq!(admits, 4, "parts={parts}: one admit per arrival");
        assert_eq!(retires, 4, "parts={parts}: every job retires");
        match &baseline {
            None => baseline = Some(jsonl),
            Some(want) => assert_eq!(&jsonl, want, "parts={parts}: serving trace diverged"),
        }
    }
}

/// Randomized reconciliation: latency aggregates recomputed from the
/// trace stream equal the summary report's, case after case.
#[test]
fn lat_stream_reconciles_with_summary_metrics() {
    const CASES: usize = 8;
    let mut rng = SplitMix64::new(0x7E1E_ACE5);
    for case in 0..CASES {
        // Random small-but-valid switch-less fabric.
        let (params, rate, stride) = loop {
            let m = 2 + rng.next_below(3) as u32; // 2..=4
            let a = 1 + rng.next_below(2) as u32; // 1..=2
            let b = 1 + rng.next_below(2) as u32; // 1..=2
            let mut p = SlParams {
                a,
                b,
                m,
                chiplet: 1,
                wgroups: 1,
                mesh_width: 1,
                nodes_per_chip: 1.0,
            };
            if p.ab() > p.k() {
                continue;
            }
            p.wgroups = 1 + (rng.next_below(3) as u32 % p.max_wgroups().min(3));
            if p.validate().is_err() {
                continue;
            }
            let rate = 0.05 + 0.3 * (rng.next_below(1000) as f64 / 1000.0);
            let stride = [32u64, 64, 128, 256][rng.next_below(4) as usize];
            break (p, rate, stride);
        };
        let bench = Bench::switchless(&params, RouteMode::Minimal, VcScheme::Baseline);
        let pattern = bench.pattern(PatternSpec::Uniform, rate);
        let parts = 1 + rng.next_below(3) as usize;
        let out = Session::bench(&bench)
            .sim(cfg(parts, rng.next_below(2) == 1))
            .trace(TraceConfig {
                stride,
                ..TraceConfig::default()
            })
            .metrics(pattern.as_ref())
            .unwrap();
        let m = &out.report;
        let jsonl = out.trace.as_ref().unwrap().jsonl.as_ref().unwrap();
        let (mut n, mut sum, mut max) = (0u64, 0u64, 0u64);
        for line in jsonl.lines().filter(|l| l.starts_with("{\"t\": \"lat\"")) {
            let v = Value::parse(line).unwrap();
            let field = |k: &str| v.get(k).and_then(read::as_u64).unwrap();
            n += field("n");
            sum += field("sum");
            max = max.max(field("max"));
        }
        let tag = format!("case {case}: {params:?} rate={rate} stride={stride} parts={parts}");
        assert_eq!(n, m.packets_ejected, "{tag}: Σ lat.n");
        assert_eq!(sum, m.latency_sum, "{tag}: Σ lat.sum");
        assert_eq!(max, m.latency_max, "{tag}: max lat.max");
    }
}
