//! Malformed-scenario corpus: every file under `scenarios/invalid/`
//! must fail with *exactly* the error pinned in its `expected.json`
//! manifest. Error paths like `scenario.traffic.rate: expected number in
//! (0,1]` are part of the frontend's public contract — scripts and CI
//! match on them — so any wording drift is a breaking change and must
//! show up here.
//!
//! Most entries fail at parse; a few (cyclic DAG, sparse partition map)
//! are only detectable against a built fabric and fail at run time. The
//! harness accepts either: parse, and if that unexpectedly succeeds,
//! run — one of the two must produce the pinned error.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use wsdf::json::{read, Value};
use wsdf::scenario::{self, Scenario};

const MANIFEST: &str = "expected.json";

fn invalid_dir() -> PathBuf {
    scenario::corpus_dir().join("invalid")
}

/// Parse the `file → expected error` manifest.
fn manifest(dir: &Path) -> BTreeMap<String, String> {
    let path = dir.join(MANIFEST);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let v = Value::parse(&text).unwrap_or_else(|e| panic!("{MANIFEST}: {e}"));
    let members = read::obj(&v, "expected").unwrap_or_else(|e| panic!("{MANIFEST}: {e}"));
    members
        .iter()
        .map(|(file, err)| {
            let err = err
                .as_str()
                .unwrap_or_else(|| panic!("{MANIFEST}: {file}: expected string"));
            (file.clone(), err.to_string())
        })
        .collect()
}

/// The manifest and the directory list exactly the same files — no
/// orphan fixture, no dangling manifest entry.
#[test]
fn manifest_matches_the_fixture_files() {
    let dir = invalid_dir();
    let expected = manifest(&dir);
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| {
            entry
                .expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|name| name.ends_with(".json") && name != MANIFEST)
        .collect();
    files.sort();
    let listed: Vec<String> = expected.keys().cloned().collect();
    assert_eq!(files, listed, "scenarios/invalid/ vs {MANIFEST} mismatch");
    assert!(
        expected.len() >= 15,
        "malformed corpus shrank to {} files; keep it at 15+",
        expected.len()
    );
}

/// Every malformed scenario fails with exactly its pinned error string.
#[test]
fn every_invalid_scenario_fails_with_its_pinned_error() {
    let dir = invalid_dir();
    for (file, want) in manifest(&dir) {
        let path = dir.join(&file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let got = match Scenario::from_json_str(&text) {
            Err(e) => e,
            Ok(s) => s
                .run()
                .err()
                .unwrap_or_else(|| panic!("{file}: parsed and ran cleanly, expected \"{want}\"")),
        };
        assert_eq!(got, want, "{file}: error drift");
    }
}
