//! Golden-corpus regression fleet over the committed `scenarios/` files.
//!
//! Every committed scenario must parse, run, and reproduce the digest
//! pinned in `scenarios/digests.json` — and keep reproducing it
//! bit-for-bit under any partition count and worker-thread count. A
//! digest is the FNV-64 hash of the complete report JSON, so digest
//! equality *is* bit-identity of the report.
//!
//! When a legitimate behaviour change moves a digest, regenerate the
//! table with `repro corpus --update` and commit the diff alongside the
//! change that caused it.

use std::collections::{BTreeMap, BTreeSet};
use wsdf::exec::BspPool;
use wsdf::scenario::{
    self, CorpusEntry, PartitionerKind, Partitioning, RunSpec, Scenario, Stepping, Topology,
};
use wsdf::{PatternSpec, Session};

/// Load the committed corpus and its pinned digest table.
fn corpus() -> (Vec<CorpusEntry>, BTreeMap<String, String>) {
    let dir = scenario::corpus_dir();
    let entries = scenario::load_corpus(&dir).unwrap_or_else(|e| panic!("corpus load failed: {e}"));
    assert!(!entries.is_empty(), "empty corpus at {}", dir.display());
    let digests: BTreeMap<String, String> = scenario::read_digests(&dir)
        .unwrap_or_else(|e| panic!("digest table load failed: {e}"))
        .into_iter()
        .collect();
    (entries, digests)
}

/// The digest table and the scenario files are in 1:1 correspondence
/// (telemetry scenarios pin a second `<file>::trace` entry for their
/// trace stream), and every scenario, run exactly as committed (its own
/// partitioning, stepping, fault and telemetry sections), reproduces
/// its pinned digest(s).
#[test]
fn every_committed_scenario_reproduces_its_pinned_digest() {
    let (entries, digests) = corpus();
    let files: BTreeSet<&str> = entries.iter().map(|e| e.file.as_str()).collect();
    for file in digests.keys() {
        let base = file.strip_suffix("::trace").unwrap_or(file);
        assert!(
            files.contains(base),
            "digests.json pins {file}, which is not in the corpus"
        );
    }
    for e in &entries {
        let want = digests.get(&e.file).unwrap_or_else(|| {
            panic!("{}: no pinned digest — run `repro corpus --update`", e.file)
        });
        // Session captures the trace stream when the scenario asks for
        // one; the report (and its digest) must not depend on that.
        let out = Session::scenario(&e.scenario)
            .run()
            .unwrap_or_else(|err| panic!("{}: {err}", e.file));
        assert_eq!(out.report.kind(), e.scenario.run.kind(), "{}", e.file);
        assert_eq!(
            &out.report.digest(),
            want,
            "{}: digest drift — if intentional, run `repro corpus --update`",
            e.file
        );
        let trace_key = format!("{}::trace", e.file);
        match (e.scenario.telemetry.is_some(), digests.get(&trace_key)) {
            (false, None) => {}
            (false, Some(_)) => panic!("{trace_key} pinned but scenario has no telemetry"),
            (true, None) => panic!("{}: telemetry scenario with no pinned {trace_key}", e.file),
            (true, Some(want_trace)) => {
                let got = out
                    .trace
                    .and_then(|t| t.digest)
                    .unwrap_or_else(|| panic!("{}: telemetry run produced no trace", e.file));
                assert_eq!(
                    &got, want_trace,
                    "{trace_key}: trace digest drift — if intentional, run `repro corpus --update`"
                );
            }
        }
    }
}

/// The determinism contract: the full report (not just headline numbers)
/// is bit-identical across partitions {1, 4} × workers {1, 4}, and every
/// combination still lands on the pinned digest.
#[test]
fn reports_are_bit_identical_across_partitions_and_workers() {
    let (entries, digests) = corpus();
    for e in &entries {
        let want = &digests[&e.file];
        for &partitions in &[1u64, 4] {
            for &workers in &[1usize, 4] {
                let mut s = e.scenario.clone();
                s.partitioning = Partitioning::Auto {
                    partitions,
                    partitioner: PartitionerKind::Locality,
                };
                let pool = BspPool::new(workers);
                let out = s.run_on(&pool).unwrap_or_else(|err| {
                    panic!("{} (P={partitions}, W={workers}): {err}", e.file)
                });
                assert_eq!(
                    &out.digest(),
                    want,
                    "{}: report differs at P={partitions}, W={workers}",
                    e.file
                );
            }
        }
    }
}

/// Corpus coverage: every run kind appears for both Dragonfly families,
/// the flat reference fabrics are represented, and both partitioners,
/// both stepping modes, an explicit partition map, and faulted as well
/// as pristine scenarios all appear somewhere in the fleet.
#[test]
fn corpus_covers_the_run_kind_by_family_matrix() {
    let (entries, _) = corpus();
    let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut partitioners: BTreeSet<&str> = BTreeSet::new();
    let mut steppings: BTreeSet<&str> = BTreeSet::new();
    let (mut faulted, mut pristine) = (0usize, 0usize);
    for e in &entries {
        seen.insert((e.scenario.topology.family(), e.scenario.run.kind()));
        partitioners.insert(match &e.scenario.partitioning {
            Partitioning::Auto { partitioner, .. } => partitioner.name(),
            Partitioning::Map(_) => "map",
        });
        steppings.insert(e.scenario.stepping.name());
        if e.scenario.faults.is_some() || e.scenario.run.kind() == "resilience" {
            faulted += 1;
        } else {
            pristine += 1;
        }
    }
    for family in ["switchless", "switchbased"] {
        for kind in [
            "open_loop",
            "adaptive",
            "closed_loop",
            "resilience",
            "serving",
        ] {
            assert!(
                seen.contains(&(family, kind)),
                "corpus lacks a {family} {kind} scenario"
            );
        }
    }
    // Flat reference fabrics (fig. 10-style comparisons) ride along.
    assert!(seen.contains(&("mesh", "adaptive")), "no mesh scenario");
    assert!(seen.contains(&("switch", "adaptive")), "no switch scenario");
    for p in ["locality", "blocks", "map"] {
        assert!(partitioners.contains(p), "no {p}-partitioned scenario");
    }
    for s in ["event", "dense"] {
        assert!(steppings.contains(s), "no {s}-stepped scenario");
    }
    assert!(
        faulted >= 2,
        "corpus needs faulted scenarios (found {faulted})"
    );
    assert!(
        pristine >= 2,
        "corpus needs pristine scenarios (found {pristine})"
    );
}

/// Digest sensitivity: mutating any behavioural scenario field produces
/// a different digest, so the pinned table really does pin the whole
/// configuration, not just the headline shape. (Partitioning and worker
/// count are deliberately *insensitive* — covered above.)
#[test]
fn mutating_scenario_fields_changes_the_digest() {
    let (entries, digests) = corpus();
    // The cheapest committed scenario: a 16-router mesh open-loop sweep.
    let base = &entries
        .iter()
        .find(|e| e.file == "mesh_partition_map.json")
        .expect("mesh_partition_map.json in corpus")
        .scenario;
    let pinned = digests["mesh_partition_map.json"].clone();
    let digest_of = |mutate: &dyn Fn(&mut Scenario)| {
        let mut s = base.clone();
        mutate(&mut s);
        s.run()
            .unwrap_or_else(|e| panic!("mutant run failed: {e}"))
            .digest()
    };
    type Mutant<'a> = (&'a str, &'a dyn Fn(&mut Scenario));
    let mutants: &[Mutant] = &[
        ("sim.measure_cycles", &|s| s.sim.measure_cycles -= 100),
        ("traffic.pattern", &|s| {
            s.traffic.as_mut().unwrap().pattern = PatternSpec::Uniform
        }),
        ("run.rates_chip", &|s| match &mut s.run {
            RunSpec::OpenLoop {
                rates_chip: Some(r),
            } => r[0] = 1.2,
            _ => unreachable!("base scenario is a fixed-grid open-loop sweep"),
        }),
        ("topology.chiplet", &|s| {
            s.topology = Topology::Mesh {
                m: 4,
                chiplet: 4,
                width: 1,
            }
        }),
        ("stepping", &|s| s.stepping = Stepping::Dense),
    ];
    for (field, mutate) in mutants {
        assert_ne!(
            digest_of(*mutate),
            pinned,
            "mutating {field} did not change the digest"
        );
    }
    // The RNG seed only matters under stochastic traffic — bit_transpose
    // is a fixed permutation — so probe it on the uniform-traffic mesh
    // scenario instead.
    let uniform = &entries
        .iter()
        .find(|e| e.file == "mesh_fig10_adaptive.json")
        .expect("mesh_fig10_adaptive.json in corpus")
        .scenario;
    let mut s = uniform.clone();
    s.sim.seed += 1;
    assert_ne!(
        s.run().expect("seed mutant").digest(),
        digests["mesh_fig10_adaptive.json"],
        "mutating sim.seed did not change the digest"
    );
}
