//! Closed-loop collective invariants: completion times are a property of
//! the network, not of the BSP execution schedule.
//!
//! The acceptance bar for the workload subsystem: allreduce and
//! all-to-all completion cycles (and every other report field) must be
//! bit-identical across partition counts {1, 2, 4} *and* worker counts
//! {1, 2, 4} on both evaluated topology families, with every run
//! terminating at quiescence rather than a fixed cycle budget.

use wsdf::exec::BspPool;
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::SimConfig;
use wsdf::topo::{SlParams, SwParams};
use wsdf::{Bench, Session, Workload, WorkloadReport, WorkloadUnits};

fn run_workload(bench: &Bench, cfg: SimConfig, wl: &Workload) -> WorkloadReport {
    Session::bench(bench)
        .sim(cfg)
        .workload(wl, &WorkloadUnits::default())
        .unwrap()
        .report
}

/// One participant per chip, in chip order (32 chips on both fabrics).
fn chip_participants(bench: &Bench) -> Vec<u32> {
    (0..bench.scope.num_chips())
        .map(|c| bench.scope.node_of(c, 0))
        .collect()
}

fn families() -> Vec<(&'static str, Bench)> {
    vec![
        (
            "switchless",
            Bench::switchless(
                &SlParams::radix16().with_wgroups(1),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
        ),
        (
            "switchbased",
            Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal),
        ),
    ]
}

fn acceptance_workloads(participants: &[u32]) -> Vec<Workload> {
    vec![
        Workload::ring_allreduce(participants, 64),
        Workload::all_to_all(participants, 4),
    ]
}

fn cfg(partitions: usize) -> SimConfig {
    SimConfig {
        partitions,
        ..Default::default()
    }
}

/// Allreduce + all-to-all completion cycles (and the full report) are
/// bit-identical across partitions {1, 2, 4} on both topology families.
#[test]
fn collective_reports_bit_identical_across_partitions() {
    for (name, bench) in families() {
        let participants = chip_participants(&bench);
        for wl in acceptance_workloads(&participants) {
            let run = |parts: usize| -> WorkloadReport { run_workload(&bench, cfg(parts), &wl) };
            let base = run(1);
            assert!(base.completion_cycles > 0, "{name}/{}", wl.name);
            assert_eq!(base.flits, wl.total_flits());
            for parts in [2usize, 4] {
                let r = run(parts);
                assert_eq!(r, base, "{name}/{} partitions={parts}", wl.name);
            }
        }
    }
}

/// The executor is invisible too: explicit pools of 1, 2, and 4 workers
/// reproduce the same reports at a fixed partitioning.
#[test]
fn collective_reports_bit_identical_across_workers() {
    for (name, bench) in families() {
        let participants = chip_participants(&bench);
        let wl = Workload::ring_allreduce(&participants, 32);
        let run = |workers: usize| -> WorkloadReport {
            let pool = BspPool::new(workers);
            Session::bench(&bench)
                .sim(cfg(4))
                .pool(&pool)
                .workload(&wl, &WorkloadUnits::default())
                .unwrap()
                .report
        };
        let base = run(1);
        for workers in [2usize, 4] {
            assert_eq!(run(workers), base, "{name} workers={workers}");
        }
    }
}

/// Quiescence semantics: the run ends when the collective does — no fixed
/// cycle budget — and the whole run is measured.
#[test]
fn collective_runs_end_at_quiescence() {
    for (_, bench) in families() {
        let participants = chip_participants(&bench);
        let wl = Workload::broadcast(&participants, 32);
        let r = run_workload(&bench, cfg(1), &wl);
        // Every packet is a latency sample (32-flit messages segment into
        // 8 packets of 4 flits); completion bounds every sample.
        assert_eq!(r.latency.count, r.messages * 8);
        assert!(r.latency.max <= r.completion_cycles as f64);
        // Phases tile the run: the last phase ends at completion.
        let end = r.phases.iter().map(|p| p.end_cycle).max().unwrap();
        assert_eq!(end, r.completion_cycles);
    }
}

/// Dependency semantics on a real fabric: a pipeline's stage boundaries
/// start strictly later the deeper the stage, and ring-allreduce's
/// allgather cannot begin before some reduce-scatter chain finishes.
#[test]
fn phase_ordering_follows_dependencies() {
    let bench = &families()[0].1;
    let participants = chip_participants(bench);

    let stages: Vec<u32> = participants.iter().copied().take(6).collect();
    let pipe = Workload::pipeline(&stages, 4, 16);
    let r = run_workload(bench, cfg(1), &pipe);
    for w in r.phases.windows(2) {
        assert!(
            w[1].start_cycle > w[0].start_cycle,
            "stage fill must ramp: {:?}",
            r.phases
        );
    }

    let ar = Workload::ring_allreduce(&participants, 64);
    let r = run_workload(bench, cfg(1), &ar);
    let rs = &r.phases[0];
    let ag = &r.phases[1];
    assert!(ag.start_cycle > rs.start_cycle);
    assert_eq!(ag.end_cycle, r.completion_cycles);
}
