//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation, plus the closed-loop collective and fault-injection
//! resilience suites, and runs declarative scenario files.
//!
//! ```text
//! repro <target> [--smoke|--full] [--json DIR]
//! repro scenario <file> [--check] [--json DIR]
//! repro corpus [--update] [--json DIR]
//! repro trace [--smoke] [--json DIR]
//! repro --list
//! ```
//!
//! `--list` enumerates every target with a one-line description (the same
//! listing an unknown target prints). Text goes to stdout; with
//! `--json DIR`, figures and reports are also serialized to
//! `DIR/<target-id>.json`. The target table itself lives in
//! [`wsdf_bench::targets`], shared with the coverage test that keeps every
//! registered target runnable.

use std::io::Write;
use wsdf_bench::scenario::{run_corpus, run_scenario_file};
use wsdf_bench::targets::{listing, run_target, suggest};
use wsdf_bench::trace::run_trace_smoke;
use wsdf_bench::Effort;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut positionals: Vec<String> = Vec::new();
    let mut effort = Effort::Standard;
    let mut json_dir: Option<String> = None;
    let mut check = false;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print!("{}", listing());
                return;
            }
            "--smoke" => effort = Effort::Smoke,
            "--full" => effort = Effort::Full,
            "--check" => check = true,
            "--update" => update = true,
            "--json" => match it.next() {
                Some(d) => json_dir = Some(d.clone()),
                None => {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
            t => positionals.push(t.to_string()),
        }
    }
    let Some(target) = positionals.first().cloned() else {
        usage();
        std::process::exit(2);
    };
    if check && target != "scenario" {
        eprintln!("--check only applies to 'repro scenario <file>'");
        std::process::exit(2);
    }
    if update && target != "corpus" {
        eprintln!("--update only applies to 'repro corpus'");
        std::process::exit(2);
    }

    // Build the process-wide BSP executor up front: every simulation
    // below reuses these workers instead of creating threads.
    let pool = wsdf::exec::global_pool();
    eprintln!("repro: BSP executor with {} worker(s)", pool.workers());

    // Parameterized targets: scenario files pin their own simulation
    // windows, so the effort flags do not apply.
    match target.as_str() {
        "scenario" => {
            let [_, file] = positionals.as_slice() else {
                eprintln!("usage: repro scenario <file> [--check] [--json DIR]");
                std::process::exit(2);
            };
            match run_scenario_file(file, check) {
                Ok(out) => {
                    print!("{}", out.text);
                    write_artifacts(&json_dir, &out.json);
                }
                Err(e) => {
                    eprintln!("scenario failed: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        "corpus" => {
            if positionals.len() > 1 {
                eprintln!("usage: repro corpus [--update] [--json DIR]");
                std::process::exit(2);
            }
            match run_corpus(update) {
                Ok(run) => {
                    print!("{}", run.output.text);
                    write_artifacts(&json_dir, &run.output.json);
                    if run.failures > 0 {
                        eprintln!("corpus: {} digest failure(s)", run.failures);
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("corpus failed: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        "trace" => {
            if positionals.len() > 1 {
                eprintln!("usage: repro trace [--smoke] [--json DIR]");
                std::process::exit(2);
            }
            match run_trace_smoke(effort) {
                Ok(run) => {
                    print!("{}", run.output.text);
                    write_artifacts(&json_dir, &run.output.json);
                    // The raw JSONL streams go next to the JSON artifacts.
                    if let Some(dir) = &json_dir {
                        std::fs::create_dir_all(dir).expect("create json dir");
                        for (name, jsonl) in &run.streams {
                            let path = format!("{dir}/{name}");
                            std::fs::write(&path, jsonl).expect("write trace stream");
                            eprintln!("wrote {path}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("trace smoke failed: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        _ => {}
    }
    if positionals.len() > 1 {
        eprintln!("unexpected argument: {}", positionals[1]);
        std::process::exit(2);
    }

    // Stream aggregates member by member: each target's text and JSON
    // land as soon as it finishes, so a panic in a later member (e.g. a
    // partition-divergence assert) cannot swallow completed output.
    let members: Vec<String> = match wsdf_bench::targets::aggregate_members(&target) {
        Some(m) => m.iter().map(|s| s.to_string()).collect(),
        None => vec![target.clone()],
    };
    for name in &members {
        let Some(out) = run_target(name, effort) else {
            eprintln!("unknown target: {name}");
            if let Some(s) = suggest(name) {
                eprintln!("did you mean '{s}'?");
            }
            eprintln!();
            eprint!("{}", listing());
            std::process::exit(2);
        };
        print!("{}", out.text);
        if let Some(dir) = &json_dir {
            for (id, json) in &out.json {
                write_json(dir, id, json);
            }
        }
    }
}

fn write_artifacts(json_dir: &Option<String>, artifacts: &[(String, String)]) {
    if let Some(dir) = json_dir {
        for (id, json) in artifacts {
            write_json(dir, id, json);
        }
    }
}

fn write_json(dir: &str, id: &str, json: &str) {
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{id}.json");
    let mut f = std::fs::File::create(&path).expect("create json file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {path}");
}

fn usage() {
    eprintln!(
        "usage: repro <target> [--smoke|--full] [--json DIR]  |  \
         repro scenario <file> [--check]  |  repro corpus [--update]  |  \
         repro trace [--smoke]  |  repro --list\n"
    );
    eprint!("{}", listing());
}
