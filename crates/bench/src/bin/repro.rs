//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation, plus the closed-loop collective and fault-injection
//! resilience suites.
//!
//! ```text
//! repro <target> [--smoke|--full] [--json DIR]
//! repro --list
//! ```
//!
//! `--list` enumerates every target with a one-line description (the same
//! listing an unknown target prints). Text goes to stdout; with
//! `--json DIR`, figures and reports are also serialized to
//! `DIR/<target-id>.json`. The target table itself lives in
//! [`wsdf_bench::targets`], shared with the coverage test that keeps every
//! registered target runnable.

use std::io::Write;
use wsdf_bench::targets::{listing, run_target};
use wsdf_bench::Effort;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut target = None;
    let mut effort = Effort::Standard;
    let mut json_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print!("{}", listing());
                return;
            }
            "--smoke" => effort = Effort::Smoke,
            "--full" => effort = Effort::Full,
            "--json" => match it.next() {
                Some(d) => json_dir = Some(d.clone()),
                None => {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }
            },
            t if target.is_none() => target = Some(t.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(target) = target else {
        usage();
        std::process::exit(2);
    };

    // Build the process-wide BSP executor up front: every figure/table
    // simulation below reuses these workers instead of creating threads.
    let pool = wsdf::exec::global_pool();
    eprintln!("repro: BSP executor with {} worker(s)", pool.workers());

    // Stream aggregates member by member: each target's text and JSON
    // land as soon as it finishes, so a panic in a later member (e.g. a
    // partition-divergence assert) cannot swallow completed output.
    let members: Vec<String> = match wsdf_bench::targets::aggregate_members(&target) {
        Some(m) => m.iter().map(|s| s.to_string()).collect(),
        None => vec![target.clone()],
    };
    for name in &members {
        let Some(out) = run_target(name, effort) else {
            eprintln!("unknown target: {name}\n");
            eprint!("{}", listing());
            std::process::exit(2);
        };
        print!("{}", out.text);
        if let Some(dir) = &json_dir {
            for (id, json) in &out.json {
                write_json(dir, id, json);
            }
        }
    }
}

fn write_json(dir: &str, id: &str, json: &str) {
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{id}.json");
    let mut f = std::fs::File::create(&path).expect("create json file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {path}");
}

fn usage() {
    eprintln!("usage: repro <target> [--smoke|--full] [--json DIR]  |  repro --list\n");
    eprint!("{}", listing());
}
