//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation, plus the closed-loop collective suite.
//!
//! ```text
//! repro <target> [--smoke|--full] [--json DIR]
//! repro --list
//! ```
//!
//! `--list` enumerates every target with a one-line description (the same
//! listing an unknown target prints). Text goes to stdout; with
//! `--json DIR`, figures and reports are also serialized to
//! `DIR/<target-id>.json`.

use std::io::Write;
use wsdf_bench::{collectives, figures, tables, Effort};

/// Every runnable target with a one-line description (`--list`).
const TARGETS: &[(&str, &str)] = &[
    ("table1", "Table I: topology comparison (closed form)"),
    ("table2", "Table II: network cost model"),
    ("table3", "Table III: wafer/system scale parameters"),
    ("table4", "Table IV: simulation parameters"),
    ("equations", "Closed-form equation summary (diameter, cost)"),
    ("fig9", "Fig. 9: wafer layout and bandwidth budget"),
    (
        "fig10ab",
        "Fig. 10(a,b): intra-C-group latency, mesh vs switch",
    ),
    (
        "fig10cf",
        "Fig. 10(c-f): intra-W-group latency, four patterns",
    ),
    (
        "fig11",
        "Fig. 11: full radix-16 system, uniform + bit-reverse",
    ),
    ("fig12", "Fig. 12: radix-32 system latency"),
    ("fig13", "Fig. 13: adversarial patterns, minimal vs Valiant"),
    (
        "fig14",
        "Fig. 14: ring-allreduce collectives (open-loop sweeps)",
    ),
    ("fig15", "Fig. 15: energy per bit by channel class"),
    ("ablation", "VC-scheme ablation (Baseline vs Reduced)"),
    (
        "saturation",
        "Adaptive saturation knee search, headline benches",
    ),
    (
        "collectives",
        "Closed-loop collectives: completion cycles on both families, \
         verified over partitions {1,2,4}",
    ),
    ("tables", "All tables and closed-form outputs"),
    ("figures", "All simulated figures"),
    ("all", "Everything above"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut target = None;
    let mut effort = Effort::Standard;
    let mut json_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print!("{}", target_listing());
                return;
            }
            "--smoke" => effort = Effort::Smoke,
            "--full" => effort = Effort::Full,
            "--json" => match it.next() {
                Some(d) => json_dir = Some(d.clone()),
                None => {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }
            },
            t if target.is_none() => target = Some(t.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(target) = target else {
        usage();
        std::process::exit(2);
    };

    // Build the process-wide BSP executor up front: every figure/table
    // simulation below reuses these workers instead of creating threads.
    let pool = wsdf::exec::global_pool();
    eprintln!("repro: BSP executor with {} worker(s)", pool.workers());

    let run_figures = |which: &str| {
        let figs = match which {
            "fig10ab" => figures::fig10ab(effort),
            "fig10cf" => figures::fig10cf(effort),
            "fig11" => figures::fig11(effort),
            "fig12" => figures::fig12(effort),
            "fig13" => figures::fig13(effort),
            "fig14" => figures::fig14(effort),
            "ablation" => figures::vc_ablation(effort),
            _ => unreachable!(),
        };
        for f in &figs {
            println!("{}", f.render());
            if let Some(dir) = &json_dir {
                write_json(dir, &f.id, &f.to_json());
            }
        }
    };
    let run_fig15 = || {
        let groups = figures::fig15(effort);
        print!("{}", figures::render_fig15(&groups));
        if let Some(dir) = &json_dir {
            write_json(dir, "fig15", &figures::fig15_json(&groups));
        }
    };
    let run_saturation = || {
        let scan = figures::saturation_scan(effort);
        print!("{}", figures::render_saturation(&scan));
        if let Some(dir) = &json_dir {
            write_json(dir, "saturation", &figures::saturation_json(&scan));
        }
    };
    let run_collectives = || {
        let reports = collectives::collectives(effort);
        print!("{}", collectives::render_collectives(&reports));
        if let Some(dir) = &json_dir {
            write_json(dir, "collectives", &collectives::collectives_json(&reports));
        }
    };
    let print_tables = || {
        print!("{}", tables::table_i());
        print!("{}", tables::table_ii());
        print!("{}", tables::table_iii_text());
        print!("{}", tables::table_iv());
        print!("{}", tables::equations_summary());
        print!("{}", tables::fig9());
    };

    match target.as_str() {
        "table1" => print!("{}", tables::table_i()),
        "table2" => print!("{}", tables::table_ii()),
        "table3" => print!("{}", tables::table_iii_text()),
        "table4" => print!("{}", tables::table_iv()),
        "equations" => print!("{}", tables::equations_summary()),
        "fig9" => print!("{}", tables::fig9()),
        "tables" => print_tables(),
        "fig10ab" | "fig10cf" | "fig11" | "fig12" | "fig13" | "fig14" | "ablation" => {
            run_figures(&target)
        }
        "fig15" => run_fig15(),
        "saturation" => run_saturation(),
        "collectives" => run_collectives(),
        "figures" => {
            for which in [
                "fig10ab", "fig10cf", "fig11", "fig12", "fig13", "fig14", "ablation",
            ] {
                run_figures(which);
            }
            run_fig15();
        }
        "all" => {
            print_tables();
            for which in [
                "fig10ab", "fig10cf", "fig11", "fig12", "fig13", "fig14", "ablation",
            ] {
                run_figures(which);
            }
            run_fig15();
            run_saturation();
            run_collectives();
        }
        other => {
            eprintln!("unknown target: {other}\n");
            eprint!("{}", target_listing());
            std::process::exit(2);
        }
    }
}

/// The `--list` output: every target with its description.
fn target_listing() -> String {
    let mut s = String::from("targets:\n");
    for (name, desc) in TARGETS {
        s.push_str(&format!("  {name:<12} {desc}\n"));
    }
    s
}

fn write_json(dir: &str, id: &str, json: &str) {
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{id}.json");
    let mut f = std::fs::File::create(&path).expect("create json file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {path}");
}

fn usage() {
    eprintln!("usage: repro <target> [--smoke|--full] [--json DIR]  |  repro --list\n");
    eprint!("{}", target_listing());
}
