//! The target registry behind the `repro` binary.
//!
//! Every runnable target is one [`Target`] entry: name, description, and a
//! runner producing a [`TargetOutput`] (rendered text plus named JSON
//! artifacts). The binary, the `--list` output, the unknown-target error,
//! and the coverage test in `tests/targets.rs` all read this one table, so
//! a target cannot be registered without a working runner or vice versa.
//!
//! Aggregate targets (`tables`, `figures`, `all`) are member lists over
//! the same table ([`aggregate_members`]), not separate code paths.

use crate::{collectives, figures, partition_stats, resilience, serving, tables, Effort};

/// Output of one target run: human-readable text plus `(id, json)` pairs
/// for `--json DIR` serialization.
#[derive(Debug, Clone, Default)]
pub struct TargetOutput {
    /// Rendered text (what the binary prints to stdout).
    pub text: String,
    /// JSON artifacts, written to `DIR/<id>.json` under `--json`.
    pub json: Vec<(String, String)>,
}

impl TargetOutput {
    fn text(text: String) -> Self {
        TargetOutput {
            text,
            json: Vec::new(),
        }
    }

    fn merge(&mut self, other: TargetOutput) {
        self.text.push_str(&other.text);
        self.json.extend(other.json);
    }
}

/// Listing group for a leaf target: `--list` prints targets under these
/// headings instead of one flat block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Closed-form tables and parameter dumps.
    Tables,
    /// Paper figures (open-loop load-latency sweeps, energy).
    Figures,
    /// Saturation-seeking and other adaptive sweeps.
    Sweeps,
    /// Closed-loop collective and multi-tenant serving workloads.
    Workloads,
    /// Partition quality, fault injection, and other diagnostics.
    Diagnostics,
}

impl Category {
    /// The `--list` heading.
    pub fn heading(self) -> &'static str {
        match self {
            Category::Tables => "tables",
            Category::Figures => "figures",
            Category::Sweeps => "sweeps",
            Category::Workloads => "workloads",
            Category::Diagnostics => "diagnostics",
        }
    }
}

/// Heading display order in [`listing`].
const CATEGORIES: &[Category] = &[
    Category::Tables,
    Category::Figures,
    Category::Sweeps,
    Category::Workloads,
    Category::Diagnostics,
];

/// One runnable target.
pub struct Target {
    /// CLI name.
    pub name: &'static str,
    /// One-line description (`--list`).
    pub desc: &'static str,
    /// Listing group (`--list` heading).
    pub category: Category,
    /// Full-system scale (radix-16/32 at 41/145 groups): minutes-long
    /// even in release builds (fig11 alone is ~2.5 CPU-minutes at
    /// `--smoke`), so neither the dev-profile coverage test nor CI runs
    /// them; the coverage test asserts they resolve to runners, and they
    /// stay runnable on demand via `repro <target> --smoke`.
    pub full_scale: bool,
    /// The runner.
    pub run: fn(Effort) -> TargetOutput,
}

fn figs(figs: Vec<wsdf::Figure>) -> TargetOutput {
    let mut out = TargetOutput::default();
    for f in figs {
        out.text.push_str(&f.render());
        out.text.push('\n');
        out.json.push((f.id.clone(), f.to_json()));
    }
    out
}

/// Every *leaf* target (aggregates are separate; see
/// [`aggregate_members`]).
pub const TARGETS: &[Target] = &[
    Target {
        name: "table1",
        desc: "Table I: topology comparison (closed form)",
        category: Category::Tables,
        full_scale: false,
        run: |_| TargetOutput::text(tables::table_i()),
    },
    Target {
        name: "table2",
        desc: "Table II: network cost model",
        category: Category::Tables,
        full_scale: false,
        run: |_| TargetOutput::text(tables::table_ii()),
    },
    Target {
        name: "table3",
        desc: "Table III: wafer/system scale parameters",
        category: Category::Tables,
        full_scale: false,
        run: |_| TargetOutput::text(tables::table_iii_text()),
    },
    Target {
        name: "table4",
        desc: "Table IV: simulation parameters",
        category: Category::Tables,
        full_scale: false,
        run: |_| TargetOutput::text(tables::table_iv()),
    },
    Target {
        name: "equations",
        desc: "Closed-form equation summary (diameter, cost)",
        category: Category::Tables,
        full_scale: false,
        run: |_| TargetOutput::text(tables::equations_summary()),
    },
    Target {
        name: "fig9",
        desc: "Fig. 9: wafer layout and bandwidth budget",
        category: Category::Tables,
        full_scale: false,
        run: |_| TargetOutput::text(tables::fig9()),
    },
    Target {
        name: "fig10ab",
        desc: "Fig. 10(a,b): intra-C-group latency, mesh vs switch",
        category: Category::Figures,
        full_scale: false,
        run: |e| figs(figures::fig10ab(e)),
    },
    Target {
        name: "fig10cf",
        desc: "Fig. 10(c-f): intra-W-group latency, four patterns",
        category: Category::Figures,
        full_scale: false,
        run: |e| figs(figures::fig10cf(e)),
    },
    Target {
        name: "fig11",
        desc: "Fig. 11: full radix-16 system, uniform + bit-reverse",
        category: Category::Figures,
        full_scale: true,
        run: |e| figs(figures::fig11(e)),
    },
    Target {
        name: "fig12",
        desc: "Fig. 12: radix-32 system latency",
        category: Category::Figures,
        full_scale: true,
        run: |e| figs(figures::fig12(e)),
    },
    Target {
        name: "fig13",
        desc: "Fig. 13: adversarial patterns, minimal vs Valiant",
        category: Category::Figures,
        full_scale: true,
        run: |e| figs(figures::fig13(e)),
    },
    Target {
        name: "fig14",
        desc: "Fig. 14: ring-allreduce collectives (open-loop sweeps)",
        category: Category::Figures,
        full_scale: false,
        run: |e| figs(figures::fig14(e)),
    },
    Target {
        name: "fig15",
        desc: "Fig. 15: energy per bit by channel class",
        category: Category::Figures,
        full_scale: true,
        run: |e| {
            let groups = figures::fig15(e);
            TargetOutput {
                text: figures::render_fig15(&groups),
                json: vec![("fig15".into(), figures::fig15_json(&groups))],
            }
        },
    },
    Target {
        name: "ablation",
        desc: "VC-scheme ablation (Baseline vs Reduced)",
        category: Category::Figures,
        full_scale: false,
        run: |e| figs(figures::vc_ablation(e)),
    },
    Target {
        name: "saturation",
        desc: "Adaptive saturation knee search, headline benches",
        category: Category::Sweeps,
        full_scale: false,
        run: |e| {
            let scan = figures::saturation_scan(e);
            TargetOutput {
                text: figures::render_saturation(&scan),
                json: vec![("saturation".into(), figures::saturation_json(&scan))],
            }
        },
    },
    Target {
        name: "collectives",
        desc: "Closed-loop collectives: completion cycles on both families, \
               verified over partitions {1,2,4}",
        category: Category::Workloads,
        full_scale: false,
        run: |e| {
            let reports = collectives::collectives(e);
            TargetOutput {
                text: collectives::render_collectives(&reports),
                json: vec![(
                    "collectives".into(),
                    collectives::collectives_json(&reports),
                )],
            }
        },
    },
    Target {
        name: "serving",
        desc: "Multi-tenant serving: concurrent job mix on both families, \
               SLO percentiles + fairness, verified over partitions {1,2,4}",
        category: Category::Workloads,
        full_scale: false,
        run: |e| {
            let reports = serving::serving(e);
            TargetOutput {
                text: serving::render_serving(&reports),
                json: vec![("serving".into(), serving::serving_json(&reports))],
            }
        },
    },
    Target {
        name: "partition-stats",
        desc: "Partition quality: locality partitioner vs contiguous blocks \
               (cut channels, balance, boundary flit traffic)",
        category: Category::Diagnostics,
        full_scale: false,
        run: |e| {
            let reports = partition_stats::partition_stats_suite(e);
            TargetOutput {
                text: partition_stats::render_partition_stats(&reports),
                json: vec![(
                    "partition-stats".into(),
                    partition_stats::partition_stats_json(&reports),
                )],
            }
        },
    },
    Target {
        name: "resilience",
        desc: "Fault-injection degradation: throughput/latency/allreduce vs \
               fault fraction, verified over partitions {1,2,4}",
        category: Category::Diagnostics,
        full_scale: false,
        run: |e| {
            let reports = resilience::resilience(e);
            TargetOutput {
                text: resilience::render_resilience(&reports),
                json: vec![("resilience".into(), resilience::resilience_json(&reports))],
            }
        },
    },
];

/// Members of an aggregate target, or `None` if `name` is not an
/// aggregate. Member names always resolve in [`TARGETS`] (the coverage
/// test pins this down).
pub fn aggregate_members(name: &str) -> Option<&'static [&'static str]> {
    match name {
        "tables" => Some(&["table1", "table2", "table3", "table4", "equations", "fig9"]),
        "figures" => Some(&[
            "fig10ab", "fig10cf", "fig11", "fig12", "fig13", "fig14", "ablation", "fig15",
        ]),
        "all" => Some(&[
            "table1",
            "table2",
            "table3",
            "table4",
            "equations",
            "fig9",
            "fig10ab",
            "fig10cf",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "ablation",
            "fig15",
            "saturation",
            "collectives",
            "serving",
            "partition-stats",
            "resilience",
        ]),
        _ => None,
    }
}

/// The aggregates, with descriptions (for `--list`).
pub const AGGREGATES: &[(&str, &str)] = &[
    ("tables", "All tables and closed-form outputs"),
    ("figures", "All simulated figures"),
    ("all", "Everything above"),
];

/// Targets that take their own arguments, dispatched by the binary
/// outside the `fn(Effort)` table (see [`crate::scenario`]).
pub const PARAM_TARGETS: &[(&str, &str)] = &[
    (
        "scenario",
        "Run one scenario file: repro scenario <file> [--check]",
    ),
    (
        "corpus",
        "Golden scenario corpus digests: repro corpus [--update]",
    ),
    (
        "trace",
        "Streaming telemetry smoke: repro trace [--smoke] [--json DIR]",
    ),
];

/// Look up a leaf target by name.
pub fn find(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

/// Run a target (leaf or aggregate) at `effort`. `None` for unknown names.
pub fn run_target(name: &str, effort: Effort) -> Option<TargetOutput> {
    if let Some(members) = aggregate_members(name) {
        let mut out = TargetOutput::default();
        for m in members {
            out.merge(run_target(m, effort).expect("aggregate member must be registered"));
        }
        return Some(out);
    }
    find(name).map(|t| (t.run)(effort))
}

/// The `--list` output: every leaf target grouped under its
/// [`Category`] heading, then the aggregates and parameterized targets.
/// Multi-line descriptions continue indented under the name column.
pub fn listing() -> String {
    let mut s = String::from("targets:\n");
    for cat in CATEGORIES {
        s.push_str(&format!("\n{}:\n", cat.heading()));
        for t in TARGETS.iter().filter(|t| t.category == *cat) {
            s.push_str(&format!("  {:<16} {}\n", t.name, t.desc));
        }
    }
    s.push_str("\naggregates:\n");
    for (name, desc) in AGGREGATES {
        s.push_str(&format!("  {name:<16} {desc}\n"));
    }
    s.push_str("\nparameterized:\n");
    for (name, desc) in PARAM_TARGETS {
        s.push_str(&format!("  {name:<16} {desc}\n"));
    }
    s
}

/// Levenshtein edit distance; small inputs only (target names).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The nearest registered target name (leaf, aggregate, or
/// parameterized) within edit distance 2, for "did you mean" hints on
/// unknown targets. Ties resolve to the first registered name.
pub fn suggest(name: &str) -> Option<&'static str> {
    let candidates = TARGETS
        .iter()
        .map(|t| t.name)
        .chain(AGGREGATES.iter().map(|(n, _)| *n))
        .chain(PARAM_TARGETS.iter().map(|(n, _)| *n));
    candidates
        .map(|n| (edit_distance(name, n), n))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 2 && *d < name.len())
        .map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_is_levenshtein() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("fig11", "fig11"), 0);
        assert_eq!(edit_distance("fig11", "fig12"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("corpus", ""), 6);
    }

    #[test]
    fn listing_groups_targets_under_category_headings() {
        let s = listing();
        // Every heading appears exactly once, in declaration order.
        let mut pos = 0;
        for cat in CATEGORIES {
            let heading = format!("\n{}:\n", cat.heading());
            let at = s[pos..]
                .find(&heading)
                .unwrap_or_else(|| panic!("heading {:?} missing or out of order", cat.heading()));
            pos += at + heading.len();
            assert!(
                !s[pos..].contains(&heading),
                "heading {:?} repeated",
                cat.heading()
            );
        }
        // Each leaf target is listed inside its own category's section.
        let section_of = |name: &str| {
            let at = s.find(&format!("  {name} ")).unwrap_or_else(|| {
                panic!("target {name:?} missing from listing");
            });
            CATEGORIES
                .iter()
                .rfind(|c| s.find(&format!("\n{}:\n", c.heading())).unwrap() < at)
                .copied()
        };
        for t in TARGETS {
            assert_eq!(
                section_of(t.name),
                Some(t.category),
                "{} listed under the wrong heading",
                t.name
            );
        }
        // Aggregates and parameterized targets keep their own sections.
        assert!(s.contains("\naggregates:\n"));
        assert!(s.contains("\nparameterized:\n"));
        assert!(s.contains("  scenario "));
        assert!(s.contains("  corpus "));
    }

    #[test]
    fn unknown_targets_get_a_nearby_suggestion() {
        assert_eq!(suggest("scenaro"), Some("scenario"));
        assert_eq!(suggest("corpse"), Some("corpus"));
        assert_eq!(suggest("talbe1"), Some("table1"));
        assert_eq!(suggest("resilence"), Some("resilience"));
        assert_eq!(suggest("figures"), Some("figures"));
        // Nothing close: stay silent rather than mislead.
        assert_eq!(suggest("zzzzzzzz"), None);
        assert_eq!(suggest("x"), None);
    }
}
