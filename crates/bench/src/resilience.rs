//! The `repro resilience` target: fault-injection degradation curves on
//! both topology families.
//!
//! For each family (one radix-16 W-group switch-less, one radix-16 group
//! switch-based — the same fabrics as `repro collectives`) the suite runs
//! a [`wsdf::resilience_sweep`] over link/router fault fractions at BSP
//! partition counts {1, 2, 4} and *verifies the reports are
//! bit-identical* before emitting one. A mismatch is a determinism bug and
//! panics. The zero-fault point uses the pristine oracle, so the suite
//! doubles as a regression guard for the pristine sweep path.

use crate::collectives::family_benches;
use crate::Effort;
use wsdf::{PatternSpec, ResilienceConfig, ResilienceReport, Session};

/// Partition counts every fraction is verified over.
pub const PARTITIONS: &[usize] = &[1, 2, 4];

/// Link-fault fractions of the suite (router faults ride along at half the
/// link fraction — see [`ResilienceConfig::router_ratio`]).
pub const FRACTIONS: &[f64] = &[0.0, 0.05, 0.10, 0.20];

/// Suite configuration for one [`Effort`] level and partition count.
fn config(effort: Effort, partitions: usize) -> ResilienceConfig {
    let scale = effort.small();
    let mut cfg = ResilienceConfig {
        fractions: FRACTIONS.to_vec(),
        collective_flits: match effort {
            Effort::Smoke => 16,
            Effort::Standard => 128,
            Effort::Full => 512,
        },
        ..Default::default()
    }
    .scaled(scale);
    cfg.sim.partitions = partitions;
    cfg
}

/// Run the full suite: both families × [`FRACTIONS`], verified
/// bit-identical across [`PARTITIONS`], reported once per family.
///
/// # Panics
/// If any partition count changes any field of a report — that would be a
/// BSP determinism regression, not a measurement.
pub fn resilience(effort: Effort) -> Vec<ResilienceReport> {
    let mut out = Vec::new();
    for bench in family_benches() {
        let mut reports: Vec<ResilienceReport> = PARTITIONS
            .iter()
            .map(|&parts| {
                Session::bench(&bench)
                    .resilience(&config(effort, parts), PatternSpec::Uniform)
                    .unwrap()
                    .report
            })
            .collect();
        let base = reports.remove(0);
        for (r, &parts) in reports.iter().zip(&PARTITIONS[1..]) {
            assert_eq!(
                *r, base,
                "[{}] partitions={parts} diverged from partitions=1",
                bench.label
            );
        }
        out.push(base);
    }
    out
}

/// Render [`resilience`] results as text.
pub fn render_resilience(reports: &[ResilienceReport]) -> String {
    let mut s = format!(
        "== resilience — degradation under link/router faults (seeded, \
         bit-identical over partitions {PARTITIONS:?}) ==\n"
    );
    for r in reports {
        s.push_str(&r.render());
    }
    s
}

/// Serialize [`resilience`] results as a JSON array of
/// [`ResilienceReport::to_json`] objects.
pub fn resilience_json(reports: &[ResilienceReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(r.to_json().trim_end());
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_both_families_and_degrades_gracefully() {
        let reports = resilience(Effort::Smoke);
        assert_eq!(reports.len(), 2);
        let labels: Vec<&str> = reports.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"SW-less"));
        assert!(labels.contains(&"SW-based"));
        for r in &reports {
            assert_eq!(r.points.len(), FRACTIONS.len());
            // Pristine reference point first.
            assert_eq!(r.points[0].dead_links, 0);
            assert_eq!(r.points[0].unreachable_pairs, 0);
            assert!(r.points[0].completion_cycles > 0);
            // Non-zero fractions actually fail hardware on the switch-less
            // family (the switch-based group has 28 local links too).
            for p in &r.points[1..] {
                assert!(p.dead_links > 0 || p.dead_routers > 0, "{}: {p:?}", r.label);
                assert!(p.delivered > 0.0, "{}: {p:?}", r.label);
            }
        }
        // Round-trip through JSON.
        let json = resilience_json(&reports);
        let arr = wsdf::json::Value::parse(&json).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), reports.len());
    }
}
