//! # wsdf-bench — the reproduction harness
//!
//! One function per paper table/figure, shared between the `repro` binary
//! (full regeneration, text + JSON output) and the Criterion benches
//! (reduced-scale timing). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.

pub mod collectives;
pub mod figures;
pub mod partition_stats;
pub mod resilience;
pub mod scenario;
pub mod serving;
pub mod tables;
pub mod targets;
pub mod trace;

/// Scale factor presets for simulation windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Tiny windows for smoke tests and Criterion.
    Smoke,
    /// Default: full windows for small fabrics, reduced for the largest.
    Standard,
    /// Table-IV-exact windows everywhere (slow at radix-32 scale).
    Full,
}

impl Effort {
    /// Window scale for a small fabric (≤ a few thousand routers).
    pub fn small(self) -> f64 {
        match self {
            Effort::Smoke => 0.08,
            Effort::Standard => 1.0,
            Effort::Full => 1.0,
        }
    }

    /// Window scale for mid-size fabrics (radix-16 full system).
    pub fn medium(self) -> f64 {
        match self {
            Effort::Smoke => 0.06,
            Effort::Standard => 0.3,
            Effort::Full => 1.0,
        }
    }

    /// Window scale for the radix-32 full system.
    pub fn large(self) -> f64 {
        match self {
            Effort::Smoke => 0.03,
            Effort::Standard => 0.1,
            Effort::Full => 1.0,
        }
    }
}
