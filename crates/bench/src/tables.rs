//! Table regeneration: Tables I, II, III and IV plus the Fig. 9 layout.

use wsdf_analysis::equations::{HopLatency, SlAnalytic};
use wsdf_analysis::{table_iii, CGroupLayout, HOP_ENERGY_LR, HOP_ENERGY_ONCHIP, HOP_ENERGY_SR};
use wsdf_sim::SimConfig;

/// Table I: external communication and switching capability of datacenter
/// chips — published spec constants, printed for completeness.
pub fn table_i() -> String {
    let rows: [(&str, &str, u32, u32, f64); 6] = [
        ("Switching", "NVSwitch", 128, 100, 12.8),
        ("Switching", "Tofino2", 256, 50, 12.8),
        ("Switching", "Rosetta", 256, 50, 12.8),
        ("Computing", "H100", 36, 100, 3.6),
        ("Computing", "EPYC", 128, 32, 4.0),
        ("Computing", "DOJO D1", 576, 112, 63.0),
    ];
    let mut s = String::from(
        "== Table I — IO capability of datacenter chips ==\n\
         category   chip       lanes  rate(Gbps)  throughput(Tb/s)\n",
    );
    for (cat, chip, lanes, rate, tput) in rows {
        s.push_str(&format!(
            "{cat:<10} {chip:<10} {lanes:>5} {rate:>11} {tput:>17.1}\n"
        ));
        // Consistency check: lanes × rate ≈ throughput (D1 uses duplex
        // counting in the paper; allow 2×).
        let computed = lanes as f64 * rate as f64 / 1000.0;
        debug_assert!(
            (computed - tput).abs() / tput < 1.05,
            "{chip}: {computed} vs {tput}"
        );
    }
    s
}

/// Table II: hop cost comparison (latency ns, energy pJ/bit).
pub fn table_ii() -> String {
    let lat = HopLatency::default();
    format!(
        "== Table II — hop cost comparison ==\n\
         hop        medium         latency(ns)   energy(pJ/bit)\n\
         Hg         optical        {:>8.0}+ToF   {:>6.0}+\n\
         Hl         copper cable   {:>8.0}+ToF   {:>6.0}+\n\
         Hsr        RDL            {:>11.0}   {:>6.0}\n\
         Hon-chip   metal layer    {:>11.0}   {:>8.1}\n",
        lat.global,
        HOP_ENERGY_LR,
        lat.local,
        HOP_ENERGY_LR,
        lat.short_reach,
        HOP_ENERGY_SR,
        lat.on_chip,
        HOP_ENERGY_ONCHIP,
    )
}

/// Table III: the full topology comparison (computed; see
/// `wsdf_analysis::table3`).
pub fn table_iii_text() -> String {
    format!(
        "== Table III — topology comparison at Slingshot scale ==\n{}",
        wsdf_analysis::table3::render(&table_iii())
    )
}

/// Table IV: simulator default parameters.
pub fn table_iv() -> String {
    let c = SimConfig::default();
    format!(
        "== Table IV — simulation defaults ==\n\
         packet length          {} flits\n\
         input buffer size      {} flits\n\
         base link bandwidth    1 flit/cycle\n\
         short-reach delay      1 cycle\n\
         long-reach delay       8 cycles\n\
         simulation time        {} cycles after {} warm-up\n",
        c.packet_len, c.buffer_flits, c.measure_cycles, c.warmup_cycles
    )
}

/// Fig. 9: C-group layout feasibility summary.
pub fn fig9() -> String {
    let l = CGroupLayout::paper();
    format!(
        "== Fig. 9 — C-group wafer layout ==\n{}\nshoreline routable (1 RDL layer): {}\nconversion module bump-feasible: {}\n",
        l.summary(),
        l.shoreline_feasible(1),
        l.conv_module_feasible()
    )
}

/// Analytic summary (Eqs. 1–7) for the case-study configuration.
pub fn equations_summary() -> String {
    let s = SlAnalytic::case_study();
    format!(
        "== Analytical model (Sec. III-B, case study n=12 m=4 a=4 b=8) ==\n\
         k = {} ports, h = {} global ports, g = {} W-groups\n\
         N = {} chiplets (Eq. 1)\n\
         T_global < {:.2} flits/cycle/chip (Eq. 2)\n\
         T_local  < {:.2} flits/cycle/chip (Eq. 4)\n\
         T_cg     < {:.2} flits/cycle/chip (Eq. 5)\n\
         B_cg     = {:.0} flits/cycle (Eq. 6)\n\
         diameter = {} (Eq. 7)\n\
         balanced per Eq. (3): {}\n",
        s.k(),
        s.h(),
        s.g(),
        s.total_chiplets(),
        s.t_global(),
        s.t_local(),
        s.t_cgroup(),
        s.b_cgroup(),
        s.diameter_hops(),
        s.is_balanced(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_render() {
        for t in [
            super::table_i(),
            super::table_ii(),
            super::table_iii_text(),
            super::table_iv(),
            super::fig9(),
            super::equations_summary(),
        ] {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn table_iv_matches_paper() {
        let t = super::table_iv();
        assert!(t.contains("4 flits"));
        assert!(t.contains("32 flits"));
        assert!(t.contains("5000 warm-up"));
    }

    #[test]
    fn table_iii_headline() {
        let t = super::table_iii_text();
        assert!(t.contains("Switch-less Dragonfly"));
        assert!(t.contains("279040"));
    }
}
