//! Runners behind `repro scenario <file>` and `repro corpus`.
//!
//! `scenario` executes one declarative scenario file
//! ([`wsdf::scenario::Scenario`]) and prints its report plus the report
//! digest; with `--check` the digest is compared against the pinned
//! entry in the file's directory (`digests.json`).
//!
//! `corpus` runs the whole golden corpus (every `*.json` under
//! `scenarios/`, see [`wsdf::scenario::corpus_dir`]) and diffs the
//! resulting digests against the pinned table; `--update` rewrites the
//! table instead. The diff is also emitted as a JSON artifact
//! (`corpus-digests`) so CI can upload it on failure.
//!
//! Scenario files pin their own simulation windows, so these runners
//! ignore the `--smoke/--full` effort flags: a corpus digest is a pure
//! function of the scenario file.

use crate::targets::TargetOutput;
use std::path::Path;
use wsdf::scenario::{self, Scenario};
use wsdf::Session;

/// Outcome of a corpus run: the rendered output plus how many files
/// disagreed with the pinned digest table (0 = clean).
pub struct CorpusRun {
    /// Rendered text and the `corpus-digests` JSON artifact.
    pub output: TargetOutput,
    /// Mismatched + unpinned + stale-pinned entry count.
    pub failures: usize,
}

/// Run one scenario file; with `check`, verify its digest against the
/// pinned table next to it.
pub fn run_scenario_file(file: &str, check: bool) -> Result<TargetOutput, String> {
    let path = Path::new(file);
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {file}: {e}"))?;
    let s = Scenario::from_json_str(&text)?;
    // The Session frontend honors the scenario's optional `telemetry`
    // section (trace captured in memory); without one this is exactly
    // `Scenario::run`.
    let run = Session::scenario(&s).run()?;
    let outcome = run.report;
    let digest = outcome.digest();
    let mut out = TargetOutput::default();
    out.text.push_str(&outcome.render());
    out.text.push_str(&format!(
        "\nscenario {} [{}]: digest {digest}\n",
        s.name,
        outcome.kind()
    ));
    let trace_digest = run.trace.as_ref().and_then(|t| t.digest.clone());
    if let Some(t) = &run.trace {
        out.text.push_str(&format!(
            "telemetry: {} record(s), trace digest {}\n",
            t.jsonl.as_deref().map_or(0, |j| j.lines().count()),
            trace_digest.as_deref().unwrap_or("-"),
        ));
        if let Some(jsonl) = &t.jsonl {
            out.json.push((format!("{}-trace", s.name), jsonl.clone()));
        }
    }
    out.json.push((s.name.clone(), outcome.report_json()));
    if check {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.to_string());
        let pinned = scenario::read_digests(dir)?;
        match pinned.iter().find(|(f, _)| *f == name) {
            None => {
                return Err(format!(
                    "{name}: no pinned digest in {}",
                    dir.join(scenario::DIGESTS_FILE).display()
                ))
            }
            Some((_, want)) if *want != digest => {
                return Err(format!(
                    "{name}: digest mismatch: pinned {want}, got {digest}"
                ))
            }
            Some(_) => out.text.push_str("digest check: OK\n"),
        }
        if let Some(got) = &trace_digest {
            let tname = format!("{name}::trace");
            match pinned.iter().find(|(f, _)| *f == tname) {
                None => {
                    return Err(format!(
                        "{tname}: no pinned trace digest in {}",
                        dir.join(scenario::DIGESTS_FILE).display()
                    ))
                }
                Some((_, want)) if want != got => {
                    return Err(format!(
                        "{tname}: trace digest mismatch: pinned {want}, got {got}"
                    ))
                }
                Some(_) => out.text.push_str("trace digest check: OK\n"),
            }
        }
    }
    Ok(out)
}

/// Run the golden corpus. With `update`, rewrite the pinned digest
/// table; otherwise diff against it. `Err` is reserved for
/// infrastructure problems (unreadable directory, unparsable scenario);
/// digest disagreements are reported via [`CorpusRun::failures`] so the
/// diff artifact still reaches the caller.
pub fn run_corpus(update: bool) -> Result<CorpusRun, String> {
    let dir = scenario::corpus_dir();
    run_corpus_in(&dir, update)
}

/// [`run_corpus`] against an explicit directory (tests).
pub fn run_corpus_in(dir: &Path, update: bool) -> Result<CorpusRun, String> {
    let entries = scenario::load_corpus(dir)?;
    if entries.is_empty() {
        return Err(format!("no scenarios found in {}", dir.display()));
    }
    let mut out = TargetOutput::default();
    let mut got: Vec<(String, String)> = Vec::with_capacity(entries.len());
    for e in &entries {
        let run = Session::scenario(&e.scenario)
            .run()
            .map_err(|err| format!("{}: {err}", e.file))?;
        let outcome = run.report;
        let digest = outcome.digest();
        out.text
            .push_str(&format!("{:<44} {:<11} {digest}\n", e.file, outcome.kind()));
        got.push((e.file.clone(), digest));
        // Telemetry-enabled scenarios pin the trace byte stream too, as a
        // separate `<file>::trace` entry — the report digest above is
        // unchanged by the telemetry section (observe-only contract).
        if let Some(td) = run.trace.as_ref().and_then(|t| t.digest.clone()) {
            let tname = format!("{}::trace", e.file);
            out.text
                .push_str(&format!("{:<44} {:<11} {td}\n", tname, "trace"));
            got.push((tname, td));
        }
    }

    if update {
        let table = scenario::digests_json(&got);
        let path = dir.join(scenario::DIGESTS_FILE);
        std::fs::write(&path, &table)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        out.text.push_str(&format!(
            "updated {} ({} entries)\n",
            path.display(),
            got.len()
        ));
        out.json
            .push(("corpus-digests".into(), diff_json(dir, &got, &got)));
        return Ok(CorpusRun {
            output: out,
            failures: 0,
        });
    }

    let pinned = scenario::read_digests(dir)?;
    let mut failures = 0usize;
    for (file, digest) in &got {
        match pinned.iter().find(|(f, _)| f == file) {
            None => {
                failures += 1;
                out.text
                    .push_str(&format!("UNPINNED  {file}: run `repro corpus --update`\n"));
            }
            Some((_, want)) if want != digest => {
                failures += 1;
                out.text
                    .push_str(&format!("MISMATCH  {file}: pinned {want}, got {digest}\n"));
            }
            Some(_) => {}
        }
    }
    for (file, _) in &pinned {
        if !got.iter().any(|(f, _)| f == file) {
            failures += 1;
            out.text
                .push_str(&format!("STALE     {file}: pinned but no such scenario\n"));
        }
    }
    out.text.push_str(&format!(
        "corpus: {} scenario(s), {} failure(s)\n",
        got.len(),
        failures
    ));
    out.json
        .push(("corpus-digests".into(), diff_json(dir, &pinned, &got)));
    Ok(CorpusRun {
        output: out,
        failures,
    })
}

/// The `corpus-digests` artifact: per-file pinned/got digests with a
/// status (`ok`, `mismatch`, `unpinned`, `stale`).
fn diff_json(dir: &Path, pinned: &[(String, String)], got: &[(String, String)]) -> String {
    let mut files: Vec<&String> = pinned.iter().chain(got.iter()).map(|(f, _)| f).collect();
    files.sort();
    files.dedup();
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"dir\": \"{}\",\n  \"entries\": [\n",
        wsdf::json::escape(&dir.display().to_string())
    ));
    for (i, file) in files.iter().enumerate() {
        let p = pinned.iter().find(|(f, _)| f == *file).map(|(_, d)| d);
        let g = got.iter().find(|(f, _)| f == *file).map(|(_, d)| d);
        let status = match (p, g) {
            (Some(p), Some(g)) if p == g => "ok",
            (Some(_), Some(_)) => "mismatch",
            (None, Some(_)) => "unpinned",
            (Some(_), None) => "stale",
            (None, None) => unreachable!(),
        };
        let quote = |d: Option<&String>| match d {
            Some(d) => format!("\"{}\"", wsdf::json::escape(d)),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"status\": \"{status}\", \"pinned\": {}, \"got\": {}}}{}\n",
            wsdf::json::escape(file),
            quote(p),
            quote(g),
            if i + 1 < files.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
