//! The `repro collectives` target: closed-loop collective completion
//! times on both topology families.
//!
//! For every (fabric, collective) pair the suite runs the workload DAG to
//! quiescence at BSP partition counts {1, 2, 4} and *verifies the three
//! reports are bit-identical* — completion cycles, per-phase spans, and
//! the latency distribution — before emitting one report. A mismatch is a
//! determinism bug and panics. Participants are one node per chip (the
//! NPU-per-chip view of the paper's fabrics), so both families run the
//! same logical collectives over 32 chips of one W-group.

use crate::Effort;
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::traffic::Scope;
use wsdf::{Bench, Session, Workload, WorkloadReport, WorkloadUnits};
use wsdf_sim::SimConfig;
use wsdf_topo::{SlParams, SwParams};

/// Partition counts every collective is verified over.
pub const PARTITIONS: &[usize] = &[1, 2, 4];

/// Per-participant payload in flits for one [`Effort`] level.
fn data_flits(effort: Effort) -> u64 {
    match effort {
        Effort::Smoke => 32,
        Effort::Standard => 256,
        Effort::Full => 1024,
    }
}

/// One participant per chip, in chip order.
fn chip_participants(scope: &Scope) -> Vec<u32> {
    (0..scope.num_chips())
        .map(|c| scope.node_of(c, 0))
        .collect()
}

/// The two evaluated fabrics at matching scale: one W-group (32 chips) of
/// the radix-16 switch-less configuration and one group (32 chips) of the
/// switch-based baseline. Shared with the resilience suite so both
/// degradation and collective numbers describe the same fabrics.
pub fn family_benches() -> Vec<Bench> {
    vec![
        Bench::switchless(
            &SlParams::radix16().with_wgroups(1),
            RouteMode::Minimal,
            VcScheme::Baseline,
        ),
        Bench::switchbased(&SwParams::radix16().with_groups(1), RouteMode::Minimal),
    ]
}

/// The collective set run on each fabric. Sizes are scaled so every
/// workload moves a comparable payload.
fn workloads(participants: &[u32], data: u64) -> Vec<Workload> {
    let stages: Vec<u32> = participants.iter().copied().step_by(4).collect();
    vec![
        Workload::ring_allreduce(participants, data),
        Workload::rd_allreduce(participants, (data / 4).max(4))
            .expect("chip count is a power of two"),
        Workload::all_to_all(participants, (data / 16).max(1)),
        Workload::broadcast(participants, data * 2),
        Workload::pipeline(&stages, 8, (data / 2).max(4)),
    ]
}

/// Run the full suite: each collective on each topology family, verified
/// bit-identical across [`PARTITIONS`], reported once.
///
/// # Panics
/// If any partition count changes any field of a report — that would be a
/// BSP determinism regression, not a measurement.
pub fn collectives(effort: Effort) -> Vec<WorkloadReport> {
    let data = data_flits(effort);
    let units = WorkloadUnits::default();
    let mut out = Vec::new();
    for bench in family_benches() {
        let participants = chip_participants(&bench.scope);
        for wl in workloads(&participants, data) {
            let mut reports: Vec<WorkloadReport> = PARTITIONS
                .iter()
                .map(|&parts| {
                    let cfg = SimConfig {
                        partitions: parts,
                        ..Default::default()
                    };
                    Session::bench(&bench)
                        .sim(cfg)
                        .workload(&wl, &units)
                        .map(|o| o.report)
                        .unwrap_or_else(|e| {
                            panic!("[{} / {}] p={parts}: {e}", bench.label, wl.name)
                        })
                })
                .collect();
            let base = reports.remove(0);
            for (r, &parts) in reports.iter().zip(&PARTITIONS[1..]) {
                assert_eq!(
                    *r, base,
                    "[{} / {}] partitions={parts} diverged from partitions=1",
                    bench.label, wl.name
                );
            }
            out.push(base);
        }
    }
    out
}

/// Render [`collectives`] results as text.
pub fn render_collectives(reports: &[WorkloadReport]) -> String {
    let mut s = format!(
        "== collectives — closed-loop completion times (quiescence-terminated, \
         bit-identical over partitions {PARTITIONS:?}) ==\n"
    );
    for r in reports {
        s.push_str(&r.render());
    }
    s
}

/// Serialize [`collectives`] results as a JSON array of
/// [`WorkloadReport::to_json`] objects.
pub fn collectives_json(reports: &[WorkloadReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(r.to_json().trim_end());
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_both_families_and_all_collectives() {
        let reports = collectives(Effort::Smoke);
        assert_eq!(reports.len(), 2 * 5);
        let labels: Vec<&str> = reports.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"SW-less"));
        assert!(labels.contains(&"SW-based"));
        for r in &reports {
            assert!(r.completion_cycles > 0, "{}/{}", r.label, r.workload);
            assert!(r.latency.count > 0, "{}/{}", r.label, r.workload);
        }
        // Round-trip every report through JSON.
        let json = collectives_json(&reports);
        let arr = wsdf::json::Value::parse(&json).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), reports.len());
    }
}
