//! The `repro partition-stats` target: partition quality of the locality
//! partitioner vs the legacy contiguous blocks, per topology family.
//!
//! For each family the suite reports, at partition counts [`PARTITIONS`]:
//! cut channels (the engine's sparse-exchange edge surface), the balance
//! envelope (min/max live routers per partition), and **boundary flit
//! traffic** — measured flits that traversed a cut channel during a short
//! uniform-random run. The run itself is executed *once* per family:
//! flit-per-channel counts are bit-identical for any partition assignment
//! (the determinism contract), so both schemes are scored against the same
//! measured traffic.
//!
//! Families are chosen where the partitioners genuinely differ: a 7×7
//! standalone mesh (block boundaries land mid-row) and the radix-16
//! switch-less fabric at 5 W-groups (block boundaries are C-group aligned,
//! so wins must come from moving whole C-groups to exploit palmtree
//! global-link placement).

use crate::Effort;
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::{Bench, PatternSpec};
use wsdf_sim::{Metrics, NetworkDesc, SimConfig};
use wsdf_topo::{contiguous_blocks, locality_partition, partition_stats, SlParams};

/// Partition counts every family is scored at.
pub const PARTITIONS: &[usize] = &[2, 4, 8];

/// Quality of one assignment scheme at one partition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeStats {
    /// Directed live router-router channels crossing partitions — the
    /// number of (src, dst) exchange-edge message streams the BSP barrier
    /// pays for.
    pub cut_channels: usize,
    /// Live routers in the least populated partition.
    pub min_routers: usize,
    /// Live routers in the most populated partition.
    pub max_routers: usize,
    /// Measured flits that traversed a cut channel (same traffic for both
    /// schemes; lower = less barrier boundary traffic).
    pub boundary_flits: u64,
}

/// Both schemes at one partition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPoint {
    /// Partition count.
    pub parts: usize,
    /// Legacy contiguous blocks.
    pub blocks: SchemeStats,
    /// `wsdf_topo::locality_partition`.
    pub locality: SchemeStats,
}

/// One family's full report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// Family label.
    pub label: String,
    /// Router count of the fabric.
    pub routers: usize,
    /// One entry per [`PARTITIONS`] value.
    pub points: Vec<PartitionPoint>,
}

/// The two scored families (see module docs).
fn families(effort: Effort) -> Vec<(Bench, f64)> {
    vec![
        (Bench::single_mesh(7, 7, 1), effort.small()),
        (
            Bench::switchless(
                &SlParams::radix16().with_wgroups(5),
                RouteMode::Minimal,
                VcScheme::Baseline,
            ),
            effort.medium(),
        ),
    ]
}

/// Measured flits over live router-router channels whose endpoints sit in
/// different partitions under `assign`.
fn boundary_flits(net: &NetworkDesc, assign: &[u32], m: &Metrics) -> u64 {
    let mut sum = 0u64;
    for (c, ch) in net.channels.iter().enumerate() {
        if let (Some(a), Some(b)) = (ch.src.router(), ch.dst.router()) {
            if assign[a as usize] != assign[b as usize] {
                sum += u64::from(*m.flits_per_channel.get(c).unwrap_or(&0));
            }
        }
    }
    sum
}

fn scheme(net: &NetworkDesc, assign: &[u32], m: &Metrics) -> SchemeStats {
    let s = partition_stats(net, assign, None);
    SchemeStats {
        cut_channels: s.cut_channels,
        min_routers: s.min_routers,
        max_routers: s.max_routers,
        boundary_flits: boundary_flits(net, assign, m),
    }
}

/// Run the suite: each family simulated once (sequential, per-channel
/// stats on), then scored under both schemes at every partition count.
pub fn partition_stats_suite(effort: Effort) -> Vec<PartitionReport> {
    let mut out = Vec::new();
    for (bench, scale) in families(effort) {
        let cfg = SimConfig {
            partitions: 1,
            per_channel_stats: true,
            ..Default::default()
        }
        .scaled(scale);
        let pattern = bench.pattern(PatternSpec::Uniform, 0.1);
        let m = wsdf::Session::bench(&bench)
            .sim(cfg)
            .metrics(pattern.as_ref())
            .expect("partition-stats traffic run failed")
            .report;
        let net = bench.fabric.net();
        let points = PARTITIONS
            .iter()
            .map(|&parts| PartitionPoint {
                parts,
                blocks: scheme(net, &contiguous_blocks(net, parts), &m),
                locality: scheme(net, &locality_partition(net, parts, None), &m),
            })
            .collect();
        out.push(PartitionReport {
            label: bench.label.clone(),
            routers: net.num_routers(),
            points,
        });
    }
    out
}

/// Render [`partition_stats_suite`] results as text.
pub fn render_partition_stats(reports: &[PartitionReport]) -> String {
    let mut s = String::from("== partition-stats — locality partitioner vs contiguous blocks ==\n");
    for r in reports {
        s.push_str(&format!("  {} ({} routers)\n", r.label, r.routers));
        for p in &r.points {
            s.push_str(&format!(
                "    P={}: cut {:>4} -> {:>4} channels  boundary {:>8} -> {:>8} flits  \
                 balance [{}..{}] -> [{}..{}]\n",
                p.parts,
                p.blocks.cut_channels,
                p.locality.cut_channels,
                p.blocks.boundary_flits,
                p.locality.boundary_flits,
                p.blocks.min_routers,
                p.blocks.max_routers,
                p.locality.min_routers,
                p.locality.max_routers,
            ));
        }
    }
    s
}

/// Serialize [`partition_stats_suite`] results as JSON.
pub fn partition_stats_json(reports: &[PartitionReport]) -> String {
    let scheme = |s: &SchemeStats| {
        format!(
            "{{\"cut_channels\": {}, \"min_routers\": {}, \"max_routers\": {}, \
             \"boundary_flits\": {}}}",
            s.cut_channels, s.min_routers, s.max_routers, s.boundary_flits
        )
    };
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"label\": \"{}\", \"routers\": {}, \"points\": [\n",
            wsdf::json::escape(&r.label),
            r.routers
        ));
        for (j, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"parts\": {}, \"blocks\": {}, \"locality\": {}}}{}\n",
                p.parts,
                scheme(&p.blocks),
                scheme(&p.locality),
                if j + 1 < r.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ]}}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_strictly_beats_blocks_on_both_families() {
        let reports = partition_stats_suite(Effort::Smoke);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.points.len(), PARTITIONS.len());
            for p in &r.points {
                assert!(
                    p.locality.cut_channels < p.blocks.cut_channels,
                    "[{} P={}] locality {} !< blocks {}",
                    r.label,
                    p.parts,
                    p.locality.cut_channels,
                    p.blocks.cut_channels
                );
                assert!(
                    p.locality.boundary_flits <= p.blocks.boundary_flits,
                    "[{} P={}] boundary flits regressed",
                    r.label,
                    p.parts
                );
                assert!(p.locality.min_routers >= 1);
            }
        }
        // JSON parses back as an array of both families.
        let json = partition_stats_json(&reports);
        let arr = wsdf::json::Value::parse(&json).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), reports.len());
    }
}
