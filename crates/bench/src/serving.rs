//! The `repro serving` target: multi-tenant serving on both topology
//! families.
//!
//! Each family serves the same job mix — a dozen jobs of three classes
//! (training allreduce, inference pipeline, all-to-all shard) arriving on
//! a fixed trace onto block / strided / overlapping placements — at BSP
//! partition counts {1, 2, 4}, *verifying the three reports are
//! bit-identical* (job records, CT percentiles, slowdowns, fairness, SLO
//! misses) before emitting one. A faulted variant re-serves the mix on a
//! degraded switch-less fabric, exercising placement-over-live-endpoints
//! and the detour oracle under load. A mismatch is a determinism bug and
//! panics.

use crate::collectives::{family_benches, PARTITIONS};
use crate::Effort;
use wsdf::workload::tenancy::{ArrivalProcess, JobClass, Placement, ServingSpec};
use wsdf::{ServingReport, Session};
use wsdf_sim::SimConfig;
use wsdf_topo::{FaultSet, FaultSpec};

/// Jobs in the serving trace (≥ 8 concurrent jobs of 3 classes).
const TRACE_JOBS: u64 = 12;

/// Per-participant payload in flits for one [`Effort`] level.
fn data_flits(effort: Effort) -> u64 {
    match effort {
        Effort::Smoke => 16,
        Effort::Standard => 64,
        Effort::Full => 256,
    }
}

/// The serving job mix: three classes with distinct collectives,
/// placements and SLO budgets.
pub fn serving_mix(data: u64, slo: u64) -> Vec<JobClass> {
    vec![
        JobClass {
            name: "train-allreduce".into(),
            collective: "ring_allreduce".into(),
            flits: data,
            microbatches: 1,
            participants: 8,
            placement: Placement::Block,
            slo_cycles: slo,
            weight: 2.0,
        },
        JobClass {
            name: "infer-pipeline".into(),
            collective: "pipeline".into(),
            flits: (data / 2).max(4),
            microbatches: 4,
            participants: 4,
            placement: Placement::Strided,
            slo_cycles: slo / 2,
            weight: 1.0,
        },
        JobClass {
            name: "shard-alltoall".into(),
            collective: "all_to_all".into(),
            flits: (data / 8).max(1),
            microbatches: 1,
            participants: 4,
            placement: Placement::Overlapping,
            slo_cycles: 0,
            weight: 1.0,
        },
    ]
}

/// The serving spec run by the target: a tight fixed trace so the jobs
/// genuinely overlap in flight.
pub fn serving_spec(effort: Effort) -> ServingSpec {
    let data = data_flits(effort);
    ServingSpec {
        seed: 0x5E21,
        arrivals: ArrivalProcess::Trace {
            cycles: (0..TRACE_JOBS).map(|k| k * 200).collect(),
        },
        max_jobs: 64,
        // SLO near the expected contended CT, so misses are informative
        // rather than all-or-nothing.
        classes: serving_mix(data, 400 * data),
    }
}

/// Run the suite: the mix on both families plus a faulted switch-less
/// variant, each verified bit-identical across [`PARTITIONS`].
///
/// # Panics
/// If any partition count changes any field of a report — that would be a
/// BSP determinism regression, not a measurement.
pub fn serving(effort: Effort) -> Vec<ServingReport> {
    let spec = serving_spec(effort);
    let mut benches = family_benches();
    // Degraded-fabric-under-load variant: 2% link faults on the
    // switch-less family (deterministic sample, detour-routed).
    let fs = FaultSet::sample(benches[0].fabric.net(), &FaultSpec::links(0.02, 13));
    benches.push(benches[0].with_fault_set(&fs));
    let mut out = Vec::new();
    for (i, bench) in benches.iter().enumerate() {
        let mut reports: Vec<ServingReport> = PARTITIONS
            .iter()
            .map(|&parts| {
                let cfg = SimConfig {
                    partitions: parts,
                    ..Default::default()
                };
                Session::bench(bench)
                    .sim(cfg)
                    .serving(&spec)
                    .map(|o| o.report)
                    .unwrap_or_else(|e| panic!("[{}] p={parts}: {e}", bench.label))
            })
            .collect();
        let mut base = reports.remove(0);
        for (r, &parts) in reports.iter().zip(&PARTITIONS[1..]) {
            assert_eq!(
                *r, base,
                "[{}] partitions={parts} diverged from partitions=1",
                bench.label
            );
        }
        if i == benches.len() - 1 {
            base.label = format!("{} (2% faults)", base.label);
        }
        out.push(base);
    }
    out
}

/// Render [`serving`] results as text.
pub fn render_serving(reports: &[ServingReport]) -> String {
    let mut s = format!(
        "== serving — multi-tenant job mix ({TRACE_JOBS} jobs, 3 classes; \
         bit-identical over partitions {PARTITIONS:?}) ==\n"
    );
    for r in reports {
        s.push_str(&r.render());
    }
    s
}

/// Serialize [`serving`] results as a JSON array of
/// [`ServingReport::to_json`] objects.
pub fn serving_json(reports: &[ServingReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(r.to_json().trim_end());
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_serves_the_mix_on_both_families_and_faulted() {
        let reports = serving(Effort::Smoke);
        assert_eq!(reports.len(), 3);
        let labels: Vec<&str> = reports.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"SW-less"));
        assert!(labels.contains(&"SW-based"));
        assert!(labels.iter().any(|l| l.contains("faults")));
        for r in &reports {
            assert_eq!(r.jobs.len() as u64, TRACE_JOBS, "{}", r.label);
            assert_eq!(r.classes.len(), 3, "{}", r.label);
            assert!(r.classes.iter().all(|c| c.jobs > 0), "{}", r.label);
            assert!(r.makespan_cycles > 0, "{}", r.label);
            assert!(r.fairness > 0.0 && r.fairness <= 1.0, "{}", r.label);
            // Round-trip through JSON, histogram included.
            let back = ServingReport::from_json(&r.to_json()).unwrap();
            assert_eq!(&back, r, "{}", r.label);
        }
        let json = serving_json(&reports);
        let arr = wsdf::json::Value::parse(&json).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), reports.len());
    }
}
