//! The `repro trace` target: a streaming-telemetry smoke over the
//! unified [`Session`] frontend.
//!
//! Two traced runs — an open-loop uniform sweep point (link/queue/latency
//! streams) and a multi-tenant serving mix (job admit/retire stream) —
//! capture their JSONL streams in memory, then the open-loop run is
//! repeated at a different partition count and the two byte streams are
//! compared: a digest mismatch is a telemetry-determinism regression and
//! fails the target. The streams are returned to the binary so CI can
//! upload them as artifacts.

use crate::targets::TargetOutput;
use crate::Effort;
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::workload::tenancy::{ArrivalProcess, ServingSpec};
use wsdf::{Bench, PatternSpec, Session, TraceConfig};
use wsdf_sim::SimConfig;
use wsdf_topo::SlParams;

/// Outcome of the trace smoke: rendered text + summary artifact, plus the
/// raw JSONL streams (written next to the JSON artifacts by the binary).
pub struct TraceRun {
    /// Text and the `trace-summary` JSON artifact.
    pub output: TargetOutput,
    /// `(artifact file name, JSONL bytes)` for each traced run.
    pub streams: Vec<(String, String)>,
}

fn smoke_bench() -> Bench {
    // One radix-16 W-group: 32 chips — enough endpoints for the serving
    // mix's 8-participant class at every effort level.
    Bench::switchless(
        &SlParams::radix16().with_wgroups(1),
        RouteMode::Minimal,
        VcScheme::Baseline,
    )
}

fn sim(effort: Effort, partitions: usize) -> SimConfig {
    let scale = match effort {
        Effort::Smoke => 0.15,
        Effort::Standard => 0.5,
        Effort::Full => 1.0,
    };
    let mut cfg = SimConfig::default().scaled(scale);
    cfg.partitions = partitions;
    cfg
}

fn count_records(jsonl: &str, tag: &str) -> usize {
    let needle = format!("{{\"t\": \"{tag}\"");
    jsonl.lines().filter(|l| l.starts_with(&needle)).count()
}

/// Run the smoke. Errors are infrastructure problems; a cross-partition
/// trace-digest mismatch is also an `Err` (it is the regression this
/// target exists to catch).
pub fn run_trace_smoke(effort: Effort) -> Result<TraceRun, String> {
    let bench = smoke_bench();
    let cfg = TraceConfig {
        stride: 64,
        ..TraceConfig::default()
    };

    let open = |partitions: usize| -> Result<(String, String), String> {
        let pattern = bench.pattern(PatternSpec::Uniform, 0.1);
        let out = Session::bench(&bench)
            .sim(sim(effort, partitions))
            .trace(cfg.clone())
            .metrics(pattern.as_ref())?;
        let t = out.trace.expect("trace was configured");
        Ok((t.jsonl.unwrap_or_default(), t.digest.unwrap_or_default()))
    };
    let (open_jsonl, open_digest) = open(1)?;
    let (_, open_digest_p2) = open(2)?;
    if open_digest != open_digest_p2 {
        return Err(format!(
            "trace digest diverged across partition counts: p=1 {open_digest}, p=2 {open_digest_p2}"
        ));
    }

    let spec = ServingSpec {
        seed: 0x7ACE,
        arrivals: ArrivalProcess::Trace {
            cycles: (0..6).map(|k| k * 100).collect(),
        },
        max_jobs: 16,
        classes: crate::serving::serving_mix(
            8,
            match effort {
                Effort::Smoke => 800,
                _ => 6_400,
            },
        ),
    };
    let out = Session::bench(&bench)
        .sim(sim(effort, 1))
        .trace(cfg)
        .serving(&spec)?;
    let t = out.trace.expect("trace was configured");
    let (serving_jsonl, serving_digest) =
        (t.jsonl.unwrap_or_default(), t.digest.unwrap_or_default());

    let mut output = TargetOutput::default();
    output.text.push_str("== streaming telemetry smoke ==\n");
    for (name, jsonl, digest) in [
        ("open-loop", &open_jsonl, &open_digest),
        ("serving", &serving_jsonl, &serving_digest),
    ] {
        output.text.push_str(&format!(
            "  {name:<10} {:>6} records (link {}, queue {}, lat {}, job {}/{})  digest {digest}\n",
            jsonl.lines().count(),
            count_records(jsonl, "link"),
            count_records(jsonl, "queue"),
            count_records(jsonl, "lat"),
            count_records(jsonl, "admit"),
            count_records(jsonl, "retire"),
        ));
    }
    output
        .text
        .push_str("  open-loop trace bit-identical across partitions {1, 2}\n");
    output.json.push((
        "trace-summary".into(),
        format!(
            "{{\n  \"open_loop\": {{\"records\": {}, \"digest\": \"{open_digest}\"}},\n  \
             \"serving\": {{\"records\": {}, \"digest\": \"{serving_digest}\"}}\n}}\n",
            open_jsonl.lines().count(),
            serving_jsonl.lines().count(),
        ),
    ));
    Ok(TraceRun {
        output,
        streams: vec![
            ("trace-open-loop.jsonl".into(), open_jsonl),
            ("trace-serving.jsonl".into(), serving_jsonl),
        ],
    })
}
