//! Figure regeneration: one function per evaluation figure (Fig. 10–15).
//!
//! Rates mirror the paper's x-axes (flits/cycle/chip). Each function
//! returns [`wsdf::report::Figure`]s ready to render or serialize.

use crate::Effort;
use wsdf::report::{Curve, Figure};
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::{
    AdaptiveConfig, Bench, PatternSpec, SaturationReport, Session, SweepConfig, SweepPoint,
};
use wsdf_analysis::EnergyModel;
use wsdf_sim::SimConfig;
use wsdf_topo::{SlParams, SwParams};
use wsdf_traffic::{PermKind, RingDirection};

fn rates(max: f64, steps: usize) -> Vec<f64> {
    (1..=steps).map(|i| max * i as f64 / steps as f64).collect()
}

// All figure sweeps route through the unified Session frontend; the
// trace-free paths below cannot fail, so the unwraps never fire.
fn sweep(bench: &Bench, cfg: &SweepConfig, spec: PatternSpec, rates: &[f64]) -> Vec<SweepPoint> {
    Session::bench(bench)
        .sweep(cfg, spec, rates)
        .unwrap()
        .report
}

fn adaptive_sweep(bench: &Bench, cfg: &AdaptiveConfig, spec: PatternSpec) -> SaturationReport {
    Session::bench(bench).adaptive(cfg, spec).unwrap().report
}

fn cfg(scale: f64) -> SweepConfig {
    SweepConfig::default().scaled(scale)
}

/// Fig. 10(a,b): intra-C-group (intra-switch) latency, uniform and
/// bit-reverse, 4×4-core mesh C-group vs radix-16 ideal switch.
pub fn fig10ab(effort: Effort) -> Vec<Figure> {
    let s = effort.small();
    let mut figs = Vec::new();
    for (id, title, spec, max_rate) in [
        (
            "fig10a",
            "Intra-C-group: Uniform",
            PatternSpec::Uniform,
            3.6,
        ),
        (
            "fig10b",
            "Intra-C-group: Bit-reverse",
            PatternSpec::Permutation(PermKind::BitReverse),
            2.6,
        ),
    ] {
        let mut fig = Figure::new(id, title);
        let sw = Bench::single_switch(16);
        fig.push(Curve::new(
            "Switch",
            sweep(&sw, &cfg(s), spec, &rates(1.4, 7)),
        ));
        let mesh = Bench::single_mesh(4, 2, 1);
        fig.push(Curve::new(
            "2D-Mesh",
            sweep(&mesh, &cfg(s), spec, &rates(max_rate, 9)),
        ));
        figs.push(fig);
    }
    figs
}

/// The three local-scale benches of Fig. 10(c–f) and Fig. 14(b):
/// one W-group of the radix-16 configuration.
fn local_benches() -> Vec<Bench> {
    let sw = SwParams::radix16().with_groups(1);
    let sl = SlParams::radix16().with_wgroups(1);
    let sl2 = sl.with_mesh_width(2);
    vec![
        Bench::switchbased(&sw, RouteMode::Minimal),
        Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline),
        Bench::switchless(&sl2, RouteMode::Minimal, VcScheme::Baseline),
    ]
}

/// Fig. 10(c–f): local (intra-W-group) latency under uniform, bit-reverse,
/// bit-shuffle and bit-transpose.
pub fn fig10cf(effort: Effort) -> Vec<Figure> {
    let s = effort.small();
    let cases: [(&str, &str, PatternSpec, f64); 4] = [
        ("fig10c", "Local: Uniform", PatternSpec::Uniform, 2.4),
        (
            "fig10d",
            "Local: Bit-reverse",
            PatternSpec::Permutation(PermKind::BitReverse),
            2.0,
        ),
        (
            "fig10e",
            "Local: Bit-shuffle",
            PatternSpec::Permutation(PermKind::BitShuffle),
            0.7,
        ),
        (
            "fig10f",
            "Local: Bit-transpose",
            PatternSpec::Permutation(PermKind::BitTranspose),
            2.0,
        ),
    ];
    let mut figs = Vec::new();
    for (id, title, spec, max_rate) in cases {
        let mut fig = Figure::new(id, title);
        for bench in local_benches() {
            // The switch-based baseline caps at 1 flit/cycle/chip; don't
            // waste points far beyond it.
            let max = if bench.label == "SW-based" {
                max_rate.min(1.4)
            } else {
                max_rate
            };
            fig.push(Curve::new(
                bench.label.clone(),
                sweep(&bench, &cfg(s), spec, &rates(max, 8)),
            ));
        }
        figs.push(fig);
    }
    figs
}

/// Fig. 11(a,b): global performance of the full radix-16 system
/// (41 groups, 1312 chips) under uniform and bit-reverse.
pub fn fig11(effort: Effort) -> Vec<Figure> {
    let s = effort.medium();
    let sw = SwParams::radix16();
    let sl = SlParams::radix16();
    let sl2 = sl.with_mesh_width(2);
    let mut figs = Vec::new();
    for (id, title, spec, max_rate) in [
        ("fig11a", "Global: Uniform", PatternSpec::Uniform, 1.1),
        (
            "fig11b",
            "Global: Bit-reverse",
            PatternSpec::Permutation(PermKind::BitReverse),
            0.7,
        ),
    ] {
        let mut fig = Figure::new(id, title);
        for bench in [
            Bench::switchbased(&sw, RouteMode::Minimal),
            Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline),
            Bench::switchless(&sl2, RouteMode::Minimal, VcScheme::Baseline),
        ] {
            fig.push(Curve::new(
                bench.label.clone(),
                sweep(&bench, &cfg(s), spec, &rates(max_rate, 7)),
            ));
        }
        figs.push(fig);
    }
    figs
}

/// Fig. 12(a,b): scalability at radix-32 (145 groups, 18560 chips):
/// local (single W-group) and global (full system) uniform performance,
/// the global panel adding 4× intra-C-group bandwidth.
pub fn fig12(effort: Effort) -> Vec<Figure> {
    let mut figs = Vec::new();
    // (a) Local: one W-group of the radix-32 config.
    {
        let s = effort.small();
        let sw = SwParams::radix32().with_groups(1);
        let sl = SlParams::radix32().with_wgroups(1);
        let sl2 = sl.with_mesh_width(2);
        let mut fig = Figure::new("fig12a", "Radix-32 Local: Uniform");
        for bench in [
            Bench::switchbased(&sw, RouteMode::Minimal),
            Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline),
            Bench::switchless(&sl2, RouteMode::Minimal, VcScheme::Baseline),
        ] {
            let max = if bench.label == "SW-based" { 1.4 } else { 1.8 };
            fig.push(Curve::new(
                bench.label.clone(),
                sweep(&bench, &cfg(s), PatternSpec::Uniform, &rates(max, 7)),
            ));
        }
        figs.push(fig);
    }
    // (b) Global: the full system.
    {
        let s = effort.large();
        let sw = SwParams::radix32();
        let sl = SlParams::radix32();
        let sl2 = sl.with_mesh_width(2);
        let sl4 = sl.with_mesh_width(4);
        let mut fig = Figure::new("fig12b", "Radix-32 Global: Uniform");
        for bench in [
            Bench::switchbased(&sw, RouteMode::Minimal),
            Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline),
            Bench::switchless(&sl2, RouteMode::Minimal, VcScheme::Baseline),
            Bench::switchless(&sl4, RouteMode::Minimal, VcScheme::Baseline),
        ] {
            fig.push(Curve::new(
                bench.label.clone(),
                sweep(&bench, &cfg(s), PatternSpec::Uniform, &rates(0.9, 6)),
            ));
        }
        figs.push(fig);
    }
    figs
}

/// Fig. 13(a,b): adversarial traffic at radix-16 scale — hotspot (four
/// active W-groups) and worst-case (Wi → Wi+1), minimal vs Valiant.
pub fn fig13(effort: Effort) -> Vec<Figure> {
    let s = effort.medium();
    let sw = SwParams::radix16();
    let sl = SlParams::radix16();
    let sl2 = sl.with_mesh_width(2);
    let mut figs = Vec::new();
    for (id, title, spec, max_min, max_mis) in [
        ("fig13a", "Hotspot", PatternSpec::Hotspot, 0.25, 0.9),
        ("fig13b", "Worst-case", PatternSpec::WorstCase, 0.12, 0.5),
    ] {
        let mut fig = Figure::new(id, title);
        for (bench, max) in [
            (Bench::switchbased(&sw, RouteMode::Minimal), max_min),
            (
                Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline),
                max_min,
            ),
            (Bench::switchbased(&sw, RouteMode::Valiant), max_mis),
            (
                Bench::switchless(&sl, RouteMode::Valiant, VcScheme::Baseline),
                max_mis,
            ),
            (
                Bench::switchless(&sl2, RouteMode::Valiant, VcScheme::Baseline),
                max_mis,
            ),
        ] {
            let label = if bench.label.contains("-Mis") {
                bench.label.clone()
            } else {
                format!("{}-Min", bench.label)
            };
            fig.push(Curve::new(
                label,
                sweep(&bench, &cfg(s), spec, &rates(max, 6)),
            ));
        }
        figs.push(fig);
    }
    figs
}

/// Fig. 14(a,b): ring AllReduce — intra-C-group (mesh vs single switch)
/// and intra-W-group (one radix-16 W-group), uni/bidirectional.
pub fn fig14(effort: Effort) -> Vec<Figure> {
    let s = effort.small();
    let mut figs = Vec::new();
    // (a) Intra-C-group.
    {
        let mut fig = Figure::new("fig14a", "AllReduce: Intra-C-group");
        for (dir, tag) in [
            (RingDirection::Unidirectional, "Uni"),
            (RingDirection::Bidirectional, "Bi"),
        ] {
            let sw = Bench::single_switch(16);
            fig.push(Curve::new(
                format!("SW-based-{tag}"),
                sweep(&sw, &cfg(s), PatternSpec::RingCGroup(dir), &rates(1.6, 8)),
            ));
            let mesh = Bench::single_mesh(4, 2, 1);
            let max = if dir == RingDirection::Bidirectional {
                4.4
            } else {
                2.4
            };
            fig.push(Curve::new(
                format!("SW-less-{tag}"),
                sweep(&mesh, &cfg(s), PatternSpec::RingCGroup(dir), &rates(max, 8)),
            ));
        }
        figs.push(fig);
    }
    // (b) Intra-W-group.
    {
        let mut fig = Figure::new("fig14b", "AllReduce: Intra-W-group");
        let sw = SwParams::radix16().with_groups(1);
        let sl = SlParams::radix16().with_wgroups(1);
        let sl2 = sl.with_mesh_width(2);
        for (dir, tag) in [
            (RingDirection::Unidirectional, "Uni"),
            (RingDirection::Bidirectional, "Bi"),
        ] {
            let b = Bench::switchbased(&sw, RouteMode::Minimal);
            fig.push(Curve::new(
                format!("SW-based-{tag}"),
                sweep(&b, &cfg(s), PatternSpec::RingWGroup(dir), &rates(1.5, 8)),
            ));
            let b = Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline);
            fig.push(Curve::new(
                format!("SW-less-{tag}"),
                sweep(&b, &cfg(s), PatternSpec::RingWGroup(dir), &rates(2.0, 8)),
            ));
            if dir == RingDirection::Bidirectional {
                let b = Bench::switchless(&sl2, RouteMode::Minimal, VcScheme::Baseline);
                fig.push(Curve::new(
                    "SW-less-Bi-2B",
                    sweep(&b, &cfg(s), PatternSpec::RingWGroup(dir), &rates(2.6, 8)),
                ));
            }
        }
        figs.push(fig);
    }
    figs
}

/// Saturation-throughput table: adaptive knee search over the headline
/// comparisons (intra-C-group mesh vs switch, then the local W-group
/// benches), no hand-tuned rate grids. Each entry carries the full
/// measured point set with p50/p95/p99 latency.
pub fn saturation_scan(effort: Effort) -> Vec<(String, SaturationReport)> {
    let cfg = |scale: f64, start: f64| {
        AdaptiveConfig {
            start_chip: start,
            ..Default::default()
        }
        .scaled(scale)
    };
    let s = effort.small();
    let mut out = Vec::new();
    for (bench, start) in [
        (Bench::single_switch(16), 0.2),
        (Bench::single_mesh(4, 2, 1), 0.2),
    ] {
        let report = adaptive_sweep(&bench, &cfg(s, start), PatternSpec::Uniform);
        out.push((format!("intra-cgroup/{}", bench.label), report));
    }
    for bench in local_benches() {
        let report = adaptive_sweep(&bench, &cfg(s, 0.15), PatternSpec::Uniform);
        out.push((format!("local/{}", bench.label), report));
    }
    out
}

/// Render [`saturation_scan`] results as text.
pub fn render_saturation(scan: &[(String, SaturationReport)]) -> String {
    let mut s = String::from("== saturation — adaptive knee search: Uniform ==\n");
    for (label, report) in scan {
        s.push_str(&report.render(label));
    }
    s
}

/// Serialize [`saturation_scan`] results as a JSON array of
/// [`SaturationReport::to_json`] objects.
pub fn saturation_json(scan: &[(String, SaturationReport)]) -> String {
    let mut s = String::from("[\n");
    for (i, (label, report)) in scan.iter().enumerate() {
        s.push_str(report.to_json(label).trim_end());
        s.push_str(if i + 1 < scan.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

/// One bar of Fig. 15.
#[derive(Debug, Clone)]
pub struct EnergyBar {
    /// Network + routing label.
    pub label: String,
    /// Inter-C-group energy (pJ/bit).
    pub inter_cgroup: f64,
    /// Intra-C-group energy (pJ/bit).
    pub intra_cgroup: f64,
}

impl EnergyBar {
    /// Total energy per bit.
    pub fn total(&self) -> f64 {
        self.inter_cgroup + self.intra_cgroup
    }
}

/// Fig. 15: average energy per transmitted bit under uniform traffic,
/// minimal vs misrouting, for the small (radix-16, 4×4 mesh) and large
/// (radix-32, 7×7 mesh) configurations. Uses per-class hop counts
/// collected by the simulator and the Table II energy model.
pub fn fig15(effort: Effort) -> Vec<(String, Vec<EnergyBar>)> {
    let mut out = Vec::new();
    for (scale_name, sw, sl, wscale, rate) in [
        (
            "fig15a (4x4 mesh)",
            SwParams::radix16().with_groups(9),
            SlParams::radix16().with_wgroups(9),
            effort.small(),
            0.3,
        ),
        (
            "fig15b (7x7 mesh)",
            SwParams::radix32().with_groups(9),
            SlParams::radix32().with_wgroups(9),
            effort.medium(),
            0.2,
        ),
    ] {
        let sim = SimConfig::default().scaled(wscale);
        let mut bars = Vec::new();
        for (bench, model, label) in [
            (
                Bench::switchbased(&sw, RouteMode::Minimal),
                EnergyModel::switchbased_paper(),
                "SW-based",
            ),
            (
                Bench::switchless(&sl, RouteMode::Minimal, VcScheme::Baseline),
                EnergyModel::switchless_paper(),
                "SW-less",
            ),
            (
                Bench::switchbased(&sw, RouteMode::Valiant),
                EnergyModel::switchbased_paper(),
                "SW-based Misrouting",
            ),
            (
                Bench::switchless(&sl, RouteMode::Valiant, VcScheme::Baseline),
                EnergyModel::switchless_paper(),
                "SW-less Misrouting",
            ),
        ] {
            let pattern = bench.pattern(PatternSpec::Uniform, rate / bench.nodes_per_chip);
            let m = Session::bench(&bench)
                .sim(sim.clone())
                .metrics(pattern.as_ref())
                .unwrap_or_else(|e| panic!("fig15 {label}: {e}"))
                .report;
            let hops = m.avg_hops_per_flit();
            let (inter, intra) = model.energy_split(&hops);
            bars.push(EnergyBar {
                label: label.to_string(),
                inter_cgroup: inter,
                intra_cgroup: intra,
            });
        }
        out.push((scale_name.to_string(), bars));
    }
    out
}

/// Serialize Fig. 15 bar groups as pretty JSON (hand-rolled; see
/// `wsdf::json` for why there is no serde in this workspace).
pub fn fig15_json(groups: &[(String, Vec<EnergyBar>)]) -> String {
    use wsdf::json::{escape, num};
    let mut s = String::from("[\n");
    for (gi, (name, bars)) in groups.iter().enumerate() {
        s.push_str(&format!(
            "  {{\n    \"group\": \"{}\",\n    \"bars\": [\n",
            escape(name)
        ));
        for (bi, b) in bars.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"label\": \"{}\", \"inter_cgroup\": {}, \"intra_cgroup\": {}, \
                 \"total\": {}}}{}\n",
                escape(&b.label),
                num(b.inter_cgroup),
                num(b.intra_cgroup),
                num(b.total()),
                if bi + 1 < bars.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ]\n  }}{}\n",
            if gi + 1 < groups.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

/// Render Fig. 15 bars as text.
pub fn render_fig15(groups: &[(String, Vec<EnergyBar>)]) -> String {
    let mut s = String::new();
    for (name, bars) in groups {
        s.push_str(&format!("== {name} — Average energy (pJ/bit) ==\n"));
        for b in bars {
            s.push_str(&format!(
                "  {:<22} inter-C-group {:>7.1}  intra-C-group {:>6.1}  total {:>7.1}\n",
                b.label,
                b.inter_cgroup,
                b.intra_cgroup,
                b.total()
            ));
        }
    }
    s
}

/// VC-scheme ablation (Sec. IV-B): the Reduced discipline (3 VCs minimal /
/// 4 Valiant, chain-walk up*/down* routing in shared-VC W-groups) against
/// the Baseline discipline (4/6 VCs, XY everywhere). The paper claims the
/// VC reduction; this experiment quantifies what its legality constraints
/// cost in latency and saturation throughput under our interpretation of
/// the Property-1/2 interconnect (see DESIGN.md).
pub fn vc_ablation(effort: Effort) -> Vec<Figure> {
    let s = effort.small();
    let sm = effort.medium();
    let mut figs = Vec::new();
    // Local scale: one W-group.
    {
        let p = SlParams::radix16().with_wgroups(1);
        let mut fig = Figure::new("ablation-local", "VC schemes, 1 W-group: Uniform");
        for (scheme, label) in [
            (VcScheme::Baseline, "Baseline-4VC"),
            (VcScheme::Reduced, "Reduced-3VC"),
        ] {
            let bench = Bench::switchless(&p, RouteMode::Minimal, scheme);
            fig.push(Curve::new(
                label,
                sweep(&bench, &cfg(s), PatternSpec::Uniform, &rates(2.0, 8)),
            ));
        }
        figs.push(fig);
    }
    // Global scale with Valiant misrouting under worst-case traffic, where
    // the intermediate-W-group VC matters most.
    {
        let p = SlParams::radix16().with_wgroups(9);
        let mut fig = Figure::new(
            "ablation-global",
            "VC schemes, 9 W-groups: Worst-case + Valiant",
        );
        for (scheme, label) in [
            (VcScheme::Baseline, "Baseline-6VC"),
            (VcScheme::Reduced, "Reduced-4VC"),
        ] {
            let bench = Bench::switchless(&p, RouteMode::Valiant, scheme);
            fig.push(Curve::new(
                label,
                sweep(&bench, &cfg(sm), PatternSpec::WorstCase, &rates(0.5, 6)),
            ));
        }
        figs.push(fig);
    }
    figs
}
