//! Per-figure-family benches at bounded scale: each paper experiment
//! family is exercised end-to-end (topology build → routing → simulation →
//! sweep) on configurations small enough for Criterion, so `cargo bench`
//! both times the engine on every workload shape and acts as a smoke test
//! for the whole harness. Full-scale regeneration lives in the `repro`
//! binary, not here.

use criterion::{criterion_group, criterion_main, Criterion};
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::{
    AdaptiveConfig, Bench, PatternSpec, SaturationReport, Session, SweepConfig, SweepPoint,
};
use wsdf_bench::{figures, Effort};
use wsdf_topo::{SlParams, SwParams};
use wsdf_traffic::{PermKind, RingDirection};

fn quick() -> SweepConfig {
    SweepConfig::default().scaled(0.05)
}

fn sweep(bench: &Bench, cfg: &SweepConfig, spec: PatternSpec, rates: &[f64]) -> Vec<SweepPoint> {
    Session::bench(bench)
        .sweep(cfg, spec, rates)
        .unwrap()
        .report
}

fn adaptive_sweep(bench: &Bench, cfg: &AdaptiveConfig, spec: PatternSpec) -> SaturationReport {
    Session::bench(bench).adaptive(cfg, spec).unwrap().report
}

fn quick_adaptive() -> AdaptiveConfig {
    AdaptiveConfig {
        start_chip: 0.2,
        ..Default::default()
    }
    .scaled(0.05)
}

fn bench_small_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_smoke");
    g.sample_size(10);
    g.bench_function("fig10ab", |b| b.iter(|| figures::fig10ab(Effort::Smoke)));
    g.bench_function("fig14", |b| b.iter(|| figures::fig14(Effort::Smoke)));
    g.finish();
}

fn bench_figure_families_reduced_scale(c: &mut Criterion) {
    // Fig. 11 family (global uniform) on a 5-W-group system.
    let mut g = c.benchmark_group("figure_families");
    g.sample_size(10);
    g.bench_function("global_uniform_5wg", |b| {
        let p = SlParams::radix16().with_wgroups(5);
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        b.iter(|| sweep(&bench, &quick(), PatternSpec::Uniform, &[0.2, 0.4, 0.6]));
    });
    // Fig. 10(d) family: permutation traffic on one W-group.
    g.bench_function("local_bitreverse_1wg", |b| {
        let p = SlParams::radix16().with_wgroups(1);
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        b.iter(|| {
            sweep(
                &bench,
                &quick(),
                PatternSpec::Permutation(PermKind::BitReverse),
                &[0.5, 1.0, 1.5],
            )
        });
    });
    // Fig. 13 family: worst-case + Valiant on 5 W-groups.
    g.bench_function("worstcase_valiant_5wg", |b| {
        let p = SlParams::radix16().with_wgroups(5);
        let bench = Bench::switchless(&p, RouteMode::Valiant, VcScheme::Baseline);
        b.iter(|| sweep(&bench, &quick(), PatternSpec::WorstCase, &[0.15, 0.3]));
    });
    // Fig. 14 family: bidirectional W-group rings.
    g.bench_function("allreduce_bi_1wg", |b| {
        let p = SlParams::radix16().with_wgroups(1);
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        b.iter(|| {
            sweep(
                &bench,
                &quick(),
                PatternSpec::RingWGroup(RingDirection::Bidirectional),
                &[0.6, 1.2],
            )
        });
    });
    // Baseline comparison path (switch-based Dragonfly).
    g.bench_function("switchbased_uniform_5grp", |b| {
        let p = SwParams::radix16().with_groups(5);
        let bench = Bench::switchbased(&p, RouteMode::Minimal);
        b.iter(|| sweep(&bench, &quick(), PatternSpec::Uniform, &[0.3, 0.6]));
    });
    // Adaptive saturation search: the full two-phase driver (geometric
    // coarse scan + knee bisection) on one W-group — times the per-figure
    // cost of the grid-free workflow.
    g.bench_function("adaptive_saturation_1wg", |b| {
        let p = SlParams::radix16().with_wgroups(1);
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        b.iter(|| adaptive_sweep(&bench, &quick_adaptive(), PatternSpec::Uniform));
    });
    g.finish();
}

fn bench_vc_ablation(c: &mut Criterion) {
    // Baseline vs Reduced VC scheme at identical load: the engine-time
    // cost of the paper's VC reduction (the latency/throughput cost is
    // `repro ablation`).
    let mut g = c.benchmark_group("vc_ablation");
    g.sample_size(10);
    for (scheme, name) in [
        (VcScheme::Baseline, "baseline_4vc"),
        (VcScheme::Reduced, "reduced_3vc"),
    ] {
        g.bench_function(name, |b| {
            let p = SlParams::radix16().with_wgroups(1);
            let bench = Bench::switchless(&p, RouteMode::Minimal, scheme);
            b.iter(|| sweep(&bench, &quick(), PatternSpec::Uniform, &[0.4, 0.8]));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_small_figures,
    bench_figure_families_reduced_scale,
    bench_vc_ablation
);
criterion_main!(benches);
