//! Table benches: the analytic models are cheap; these benches both time
//! them and act as a regression guard that they keep producing output.

use criterion::{criterion_group, criterion_main, Criterion};
use wsdf_bench::tables;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table_i", |b| b.iter(tables::table_i));
    g.bench_function("table_ii", |b| b.iter(tables::table_ii));
    g.bench_function("table_iii", |b| b.iter(tables::table_iii_text));
    g.bench_function("table_iv", |b| b.iter(tables::table_iv));
    g.bench_function("fig9_layout", |b| b.iter(tables::fig9));
    g.bench_function("equations", |b| b.iter(tables::equations_summary));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
