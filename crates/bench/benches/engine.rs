//! Engine microbenchmarks: router-cycle throughput, topology construction,
//! and small end-to-end simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsdf::routing::{RouteMode, VcScheme};
use wsdf::workload::tenancy::ServingSpec;
use wsdf::{Bench, PatternSpec, ServingReport, Session, Workload, WorkloadReport, WorkloadUnits};
use wsdf_sim::{Metrics, SimConfig, TrafficPattern};
use wsdf_topo::{FaultSet, FaultSpec, SlParams, SwParams, SwitchFabric, SwitchlessFabric};

fn quick_cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 50,
        measure_cycles: 200,
        drain_cycles: 0,
        ..Default::default()
    }
}

// Session-backed one-liners so every sample times the same frontend the
// harness uses (trace disabled — the zero-cost claim is part of what the
// baselines pin).
fn run(bench: &Bench, cfg: &SimConfig, pat: &dyn TrafficPattern) -> Metrics {
    Session::bench(bench)
        .sim(cfg.clone())
        .metrics(pat)
        .unwrap()
        .report
}

fn run_workload(
    bench: &Bench,
    cfg: &SimConfig,
    wl: &Workload,
    units: &WorkloadUnits,
) -> WorkloadReport {
    Session::bench(bench)
        .sim(cfg.clone())
        .workload(wl, units)
        .unwrap()
        .report
}

fn run_serving(bench: &Bench, cfg: &SimConfig, spec: &ServingSpec) -> ServingReport {
    Session::bench(bench)
        .sim(cfg.clone())
        .serving(spec)
        .unwrap()
        .report
}

fn bench_topology_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    g.sample_size(20);
    g.bench_function("switchless_radix16_full", |b| {
        let p = SlParams::radix16();
        b.iter(|| SwitchlessFabric::build(&p));
    });
    g.bench_function("switchbased_radix16_full", |b| {
        let p = SwParams::radix16();
        b.iter(|| SwitchFabric::build(&p));
    });
    g.finish();
}

fn bench_simulation_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for load in [0.2f64, 0.6] {
        g.bench_with_input(
            BenchmarkId::new("wgroup_uniform", format!("{load}")),
            &load,
            |b, &load| {
                let p = SlParams::radix16().with_wgroups(1);
                let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
                let pat = bench.pattern(PatternSpec::Uniform, load);
                b.iter(|| run(&bench, &quick_cfg(), pat.as_ref()));
            },
        );
    }
    g.bench_function("mesh4x4_uniform_0.5", |b| {
        let bench = Bench::single_mesh(4, 2, 1);
        let pat = bench.pattern(PatternSpec::Uniform, 0.5);
        b.iter(|| run(&bench, &quick_cfg(), pat.as_ref()));
    });
    g.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsp_partitions");
    g.sample_size(10);
    let p = SlParams::radix16().with_wgroups(5);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    // All iterations share the one process-wide persistent executor
    // (wsdf_exec::global_pool), so this measures pure BSP cycle cost —
    // no thread creation is included in any sample.
    for parts in [1usize, 2, 4, 8] {
        g.meta("partitions", parts);
        g.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, &parts| {
            let mut cfg = quick_cfg();
            cfg.partitions = parts;
            let pat = bench.pattern(PatternSpec::Uniform, 0.15);
            b.iter(|| run(&bench, &cfg, pat.as_ref()));
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    // One W-group of the radix-16 switch-less fabric, one participant per
    // chip — the same setup as `repro collectives`, at reduced payload.
    let p = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    let participants: Vec<u32> = (0..bench.scope.num_chips())
        .map(|c| bench.scope.node_of(c, 0))
        .collect();
    let cases = [
        (
            "ring_allreduce_32x64",
            Workload::ring_allreduce(&participants, 64),
        ),
        ("all_to_all_32x4", Workload::all_to_all(&participants, 4)),
    ];
    for (name, wl) in cases {
        g.meta("workload", &wl.name);
        g.bench_function(name, |b| {
            let cfg = SimConfig::default();
            b.iter(|| run_workload(&bench, &cfg, &wl, &WorkloadUnits::default()));
        });
    }
    g.finish();
}

fn bench_resilience(c: &mut Criterion) {
    let mut g = c.benchmark_group("resilience");
    g.sample_size(10);
    // Same W-group as the simulation group; fraction 0 exercises the
    // pristine path through the fault-capable entry points (the zero-cost
    // claim), 0.1 the detour oracle + live-pattern filtering.
    let p = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    for frac in [0.0f64, 0.1] {
        let fs = FaultSet::sample(
            bench.fabric.net(),
            &FaultSpec {
                link_fraction: frac,
                router_fraction: frac / 2.0,
                ..Default::default()
            },
        );
        let fb = bench.with_fault_set(&fs);
        g.meta("fault_fraction", frac);
        g.bench_with_input(
            BenchmarkId::new("wgroup_uniform_0.15", format!("{frac}")),
            &frac,
            |b, _| {
                let pat = fb.pattern(PatternSpec::Uniform, 0.15);
                b.iter(|| run(&fb, &quick_cfg(), pat.as_ref()));
            },
        );
    }
    g.finish();
}

fn bench_idle(c: &mut Criterion) {
    let mut g = c.benchmark_group("idle");
    g.sample_size(10);
    let p = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);

    // Near-zero offered load over a long window: almost every cycle is
    // globally idle, so the event-driven engine fast-forwards across the
    // gaps between injections (the dense loop pays for every cycle). The
    // recorded busy/skipped split shows how much of the window was jumped.
    {
        let cfg = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 5000,
            drain_cycles: 300,
            ..SimConfig::default()
        };
        let pat = bench.pattern(PatternSpec::Uniform, 0.001);
        let m = run(&bench, &cfg, pat.as_ref());
        g.meta("busy_cycles", m.busy_cycles);
        g.meta("skipped_cycles", m.skipped_cycles);
        g.bench_function("zero_load_probe", |b| {
            b.iter(|| run(&bench, &cfg, pat.as_ref()));
        });
    }

    // Latency-bound closed-loop ring allreduce, one participant per
    // C-group: every ring hop crosses a latency-8 long-reach link, so
    // between a step's tail flit entering the link and its head arriving
    // the whole fabric goes quiet and the engine fast-forwards the gap.
    // (A ring over *adjacent chips* never records a skipped cycle: the
    // mesh-local pairs complete early and release their next step
    // immediately, keeping some wake due every single cycle — that
    // variant measures only the active-set win, not fast-forward.)
    {
        let participants: Vec<u32> = (0..bench.scope.num_chips())
            .step_by(bench.scope.chips_per_cgroup as usize)
            .map(|c| bench.scope.node_of(c, 0))
            .collect();
        let wl = Workload::ring_allreduce(&participants, 8);
        let cfg = SimConfig::default();
        let r = run_workload(&bench, &cfg, &wl, &WorkloadUnits::default());
        g.meta("busy_cycles", r.busy_cycles);
        g.meta("skipped_cycles", r.skipped_cycles);
        g.bench_function("drain_tail", |b| {
            b.iter(|| run_workload(&bench, &cfg, &wl, &WorkloadUnits::default()));
        });
    }

    // Heavy faults thin the live pairs out: what survives is sparse
    // traffic over a mostly idle fabric, the resilience sweep's common
    // case at the high-fraction end.
    {
        let fs = FaultSet::sample(
            bench.fabric.net(),
            &FaultSpec {
                link_fraction: 0.2,
                router_fraction: 0.1,
                ..Default::default()
            },
        );
        let fb = bench.with_fault_set(&fs);
        let cfg = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 2000,
            drain_cycles: 300,
            ..SimConfig::default()
        };
        let pat = fb.pattern(PatternSpec::Uniform, 0.02);
        let m = run(&fb, &cfg, pat.as_ref());
        g.meta("busy_cycles", m.busy_cycles);
        g.meta("skipped_cycles", m.skipped_cycles);
        g.bench_function("sparse_fault", |b| {
            b.iter(|| run(&fb, &cfg, pat.as_ref()));
        });
    }
    g.finish();
}

fn bench_serving(c: &mut Criterion) {
    use wsdf::workload::tenancy::{ArrivalProcess, ServingSpec};
    use wsdf_bench::serving::serving_mix;

    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    // Same W-group as the other groups; the `repro serving` class mix at
    // smoke payload. Light vs heavy Poisson pressure bounds the
    // multi-tenant scheduling overhead from a few in-flight jobs to an
    // admission-saturated fabric; the recorded job count pins what each
    // sample actually served.
    let p = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    let cfg = SimConfig::default();
    for (name, rate) in [("light_arrival", 2.0f64), ("heavy_arrival", 20.0)] {
        let spec = ServingSpec {
            seed: 0x5E21,
            arrivals: ArrivalProcess::Poisson {
                rate_per_kcycle: rate,
                horizon: 1_500,
            },
            max_jobs: 16,
            classes: serving_mix(16, 6_400),
        };
        let r = run_serving(&bench, &cfg, &spec);
        g.meta(format!("jobs_{name}"), r.jobs.len());
        g.bench_function(name, |b| {
            b.iter(|| run_serving(&bench, &cfg, &spec));
        });
    }
    // The same fixed-trace mix on a 2%-degraded fabric: placements over
    // live endpoints plus detour routing under multi-tenant load.
    {
        let fs = FaultSet::sample(bench.fabric.net(), &FaultSpec::links(0.02, 13));
        let fb = bench.with_fault_set(&fs);
        let spec = ServingSpec {
            seed: 0x5E21,
            arrivals: ArrivalProcess::Trace {
                cycles: (0..12).map(|k| k * 200).collect(),
            },
            max_jobs: 64,
            classes: serving_mix(16, 6_400),
        };
        let r = run_serving(&fb, &cfg, &spec);
        g.meta("jobs_faulted", r.jobs.len());
        g.bench_function("faulted_trace", |b| {
            b.iter(|| run_serving(&fb, &cfg, &spec));
        });
    }
    g.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange");
    g.sample_size(10);
    // The largest fabric the locality partitioner strictly wins on in the
    // quality suite: radix-16 at 5 W-groups, 8 partitions. Same traffic,
    // same partition count — only the router→partition assignment (and
    // with it the sparse-exchange adjacency and boundary volume) differs,
    // so the timing delta is the barrier cost of the extra cut channels.
    let p = SlParams::radix16().with_wgroups(5);
    let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
    let net = bench.fabric.net();
    let parts = 8usize;
    let schemes: Vec<(&str, Vec<u32>)> = vec![
        ("blocks", wsdf_topo::contiguous_blocks(net, parts)),
        ("locality", wsdf_topo::locality_partition(net, parts, None)),
    ];
    for (name, assign) in schemes {
        let stats = wsdf_topo::partition_stats(net, &assign, None);
        g.meta(format!("cut_channels_{name}"), stats.cut_channels);
        let mut cfg = quick_cfg();
        cfg.partition_map = Some(std::sync::Arc::new(assign));
        g.bench_with_input(BenchmarkId::new("uniform_0.15_p8", name), &cfg, |b, cfg| {
            let pat = bench.pattern(PatternSpec::Uniform, 0.15);
            b.iter(|| run(&bench, cfg, pat.as_ref()));
        });
    }
    g.finish();
}

fn bench_partition_quality(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_quality");
    g.sample_size(10);
    // Partitioner compile cost on the quality suite's large fabric, with
    // the achieved cut recorded next to the blocks baseline. This is
    // network-compile-time work (runs once per simulation), so the bar is
    // "cheap relative to a run", not "cheap per cycle".
    let p = SlParams::radix16().with_wgroups(5);
    let net = SwitchlessFabric::build(&p).net;
    for parts in [2usize, 8] {
        let blocks = wsdf_topo::contiguous_blocks(&net, parts);
        let locality = wsdf_topo::locality_partition(&net, parts, None);
        g.meta(
            format!("cut_blocks_p{parts}"),
            wsdf_topo::partition_stats(&net, &blocks, None).cut_channels,
        );
        g.meta(
            format!("cut_locality_p{parts}"),
            wsdf_topo::partition_stats(&net, &locality, None).cut_channels,
        );
        g.bench_with_input(BenchmarkId::new("locality", parts), &parts, |b, &parts| {
            b.iter(|| wsdf_topo::locality_partition(&net, parts, None));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_topology_build,
    bench_simulation_cycles,
    bench_parallel_scaling,
    bench_collectives,
    bench_resilience,
    bench_serving,
    bench_idle,
    bench_exchange,
    bench_partition_quality
);
criterion_main!(benches);
