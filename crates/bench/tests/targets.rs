//! Coverage test for the `repro` target registry: every registered target
//! must actually run in `--smoke` mode without panicking, and the
//! aggregate targets must be composed of registered members — so a target
//! can neither rot silently nor be listed without a runner.

use wsdf_bench::targets::{aggregate_members, find, listing, run_target, AGGREGATES, TARGETS};
use wsdf_bench::Effort;

/// Every non-full-scale leaf target runs end to end in smoke mode. The
/// full-scale figures (radix-16/32 at 41/145 groups) take minutes per
/// target even in release builds, so they are only asserted to resolve
/// (`full_scale_targets_resolve` below) and run on demand via
/// `repro <target> --smoke`.
#[test]
fn every_registered_target_runs_in_smoke_mode() {
    for t in TARGETS {
        if t.full_scale {
            continue;
        }
        let out = run_target(t.name, Effort::Smoke)
            .unwrap_or_else(|| panic!("registered target '{}' did not resolve", t.name));
        assert!(
            !out.text.is_empty(),
            "target '{}' produced no output",
            t.name
        );
    }
}

/// The resilience target is registered, non-full-scale (so the test above
/// really runs it), and emits a JSON artifact.
#[test]
fn resilience_target_is_registered_and_serializes() {
    let t = find("resilience").expect("resilience must be registered");
    assert!(!t.full_scale);
    let out = run_target("resilience", Effort::Smoke).unwrap();
    assert!(out.text.contains("resilience"));
    let (id, json) = &out.json[0];
    assert_eq!(id, "resilience");
    wsdf::json::Value::parse(json).expect("resilience JSON must parse");
}

/// The serving target is registered, non-full-scale (so the smoke-mode
/// coverage above really runs the multi-tenant mix), reachable from
/// `all`, and emits a parseable JSON artifact.
#[test]
fn serving_target_is_registered_and_serializes() {
    let t = find("serving").expect("serving must be registered");
    assert!(!t.full_scale);
    assert!(aggregate_members("all").unwrap().contains(&"serving"));
    let out = run_target("serving", Effort::Smoke).unwrap();
    assert!(out.text.contains("multi-tenant"));
    let (id, json) = &out.json[0];
    assert_eq!(id, "serving");
    let arr = wsdf::json::Value::parse(json).expect("serving JSON must parse");
    assert!(!arr.as_arr().unwrap().is_empty());
}

/// Full-scale targets still resolve to runners (they are skipped above
/// for time, not because they are unwired; their runners compile against
/// the same figure functions the registry names).
#[test]
fn full_scale_targets_resolve() {
    let full: Vec<&str> = TARGETS
        .iter()
        .filter(|t| t.full_scale)
        .map(|t| t.name)
        .collect();
    assert!(!full.is_empty());
    for name in full {
        assert!(find(name).is_some());
    }
}

/// Aggregates reference only registered leaves, and the listing covers
/// every name (leaves + aggregates).
#[test]
fn aggregates_and_listing_are_consistent() {
    let l = listing();
    for t in TARGETS {
        assert!(l.contains(t.name), "listing misses '{}'", t.name);
    }
    for (name, _) in AGGREGATES {
        assert!(l.contains(name), "listing misses aggregate '{name}'");
        for m in aggregate_members(name).unwrap() {
            assert!(
                find(m).is_some(),
                "aggregate '{name}' references unregistered '{m}'"
            );
        }
    }
    // `all` must cover every leaf: a new target cannot be forgotten.
    let all = aggregate_members("all").unwrap();
    for t in TARGETS {
        assert!(all.contains(&t.name), "'all' misses '{}'", t.name);
    }
}

/// Unknown names are rejected, not silently ignored.
#[test]
fn unknown_target_is_rejected() {
    assert!(run_target("fig99", Effort::Smoke).is_none());
    assert!(find("fig99").is_none());
}
