//! Table III — "comparison of key specifications between the switch-less
//! Dragonfly and other topologies" (Sec. III-C).
//!
//! Every derivable cell is computed from the topology's construction
//! formulas and unit-tested against the paper's printed values. Cable
//! *length* uses the paper's flat-layout model: inter-cabinet links times
//! an average cabinet-to-cabinet run of `κ·E` (κ = 0.44, a grid-averaged
//! constant chosen once for all rows; see DESIGN.md — the paper does not
//! state its constant, and the *ratio* between rows is the claim that
//! matters). The DOJO row mixes published DOJO facts with the paper's
//! diameter expression because the original table cell text is not fully
//! recoverable; it is marked estimated.

use crate::equations::SlAnalytic;

/// Average inter-cabinet cable run in units of the datacenter scale E.
pub const CABLE_RUN_FACTOR: f64 = 0.44;

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct TopologyRow {
    /// Topology name.
    pub name: &'static str,
    /// Network ports per chip.
    pub chip_radix: u32,
    /// Switch radix (None for switch-less).
    pub sw_radix: Option<u32>,
    /// Number of switches.
    pub switches: u64,
    /// Number of cabinets.
    pub cabinets: u64,
    /// Number of processors (chips).
    pub processors: u64,
    /// Total cable count (terminal + local + global), if modeled.
    pub cable_count: Option<u64>,
    /// Total cable length in units of E, if modeled.
    pub cable_length_e: Option<f64>,
    /// Local throughput (flits/cycle/chip), with the intra-W-group value
    /// in parentheses where the paper distinguishes two scopes.
    pub t_local: &'static str,
    /// Global throughput (flits/cycle/chip).
    pub t_global: &'static str,
    /// Diameter expression.
    pub diameter: &'static str,
    /// True if any cell is an estimate rather than a derivation.
    pub estimated: bool,
}

/// Nodes per cabinet in the paper's density model (64 blades × 2 nodes).
const NODES_PER_CABINET: u64 = 128;
/// Non-ToR switches per cabinet.
const CORE_SW_PER_CABINET: u64 = 32;

/// Three-stage fat-tree switch count for `n` endpoints on radix-`r`
/// switches: 5/4 · n·... computed structurally: edge n/(r/2), aggregation
/// equal, core (n/(r/2))/2.
fn fat_tree_switches(n: u64, r: u64) -> u64 {
    let edge = n / (r / 2);
    let core = edge / 2;
    edge + edge + core
}

/// Fat-tree rows share the cabinet model: endpoints at 128/cabinet with
/// edge switches at ToR, remaining switches at 32/cabinet.
fn fat_tree_cabinets(n: u64, edge: u64, switches: u64) -> u64 {
    n / NODES_PER_CABINET + (switches - edge) / CORE_SW_PER_CABINET
}

/// The full Table III.
pub fn table_iii() -> Vec<TopologyRow> {
    let mut rows = Vec::new();

    // --- 2D-Mesh & Switch (DOJO) -----------------------------------------
    // Published DOJO facts: D1 chip-radix 8 (2D mesh), one centralized
    // switch layer at the mesh edge, ExaPOD ≈ 120 tiles × 25 dies = 3000
    // dies in ~10 cabinets. Diameter from the paper's row.
    rows.push(TopologyRow {
        name: "2D-Mesh & Switch (DOJO)",
        chip_radix: 8,
        sw_radix: None,
        switches: 1,
        cabinets: 10,
        processors: 3000,
        cable_count: None,
        cable_length_e: None,
        t_local: "2",
        t_global: "0.53",
        diameter: "2H*l + 18Hsr",
        estimated: true,
    });

    // --- Three-stage Fat-Trees -------------------------------------------
    let (r, n1) = (64u64, 65_536u64);
    let edge = n1 / (r / 2);
    let sw1 = fat_tree_switches(n1, r);
    rows.push(TopologyRow {
        name: "Three-Stage Fat-Tree (1-port)",
        chip_radix: 1,
        sw_radix: Some(64),
        switches: sw1,
        cabinets: fat_tree_cabinets(n1, edge, sw1),
        processors: n1,
        cable_count: None,
        cable_length_e: None,
        t_local: "1",
        t_global: "1",
        diameter: "2Hg + 2Hl + 2H*l",
        estimated: false,
    });
    rows.push(TopologyRow {
        name: "Three-Stage Fat-Tree (4-plane)",
        chip_radix: 4,
        sw_radix: Some(64),
        switches: 4 * sw1,
        cabinets: fat_tree_cabinets(n1, 4 * edge, 4 * sw1),
        processors: n1,
        cable_count: None,
        cable_length_e: None,
        t_local: "4",
        t_global: "4",
        diameter: "2Hg + 2Hl + 2H*l",
        estimated: false,
    });
    // Tapered 3:1: 4 planes, edge switches 48 down / 16 up.
    let n3 = 98_304u64;
    let edge3 = n3 / 48; // per plane
    let uplinks = edge3 * 16;
    let aggr3 = uplinks / (r / 2);
    let core3 = aggr3 / 2;
    let sw3 = 4 * (edge3 + aggr3 + core3);
    rows.push(TopologyRow {
        name: "Three-Stage F-T (3:1 Taper)",
        chip_radix: 4,
        sw_radix: Some(64),
        switches: sw3,
        cabinets: fat_tree_cabinets(n3, 4 * edge3, sw3),
        processors: n3,
        cable_count: None,
        cable_length_e: None,
        t_local: "4",
        t_global: "4/3",
        diameter: "2Hg + 2Hl + 2H*l",
        estimated: false,
    });

    // --- HammingMesh (Hx4Mesh) -------------------------------------------
    // 4×4-chip boards; the global backbone reuses the fat-tree, boards at
    // 16 per cabinet.
    let boards = n1 / 16;
    rows.push(TopologyRow {
        name: "1-Plane Hx4Mesh",
        chip_radix: 4,
        sw_radix: Some(64),
        switches: sw1,
        cabinets: boards / 16 + (sw1 - edge) / CORE_SW_PER_CABINET,
        processors: n1,
        cable_count: None,
        cable_length_e: None,
        t_local: "2",
        t_global: "1/2",
        diameter: "2Hg + 2Hl + 2H*l + 4Hsr",
        estimated: false,
    });
    rows.push(TopologyRow {
        name: "4-Plane Hx4Mesh",
        chip_radix: 16,
        sw_radix: Some(64),
        switches: 4 * sw1,
        cabinets: boards / 16 + (4 * sw1 - 4 * edge) / CORE_SW_PER_CABINET,
        processors: n1,
        cable_count: None,
        cable_length_e: None,
        t_local: "8",
        t_global: "2",
        diameter: "2Hg + 2Hl + 2H*l + 4Hsr",
        estimated: false,
    });

    // --- Co-packaged PolarFly (p = 32) -----------------------------------
    // PF(q=63): q² + q + 1 routers of radix q+1 = 64, 32 processors per
    // co-package, 8 packages per cabinet.
    let q = 63u64;
    let pf_routers = q * q + q + 1;
    rows.push(TopologyRow {
        name: "Co-Packaged PolarFly (p=32)",
        chip_radix: 1,
        sw_radix: Some(64),
        switches: pf_routers,
        cabinets: pf_routers / 8,
        processors: 32 * pf_routers,
        cable_count: None,
        cable_length_e: None,
        t_local: "1",
        t_global: "1",
        diameter: "2Hg + 2Hsr",
        estimated: false,
    });

    // --- Dragonfly (Slingshot) -------------------------------------------
    // Radix 64 split 16:31:17 → 32 switches/group, 545 groups.
    let groups = 545u64;
    let spg = 32u64;
    let terminals = 16u64;
    let sw_df = groups * spg;
    let n_df = sw_df * terminals;
    let local_links = groups * (spg * (spg - 1) / 2);
    let global_links = groups * (groups - 1) / 2;
    let df_cables = n_df + local_links + global_links;
    // A group spans 4 cabinets (8 ToR switches each); locals between the
    // same cabinet are short, the rest count as inter-cabinet runs.
    let intra_cab_pairs = 4.0 * 28.0; // 4 cabinets × C(8,2)
    let local_inter_frac = 1.0 - intra_cab_pairs / (spg * (spg - 1) / 2) as f64;
    let df_inter_links = local_links as f64 * local_inter_frac + global_links as f64;
    rows.push(TopologyRow {
        name: "Dragonfly (Slingshot)",
        chip_radix: 1,
        sw_radix: Some(64),
        switches: sw_df,
        cabinets: n_df / NODES_PER_CABINET,
        processors: n_df,
        cable_count: Some(df_cables),
        cable_length_e: Some(df_inter_links * CABLE_RUN_FACTOR),
        t_local: "1(1)",
        t_global: "1",
        diameter: "Hg + 2Hl + 2H*l",
        estimated: false,
    });

    // --- Switch-less Dragonfly (this paper) -------------------------------
    let s = SlAnalytic::case_study();
    let sl_groups = s.g() as u64;
    let sl_ab = s.ab() as u64;
    let sl_locals = sl_groups * (sl_ab * (sl_ab - 1) / 2);
    let sl_globals = sl_groups * (sl_groups - 1) / 2;
    rows.push(TopologyRow {
        name: "Switch-less Dragonfly",
        chip_radix: s.n,
        sw_radix: None,
        switches: 0,
        cabinets: sl_groups, // one W-group (8 wafers) per cabinet
        processors: s.total_chiplets(),
        cable_count: Some(sl_locals + sl_globals),
        // Locals are intra-cabinet; only globals cross the floor.
        cable_length_e: Some(sl_globals as f64 * CABLE_RUN_FACTOR),
        t_local: "3(2)",
        t_global: "1",
        diameter: "Hg + 2Hl + 30Hsr",
        estimated: false,
    });

    rows
}

/// Render the table as aligned text (the harness's Table III output).
pub fn render(rows: &[TopologyRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:>5} {:>4} {:>7} {:>8} {:>10} {:>9} {:>9} {:>7} {:>7}  {}\n",
        "Interconnection Network",
        "chipR",
        "swR",
        "#SW",
        "#Cab",
        "#Proc",
        "Cables",
        "Len(·E)",
        "Tlocal",
        "Tglob",
        "Diameter"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<30} {:>5} {:>4} {:>7} {:>8} {:>10} {:>9} {:>9} {:>7} {:>7}  {}{}\n",
            r.name,
            r.chip_radix,
            r.sw_radix.map_or("-".into(), |x| x.to_string()),
            r.switches,
            r.cabinets,
            r.processors,
            r.cable_count
                .map_or("-".into(), |x| format!("{}K", x / 1000)),
            r.cable_length_e
                .map_or("-".into(), |x| format!("{:.0}K", x / 1000.0)),
            r.t_local,
            r.t_global,
            r.diameter,
            if r.estimated { "  (est.)" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str) -> TopologyRow {
        table_iii()
            .into_iter()
            .find(|r| r.name.contains(name))
            .unwrap_or_else(|| panic!("row {name} missing"))
    }

    #[test]
    fn fat_tree_rows_match_paper() {
        let r1 = row("Fat-Tree (1-port)");
        assert_eq!(r1.switches, 5120);
        assert_eq!(r1.cabinets, 608);
        assert_eq!(r1.processors, 65536);
        let r4 = row("Fat-Tree (4-plane)");
        assert_eq!(r4.switches, 20480);
        assert_eq!(r4.cabinets, 896);
        let rt = row("3:1 Taper");
        assert_eq!(rt.switches, 14336);
        assert_eq!(rt.cabinets, 960);
        assert_eq!(rt.processors, 98304);
    }

    #[test]
    fn hammingmesh_rows_match_paper() {
        let h1 = row("1-Plane Hx4Mesh");
        assert_eq!(h1.switches, 5120);
        assert_eq!(h1.cabinets, 352);
        let h4 = row("4-Plane Hx4Mesh");
        assert_eq!(h4.switches, 20480);
        assert_eq!(h4.cabinets, 640);
    }

    #[test]
    fn polarfly_row_matches_paper() {
        let p = row("PolarFly");
        assert_eq!(p.switches, 4033);
        assert_eq!(p.cabinets, 504);
        assert_eq!(p.processors, 129_056);
    }

    #[test]
    fn slingshot_row_matches_paper() {
        let d = row("Slingshot");
        assert_eq!(d.switches, 17_440);
        assert_eq!(d.cabinets, 2_180);
        assert_eq!(d.processors, 279_040);
        // "N=698K" cables.
        let cables = d.cable_count.unwrap();
        assert!((697_000..700_000).contains(&cables), "{cables}");
        // "L=154K·E" — our κ model lands within 5%.
        let len = d.cable_length_e.unwrap();
        assert!((len - 154_000.0).abs() / 154_000.0 < 0.05, "{len}");
    }

    #[test]
    fn switchless_row_matches_paper() {
        let s = row("Switch-less");
        assert_eq!(s.switches, 0);
        assert_eq!(s.cabinets, 545);
        assert_eq!(s.processors, 279_040);
        // "N=419K" cables.
        let cables = s.cable_count.unwrap();
        assert!((418_000..420_000).contains(&cables), "{cables}");
        // "L=73K·E": globals only; our κ model lands within 12%.
        let len = s.cable_length_e.unwrap();
        assert!((len - 73_000.0).abs() / 73_000.0 < 0.12, "{len}");
    }

    #[test]
    fn headline_claims_hold() {
        // The paper's cost claims: ¼ the cabinets, < ½ the cable length,
        // no switches, same processor count as max-scale Slingshot.
        let d = row("Slingshot");
        let s = row("Switch-less");
        assert_eq!(s.processors, d.processors);
        assert!(s.cabinets * 4 == d.cabinets);
        assert!(s.cable_length_e.unwrap() < d.cable_length_e.unwrap() / 2.0);
        assert_eq!(s.switches, 0);
    }

    #[test]
    fn render_contains_all_rows() {
        let txt = render(&table_iii());
        for name in [
            "DOJO",
            "Fat-Tree",
            "Hx4Mesh",
            "PolarFly",
            "Slingshot",
            "Switch-less",
        ] {
            assert!(txt.contains(name), "{name} missing from render");
        }
    }
}
