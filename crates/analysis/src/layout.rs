//! Wafer layout feasibility model (Sec. V-A1, Fig. 9).
//!
//! The paper places one C-group of 16 chiplets (~12 mm × 12 mm each) with
//! SR-LR conversion modules (~2 mm × 3 mm) and off-wafer IO connectors on
//! a 60 mm × 60 mm region of the wafer, using InFO-SoW design rules
//! (55 µm bump pitch, 5 µm line space). Each on-wafer channel is 128 UCIe
//! lanes (two ×64 PHYs) at 32 Gb/s → 4096 Gb/s/port; each off-C-group
//! channel is 8 lanes of 112G SerDes → 896 Gb/s/port. This module computes
//! those derived quantities and basic routability checks so the Fig. 9
//! claims can be regenerated.

/// Geometry and interface parameters of a C-group layout.
#[derive(Debug, Clone)]
pub struct CGroupLayout {
    /// Chiplets per side of the C-group grid.
    pub grid: u32,
    /// Chiplet side length in mm.
    pub chiplet_mm: f64,
    /// Spacing between chiplets (PHY shoreline) in mm.
    pub spacing_mm: f64,
    /// SR-LR conversion module size in mm (width, height).
    pub conv_module_mm: (f64, f64),
    /// External (off-C-group) channels per chiplet edge on the perimeter.
    pub channels_per_edge: u32,
    /// UCIe lanes per on-wafer channel.
    pub sr_lanes: u32,
    /// Per-lane rate of on-wafer lanes, Gb/s.
    pub sr_lane_gbps: f64,
    /// SerDes lanes (differential pairs) per off-wafer channel.
    pub lr_lanes: u32,
    /// Per-lane rate of off-wafer lanes, Gb/s.
    pub lr_lane_gbps: f64,
    /// Bump pitch on the wafer, µm.
    pub bump_pitch_um: f64,
    /// RDL line space, µm.
    pub line_space_um: f64,
}

impl CGroupLayout {
    /// The paper's Fig. 9 configuration.
    pub fn paper() -> Self {
        CGroupLayout {
            grid: 4,
            chiplet_mm: 12.0,
            spacing_mm: 2.0,
            conv_module_mm: (2.0, 3.0),
            channels_per_edge: 6,
            sr_lanes: 128,
            sr_lane_gbps: 32.0,
            lr_lanes: 8,
            lr_lane_gbps: 112.0,
            bump_pitch_um: 55.0,
            line_space_um: 5.0,
        }
    }

    /// C-group side length in mm (chiplets + spacing + conversion ring).
    pub fn side_mm(&self) -> f64 {
        let g = self.grid as f64;
        g * self.chiplet_mm + (g + 1.0) * self.spacing_mm + 2.0 * self.conv_module_mm.1
    }

    /// On-wafer (intra-C-group) channel bandwidth, Gb/s.
    pub fn sr_port_gbps(&self) -> f64 {
        self.sr_lanes as f64 * self.sr_lane_gbps
    }

    /// Off-wafer (external) channel bandwidth, Gb/s.
    pub fn lr_port_gbps(&self) -> f64 {
        self.lr_lanes as f64 * self.lr_lane_gbps
    }

    /// External ports of the C-group (perimeter chiplet edges × channels).
    pub fn external_ports(&self) -> u32 {
        4 * self.grid * self.channels_per_edge
    }

    /// Full-duplex bisection bandwidth of the on-wafer mesh, TB/s: a mesh
    /// cut crosses `grid` chiplet edges of `channels_per_edge` channels.
    pub fn bisection_tbps(&self) -> f64 {
        self.grid as f64 * self.channels_per_edge as f64 * self.sr_port_gbps() / 8.0 / 1000.0
    }

    /// Aggregate off-C-group bandwidth, TB/s.
    pub fn aggregate_tbps(&self) -> f64 {
        self.external_ports() as f64 * self.lr_port_gbps() / 8.0 / 1000.0
    }

    /// Total differential pairs led off the C-group.
    pub fn differential_pairs(&self) -> u32 {
        self.external_ports() * self.lr_lanes
    }

    /// Estimated total IOs including power/ground overhead (the paper
    /// reports ~5500 for 1536 pairs; ground/power roughly match signals).
    pub fn total_ios(&self) -> u32 {
        // Two wires per pair plus ~80% power/ground overhead.
        (self.differential_pairs() as f64 * 2.0 * 1.8).round() as u32
    }

    /// Signal escapes per chiplet edge: lanes that must route through the
    /// chiplet-to-chiplet shoreline.
    fn signals_per_shoreline(&self) -> u32 {
        self.channels_per_edge * self.sr_lanes
    }

    /// Routability of the chiplet shoreline: signals × line pitch must fit
    /// within the chiplet edge length across available RDL layers.
    pub fn shoreline_feasible(&self, rdl_layers: u32) -> bool {
        let wires = self.signals_per_shoreline() as f64;
        let pitch_mm = 2.0 * self.line_space_um / 1000.0; // line + space
        let needed_mm = wires * pitch_mm / rdl_layers as f64;
        needed_mm <= self.chiplet_mm
    }

    /// Bump-count feasibility of a conversion module: its area must hold
    /// the bumps for one LR channel (both directions + overhead).
    pub fn conv_module_feasible(&self) -> bool {
        let area_mm2 = self.conv_module_mm.0 * self.conv_module_mm.1;
        let pitch_mm = self.bump_pitch_um / 1000.0;
        let bumps_available = area_mm2 / (pitch_mm * pitch_mm);
        // 8 pairs TX + 8 pairs RX = 32 signal bumps, ~3× overhead.
        let bumps_needed = (self.lr_lanes * 2 * 2 * 3) as f64;
        bumps_available >= bumps_needed
    }

    /// Render the Fig. 9 summary (what the harness prints).
    pub fn summary(&self) -> String {
        format!(
            "C-group layout: {}x{} chiplets of {:.0}mm, side {:.0}mm\n\
             on-wafer channel: {} UCIe lanes @ {:.0}G = {:.0} Gb/s/port\n\
             off-wafer channel: {} SerDes lanes @ {:.0}G = {:.0} Gb/s/port\n\
             external ports: {}  differential pairs: {}  total IOs: ~{}\n\
             bisection: {:.1} TB/s  aggregate: {:.1} TB/s",
            self.grid,
            self.grid,
            self.chiplet_mm,
            self.side_mm(),
            self.sr_lanes,
            self.sr_lane_gbps,
            self.sr_port_gbps(),
            self.lr_lanes,
            self.lr_lane_gbps,
            self.lr_port_gbps(),
            self.external_ports(),
            self.differential_pairs(),
            self.total_ios(),
            self.bisection_tbps(),
            self.aggregate_tbps(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_fig9_numbers() {
        let l = CGroupLayout::paper();
        // "a C-group of 60mm × 60mm".
        assert!(
            (l.side_mm() - 64.0).abs() < 6.0,
            "side {:.1}mm",
            l.side_mm()
        );
        // "4096 Gb/s/port intra-C-group".
        assert_eq!(l.sr_port_gbps(), 4096.0);
        // "896 Gb/s/port long-reach".
        assert_eq!(l.lr_port_gbps(), 896.0);
        // "total number of IO channels ... 192" per C-group region,
        // "1536 pairs of differential ports".
        assert_eq!(l.external_ports(), 96);
        // The paper counts both directions: 96 duplex channels = 192
        // unidirectional channels, 96·8·2 = 1536 pairs.
        assert_eq!(l.differential_pairs() * 2, 1536);
        // "~5500 IOs including power and ground".
        let ios = l.total_ios() * 2;
        assert!((4800..=6200).contains(&ios), "IOs {ios}");
        // "total bisection ... 12TB/s": 24 channels × 4096 Gb/s ≈ 12.3 TB/s.
        assert!((l.bisection_tbps() - 12.0).abs() < 1.0);
        // "aggregation bandwidth ... 20.9TB/s" (both directions).
        assert!((l.aggregate_tbps() * 2.0 - 20.9).abs() < 1.0);
    }

    #[test]
    fn shoreline_routes_with_few_rdl_layers() {
        let l = CGroupLayout::paper();
        // 768 wires per shoreline at 10 µm pitch = 7.7 mm per layer: a
        // single layer fits a 12 mm edge.
        assert!(l.shoreline_feasible(1));
    }

    #[test]
    fn conversion_module_fits_bumps() {
        assert!(CGroupLayout::paper().conv_module_feasible());
    }

    #[test]
    fn infeasible_when_line_space_explodes() {
        let mut l = CGroupLayout::paper();
        l.line_space_um = 100.0;
        assert!(!l.shoreline_feasible(1));
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = CGroupLayout::paper().summary();
        assert!(s.contains("4096"));
        assert!(s.contains("896"));
    }
}
