//! Equations (1)–(7) of Sec. III-B, over the paper's general configuration
//! model: a C-group is an m×m grid of chiplets, each chiplet has `n`
//! interconnection interfaces (n/4 per edge), so a C-group exposes
//! `k = n·m` external ports.

/// Analytic switch-less Dragonfly configuration (the Sec. III-C case-study
/// model, not the simulated perimeter model).
#[derive(Debug, Clone, Copy)]
pub struct SlAnalytic {
    /// Interfaces per chiplet (`n`).
    pub n: u32,
    /// Chiplets per C-group side (`m`).
    pub m: u32,
    /// C-groups per wafer (`a`).
    pub a: u32,
    /// Wafers per W-group (`b`).
    pub b: u32,
}

impl SlAnalytic {
    /// The Sec. III-C case study: n=12, m=4, a=4, b=8 → 545 W-groups,
    /// 279040 chiplets (the Slingshot-scale comparison).
    pub fn case_study() -> Self {
        SlAnalytic {
            n: 12,
            m: 4,
            a: 4,
            b: 8,
        }
    }

    /// C-groups per W-group.
    pub fn ab(&self) -> u32 {
        self.a * self.b
    }

    /// External ports per C-group (`k = n·m`).
    pub fn k(&self) -> u32 {
        self.n * self.m
    }

    /// Global ports per C-group (`h = k − ab + 1`).
    pub fn h(&self) -> u32 {
        self.k() - self.ab() + 1
    }

    /// W-groups in the full system (`g = ab·h + 1`).
    pub fn g(&self) -> u32 {
        self.ab() * self.h() + 1
    }

    /// Equation (1): total chiplets `N = ab·m²·g`.
    pub fn total_chiplets(&self) -> u64 {
        self.ab() as u64 * (self.m * self.m) as u64 * self.g() as u64
    }

    /// Equation (2): global throughput bound
    /// `T_global < (mn − ab + 1)/m²` flits/cycle/chip.
    pub fn t_global(&self) -> f64 {
        self.h() as f64 / (self.m * self.m) as f64
    }

    /// Equation (4): intra-W-group local throughput bound
    /// `T_local < ab/m²` flits/cycle/chip.
    pub fn t_local(&self) -> f64 {
        self.ab() as f64 / (self.m * self.m) as f64
    }

    /// Equation (5): intra-C-group throughput bound `T_cg < n/m`.
    pub fn t_cgroup(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Equation (6): full-duplex bisection bandwidth of the C-group mesh,
    /// `B_cg = n·m/2 = k/2` flits/cycle.
    pub fn b_cgroup(&self) -> f64 {
        self.k() as f64 / 2.0
    }

    /// Equation (3) balance check: `n = 3m` and `ab = 2m²` give
    /// global-local ratio ≈ 1/2 and T_global → 1.
    pub fn is_balanced(&self) -> bool {
        self.n == 3 * self.m && self.ab() == 2 * self.m * self.m
    }

    /// Equation (7) diameter, as hop counts: one global, two local and
    /// `8m − 2` short-reach hops in the worst case.
    pub fn diameter_hops(&self) -> DiameterHops {
        DiameterHops {
            global: 1,
            local: 2,
            short_reach: (8 * self.m - 2) as u64,
        }
    }

    /// Diameter of the single-W-group variant (Sec. III-D1):
    /// `H_l + (4m − 2)·H_sr`.
    pub fn single_wgroup_diameter_hops(&self) -> DiameterHops {
        DiameterHops {
            global: 0,
            local: 1,
            short_reach: (4 * self.m - 2) as u64,
        }
    }

    /// Zero-load diameter latency in nanoseconds under Table II costs
    /// (ignoring time-of-flight).
    pub fn diameter_latency_ns(&self, hop_ns: &HopLatency) -> f64 {
        let d = self.diameter_hops();
        d.global as f64 * hop_ns.global
            + d.local as f64 * hop_ns.local
            + d.short_reach as f64 * hop_ns.short_reach
    }
}

/// A diameter expressed as per-class hop counts (the paper writes these as
/// `H_g + 2H_l + (8m−2)H_sr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiameterHops {
    /// Global (inter-W-group) hops.
    pub global: u64,
    /// Local (intra-W-group) hops.
    pub local: u64,
    /// Short-reach (on-wafer / SR-LR conversion) hops.
    pub short_reach: u64,
}

impl std::fmt::Display for DiameterHops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.global > 0 {
            parts.push(format!("{}Hg", self.global));
        }
        if self.local > 0 {
            parts.push(format!("{}Hl", self.local));
        }
        if self.short_reach > 0 {
            parts.push(format!("{}Hsr", self.short_reach));
        }
        write!(f, "{}", parts.join(" + "))
    }
}

/// Per-hop latencies in nanoseconds (Table II).
#[derive(Debug, Clone, Copy)]
pub struct HopLatency {
    /// Global optical hop (excl. time-of-flight).
    pub global: f64,
    /// Local copper hop.
    pub local: f64,
    /// On-wafer short-reach hop.
    pub short_reach: f64,
    /// On-chip hop.
    pub on_chip: f64,
}

impl Default for HopLatency {
    fn default() -> Self {
        HopLatency {
            global: 150.0,
            local: 150.0,
            short_reach: 5.0,
            on_chip: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_matches_sec_iii_c() {
        let s = SlAnalytic::case_study();
        assert_eq!(s.k(), 48);
        assert_eq!(s.ab(), 32);
        assert_eq!(s.h(), 17);
        assert_eq!(s.g(), 545);
        assert_eq!(s.total_chiplets(), 279_040);
    }

    #[test]
    fn throughput_bounds_match_table_iii() {
        let s = SlAnalytic::case_study();
        // Table III: Tlocal 3(2), Tglobal 1 for the switch-less row; the
        // analytic bounds are Tcg = 3, Tlocal = 2, Tglobal ≈ 1.06.
        assert!((s.t_cgroup() - 3.0).abs() < 1e-9);
        assert!((s.t_local() - 2.0).abs() < 1e-9);
        assert!((s.t_global() - 17.0 / 16.0).abs() < 1e-9);
        assert!(s.t_global() >= 1.0);
    }

    #[test]
    fn eq1_small_config_reaches_1k() {
        // Paper: "(a, b, m, n) = (2, 4, 2, 6) reaches 1K chiplets".
        let s = SlAnalytic {
            a: 2,
            b: 4,
            m: 2,
            n: 6,
        };
        // N = ab·m²·[ab(mn − ab + 1) + 1] = 8·4·(8·5 + 1) = 1312.
        assert_eq!(s.total_chiplets(), 1312);
        assert!(s.total_chiplets() >= 1000);
    }

    #[test]
    fn balance_condition() {
        let s = SlAnalytic::case_study();
        // n = 12 = 3m ✓ but ab = 32 = 2m² ✓ (m=4 → 2m² = 32).
        assert!(s.is_balanced());
        let unbalanced = SlAnalytic {
            n: 8,
            m: 4,
            a: 4,
            b: 8,
        };
        assert!(!unbalanced.is_balanced());
    }

    #[test]
    fn bisection_is_half_of_nonblocking() {
        let s = SlAnalytic::case_study();
        assert!((s.b_cgroup() - 24.0).abs() < 1e-9);
        // Half of the k-port non-blocking switch (k = 48 flits/cycle).
        assert!((s.b_cgroup() * 2.0 - s.k() as f64).abs() < 1e-9);
    }

    #[test]
    fn diameter_strings() {
        let s = SlAnalytic::case_study();
        assert_eq!(s.diameter_hops().to_string(), "1Hg + 2Hl + 30Hsr");
        assert_eq!(s.single_wgroup_diameter_hops().to_string(), "1Hl + 14Hsr");
    }

    #[test]
    fn diameter_latency_is_dominated_by_long_hops() {
        let s = SlAnalytic::case_study();
        let lat = s.diameter_latency_ns(&HopLatency::default());
        // 150 + 300 + 30·5 = 600 ns.
        assert!((lat - 600.0).abs() < 1e-9);
    }
}
