//! Energy model (Table II hop costs, Fig. 15 methodology).
//!
//! The paper evaluates energy per transmitted bit as the sum of per-hop
//! energies along each packet's path, with Table II costs: long-reach hops
//! (local copper / global optical, and the baseline's terminal cables)
//! ≈ 20 pJ/bit, on-wafer short-reach hops ≈ 2 pJ/bit, on-chip hops
//! ≈ 0.1 pJ/bit. For Fig. 15 the paper simplifies intra-C-group hops to an
//! average 1 pJ/bit; both modes are provided.

use wsdf_sim::{ChannelClass, Metrics};

/// Long-reach hop energy (Table II), pJ/bit.
pub const HOP_ENERGY_LR: f64 = 20.0;
/// Short-reach on-wafer hop energy (Table II), pJ/bit.
pub const HOP_ENERGY_SR: f64 = 2.0;
/// On-chip hop energy (Table II), pJ/bit.
pub const HOP_ENERGY_ONCHIP: f64 = 0.1;
/// The paper's Fig. 15 simplification: average intra-C-group hop, pJ/bit.
pub const HOP_ENERGY_INTRA_CG_AVG: f64 = 1.0;

/// Per-channel-class energy in pJ/bit.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Energy per flit-hop by [`ChannelClass`] (dense index), pJ/bit.
    pub per_class: [f64; 6],
}

impl EnergyModel {
    /// Fig. 15 model for the switch-less fabric: intra-C-group hops
    /// (on-chip, short-reach) at the 1 pJ/bit average, long-reach at
    /// 20 pJ/bit, injection/ejection on-chip (the endpoint is an on-chip
    /// node — no terminal cable exists).
    pub fn switchless_paper() -> Self {
        let mut per_class = [0.0; 6];
        per_class[ChannelClass::OnChip.index()] = HOP_ENERGY_INTRA_CG_AVG;
        per_class[ChannelClass::ShortReach.index()] = HOP_ENERGY_INTRA_CG_AVG;
        per_class[ChannelClass::LongReachLocal.index()] = HOP_ENERGY_LR;
        per_class[ChannelClass::LongReachGlobal.index()] = HOP_ENERGY_LR;
        per_class[ChannelClass::Injection.index()] = HOP_ENERGY_ONCHIP;
        per_class[ChannelClass::Ejection.index()] = HOP_ENERGY_ONCHIP;
        EnergyModel { per_class }
    }

    /// Fig. 15 model for the switch-based baseline: every switch hop is a
    /// long-reach cable, and the terminal links (injection/ejection, the
    /// paper's H*_l) cost like local hops.
    pub fn switchbased_paper() -> Self {
        let mut per_class = [0.0; 6];
        per_class[ChannelClass::LongReachLocal.index()] = HOP_ENERGY_LR;
        per_class[ChannelClass::LongReachGlobal.index()] = HOP_ENERGY_LR;
        per_class[ChannelClass::Injection.index()] = HOP_ENERGY_LR;
        per_class[ChannelClass::Ejection.index()] = HOP_ENERGY_LR;
        EnergyModel { per_class }
    }

    /// Fine-grained Table II model (distinguishes on-chip 0.1 from
    /// short-reach 2 pJ/bit).
    pub fn fine_grained_switchless() -> Self {
        let mut m = Self::switchless_paper();
        m.per_class[ChannelClass::OnChip.index()] = HOP_ENERGY_ONCHIP;
        m.per_class[ChannelClass::ShortReach.index()] = HOP_ENERGY_SR;
        m
    }

    /// Average energy per transmitted bit given average per-class hop
    /// counts (pJ/bit).
    pub fn energy_per_bit(&self, avg_hops: &[f64; 6]) -> f64 {
        avg_hops
            .iter()
            .zip(self.per_class.iter())
            .map(|(h, e)| h * e)
            .sum()
    }

    /// Split into (inter-C-group, intra-C-group) energy — the two stacked
    /// components of Fig. 15. Long-reach hops and terminal cables count as
    /// inter-C-group; on-chip/short-reach as intra-C-group.
    pub fn energy_split(&self, avg_hops: &[f64; 6]) -> (f64, f64) {
        let inter: f64 = [
            ChannelClass::LongReachLocal,
            ChannelClass::LongReachGlobal,
            ChannelClass::Injection,
            ChannelClass::Ejection,
        ]
        .iter()
        .map(|c| avg_hops[c.index()] * self.per_class[c.index()])
        .sum();
        let intra: f64 = [ChannelClass::OnChip, ChannelClass::ShortReach]
            .iter()
            .map(|c| avg_hops[c.index()] * self.per_class[c.index()])
            .sum();
        (inter, intra)
    }

    /// Convenience: energy per bit straight from simulation metrics.
    pub fn from_metrics(&self, m: &Metrics) -> f64 {
        self.energy_per_bit(&m.avg_hops_per_flit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hops(on_chip: f64, sr: f64, lr_local: f64, lr_global: f64, inj: f64, ej: f64) -> [f64; 6] {
        let mut h = [0.0; 6];
        h[ChannelClass::OnChip.index()] = on_chip;
        h[ChannelClass::ShortReach.index()] = sr;
        h[ChannelClass::LongReachLocal.index()] = lr_local;
        h[ChannelClass::LongReachGlobal.index()] = lr_global;
        h[ChannelClass::Injection.index()] = inj;
        h[ChannelClass::Ejection.index()] = ej;
        h
    }

    #[test]
    fn switchbased_minimal_route_energy() {
        // Avg minimal Dragonfly route: inj + ~2 local + 1 global + ej
        // at 20 pJ each ≈ 100 pJ/bit — the scale of Fig. 15's SW-based bar.
        let m = EnergyModel::switchbased_paper();
        let e = m.energy_per_bit(&hops(0.0, 0.0, 2.0, 1.0, 1.0, 1.0));
        assert!((e - 100.0).abs() < 1e-9);
    }

    #[test]
    fn switchless_energy_is_lower_with_same_lr_hops() {
        // Same LR structure but on-wafer injection and ~10 intra-C hops:
        // 2·20 + 20 + 10·1 + 0.2·0.1 ≈ 70 < 100.
        let m = EnergyModel::switchless_paper();
        let e = m.energy_per_bit(&hops(4.0, 6.0, 2.0, 1.0, 1.0, 1.0));
        assert!(e < 100.0);
        assert!((e - (60.0 + 10.0 + 0.2)).abs() < 1e-9);
    }

    #[test]
    fn split_sums_to_total() {
        let m = EnergyModel::switchless_paper();
        let h = hops(3.0, 5.0, 1.5, 1.0, 1.0, 1.0);
        let (inter, intra) = m.energy_split(&h);
        assert!((inter + intra - m.energy_per_bit(&h)).abs() < 1e-9);
        assert!(inter > intra, "LR hops dominate at these counts");
    }

    #[test]
    fn fine_grained_distinguishes_onchip() {
        let m = EnergyModel::fine_grained_switchless();
        let cheap = m.energy_per_bit(&hops(10.0, 0.0, 0.0, 0.0, 0.0, 0.0));
        let pricier = m.energy_per_bit(&hops(0.0, 10.0, 0.0, 0.0, 0.0, 0.0));
        assert!((cheap - 1.0).abs() < 1e-9);
        assert!((pricier - 20.0).abs() < 1e-9);
    }
}
