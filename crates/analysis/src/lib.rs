//! # wsdf-analysis — analytical models from the paper
//!
//! Everything in Sec. III-B/III-C and V-A1/V-C that is *computed* rather
//! than simulated:
//!
//! * [`equations`] — Eqs. (1)–(7): scale, global/local/intra-C-group
//!   throughput bounds, bisection bandwidth, diameter in hop-cost terms.
//!   Note these use the paper's general `k = n·m` port model (each chiplet
//!   contributes `n/4` ports per C-group edge); the *simulated* configs use
//!   the perimeter model `k = 4m−4` of the evaluation section.
//! * [`energy`] — the Table II hop-cost model and the Fig. 15 average
//!   energy-per-bit computation from per-class hop counts.
//! * [`table3`] — the Table III "comparison by case study": switch counts,
//!   cabinets, cable number/length, Tlocal/Tglobal and diameter strings
//!   for all eight topology rows.
//! * [`layout`] — the Fig. 9 wafer layout feasibility model: PHY/conversion
//!   module geometry, port bandwidths, bisection/aggregate bandwidth and
//!   IO counts of a C-group on the wafer.

pub mod energy;
pub mod equations;
pub mod layout;
pub mod table3;

pub use energy::{EnergyModel, HOP_ENERGY_LR, HOP_ENERGY_ONCHIP, HOP_ENERGY_SR};
pub use equations::SlAnalytic;
pub use layout::CGroupLayout;
pub use table3::{table_iii, TopologyRow};
