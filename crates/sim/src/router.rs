//! Runtime router and endpoint state machines.
//!
//! One [`RouterRt`] is an input-queued virtual-channel router with
//! credit-based flow control and separable round-robin allocation:
//!
//! * **RC** — at each input VC whose front flit is a head without a route,
//!   query the [`crate::RouteOracle`].
//! * **VA** — input VCs request the exact output VC the oracle chose;
//!   a rotating-priority arbiter per output VC picks one winner.
//! * **SA** — each output port grants up to `width(out_channel)` flits per
//!   cycle among input VCs holding that port, rotating priority; each input
//!   port may forward at most `width(in_channel)` flits per cycle.
//! * **ST/LT** — granted flits move onto the output channel (arriving
//!   `latency` cycles later), a credit returns upstream, and a tail flit
//!   releases its output VC.
//!
//! Endpoints ([`EndpointRt`]) are open-loop sources with unbounded packet
//! queues plus sinks with bounded ejection bandwidth. All cross-router
//! communication flows through per-partition queues or [`Msg`] mailboxes so
//! the engine can run partitions in parallel without locks.

use crate::channel::{ChannelClass, TimedRing};
use crate::flit::{Flit, PacketHeader};
use crate::metrics::Metrics;
use crate::oracle::{RouteChoice, RouteOracle};
use crate::pattern::TrafficPattern;
use crate::rng::SplitMix64;
use crate::telemetry::PartTrace;
use crate::wake::{WakeWheel, EP_BIT};
use std::collections::VecDeque;

/// Cross-partition message: a flit or credit addressed to a channel queue
/// owned by another partition.
#[derive(Debug, Clone, Copy)]
pub enum Msg {
    /// Deliver `flit` into channel `ch`'s flit queue at cycle `arrive`.
    Flit {
        /// Global channel id.
        ch: u32,
        /// Arrival cycle.
        arrive: u64,
        /// The flit.
        flit: Flit,
    },
    /// Deliver one credit for VC `vc` into channel `ch`'s credit queue.
    Credit {
        /// Global channel id.
        ch: u32,
        /// Arrival cycle.
        arrive: u64,
        /// Virtual channel the credit frees.
        vc: u8,
    },
}

/// A fully ejected packet, reported to a closed-loop workload driver.
///
/// Emitted once per packet, at its *tail* flit's ejection. Because flits
/// of one packet ride the same channel in order, the tail arrives last, so
/// `arrive` is the cycle at which the whole packet has reached `dst` —
/// the reassembly timestamp closed-loop workloads key dependency release
/// off. Recording happens at send time with the future arrival cycle
/// stamped in (the ejection channel has latency ≥ 1), so a driver may see
/// events up to one channel latency ahead of the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Cycle at which the packet's last flit reaches the endpoint.
    pub arrive: u64,
    /// Packet id (closed-loop drivers encode their message tag here).
    pub id: u64,
    /// Destination endpoint.
    pub dst: u32,
    /// Packet length in flits.
    pub flits: u8,
}

/// Where a flit sent on an output port lands.
#[derive(Debug, Clone, Copy)]
pub enum FlitTarget {
    /// Flit queue owned by this partition (dense local index).
    Local(u32),
    /// Flit queue owned by another partition; route via mailbox.
    Remote {
        /// Out-edge slot within the emitting partition's outbox range of
        /// the sparse exchange (compiled from the partition adjacency
        /// graph; `u32::MAX` sentinel for dead channels, which assert
        /// before emission).
        slot: u32,
        /// Global channel id (owner resolves its own local index).
        ch: u32,
    },
}

/// Where a credit for a consumed flit goes (upstream of an input port).
#[derive(Debug, Clone, Copy)]
pub enum CreditTarget {
    /// Credit queue owned by this partition.
    Local(u32),
    /// Credit queue owned by another partition.
    Remote {
        /// Out-edge slot within the emitting partition's outbox range
        /// (see [`FlitTarget::Remote`]).
        slot: u32,
        /// Global channel id.
        ch: u32,
    },
}

/// Compiled input-port wiring.
#[derive(Debug, Clone, Copy)]
pub struct PortIn {
    /// Local index of the incoming channel's flit queue (owned here).
    pub flit_q: u32,
    /// Upstream credit destination.
    pub credit_to: CreditTarget,
    /// Credit return latency (= channel latency).
    pub credit_latency: u32,
    /// Incoming channel width — the input port's forwarding quota.
    pub width: u8,
}

/// Compiled output-port wiring.
#[derive(Debug, Clone, Copy)]
pub struct PortOut {
    /// Global channel id (per-channel statistics).
    pub ch: u32,
    /// Local index of the outgoing channel's credit queue (owned here).
    pub credit_q: u32,
    /// Downstream flit destination.
    pub flit_to: FlitTarget,
    /// Channel latency in cycles.
    pub latency: u32,
    /// Channel width — the output port's grant quota per cycle.
    pub width: u8,
    /// Channel class for metrics/energy accounting.
    pub class: ChannelClass,
    /// True if the channel ends at an endpoint (ejection).
    pub is_ejection: bool,
    /// True if the channel is faulted: any traversal attempt is a hard
    /// assert (see [`crate::FaultMap`]).
    pub dead: bool,
}

/// Per-input-VC state.
#[derive(Debug, Clone)]
struct InputVc {
    buf: VecDeque<Flit>,
    /// Routing decision for the packet whose flits are at the front.
    route: Option<RouteChoice>,
    /// True once VA granted the requested output VC.
    granted: bool,
}

impl InputVc {
    fn new() -> Self {
        InputVc {
            buf: VecDeque::new(),
            route: None,
            granted: false,
        }
    }
}

/// Per-output-VC state.
#[derive(Debug, Clone, Copy)]
struct OutputVc {
    /// Input VC (flat index) currently holding this output VC.
    owner: Option<u16>,
    /// Remaining credits (free downstream buffer slots).
    credits: u16,
}

/// Mutable per-cycle context handed to routers/endpoints by the engine.
/// All slices are partition-local.
pub struct CycleCtx<'a> {
    /// Current cycle.
    pub now: u64,
    /// Flit queues owned by this partition (indexed by local id).
    pub flit_qs: &'a mut [TimedRing<Flit>],
    /// Credit queues owned by this partition.
    pub credit_qs: &'a mut [TimedRing<u8>],
    /// Outgoing mailboxes, one per out-edge of this partition in the
    /// sparse partition adjacency graph (indexed by the compiled
    /// [`FlitTarget::Remote`]/[`CreditTarget::Remote`] slot).
    pub outboxes: &'a mut [Vec<Msg>],
    /// Partition-local metrics.
    pub metrics: &'a mut Metrics,
    /// Packet-arrival events for the closed-loop workload driver (tail
    /// ejections); unused (and never pushed) in open-loop runs.
    pub arrivals: &'a mut Vec<Arrival>,
    /// True when a closed-loop run wants [`Arrival`] events collected.
    pub collect_arrivals: bool,
    /// Count of flit movements this cycle (watchdog).
    pub moved: &'a mut u64,
    /// Net change in in-network flits this cycle (watchdog bookkeeping).
    pub in_flight: &'a mut i64,
    /// True while inside the measurement window.
    pub measuring: bool,
    /// True while injection is allowed (false during drain).
    pub injecting: bool,
    /// First cycle of the measurement window (latency filter).
    pub measure_start: u64,
    /// First cycle after the measurement window.
    pub measure_end: u64,
    /// True when the engine runs event-driven and wheel wakes must be
    /// recorded on every local queue push.
    pub event: bool,
    /// This partition's wake wheel (a [`WakeWheel::disabled`] stub in
    /// dense mode).
    pub wheel: &'a mut WakeWheel,
    /// Local flit queue index → wake code of the consuming agent.
    pub flit_cons: &'a [u32],
    /// Local credit queue index → wake code of the consuming agent.
    pub credit_cons: &'a [u32],
    /// Local credit queue index → consuming router's output port (unused
    /// for endpoint-consumed queues).
    pub credit_cons_port: &'a [u8],
    /// Pending-credit bitmap per partition-local router (bit = out port):
    /// set on push, cleared by `RouterRt::absorb_credits` once the
    /// queue drains. Maintained in dense mode too — it is what lets
    /// credit absorption touch only ports with credits in flight.
    pub credit_pend: &'a mut [u64],
    /// Earliest arrival among this cycle's outbound cross-partition
    /// messages (reset to `u64::MAX` each advance). Their wheel wakes only
    /// register at delivery, so the engine caps idle fast-forwards here —
    /// keeping the jump schedule identical for every partition count.
    pub out_min: &'a mut u64,
    /// Opt-in telemetry buffer (`None` when tracing is off — the hot path
    /// pays one branch per emission site and nothing else). Observe-only:
    /// nothing here may feed back into simulated state.
    pub trace: Option<&'a mut PartTrace>,
}

impl CycleCtx<'_> {
    #[inline]
    fn emit(&mut self, slot: u32, msg: Msg) {
        // Tracked even on dense cycles: a storm interval's final cycle
        // leaves its emissions undelivered in the mailboxes, and the first
        // post-storm jump must not overshoot them.
        let arrive = match &msg {
            Msg::Flit { arrive, .. } | Msg::Credit { arrive, .. } => *arrive,
        };
        *self.out_min = (*self.out_min).min(arrive);
        self.outboxes[slot as usize].push(msg);
    }

    /// Push a flit into a locally owned ring and wake its consumer.
    #[inline]
    fn push_flit(&mut self, q: u32, arrive: u64, flit: Flit) {
        self.flit_qs[q as usize]
            .try_push(arrive, flit)
            .expect("flit ring overflow: capacity bound violated");
        if self.event {
            self.wheel.push(arrive, self.flit_cons[q as usize]);
        }
    }

    /// Push a credit into a locally owned ring, mark the consuming
    /// router's pending bit, and wake the consumer.
    #[inline]
    fn push_credit(&mut self, q: u32, arrive: u64, vc: u8) {
        self.credit_qs[q as usize]
            .try_push(arrive, vc)
            .expect("credit ring overflow: capacity bound violated");
        let code = self.credit_cons[q as usize];
        if code & EP_BIT == 0 {
            self.credit_pend[code as usize] |= 1 << self.credit_cons_port[q as usize];
        }
        if self.event {
            self.wheel.push(arrive, code);
        }
    }
}

/// Runtime state of one router.
#[derive(Debug, Clone)]
pub struct RouterRt {
    /// Global router id (passed to the oracle).
    pub id: u32,
    ports: u8,
    vcs: u8,
    in_ports: Vec<Option<PortIn>>,
    out_ports: Vec<Option<PortOut>>,
    inputs: Vec<InputVc>,
    outputs: Vec<OutputVc>,
    /// Rotating priority pointer per output VC (VA).
    va_ptr: Vec<u16>,
    /// Rotating priority pointer per output port (SA).
    sa_ptr: Vec<u16>,
    /// Buffered flits across all input VCs. Non-zero keeps the router on
    /// the event engine's worklist (it re-wakes itself every cycle until
    /// it drains), and gates the RC/VA/SA stages in both modes.
    buffered: u32,
    /// Crossbar input speedup (flits one input port may forward per cycle).
    speedup: u8,
    /// Deterministic stream for adaptive oracles.
    rng: SplitMix64,
    /// Scratch: VA requests (out-VC flat id, in-VC flat id).
    va_scratch: Vec<(u16, u16)>,
    /// Scratch: SA candidates (out port, in-VC flat id).
    sa_scratch: Vec<(u8, u16)>,
    /// Scratch: SA rotated candidate order.
    sa_order: Vec<u16>,
    /// Occupancy bitmap per port: bit v set ⇔ input VC v has buffered
    /// flits. Keeps RC/VA/SA scans proportional to occupied VCs, not to
    /// ports × VCs (the hot-path cost at scale).
    occ: Vec<u64>,
}

impl RouterRt {
    /// Build a router with all ports unwired; the engine compiler attaches
    /// [`PortIn`]/[`PortOut`] afterwards.
    pub fn new(id: u32, ports: u8, vcs: u8, buffer_flits: u16, speedup: u8, seed: u64) -> Self {
        let nflat = ports as usize * vcs as usize;
        RouterRt {
            id,
            ports,
            vcs,
            in_ports: vec![None; ports as usize],
            out_ports: vec![None; ports as usize],
            inputs: (0..nflat).map(|_| InputVc::new()).collect(),
            outputs: vec![
                OutputVc {
                    owner: None,
                    credits: buffer_flits,
                };
                nflat
            ],
            va_ptr: vec![0; nflat],
            sa_ptr: vec![0; ports as usize],
            buffered: 0,
            speedup: speedup.max(1),
            rng: SplitMix64::for_agent(seed, 0x5157 ^ (id as u64) << 1),
            va_scratch: Vec::new(),
            sa_scratch: Vec::new(),
            sa_order: Vec::new(),
            occ: vec![0; ports as usize],
        }
    }

    /// Attach input wiring to `port`.
    pub fn wire_in(&mut self, port: u8, pin: PortIn) {
        self.in_ports[port as usize] = Some(pin);
    }

    /// Attach output wiring to `port`.
    pub fn wire_out(&mut self, port: u8, pout: PortOut) {
        self.out_ports[port as usize] = Some(pout);
    }

    /// Number of ports.
    pub fn ports(&self) -> u8 {
        self.ports
    }

    /// Flits currently buffered in this router.
    pub fn buffered(&self) -> u32 {
        self.buffered
    }

    #[inline]
    fn flat(&self, port: u8, vc: u8) -> usize {
        port as usize * self.vcs as usize + vc as usize
    }

    /// One simulation cycle: arrivals, credit returns, RC, VA, SA, traversal.
    ///
    /// `lidx` is this router's partition-local index (its slot in the
    /// partition's pending-credit bitmap). Under event-driven stepping the
    /// engine only calls this for routers on the cycle's worklist; a
    /// router not called would have done nothing — no flit or credit due,
    /// nothing buffered — so both modes execute the identical sequence of
    /// state changes.
    ///
    /// Generic over the oracle so the per-flit route computation
    /// monomorphizes — no virtual dispatch on the hot path. The type-erased
    /// entry point ([`crate::engine::simulate_dyn`]) instantiates this with
    /// `O = &dyn RouteOracle` at the API boundary instead.
    pub fn cycle<O: RouteOracle + ?Sized>(
        &mut self,
        ctx: &mut CycleCtx<'_>,
        oracle: &O,
        lidx: u32,
    ) {
        self.absorb_credits(ctx, lidx);
        self.absorb_arrivals(ctx);
        if self.buffered == 0 {
            return;
        }
        self.route_compute(oracle, ctx.now);
        self.vc_allocate();
        self.switch_allocate(ctx);
    }

    /// Pull returned credits into output VC counters.
    ///
    /// Driven by the partition's pending-credit bitmap: only ports with
    /// credits actually in flight are touched (the bit is set by
    /// [`CycleCtx::push_credit`]/mailbox delivery and cleared here once
    /// the ring drains), instead of scanning every output port every
    /// cycle.
    fn absorb_credits(&mut self, ctx: &mut CycleCtx<'_>, lidx: u32) {
        let mut pend = ctx.credit_pend[lidx as usize];
        if pend == 0 {
            return;
        }
        let mut left = pend;
        while left != 0 {
            let port = left.trailing_zeros() as usize;
            left &= left - 1;
            let pout = self.out_ports[port].expect("pending credit on unwired port");
            let q = &mut ctx.credit_qs[pout.credit_q as usize];
            while let Some((_, vc)) = q.pop_due(ctx.now) {
                let f = self.flat(port as u8, vc);
                self.outputs[f].credits += 1;
            }
            if q.is_empty() {
                pend &= !(1 << port);
            }
        }
        ctx.credit_pend[lidx as usize] = pend;
    }

    /// Pull arrived flits into input buffers.
    fn absorb_arrivals(&mut self, ctx: &mut CycleCtx<'_>) {
        for port in 0..self.ports as usize {
            let Some(pin) = self.in_ports[port] else {
                continue;
            };
            let q = &mut ctx.flit_qs[pin.flit_q as usize];
            while let Some((_, flit)) = q.pop_due(ctx.now) {
                // The sender stamped its allocated VC into the flit (see the
                // VC-stamping section below); that VC selects the input buffer.
                let vc = flit_vc(&flit);
                let f = self.flat(port as u8, vc);
                self.inputs[f].buf.push_back(strip_vc(flit));
                self.occ[port] |= 1 << vc;
                self.buffered += 1;
                *ctx.moved += 1;
            }
        }
    }

    /// Route computation for fresh head flits.
    fn route_compute<O: RouteOracle + ?Sized>(&mut self, oracle: &O, _now: u64) {
        for port in 0..self.ports {
            let mut bits = self.occ[port as usize];
            while bits != 0 {
                let vc = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                let f = self.flat(port, vc);
                if self.inputs[f].route.is_some() {
                    continue;
                }
                let Some(front) = self.inputs[f].buf.front() else {
                    continue;
                };
                debug_assert!(
                    front.kind.is_head(),
                    "non-head flit {:?} at front of unrouted VC (router {}, port {port}, vc {vc})",
                    front.kind,
                    self.id
                );
                let choice = oracle.route(self.id, port, vc, &front.pkt, &mut self.rng);
                debug_assert!(
                    (choice.out_port as usize) < self.ports as usize,
                    "oracle chose invalid port {} on router {} ({} ports)",
                    choice.out_port,
                    self.id,
                    self.ports
                );
                debug_assert!(choice.out_vc < self.vcs);
                self.inputs[f].route = Some(choice);
                self.inputs[f].granted = false;
            }
        }
    }

    /// VC allocation: rotating-priority arbitration per requested output VC.
    fn vc_allocate(&mut self) {
        self.va_scratch.clear();
        for port in 0..self.ports as usize {
            let mut bits = self.occ[port];
            while bits != 0 {
                let vc = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let f = port * self.vcs as usize + vc;
                let iu = &self.inputs[f];
                if iu.granted || iu.buf.is_empty() {
                    continue;
                }
                let Some(rc) = iu.route else { continue };
                let ovc = self.flat(rc.out_port, rc.out_vc) as u16;
                if self.outputs[ovc as usize].owner.is_none() {
                    self.va_scratch.push((ovc, f as u16));
                }
            }
        }
        if self.va_scratch.is_empty() {
            return;
        }
        self.va_scratch.sort_unstable();
        let n = self.inputs.len() as u16;
        let mut i = 0;
        while i < self.va_scratch.len() {
            let ovc = self.va_scratch[i].0;
            let mut j = i;
            while j < self.va_scratch.len() && self.va_scratch[j].0 == ovc {
                j += 1;
            }
            // Winner: requester with the smallest rotated index.
            let ptr = self.va_ptr[ovc as usize];
            let winner = self.va_scratch[i..j]
                .iter()
                .map(|&(_, ivc)| ivc)
                .min_by_key(|&ivc| (ivc + n - ptr) % n)
                .expect("non-empty group");
            self.outputs[ovc as usize].owner = Some(winner);
            self.inputs[winner as usize].granted = true;
            self.va_ptr[ovc as usize] = (winner + 1) % n;
            i = j;
        }
    }

    /// Switch allocation + traversal: grant up to `width` flits per output
    /// port and per input port, rotating priority, then send.
    fn switch_allocate(&mut self, ctx: &mut CycleCtx<'_>) {
        self.sa_scratch.clear();
        for port in 0..self.ports as usize {
            let mut bits = self.occ[port];
            while bits != 0 {
                let vc = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let f = port * self.vcs as usize + vc;
                let iu = &self.inputs[f];
                if !iu.granted || iu.buf.is_empty() {
                    continue;
                }
                let rc = iu.route.expect("granted VC must have a route");
                self.sa_scratch.push((rc.out_port, f as u16));
            }
        }
        if self.sa_scratch.is_empty() {
            return;
        }
        self.sa_scratch.sort_unstable();
        // Per-input-port quotas (only the ports this router has — a fixed
        // 256-entry array would memset 512 B per busy router per cycle).
        let mut in_quota = [0u16; 64];
        debug_assert!(self.ports as usize <= in_quota.len());
        for (q, pin) in in_quota.iter_mut().zip(&self.in_ports) {
            *q = pin.map_or(0, |pi| pi.width as u16 * self.speedup as u16);
        }
        let n = self.inputs.len() as u16;
        let mut i = 0;
        while i < self.sa_scratch.len() {
            let oport = self.sa_scratch[i].0;
            let mut j = i;
            while j < self.sa_scratch.len() && self.sa_scratch[j].0 == oport {
                j += 1;
            }
            let pout = self.out_ports[oport as usize].expect("route to unwired output port");
            let mut quota = pout.width;
            let ptr = self.sa_ptr[oport as usize];
            // Rotate the candidate group so priority moves each cycle.
            self.sa_order.clear();
            self.sa_order
                .extend(self.sa_scratch[i..j].iter().map(|&(_, f)| f));
            self.sa_order.sort_unstable_by_key(|&f| (f + n - ptr) % n);
            let order = std::mem::take(&mut self.sa_order);
            let mut granted_any = None;
            // Keep sweeping the rotated order until quota or progress runs out
            // (a wide link may take several flits from one VC per cycle).
            while quota > 0 {
                let mut progressed = false;
                for &f in &order {
                    if quota == 0 {
                        break;
                    }
                    let port_of_f = (f as usize / self.vcs as usize) as u8;
                    if in_quota[port_of_f as usize] == 0 {
                        continue;
                    }
                    // Re-validate: a tail sent earlier in this sweep clears
                    // the VC's route/grant; the next packet must go through
                    // RC/VA again before it can compete.
                    if !self.inputs[f as usize].granted {
                        continue;
                    }
                    let Some(rc) = self.inputs[f as usize].route else {
                        continue;
                    };
                    let ovc_flat = self.flat(rc.out_port, rc.out_vc);
                    if self.outputs[ovc_flat].credits == 0 {
                        continue;
                    }
                    if self.inputs[f as usize].buf.is_empty() {
                        continue;
                    }
                    self.send_one(f, rc, oport, pout, ctx);
                    quota -= 1;
                    in_quota[port_of_f as usize] -= 1;
                    granted_any = Some(f);
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            self.sa_order = order;
            if let Some(f) = granted_any {
                self.sa_ptr[oport as usize] = (f + 1) % n;
            }
            i = j;
        }
    }

    /// Move one flit from input VC `f` onto output port `oport`.
    fn send_one(
        &mut self,
        f: u16,
        rc: RouteChoice,
        _oport: u8,
        pout: PortOut,
        ctx: &mut CycleCtx<'_>,
    ) {
        assert!(
            !pout.dead,
            "routing oracle sent a flit over dead channel {} (router {}, out port {}, dst {})",
            pout.ch,
            self.id,
            rc.out_port,
            self.inputs[f as usize]
                .buf
                .front()
                .map_or(0, |fl| fl.pkt.dst)
        );
        let flit = self.inputs[f as usize]
            .buf
            .pop_front()
            .expect("send_one on empty buffer");
        if self.inputs[f as usize].buf.is_empty() {
            let port = f as usize / self.vcs as usize;
            let vc = f as usize % self.vcs as usize;
            self.occ[port] &= !(1 << vc);
        }
        self.buffered -= 1;
        *ctx.moved += 1;
        let ovc_flat = self.flat(rc.out_port, rc.out_vc);
        self.outputs[ovc_flat].credits -= 1;

        // Metrics: hop accounting during the measurement window.
        if ctx.measuring {
            ctx.metrics.class_hops.record(pout.class);
            if !ctx.metrics.flits_per_channel.is_empty() {
                ctx.metrics.flits_per_channel[pout.ch as usize] += 1;
            }
        }
        // Telemetry: every traversal counts toward the channel's window
        // (not just measured ones — utilization is a physical quantity).
        if let Some(t) = ctx.trace.as_deref_mut() {
            t.link(pout.ch);
        }

        // Credit back upstream for the freed buffer slot.
        let in_port = f as usize / self.vcs as usize;
        let in_vc = (f as usize % self.vcs as usize) as u8;
        let pin = self.in_ports[in_port].expect("flit came from a wired input");
        let credit_arrive = ctx.now + pin.credit_latency as u64;
        match pin.credit_to {
            CreditTarget::Local(q) => ctx.push_credit(q, credit_arrive, in_vc),
            CreditTarget::Remote { slot, ch } => ctx.emit(
                slot,
                Msg::Credit {
                    ch,
                    arrive: credit_arrive,
                    vc: in_vc,
                },
            ),
        }

        // Deliver the flit downstream (or eject).
        let arrive = ctx.now + pout.latency as u64;
        if pout.is_ejection {
            // Ejection is final: record, free in-flight, return the
            // downstream credit immediately (the endpoint sink is
            // always ready; bandwidth is already bounded by SA width).
            eject(flit, arrive, ctx);
            self.outputs[ovc_flat].credits += 1;
        } else {
            let stamped = stamp_vc(flit, rc.out_vc);
            match pout.flit_to {
                FlitTarget::Local(q) => ctx.push_flit(q, arrive, stamped),
                FlitTarget::Remote { slot, ch } => ctx.emit(
                    slot,
                    Msg::Flit {
                        ch,
                        arrive,
                        flit: stamped,
                    },
                ),
            }
        }

        // Tail: release the output VC and the input VC's packet state.
        if flit.kind.is_tail() {
            self.outputs[ovc_flat].owner = None;
            self.inputs[f as usize].route = None;
            self.inputs[f as usize].granted = false;
        }
    }
}

/// Record an ejected flit: throughput always, latency for measured packets.
fn eject(flit: Flit, arrive: u64, ctx: &mut CycleCtx<'_>) {
    *ctx.in_flight -= 1;
    let in_window = arrive >= ctx.measure_start && arrive < ctx.measure_end;
    if in_window {
        ctx.metrics.flits_ejected_measured += 1;
        if !ctx.metrics.ejected_per_endpoint.is_empty() {
            ctx.metrics.ejected_per_endpoint[flit.pkt.dst as usize] += 1;
        }
    }
    if flit.kind.is_tail() {
        let created = flit.pkt.created;
        if created >= ctx.measure_start && created < ctx.measure_end {
            let lat = arrive - created;
            ctx.metrics.packets_ejected += 1;
            ctx.metrics.latency_sum += lat;
            ctx.metrics.latency_max = ctx.metrics.latency_max.max(lat);
            ctx.metrics.latency_hist.record(lat);
            // Telemetry: gated exactly like the report's latency stats so
            // the trace stream reconciles with the summary aggregates.
            if let Some(t) = ctx.trace.as_deref_mut() {
                t.latency(flit.pkt.dst, lat);
            }
        }
        if ctx.collect_arrivals {
            ctx.arrivals.push(Arrival {
                arrive,
                id: flit.pkt.id,
                dst: flit.pkt.dst,
                flits: flit.pkt.len,
            });
        }
    }
}

// --- VC stamping -----------------------------------------------------------
//
// A flit on the wire must tell the receiver which input VC to buffer it in.
// Rather than widening the queue entry, the VC rides in unused high bits of
// the packet id (bits 56..62 — endpoint ids use the low bits); `stamp_vc`
// and `flit_vc`/`strip_vc` encode and decode it. Packet ids are generated
// with those bits clear.

const VC_SHIFT: u32 = 56;
const VC_MASK: u64 = 0x3F << VC_SHIFT;

#[inline]
fn stamp_vc(mut flit: Flit, vc: u8) -> Flit {
    flit.pkt.id = (flit.pkt.id & !VC_MASK) | ((vc as u64) << VC_SHIFT);
    flit
}

#[inline]
fn flit_vc(flit: &Flit) -> u8 {
    ((flit.pkt.id & VC_MASK) >> VC_SHIFT) as u8
}

#[inline]
fn strip_vc(mut flit: Flit) -> Flit {
    flit.pkt.id &= !VC_MASK;
    flit
}

// --- Endpoint --------------------------------------------------------------

/// Packets an open-loop endpoint must have emitted by the end of cycle `t`
/// at `q` packets/cycle: `floor((t + 1) · q)`. Shared by dense generation
/// and the event engine's next-emission scheduling so the two can never
/// disagree.
#[inline]
fn emission_target(t: u64, q: f64) -> u64 {
    ((t + 1) as f64 * q) as u64
}

/// Runtime state of one endpoint: open-loop source + sink.
#[derive(Debug, Clone)]
pub struct EndpointRt {
    /// Global endpoint id.
    pub id: u32,
    /// Packets waiting to be serialized into the network.
    queue: VecDeque<PacketHeader>,
    /// Next flit sequence number of the packet at the queue front.
    send_seq: u8,
    /// VC chosen for the packet at the queue front (set when its head goes).
    send_vc: u8,
    /// Credits per VC of the injection channel (downstream input buffer).
    credits: Vec<u16>,
    /// Global channel id of the injection channel (statistics).
    inj_ch: u32,
    /// Local flit-queue index of the injection channel (dst side is the
    /// router — but the *credit* queue for it is ours). Flit delivery target:
    inj_to: FlitTarget,
    /// Local credit-queue index of the injection channel (owned here).
    inj_credit_q: u32,
    /// Injection channel latency/width.
    inj_latency: u32,
    inj_width: u8,
    /// Local flit-queue index of the ejection channel (owned here).
    ej_q: u32,
    /// Ejection channel global id + latency for the credit return.
    ej_credit_to: CreditTarget,
    ej_credit_latency: u32,
    /// Persistent stream for closed-loop submission tagging (submissions
    /// happen in identical order under dense and event-driven stepping,
    /// so the stream positions stay identical too).
    rng: SplitMix64,
    /// Global seed, kept for the per-cycle keyed open-loop streams
    /// ([`SplitMix64::for_event`]).
    seed: u64,
    /// Monotone packet id (endpoint id in low bits — see VC stamping note).
    next_pkt: u64,
    /// Open-loop packets emitted so far. The closed-form schedule pins
    /// this to `floor((now + 1) · rate / packet_len)` at the end of every
    /// cycle — a pure function of the cycle, independent of whether idle
    /// cycles were stepped or fast-forwarded.
    emitted: u64,
    /// True if the injection channel is faulted (attach router dead): any
    /// injection attempt is a hard assert.
    inj_dead: bool,
}

impl EndpointRt {
    /// Create an endpoint; wiring indices are attached by the compiler.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        vcs: u8,
        buffer_flits: u16,
        inj_ch: u32,
        inj_to: FlitTarget,
        inj_credit_q: u32,
        inj_latency: u32,
        inj_width: u8,
        ej_q: u32,
        ej_credit_to: CreditTarget,
        ej_credit_latency: u32,
        seed: u64,
        inj_dead: bool,
    ) -> Self {
        EndpointRt {
            id,
            queue: VecDeque::new(),
            send_seq: 0,
            send_vc: 0,
            credits: vec![buffer_flits; vcs as usize],
            inj_ch,
            inj_to,
            inj_credit_q,
            inj_latency,
            inj_width,
            ej_q,
            ej_credit_to,
            ej_credit_latency,
            rng: SplitMix64::for_agent(seed, 0xE9D0 ^ ((id as u64) << 1 | 1)),
            seed,
            next_pkt: (id as u64) << 20,
            emitted: 0,
            inj_dead,
        }
    }

    /// Packets waiting in the source queue (backpressure indicator).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue a fully formed packet into the source queue (closed-loop
    /// injection: the engine's [`crate::engine::Injector`] calls this
    /// between cycles). The packet serializes into the network through the
    /// same credit-limited [`inject_flits`](Self::inject_flits) path as
    /// open-loop traffic — as fast as backpressure allows, no faster.
    pub(crate) fn push_packet(&mut self, pkt: PacketHeader) {
        debug_assert_ne!(pkt.src, pkt.dst, "closed-loop self-traffic");
        debug_assert_eq!(pkt.id & VC_MASK, 0, "packet id overlaps VC stamp bits");
        self.queue.push_back(pkt);
    }

    /// One cycle: eject arrived flits, generate new packets, inject flits.
    ///
    /// Generic over oracle and pattern for the same monomorphization
    /// reason as [`RouterRt::cycle`].
    pub fn cycle<O: RouteOracle + ?Sized, P: TrafficPattern + ?Sized>(
        &mut self,
        ctx: &mut CycleCtx<'_>,
        oracle: &O,
        pattern: &P,
        packet_len: u8,
    ) {
        self.eject_arrived(ctx);
        if ctx.injecting {
            self.generate(ctx, oracle, pattern, packet_len);
        }
        self.inject_flits(ctx, oracle);
    }

    /// Drain the ejection queue: flits already became statistics inside
    /// `send_one`/`eject`; here we only return credits upstream.
    fn eject_arrived(&mut self, ctx: &mut CycleCtx<'_>) {
        // Ejected flits are fully accounted at send time (see `send_one`);
        // the ejection flit queue is unused and stays empty by construction.
        debug_assert!(ctx.flit_qs[self.ej_q as usize].is_empty());
        let _ = self.ej_credit_to;
        let _ = self.ej_credit_latency;
    }

    /// Open-loop generation, closed form: by the end of cycle `t` exactly
    /// `floor((t + 1) · rate / len)` whole packets have been emitted, so
    /// the emission count — and timing — is a pure function of the cycle
    /// number, reproducing the mean rate exactly while staying identical
    /// whether the engine stepped every cycle or fast-forwarded over idle
    /// stretches. All stochastic draws of a cycle (destination, oracle
    /// tag) come from a stream keyed on `(seed, endpoint, cycle)`
    /// ([`SplitMix64::for_event`]), never from draw history — the
    /// determinism contract event-driven stepping relies on.
    fn generate<O: RouteOracle + ?Sized, P: TrafficPattern + ?Sized>(
        &mut self,
        ctx: &mut CycleCtx<'_>,
        oracle: &O,
        pattern: &P,
        packet_len: u8,
    ) {
        let rate = pattern.rate(self.id);
        if rate <= 0.0 {
            return;
        }
        let target = emission_target(ctx.now, rate / packet_len as f64);
        if target <= self.emitted {
            return;
        }
        let mut rng = SplitMix64::for_event(self.seed, self.gen_stream_id(), ctx.now);
        while self.emitted < target {
            self.emitted += 1;
            let seq = self.next_pkt & 0xF_FFFF;
            let Some(dst) = pattern.dest(self.id, seq, &mut rng) else {
                continue;
            };
            debug_assert_ne!(dst, self.id, "pattern produced self-traffic");
            let mut pkt = PacketHeader {
                id: self.next_pkt,
                src: self.id,
                dst,
                inter_w: crate::flit::NO_INTERMEDIATE,
                created: ctx.now,
                len: packet_len,
            };
            self.next_pkt += 1;
            debug_assert_eq!(
                self.next_pkt & VC_MASK,
                0,
                "packet id overflowed into VC bits"
            );
            oracle.tag_packet(&mut pkt, &mut rng);
            if ctx.measuring {
                ctx.metrics.packets_created += 1;
            }
            self.queue.push_back(pkt);
        }
    }

    /// Stream id of the per-cycle keyed generation RNG (distinct from the
    /// persistent closed-loop stream's agent id).
    #[inline]
    fn gen_stream_id(&self) -> u64 {
        0xE9D0 ^ ((self.id as u64) << 1 | 1)
    }

    /// First cycle ≥ `from` at which this endpoint's open-loop schedule
    /// emits a packet, or `u64::MAX` if it never does — the event
    /// engine's per-endpoint generation wake-up.
    pub(crate) fn next_gen_cycle<P: TrafficPattern + ?Sized>(
        &self,
        pattern: &P,
        packet_len: u8,
        from: u64,
    ) -> u64 {
        let rate = pattern.rate(self.id);
        if rate <= 0.0 {
            return u64::MAX;
        }
        let q = rate / packet_len as f64;
        // target(t) first exceeds `emitted` near t ≈ (emitted + 1)/q − 1;
        // the float guess can be off by a few ulps in either direction, so
        // start slightly below it and settle with two exact walks.
        let guess = (self.emitted + 1) as f64 / q - 1.0;
        if guess >= u64::MAX as f64 {
            return u64::MAX;
        }
        let mut t = from.max((guess as u64).saturating_sub(3));
        while t > from && emission_target(t - 1, q) > self.emitted {
            t -= 1;
        }
        while emission_target(t, q) <= self.emitted {
            t += 1;
        }
        t
    }

    /// Serialize queued packets into the injection channel, up to
    /// `inj_width` flits/cycle, respecting downstream credits.
    fn inject_flits<O: RouteOracle + ?Sized>(&mut self, ctx: &mut CycleCtx<'_>, oracle: &O) {
        let mut budget = self.inj_width;
        while budget > 0 {
            let Some(&pkt) = self.queue.front() else {
                break;
            };
            assert!(
                !self.inj_dead,
                "endpoint {} injecting over a dead channel (attach router faulted); \
                 the workload must exclude dead endpoints",
                self.id
            );
            if self.send_seq == 0 {
                // Head flit: the routing policy fixes the VC for the packet.
                self.send_vc = oracle.initial_vc(&pkt);
            }
            let vc = self.send_vc;
            if self.credits[vc as usize] == 0 {
                break;
            }
            self.credits[vc as usize] -= 1;
            let flit = Flit::new(pkt, self.send_seq);
            let arrive = ctx.now + self.inj_latency as u64;
            let stamped = stamp_vc(flit, vc);
            match self.inj_to {
                FlitTarget::Local(q) => ctx.push_flit(q, arrive, stamped),
                FlitTarget::Remote { slot, ch } => ctx.emit(
                    slot,
                    Msg::Flit {
                        ch,
                        arrive,
                        flit: stamped,
                    },
                ),
            }
            *ctx.in_flight += 1;
            *ctx.moved += 1;
            if ctx.measuring {
                ctx.metrics.flits_injected_measured += 1;
                if !ctx.metrics.flits_per_channel.is_empty() {
                    ctx.metrics.flits_per_channel[self.inj_ch as usize] += 1;
                }
            }
            // Telemetry mirror of the router-side traversal count: the
            // injection channel's only sender is this endpoint.
            if let Some(t) = ctx.trace.as_deref_mut() {
                t.link(self.inj_ch);
            }
            budget -= 1;
            self.send_seq += 1;
            if self.send_seq == pkt.len {
                self.queue.pop_front();
                self.send_seq = 0;
            }
        }
    }

    /// Absorb returned injection credits.
    pub fn absorb_credits(&mut self, ctx: &mut CycleCtx<'_>) {
        let q = &mut ctx.credit_qs[self.inj_credit_q as usize];
        while let Some((_, vc)) = q.pop_due(ctx.now) {
            self.credits[vc as usize] += 1;
        }
    }

    /// Override the initial VC chooser's default stream (used in tests).
    pub fn rng_mut(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, NO_INTERMEDIATE};

    fn mk_flit(id: u64) -> Flit {
        Flit {
            pkt: PacketHeader {
                id,
                src: 0,
                dst: 1,
                inter_w: NO_INTERMEDIATE,
                created: 0,
                len: 1,
            },
            kind: FlitKind::Single,
            seq: 0,
        }
    }

    #[test]
    fn vc_stamping_roundtrip() {
        for vc in 0..16u8 {
            let f = stamp_vc(mk_flit(0xABCD), vc);
            assert_eq!(flit_vc(&f), vc);
            assert_eq!(strip_vc(f).pkt.id, 0xABCD);
        }
    }

    #[test]
    fn vc_stamp_does_not_clobber_id_low_bits() {
        let id = ((7u64) << 20) | 12345;
        let f = stamp_vc(mk_flit(id), 3);
        assert_eq!(strip_vc(f).pkt.id, id);
    }

    #[test]
    fn router_new_has_full_credits() {
        let r = RouterRt::new(0, 4, 2, 32, 1, 1);
        assert!(r
            .outputs
            .iter()
            .all(|o| o.credits == 32 && o.owner.is_none()));
        assert_eq!(r.inputs.len(), 8);
        assert_eq!(r.buffered(), 0);
    }
}
