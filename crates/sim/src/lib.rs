//! # wsdf-sim — cycle-accurate flit-level network simulator
//!
//! This crate is the simulation substrate for the *Switch-Less Dragonfly on
//! Wafers* reproduction. The paper evaluates its architecture with CNSim, a
//! cycle-accurate packet-parallel simulator; no equivalent exists in the Rust
//! ecosystem, so this crate rebuilds one from scratch.
//!
//! The model is a classic input-queued virtual-channel (VC) router network:
//!
//! * **Flits** move over **channels** with configurable latency (cycles) and
//!   width (flits/cycle) — Table IV of the paper: 1-cycle short-reach links,
//!   8-cycle long-reach links, 1 flit/cycle base bandwidth, 4-flit packets.
//! * **Routers** have per-(port, VC) input buffers (32 flits by default),
//!   credit-based flow control, and a single-cycle pipeline of route
//!   computation → VC allocation → switch allocation → traversal, with
//!   round-robin separable allocators.
//! * **Endpoints** inject packets from unbounded source queues (so measured
//!   latency includes source queueing, the standard open-loop methodology)
//!   and eject flits at a bounded per-port rate.
//! * Routing is delegated to a [`RouteOracle`] implemented by downstream
//!   crates (`wsdf-routing`); traffic to a [`TrafficPattern`]
//!   (`wsdf-traffic`).
//! * Besides the open-loop schedule ([`Simulation::run`]), the engine has a
//!   **closed-loop** mode ([`Simulation::run_closed_loop`]): a
//!   [`WorkloadDriver`] injects packets between cycles, observes
//!   [`Arrival`] events at the BSP barrier, and the run ends at quiescence
//!   — the substrate of the `wsdf-workload` collective subsystem.
//! * A [`FaultMap`] ([`Simulation::with_faults`]) marks routers/channels
//!   dead: traversing a dead channel is a hard assert (a fault-aware
//!   oracle must detour — `wsdf-routing`'s `DetourOracle`), and automatic
//!   partition sizing counts live routers only.
//!
//! The engine runs either sequentially or as a BSP-parallel simulation on
//! the persistent [`wsdf_exec::BspPool`] executor, which keeps the hot
//! path free of locks: each partition exclusively owns its routers' state
//! and is pinned to the same pool worker for the whole run, and cross-
//! partition flit/credit transfer happens through double-buffered
//! per-(src, dst) mailboxes swapped at the cycle barrier. Determinism is
//! preserved in both modes and for any worker count (per-endpoint
//! counter-based RNG, fixed arbitration and delivery order).

#![deny(missing_docs)]

pub mod arbiter;
pub mod channel;
pub mod config;
pub mod engine;
pub mod fault;
pub mod flit;
pub mod json;
pub mod metrics;
pub mod network;
pub mod oracle;
pub mod pattern;
pub mod rng;
pub mod router;
pub mod telemetry;
pub mod wake;

pub use channel::{ChannelClass, ChannelDesc, ChannelId, RingFull, Terminus, TimedRing};
pub use config::SimConfig;
#[allow(deprecated)]
pub use engine::simulate_faulted_on;
pub use engine::{
    effective_partitions, simulate, simulate_dyn, simulate_on, simulate_traced_on, ExchangeEdge,
    Injector, SimError, SimResult, Simulation, WorkloadDriver,
};
pub use fault::FaultMap;
pub use flit::{Flit, FlitKind, PacketHeader};
pub use metrics::{ClassCounters, LatencyHistogram, Metrics};
pub use network::{EndpointDesc, NetworkDesc, RouterDesc};
pub use oracle::{RouteChoice, RouteOracle};
pub use pattern::TrafficPattern;
pub use rng::SplitMix64;
pub use router::Arrival;
pub use telemetry::{SharedBuf, TraceConfig, TraceGuard, TraceRec, Tracer};
pub use wsdf_exec::{configured_threads, global_pool, BspPool};
