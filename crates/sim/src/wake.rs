//! Event-driven wake machinery: the per-partition timer wheel that tracks
//! which routers/endpoints have pending work at which cycle.
//!
//! Every queue push (flit, credit), mailbox delivery, closed-loop
//! submission, and agent self-wake registers a `(due cycle, agent)` entry;
//! the engine drains the bucket of the current cycle into a deduplicated,
//! sorted worklist and runs only those agents. Because every channel has
//! latency ≥ 1 and self-wakes target `now + 1`, all pending due cycles lie
//! in `[now, now + max_latency]`, so a wheel of
//! `(max_latency + 2).next_power_of_two()` buckets never aliases two
//! distinct due cycles into one bucket — even across idle fast-forward
//! jumps, which never overshoot the earliest pending wake.

/// Wake-target encoding: bit 31 distinguishes endpoints from routers; the
/// low bits are the agent's partition-local index.
pub const EP_BIT: u32 = 1 << 31;

/// Wake code for the router at partition-local index `lidx`.
#[inline]
pub fn router_code(lidx: usize) -> u32 {
    debug_assert!(lidx < EP_BIT as usize);
    lidx as u32
}

/// Wake code for the endpoint at partition-local index `lidx`.
#[inline]
pub fn ep_code(lidx: usize) -> u32 {
    debug_assert!(lidx < EP_BIT as usize);
    lidx as u32 | EP_BIT
}

/// A power-of-two timer wheel of wake codes, bucketed by `due & mask`.
///
/// Pushes deduplicate per `(agent, due)` with per-agent stamp arrays: a
/// busy consumer is woken by many producers at the same cycle (several
/// flits on one channel, credits, its own self-wake), and suppressing the
/// repeats at the source keeps buckets — and the drain work — proportional
/// to *distinct* wakes. Due cycles never repeat for an agent after its
/// bucket drains (every in-cycle push targets `now + 1` or later), so a
/// single stamp per agent suffices. The engine still carries its own
/// drain-time stamps to merge wheel wakes with generation-schedule wakes.
#[derive(Debug)]
pub struct WakeWheel {
    buckets: Vec<Vec<u32>>,
    mask: u64,
    /// Last due cycle pushed per partition-local router / endpoint.
    stamp_r: Vec<u64>,
    stamp_e: Vec<u64>,
}

impl WakeWheel {
    /// A wheel covering wakes up to `horizon` cycles ahead (the maximum
    /// channel latency of the network), for a partition of `routers` ×
    /// `endpoints` local agents.
    pub fn new(horizon: u64, routers: usize, endpoints: usize) -> Self {
        let w = (horizon + 2).next_power_of_two() as usize;
        WakeWheel {
            buckets: (0..w).map(|_| Vec::new()).collect(),
            mask: w as u64 - 1,
            stamp_r: vec![u64::MAX; routers],
            stamp_e: vec![u64::MAX; endpoints],
        }
    }

    /// A zero-bucket wheel for dense runs: never pushed to, and
    /// [`next_due`](Self::next_due) always reports nothing pending.
    pub fn disabled() -> Self {
        WakeWheel {
            buckets: Vec::new(),
            mask: 0,
            stamp_r: Vec::new(),
            stamp_e: Vec::new(),
        }
    }

    /// Register agent `code` as having work at cycle `due` (no-op if that
    /// exact wake is already recorded).
    #[inline]
    pub fn push(&mut self, due: u64, code: u32) {
        let stamp = if code & EP_BIT != 0 {
            &mut self.stamp_e[(code & !EP_BIT) as usize]
        } else {
            &mut self.stamp_r[code as usize]
        };
        if *stamp == due {
            return;
        }
        *stamp = due;
        self.buckets[(due & self.mask) as usize].push(code);
    }

    /// Forget every pending wake (buckets and stamps). Used when the
    /// engine re-enters event stepping after a dense storm interval: the
    /// wheel went stale while unmaintained and is reseeded from live
    /// queue/agent state instead.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.stamp_r.fill(u64::MAX);
        self.stamp_e.fill(u64::MAX);
    }

    /// The bucket holding cycle `cycle`'s wakes (all entries in it are due
    /// exactly then — see the aliasing argument in the module docs).
    #[inline]
    pub fn bucket_mut(&mut self, cycle: u64) -> &mut Vec<u32> {
        &mut self.buckets[(cycle & self.mask) as usize]
    }

    /// Earliest cycle ≥ `now` with a pending wake, or `None` if the wheel
    /// is empty. O(buckets), and buckets is a small constant.
    pub fn next_due(&self, now: u64) -> Option<u64> {
        for k in 0..self.buckets.len() as u64 {
            let c = now.wrapping_add(k);
            if !self.buckets[(c & self.mask) as usize].is_empty() {
                return Some(c);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        assert_eq!(router_code(5), 5);
        assert_eq!(ep_code(5), 5 | EP_BIT);
        assert_eq!(ep_code(5) & !EP_BIT, 5);
        assert_ne!(router_code(5), ep_code(5));
    }

    #[test]
    fn push_and_drain() {
        let mut w = WakeWheel::new(8, 8, 8);
        w.push(100, router_code(3));
        w.push(100, router_code(3)); // duplicate: suppressed at push
        w.push(101, ep_code(1));
        assert_eq!(w.next_due(100), Some(100));
        assert_eq!(w.bucket_mut(100).len(), 1);
        w.bucket_mut(100).clear();
        assert_eq!(w.next_due(100), Some(101));
        w.bucket_mut(101).clear();
        assert_eq!(w.next_due(100), None);
        // A later due for the same agent still registers.
        w.push(102, router_code(3));
        assert_eq!(w.next_due(100), Some(102));
    }

    #[test]
    fn horizon_buckets_do_not_alias() {
        // Dues spanning the full [now, now + horizon] window map to
        // distinct buckets.
        let horizon = 8u64;
        let w = WakeWheel::new(horizon, 4, 4);
        let now = 12345u64;
        let mut seen = std::collections::HashSet::new();
        for due in now..=now + horizon {
            assert!(seen.insert(due & w.mask), "bucket alias at due {due}");
        }
    }

    #[test]
    fn disabled_wheel_is_inert() {
        let w = WakeWheel::disabled();
        assert_eq!(w.next_due(0), None);
        assert_eq!(w.next_due(u64::MAX), None);
    }
}
