//! Simulation statistics.
//!
//! Collected per partition without synchronization, then merged. Latency is
//! packet latency: creation (entry into the source queue) to tail ejection,
//! over packets *created* in the measurement window — the standard open-loop
//! methodology, which makes source queueing visible and latency diverge past
//! saturation exactly as in the paper's figures.

use crate::channel::ChannelClass;

/// Per-channel-class traversal counters (flit-hops), the input to the
/// energy model of Fig. 15.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassCounters {
    /// Flit traversals per [`ChannelClass`] (dense index).
    pub flit_hops: [u64; 6],
}

impl ClassCounters {
    /// Record one flit traversing a channel of class `c`.
    #[inline]
    pub fn record(&mut self, c: ChannelClass) {
        self.flit_hops[c.index()] += 1;
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &ClassCounters) {
        for i in 0..6 {
            self.flit_hops[i] += other.flit_hops[i];
        }
    }

    /// Traversals of one class.
    pub fn get(&self, c: ChannelClass) -> u64 {
        self.flit_hops[c.index()]
    }

    /// Total flit-hops over all classes.
    pub fn total(&self) -> u64 {
        self.flit_hops.iter().sum()
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Packets created in the measurement window.
    pub packets_created: u64,
    /// Measured packets that fully ejected (tail received).
    pub packets_ejected: u64,
    /// Sum of packet latencies (cycles) over ejected measured packets.
    pub latency_sum: u64,
    /// Maximum packet latency observed.
    pub latency_max: u64,
    /// Flits ejected during the measurement window (any packet) — the
    /// accepted-throughput numerator.
    pub flits_ejected_measured: u64,
    /// Flits injected into the network during the measurement window.
    pub flits_injected_measured: u64,
    /// Flit-hop counters by channel class, measurement window only.
    pub class_hops: ClassCounters,
    /// Measured cycles (denominator for rates).
    pub measure_cycles: u64,
    /// Number of endpoints (denominator for per-endpoint rates).
    pub endpoints: u64,
    /// Cycles actually simulated (incl. warm-up and drain).
    pub cycles_run: u64,
    /// True if the deadlock watchdog fired (results then meaningless).
    pub deadlocked: bool,
    /// Measured-window flits ejected per endpoint (empty unless
    /// `SimConfig::per_endpoint_stats`); lets collectives report the
    /// bottleneck chip instead of the average.
    pub ejected_per_endpoint: Vec<u32>,
    /// Measured-window flits sent per channel (empty unless
    /// `SimConfig::per_channel_stats`); divide by `measure_cycles ×
    /// width` for utilization. Indexed by channel id.
    pub flits_per_channel: Vec<u32>,
}

impl Metrics {
    /// Mean packet latency in cycles, or `None` if nothing ejected.
    pub fn avg_latency(&self) -> Option<f64> {
        if self.packets_ejected == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.packets_ejected as f64)
        }
    }

    /// Accepted throughput in flits/cycle/endpoint.
    pub fn accepted_rate(&self) -> f64 {
        if self.measure_cycles == 0 || self.endpoints == 0 {
            return 0.0;
        }
        self.flits_ejected_measured as f64 / (self.measure_cycles * self.endpoints) as f64
    }

    /// Injected throughput in flits/cycle/endpoint (what actually entered
    /// the network; < offered when source queues back up).
    pub fn injected_rate(&self) -> f64 {
        if self.measure_cycles == 0 || self.endpoints == 0 {
            return 0.0;
        }
        self.flits_injected_measured as f64 / (self.measure_cycles * self.endpoints) as f64
    }

    /// Fraction of measured packets that made it out (drain completeness).
    pub fn ejection_fraction(&self) -> f64 {
        if self.packets_created == 0 {
            return 1.0;
        }
        self.packets_ejected as f64 / self.packets_created as f64
    }

    /// Average flit-hops per ejected flit, by class — feeds the energy model.
    pub fn avg_hops_per_flit(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        if self.flits_ejected_measured == 0 {
            return out;
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.class_hops.flit_hops[i] as f64 / self.flits_ejected_measured as f64;
        }
        out
    }

    /// Merge a partition-local metrics block into the global one.
    pub fn merge(&mut self, other: &Metrics) {
        self.packets_created += other.packets_created;
        self.packets_ejected += other.packets_ejected;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.flits_ejected_measured += other.flits_ejected_measured;
        self.flits_injected_measured += other.flits_injected_measured;
        self.class_hops.merge(&other.class_hops);
        self.deadlocked |= other.deadlocked;
        if !other.ejected_per_endpoint.is_empty() {
            if self.ejected_per_endpoint.is_empty() {
                self.ejected_per_endpoint = vec![0; other.ejected_per_endpoint.len()];
            }
            for (a, b) in self
                .ejected_per_endpoint
                .iter_mut()
                .zip(other.ejected_per_endpoint.iter())
            {
                *a += b;
            }
        }
        if !other.flits_per_channel.is_empty() {
            if self.flits_per_channel.is_empty() {
                self.flits_per_channel = vec![0; other.flits_per_channel.len()];
            }
            for (a, b) in self
                .flits_per_channel
                .iter_mut()
                .zip(other.flits_per_channel.iter())
            {
                *a += b;
            }
        }
    }

    /// Utilization of channel `ch` (flits sent / capacity) over the
    /// measurement window; `None` without per-channel stats.
    pub fn channel_utilization(&self, ch: usize, width: u8) -> Option<f64> {
        if self.flits_per_channel.is_empty() || self.measure_cycles == 0 {
            return None;
        }
        Some(self.flits_per_channel[ch] as f64 / (self.measure_cycles as f64 * width as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_sane() {
        let m = Metrics::default();
        assert_eq!(m.avg_latency(), None);
        assert_eq!(m.accepted_rate(), 0.0);
        assert_eq!(m.ejection_fraction(), 1.0);
    }

    #[test]
    fn rates_and_latency() {
        let m = Metrics {
            packets_created: 10,
            packets_ejected: 8,
            latency_sum: 160,
            latency_max: 40,
            flits_ejected_measured: 32,
            flits_injected_measured: 40,
            measure_cycles: 100,
            endpoints: 4,
            ..Default::default()
        };
        assert_eq!(m.avg_latency(), Some(20.0));
        assert!((m.accepted_rate() - 32.0 / 400.0).abs() < 1e-12);
        assert!((m.injected_rate() - 0.1).abs() < 1e-12);
        assert!((m.ejection_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            packets_ejected: 1,
            latency_sum: 5,
            latency_max: 5,
            ..Default::default()
        };
        let b = Metrics {
            packets_ejected: 2,
            latency_sum: 20,
            latency_max: 15,
            deadlocked: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.packets_ejected, 3);
        assert_eq!(a.latency_sum, 25);
        assert_eq!(a.latency_max, 15);
        assert!(a.deadlocked);
    }

    #[test]
    fn class_counters_roundtrip() {
        let mut c = ClassCounters::default();
        c.record(ChannelClass::OnChip);
        c.record(ChannelClass::OnChip);
        c.record(ChannelClass::LongReachGlobal);
        assert_eq!(c.get(ChannelClass::OnChip), 2);
        assert_eq!(c.get(ChannelClass::LongReachGlobal), 1);
        assert_eq!(c.total(), 3);
        let mut d = ClassCounters::default();
        d.merge(&c);
        d.merge(&c);
        assert_eq!(d.total(), 6);
    }
}

#[cfg(test)]
mod channel_stats_tests {
    use super::*;

    #[test]
    fn per_channel_merge_and_utilization() {
        let mut a = Metrics {
            flits_per_channel: vec![10, 0, 5],
            measure_cycles: 100,
            ..Default::default()
        };
        let b = Metrics {
            flits_per_channel: vec![5, 5, 0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flits_per_channel, vec![15, 5, 5]);
        assert_eq!(a.channel_utilization(0, 1), Some(0.15));
        assert_eq!(a.channel_utilization(1, 2), Some(0.025));
    }

    #[test]
    fn utilization_none_without_stats() {
        let m = Metrics {
            measure_cycles: 100,
            ..Default::default()
        };
        assert_eq!(m.channel_utilization(0, 1), None);
    }
}
