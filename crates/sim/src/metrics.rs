//! Simulation statistics.
//!
//! Collected per partition without synchronization, then merged. Latency is
//! packet latency: creation (entry into the source queue) to tail ejection,
//! over packets *created* in the measurement window — the standard open-loop
//! methodology, which makes source queueing visible and latency diverge past
//! saturation exactly as in the paper's figures.

use crate::channel::ChannelClass;

/// Per-channel-class traversal counters (flit-hops), the input to the
/// energy model of Fig. 15.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassCounters {
    /// Flit traversals per [`ChannelClass`] (dense index).
    pub flit_hops: [u64; 6],
}

impl ClassCounters {
    /// Record one flit traversing a channel of class `c`.
    #[inline]
    pub fn record(&mut self, c: ChannelClass) {
        self.flit_hops[c.index()] += 1;
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &ClassCounters) {
        for i in 0..6 {
            self.flit_hops[i] += other.flit_hops[i];
        }
    }

    /// Traversals of one class.
    pub fn get(&self, c: ChannelClass) -> u64 {
        self.flit_hops[c.index()]
    }

    /// Total flit-hops over all classes.
    pub fn total(&self) -> u64 {
        self.flit_hops.iter().sum()
    }
}

/// Streaming log-linear latency histogram: fixed bucket layout, no
/// allocation on the record path, mergeable across partitions like
/// [`ClassCounters`].
///
/// Layout (HDR-histogram style): values below [`Self::SUBS`] get exact
/// unit-width buckets; above that, each power-of-two range `[2^k, 2^{k+1})`
/// is split into [`Self::SUBS`] equal sub-buckets, bounding the relative
/// quantization error of any recorded value by `1/SUBS` (≈ 3%). The layout
/// is a pure function of the value, so merging histograms from different
/// partitions is exact (bucket-wise addition) and percentiles are
/// bit-identical for any partition/worker split of the same simulation.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; Self::BUCKETS],
    total: u64,
}

impl LatencyHistogram {
    /// Sub-bucket resolution: `log2` of the number of sub-buckets per
    /// power-of-two range.
    pub const SUB_BITS: u32 = 5;
    /// Sub-buckets per power-of-two range (and width of the exact linear
    /// region at the bottom of the scale).
    pub const SUBS: u64 = 1 << Self::SUB_BITS;
    /// Total bucket count, covering the full `u64` value range.
    pub const BUCKETS: usize = ((64 - Self::SUB_BITS + 1) * Self::SUBS as u32) as usize;

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < Self::SUBS {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let group = msb - Self::SUB_BITS;
            let sub = (v >> group) - Self::SUBS;
            ((group + 1) as u64 * Self::SUBS + sub) as usize
        }
    }

    /// Lower bound (inclusive) of bucket `idx` — the value
    /// [`quantile`](Self::quantile) reports for a hit in that bucket.
    #[inline]
    pub fn bucket_lower(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < Self::SUBS {
            idx
        } else {
            let group = idx / Self::SUBS - 1;
            let sub = idx % Self::SUBS;
            (Self::SUBS + sub) << group
        }
    }

    /// Record one latency sample. Constant-time, allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merge another histogram into this one (bucket-wise addition; exact
    /// and associative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) as the lower bound of the
    /// bucket holding the `⌈q·n⌉`-th smallest sample, or `None` when empty.
    /// Guaranteed `quantile(q) ≤ exact q-quantile < quantile(q)·(1 + 1/SUBS)
    /// + 1`, and monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 0 maps to the smallest.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_lower(idx));
            }
        }
        unreachable!("histogram total disagrees with bucket counts")
    }

    /// Median latency (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; Self::BUCKETS],
            total: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    /// Compact summary — the raw bucket array is ~2k entries and would
    /// drown any derived `Metrics` debug dump.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .finish()
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Packets created in the measurement window.
    pub packets_created: u64,
    /// Measured packets that fully ejected (tail received).
    pub packets_ejected: u64,
    /// Sum of packet latencies (cycles) over ejected measured packets.
    pub latency_sum: u64,
    /// Maximum packet latency observed.
    pub latency_max: u64,
    /// Streaming latency distribution over the same packets as
    /// [`latency_sum`](Self::latency_sum) — the source of
    /// p50/p95/p99 tail-latency reporting.
    pub latency_hist: LatencyHistogram,
    /// Flits ejected during the measurement window (any packet) — the
    /// accepted-throughput numerator.
    pub flits_ejected_measured: u64,
    /// Flits injected into the network during the measurement window.
    pub flits_injected_measured: u64,
    /// Flit-hop counters by channel class, measurement window only.
    pub class_hops: ClassCounters,
    /// Measured cycles (denominator for rates).
    pub measure_cycles: u64,
    /// Number of endpoints (denominator for per-endpoint rates).
    pub endpoints: u64,
    /// Cycles actually simulated (incl. warm-up and drain).
    pub cycles_run: u64,
    /// Cycles the engine actually stepped (agents executed). With the
    /// dense loop this equals [`cycles_run`](Self::cycles_run).
    pub busy_cycles: u64,
    /// Cycles the event-driven engine fast-forwarded over (no agent ran).
    /// Always `busy_cycles + skipped_cycles == cycles_run`.
    pub skipped_cycles: u64,
    /// True if the deadlock watchdog fired (results then meaningless).
    pub deadlocked: bool,
    /// Measured-window flits ejected per endpoint (empty unless
    /// `SimConfig::per_endpoint_stats`); lets collectives report the
    /// bottleneck chip instead of the average.
    pub ejected_per_endpoint: Vec<u32>,
    /// Measured-window flits sent per channel (empty unless
    /// `SimConfig::per_channel_stats`); divide by `measure_cycles ×
    /// width` for utilization. Indexed by channel id.
    pub flits_per_channel: Vec<u32>,
}

impl Metrics {
    /// Mean packet latency in cycles, or `None` if nothing ejected.
    pub fn avg_latency(&self) -> Option<f64> {
        if self.packets_ejected == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.packets_ejected as f64)
        }
    }

    /// Accepted throughput in flits/cycle/endpoint.
    pub fn accepted_rate(&self) -> f64 {
        if self.measure_cycles == 0 || self.endpoints == 0 {
            return 0.0;
        }
        self.flits_ejected_measured as f64 / (self.measure_cycles * self.endpoints) as f64
    }

    /// Injected throughput in flits/cycle/endpoint (what actually entered
    /// the network; < offered when source queues back up).
    pub fn injected_rate(&self) -> f64 {
        if self.measure_cycles == 0 || self.endpoints == 0 {
            return 0.0;
        }
        self.flits_injected_measured as f64 / (self.measure_cycles * self.endpoints) as f64
    }

    /// Fraction of measured packets that made it out (drain completeness).
    pub fn ejection_fraction(&self) -> f64 {
        if self.packets_created == 0 {
            return 1.0;
        }
        self.packets_ejected as f64 / self.packets_created as f64
    }

    /// Average flit-hops per ejected flit, by class — feeds the energy model.
    pub fn avg_hops_per_flit(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        if self.flits_ejected_measured == 0 {
            return out;
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.class_hops.flit_hops[i] as f64 / self.flits_ejected_measured as f64;
        }
        out
    }

    /// Merge a partition-local metrics block into the global one.
    pub fn merge(&mut self, other: &Metrics) {
        self.packets_created += other.packets_created;
        self.packets_ejected += other.packets_ejected;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.latency_hist.merge(&other.latency_hist);
        self.flits_ejected_measured += other.flits_ejected_measured;
        self.flits_injected_measured += other.flits_injected_measured;
        self.busy_cycles += other.busy_cycles;
        self.skipped_cycles += other.skipped_cycles;
        self.class_hops.merge(&other.class_hops);
        self.deadlocked |= other.deadlocked;
        if !other.ejected_per_endpoint.is_empty() {
            if self.ejected_per_endpoint.is_empty() {
                self.ejected_per_endpoint = vec![0; other.ejected_per_endpoint.len()];
            }
            for (a, b) in self
                .ejected_per_endpoint
                .iter_mut()
                .zip(other.ejected_per_endpoint.iter())
            {
                *a += b;
            }
        }
        if !other.flits_per_channel.is_empty() {
            if self.flits_per_channel.is_empty() {
                self.flits_per_channel = vec![0; other.flits_per_channel.len()];
            }
            for (a, b) in self
                .flits_per_channel
                .iter_mut()
                .zip(other.flits_per_channel.iter())
            {
                *a += b;
            }
        }
    }

    /// Utilization of channel `ch` (flits sent / capacity) over the
    /// measurement window; `None` without per-channel stats.
    pub fn channel_utilization(&self, ch: usize, width: u8) -> Option<f64> {
        if self.flits_per_channel.is_empty() || self.measure_cycles == 0 {
            return None;
        }
        Some(self.flits_per_channel[ch] as f64 / (self.measure_cycles as f64 * width as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_sane() {
        let m = Metrics::default();
        assert_eq!(m.avg_latency(), None);
        assert_eq!(m.accepted_rate(), 0.0);
        assert_eq!(m.ejection_fraction(), 1.0);
    }

    #[test]
    fn rates_and_latency() {
        let m = Metrics {
            packets_created: 10,
            packets_ejected: 8,
            latency_sum: 160,
            latency_max: 40,
            flits_ejected_measured: 32,
            flits_injected_measured: 40,
            measure_cycles: 100,
            endpoints: 4,
            ..Default::default()
        };
        assert_eq!(m.avg_latency(), Some(20.0));
        assert!((m.accepted_rate() - 32.0 / 400.0).abs() < 1e-12);
        assert!((m.injected_rate() - 0.1).abs() < 1e-12);
        assert!((m.ejection_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            packets_ejected: 1,
            latency_sum: 5,
            latency_max: 5,
            ..Default::default()
        };
        let b = Metrics {
            packets_ejected: 2,
            latency_sum: 20,
            latency_max: 15,
            deadlocked: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.packets_ejected, 3);
        assert_eq!(a.latency_sum, 25);
        assert_eq!(a.latency_max, 15);
        assert!(a.deadlocked);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        // Values ≤ 31 are exact; above that the lower bucket bound is
        // within 1/SUBS of the true value.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.25), Some(25));
        let p50 = h.p50().unwrap();
        assert!(p50 <= 50 && 50 < p50 + p50 / LatencyHistogram::SUBS + 1);
        let p99 = h.p99().unwrap();
        assert!(p99 <= 99 && 99 < p99 + p99 / LatencyHistogram::SUBS + 1);
        // Monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.9));
        assert_eq!(h.quantile(1.0), h.quantile(0.999));
    }

    #[test]
    fn histogram_bucket_layout_is_contiguous() {
        // Every value maps into exactly one bucket whose bounds contain it,
        // and bucket lower bounds are strictly increasing.
        for idx in 1..LatencyHistogram::BUCKETS {
            assert!(
                LatencyHistogram::bucket_lower(idx) > LatencyHistogram::bucket_lower(idx - 1),
                "bucket {idx} lower bound not increasing"
            );
        }
        for v in (0..4096u64).chain([u64::MAX / 2, u64::MAX]) {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(LatencyHistogram::bucket_lower(idx) <= v, "v={v}");
            if idx + 1 < LatencyHistogram::BUCKETS {
                assert!(v < LatencyHistogram::bucket_lower(idx + 1), "v={v}");
            }
        }
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut both = LatencyHistogram::default();
        for v in [3u64, 40, 40, 700, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 99, 5_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 8);
    }

    #[test]
    fn metrics_merge_includes_histogram() {
        let mut a = Metrics::default();
        a.latency_hist.record(10);
        let mut b = Metrics::default();
        b.latency_hist.record(20);
        b.latency_hist.record(30);
        a.merge(&b);
        assert_eq!(a.latency_hist.count(), 3);
        assert_eq!(a.latency_hist.quantile(0.0), Some(10));
    }

    #[test]
    fn class_counters_roundtrip() {
        let mut c = ClassCounters::default();
        c.record(ChannelClass::OnChip);
        c.record(ChannelClass::OnChip);
        c.record(ChannelClass::LongReachGlobal);
        assert_eq!(c.get(ChannelClass::OnChip), 2);
        assert_eq!(c.get(ChannelClass::LongReachGlobal), 1);
        assert_eq!(c.total(), 3);
        let mut d = ClassCounters::default();
        d.merge(&c);
        d.merge(&c);
        assert_eq!(d.total(), 6);
    }
}

#[cfg(test)]
mod channel_stats_tests {
    use super::*;

    #[test]
    fn per_channel_merge_and_utilization() {
        let mut a = Metrics {
            flits_per_channel: vec![10, 0, 5],
            measure_cycles: 100,
            ..Default::default()
        };
        let b = Metrics {
            flits_per_channel: vec![5, 5, 0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flits_per_channel, vec![15, 5, 5]);
        assert_eq!(a.channel_utilization(0, 1), Some(0.15));
        assert_eq!(a.channel_utilization(1, 2), Some(0.025));
    }

    #[test]
    fn utilization_none_without_stats() {
        let m = Metrics {
            measure_cycles: 100,
            ..Default::default()
        };
        assert_eq!(m.channel_utilization(0, 1), None);
    }
}
