//! Channel descriptions: the static wiring of the network.
//!
//! Channels are unidirectional. A physical full-duplex link in the paper is
//! two `ChannelDesc`s in opposite directions. Each channel has a latency in
//! cycles and a width in flits/cycle; the paper's `2B`/`4B` configurations
//! (doubled/quadrupled intra-C-group bandwidth) are expressed purely through
//! `width`.

use serde::{Deserialize, Serialize};

/// Index of a channel in [`crate::network::NetworkDesc::channels`].
pub type ChannelId = u32;

/// Physical class of a channel; drives latency defaults and the energy model
/// (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelClass {
    /// Hop inside a chiplet's NoC (RDL metal, ~0.1 pJ/bit, 1 cycle).
    OnChip,
    /// On-wafer short-reach hop between chiplets or to an SR-LR converter
    /// (~2 pJ/bit, 1 cycle).
    ShortReach,
    /// Long-reach local (intra-W-group) hop, copper (~20 pJ/bit, 8 cycles).
    LongReachLocal,
    /// Long-reach global (inter-W-group) hop, optical (~20 pJ/bit, 8 cycles).
    LongReachGlobal,
    /// Endpoint→router injection hop (terminal link; counts as local hop
    /// `H*_l` in switch-based networks, on-chip in switch-less ones).
    Injection,
    /// Router→endpoint ejection hop.
    Ejection,
}

impl ChannelClass {
    /// All classes, for iteration in metrics/energy accounting.
    pub const ALL: [ChannelClass; 6] = [
        ChannelClass::OnChip,
        ChannelClass::ShortReach,
        ChannelClass::LongReachLocal,
        ChannelClass::LongReachGlobal,
        ChannelClass::Injection,
        ChannelClass::Ejection,
    ];

    /// Dense index for array-backed counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ChannelClass::OnChip => 0,
            ChannelClass::ShortReach => 1,
            ChannelClass::LongReachLocal => 2,
            ChannelClass::LongReachGlobal => 3,
            ChannelClass::Injection => 4,
            ChannelClass::Ejection => 5,
        }
    }

    /// Human-readable name (used by harness output).
    pub fn name(self) -> &'static str {
        match self {
            ChannelClass::OnChip => "on-chip",
            ChannelClass::ShortReach => "short-reach",
            ChannelClass::LongReachLocal => "lr-local",
            ChannelClass::LongReachGlobal => "lr-global",
            ChannelClass::Injection => "injection",
            ChannelClass::Ejection => "ejection",
        }
    }
}

/// One side of a channel: a router port or an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminus {
    /// A specific port of a router.
    Router {
        /// Router index.
        router: u32,
        /// Port index within the router.
        port: u8,
    },
    /// An endpoint (traffic source/sink).
    Endpoint {
        /// Endpoint index.
        endpoint: u32,
    },
}

impl Terminus {
    /// Router index if this side is a router.
    #[inline]
    pub fn router(&self) -> Option<u32> {
        match self {
            Terminus::Router { router, .. } => Some(*router),
            Terminus::Endpoint { .. } => None,
        }
    }

    /// Port index if this side is a router.
    #[inline]
    pub fn port(&self) -> Option<u8> {
        match self {
            Terminus::Router { port, .. } => Some(*port),
            Terminus::Endpoint { .. } => None,
        }
    }

    /// Endpoint index if this side is an endpoint.
    #[inline]
    pub fn endpoint(&self) -> Option<u32> {
        match self {
            Terminus::Endpoint { endpoint } => Some(*endpoint),
            Terminus::Router { .. } => None,
        }
    }
}

/// Static description of a unidirectional channel.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChannelDesc {
    /// Sending side.
    pub src: Terminus,
    /// Receiving side.
    pub dst: Terminus,
    /// Latency in cycles (≥ 1). Credits travel back with the same latency.
    pub latency: u32,
    /// Bandwidth in flits per cycle (≥ 1).
    pub width: u8,
    /// Physical class (energy model + sanity checks).
    pub class: ChannelClass,
}

impl ChannelDesc {
    /// Convenience constructor for a router-to-router channel.
    pub fn router_to_router(
        src_router: u32,
        src_port: u8,
        dst_router: u32,
        dst_port: u8,
        latency: u32,
        width: u8,
        class: ChannelClass,
    ) -> Self {
        ChannelDesc {
            src: Terminus::Router {
                router: src_router,
                port: src_port,
            },
            dst: Terminus::Router {
                router: dst_router,
                port: dst_port,
            },
            latency,
            width,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for c in ChannelClass::ALL {
            let i = c.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn terminus_accessors() {
        let r = Terminus::Router { router: 3, port: 2 };
        let e = Terminus::Endpoint { endpoint: 9 };
        assert_eq!(r.router(), Some(3));
        assert_eq!(r.port(), Some(2));
        assert_eq!(r.endpoint(), None);
        assert_eq!(e.endpoint(), Some(9));
        assert_eq!(e.router(), None);
        assert_eq!(e.port(), None);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ChannelClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), ChannelClass::ALL.len());
    }
}
