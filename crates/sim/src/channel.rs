//! Channel descriptions: the static wiring of the network, plus the
//! fixed-capacity timed ring buffer that backs every channel queue at
//! runtime.
//!
//! Channels are unidirectional. A physical full-duplex link in the paper is
//! two `ChannelDesc`s in opposite directions. Each channel has a latency in
//! cycles and a width in flits/cycle; the paper's `2B`/`4B` configurations
//! (doubled/quadrupled intra-C-group bandwidth) are expressed purely through
//! `width`.

/// Index of a channel in [`crate::network::NetworkDesc::channels`].
pub type ChannelId = u32;

/// Physical class of a channel; drives latency defaults and the energy model
/// (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// Hop inside a chiplet's NoC (RDL metal, ~0.1 pJ/bit, 1 cycle).
    OnChip,
    /// On-wafer short-reach hop between chiplets or to an SR-LR converter
    /// (~2 pJ/bit, 1 cycle).
    ShortReach,
    /// Long-reach local (intra-W-group) hop, copper (~20 pJ/bit, 8 cycles).
    LongReachLocal,
    /// Long-reach global (inter-W-group) hop, optical (~20 pJ/bit, 8 cycles).
    LongReachGlobal,
    /// Endpoint→router injection hop (terminal link; counts as local hop
    /// `H*_l` in switch-based networks, on-chip in switch-less ones).
    Injection,
    /// Router→endpoint ejection hop.
    Ejection,
}

impl ChannelClass {
    /// All classes, for iteration in metrics/energy accounting.
    pub const ALL: [ChannelClass; 6] = [
        ChannelClass::OnChip,
        ChannelClass::ShortReach,
        ChannelClass::LongReachLocal,
        ChannelClass::LongReachGlobal,
        ChannelClass::Injection,
        ChannelClass::Ejection,
    ];

    /// Dense index for array-backed counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ChannelClass::OnChip => 0,
            ChannelClass::ShortReach => 1,
            ChannelClass::LongReachLocal => 2,
            ChannelClass::LongReachGlobal => 3,
            ChannelClass::Injection => 4,
            ChannelClass::Ejection => 5,
        }
    }

    /// Human-readable name (used by harness output).
    pub fn name(self) -> &'static str {
        match self {
            ChannelClass::OnChip => "on-chip",
            ChannelClass::ShortReach => "short-reach",
            ChannelClass::LongReachLocal => "lr-local",
            ChannelClass::LongReachGlobal => "lr-global",
            ChannelClass::Injection => "injection",
            ChannelClass::Ejection => "ejection",
        }
    }
}

/// One side of a channel: a router port or an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminus {
    /// A specific port of a router.
    Router {
        /// Router index.
        router: u32,
        /// Port index within the router.
        port: u8,
    },
    /// An endpoint (traffic source/sink).
    Endpoint {
        /// Endpoint index.
        endpoint: u32,
    },
}

impl Terminus {
    /// Router index if this side is a router.
    #[inline]
    pub fn router(&self) -> Option<u32> {
        match self {
            Terminus::Router { router, .. } => Some(*router),
            Terminus::Endpoint { .. } => None,
        }
    }

    /// Port index if this side is a router.
    #[inline]
    pub fn port(&self) -> Option<u8> {
        match self {
            Terminus::Router { port, .. } => Some(*port),
            Terminus::Endpoint { .. } => None,
        }
    }

    /// Endpoint index if this side is an endpoint.
    #[inline]
    pub fn endpoint(&self) -> Option<u32> {
        match self {
            Terminus::Endpoint { endpoint } => Some(*endpoint),
            Terminus::Router { .. } => None,
        }
    }
}

/// Static description of a unidirectional channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelDesc {
    /// Sending side.
    pub src: Terminus,
    /// Receiving side.
    pub dst: Terminus,
    /// Latency in cycles (≥ 1). Credits travel back with the same latency.
    pub latency: u32,
    /// Bandwidth in flits per cycle (≥ 1).
    pub width: u8,
    /// Physical class (energy model + sanity checks).
    pub class: ChannelClass,
}

impl ChannelDesc {
    /// Convenience constructor for a router-to-router channel.
    pub fn router_to_router(
        src_router: u32,
        src_port: u8,
        dst_router: u32,
        dst_port: u8,
        latency: u32,
        width: u8,
        class: ChannelClass,
    ) -> Self {
        ChannelDesc {
            src: Terminus::Router {
                router: src_router,
                port: src_port,
            },
            dst: Terminus::Router {
                router: dst_router,
                port: dst_port,
            },
            latency,
            width,
            class,
        }
    }
}

// --- Timed ring buffer ------------------------------------------------------

/// Error returned by [`TimedRing::try_push`] when the ring is at capacity.
///
/// Channel queues are sized at network-compile time from the physical bound
/// `(latency + 1) × width (× consumer speedup for credit queues)`, so a full
/// ring during simulation means the sizing invariant was violated — the
/// engine treats it as a hard error rather than silently growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl std::fmt::Display for RingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timed ring buffer is full")
    }
}

impl std::error::Error for RingFull {}

/// A fixed-capacity FIFO of `(arrival_cycle, payload)` entries.
///
/// This backs every channel's flit and credit queue. Producers stamp each
/// entry with its arrival cycle (`now + latency`); consumers drain entries
/// whose arrival cycle has been reached with [`TimedRing::pop_due`].
/// Because a channel has exactly one producer with a fixed latency, arrival
/// stamps are non-decreasing in push order, so FIFO order *is* arrival
/// order and a plain ring suffices — no priority queue, no per-cycle heap
/// churn, and (unlike the `VecDeque` it replaced) no reallocation ever.
///
/// Capacity is fixed at construction; `try_push` reports overflow instead
/// of growing, which doubles as backpressure in unit tests and as an
/// invariant check in the engine.
#[derive(Debug, Clone)]
pub struct TimedRing<T> {
    /// Physical storage; grows monotonically to `cap` on first fill, then
    /// never reallocates. Cell `(head + i) % cap` holds queue position `i`.
    buf: Vec<(u64, T)>,
    cap: usize,
    head: usize,
    len: usize,
}

impl<T: Copy> TimedRing<T> {
    /// Ring with room for `cap` entries (at least 1).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        TimedRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            len: 0,
        }
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum entries this ring can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append an entry arriving at cycle `arrive`; `Err(RingFull)` when at
    /// capacity (backpressure).
    #[inline]
    pub fn try_push(&mut self, arrive: u64, item: T) -> Result<(), RingFull> {
        if self.len == self.cap {
            return Err(RingFull);
        }
        let pos = (self.head + self.len) % self.cap;
        if pos == self.buf.len() {
            self.buf.push((arrive, item));
        } else {
            self.buf[pos] = (arrive, item);
        }
        self.len += 1;
        Ok(())
    }

    /// The oldest entry, if any.
    #[inline]
    pub fn front(&self) -> Option<&(u64, T)> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[self.head])
        }
    }

    /// Remove and return the oldest entry.
    #[inline]
    pub fn pop_front(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        let e = self.buf[self.head];
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
        Some(e)
    }

    /// Arrival cycles of every queued entry, oldest first. Used when the
    /// event-driven engine reseeds its wake wheels from live queue state
    /// after a dense storm interval.
    pub fn dues(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.buf[(self.head + i) % self.cap].0)
    }

    /// Remove and return the oldest entry iff it has arrived by `now`.
    /// This is the consumer-side primitive of every absorb loop.
    #[inline]
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, T)> {
        match self.front() {
            Some(&(arrive, _)) if arrive <= now => self.pop_front(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = TimedRing::with_capacity(4);
        for i in 0..4u64 {
            r.try_push(i, i as u8).unwrap();
        }
        for i in 0..4u64 {
            assert_eq!(r.pop_front(), Some((i, i as u8)));
        }
        assert!(r.pop_front().is_none());
    }

    #[test]
    fn wrap_around_reuses_slots_without_reallocating() {
        let mut r = TimedRing::with_capacity(3);
        // Fill, drain partially, and keep cycling through the wrap point.
        r.try_push(0, 0u8).unwrap();
        r.try_push(1, 1).unwrap();
        assert_eq!(r.pop_front(), Some((0, 0)));
        for i in 2..50u64 {
            r.try_push(i, i as u8).unwrap();
            assert_eq!(r.pop_front(), Some((i - 1, (i - 1) as u8)));
            assert_eq!(r.len(), 1);
        }
        // Physical storage never exceeded the fixed capacity.
        assert!(r.buf.len() <= r.capacity());
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn full_queue_exerts_backpressure() {
        let mut r = TimedRing::with_capacity(2);
        r.try_push(0, 1u8).unwrap();
        r.try_push(0, 2).unwrap();
        assert_eq!(r.try_push(0, 3), Err(RingFull));
        assert_eq!(r.len(), 2);
        // Draining one slot re-admits one entry.
        assert_eq!(r.pop_front(), Some((0, 1)));
        r.try_push(9, 3).unwrap();
        assert_eq!(r.try_push(9, 4), Err(RingFull));
    }

    #[test]
    fn pop_due_respects_arrival_cycles() {
        let mut r = TimedRing::with_capacity(4);
        r.try_push(5, 10u8).unwrap();
        r.try_push(5, 11).unwrap();
        r.try_push(8, 12).unwrap();
        // Nothing due before cycle 5.
        assert_eq!(r.pop_due(4), None);
        assert_eq!(r.len(), 3);
        // Both cycle-5 entries drain in order; the cycle-8 entry stays.
        assert_eq!(r.pop_due(5), Some((5, 10)));
        assert_eq!(r.pop_due(5), Some((5, 11)));
        assert_eq!(r.pop_due(5), None);
        assert_eq!(r.pop_due(8), Some((8, 12)));
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = TimedRing::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.try_push(0, 1u8).unwrap();
        assert_eq!(r.try_push(0, 2), Err(RingFull));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for c in ChannelClass::ALL {
            let i = c.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn terminus_accessors() {
        let r = Terminus::Router { router: 3, port: 2 };
        let e = Terminus::Endpoint { endpoint: 9 };
        assert_eq!(r.router(), Some(3));
        assert_eq!(r.port(), Some(2));
        assert_eq!(r.endpoint(), None);
        assert_eq!(e.endpoint(), Some(9));
        assert_eq!(e.router(), None);
        assert_eq!(e.port(), None);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ChannelClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), ChannelClass::ALL.len());
    }
}
