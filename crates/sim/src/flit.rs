//! Flits and packet headers.
//!
//! Packets are fixed-length flit sequences (4 flits by default, Table IV).
//! Every flit carries a copy of the (small, `Copy`) packet header so routing
//! state can be reconstructed at any hop without a side table — the engine
//! never needs a global packet map on the hot path.

/// Sentinel for "no intermediate W-group" (minimal routing).
pub const NO_INTERMEDIATE: u32 = u32::MAX;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit; triggers route computation and VC allocation.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the allocated VC downstream.
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// Does this flit open a packet (head or single)?
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Does this flit close a packet (tail or single)?
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }

    /// Kind of the flit at `seq` within a packet of `len` flits.
    #[inline]
    pub fn at(seq: u8, len: u8) -> Self {
        debug_assert!(len >= 1 && seq < len);
        match (seq, len) {
            (0, 1) => FlitKind::Single,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }
}

/// Per-packet routing header, copied into every flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Globally unique packet id (monotone per endpoint, endpoint in high bits).
    pub id: u64,
    /// Source endpoint index.
    pub src: u32,
    /// Destination endpoint index.
    pub dst: u32,
    /// Intermediate W-group for non-minimal (Valiant) routing, or
    /// [`NO_INTERMEDIATE`].
    pub inter_w: u32,
    /// Cycle at which the packet was created (entered the source queue).
    pub created: u64,
    /// Packet length in flits.
    pub len: u8,
}

impl PacketHeader {
    /// True if the packet was tagged for non-minimal routing.
    #[inline]
    pub fn is_nonminimal(&self) -> bool {
        self.inter_w != NO_INTERMEDIATE
    }
}

/// The unit of transfer and buffering.
#[derive(Debug, Clone, Copy)]
pub struct Flit {
    /// Header of the owning packet.
    pub pkt: PacketHeader,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (0-based).
    pub seq: u8,
}

impl Flit {
    /// Build the `seq`-th flit of the packet described by `pkt`.
    #[inline]
    pub fn new(pkt: PacketHeader, seq: u8) -> Self {
        Flit {
            pkt,
            kind: FlitKind::at(seq, pkt.len),
            seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(len: u8) -> PacketHeader {
        PacketHeader {
            id: 1,
            src: 0,
            dst: 5,
            inter_w: NO_INTERMEDIATE,
            created: 0,
            len,
        }
    }

    #[test]
    fn kind_at_positions() {
        assert_eq!(FlitKind::at(0, 1), FlitKind::Single);
        assert_eq!(FlitKind::at(0, 4), FlitKind::Head);
        assert_eq!(FlitKind::at(1, 4), FlitKind::Body);
        assert_eq!(FlitKind::at(2, 4), FlitKind::Body);
        assert_eq!(FlitKind::at(3, 4), FlitKind::Tail);
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::Single.is_head());
        assert!(FlitKind::Single.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
        assert!(!FlitKind::Head.is_tail());
    }

    #[test]
    fn packet_flit_sequence_is_well_formed() {
        let pkt = header(4);
        let flits: Vec<Flit> = (0..4).map(|s| Flit::new(pkt, s)).collect();
        assert!(flits[0].kind.is_head());
        assert!(flits[3].kind.is_tail());
        assert_eq!(flits.iter().filter(|f| f.kind.is_head()).count(), 1);
        assert_eq!(flits.iter().filter(|f| f.kind.is_tail()).count(), 1);
    }

    #[test]
    fn minimal_flag() {
        let mut pkt = header(4);
        assert!(!pkt.is_nonminimal());
        pkt.inter_w = 3;
        assert!(pkt.is_nonminimal());
    }
}
