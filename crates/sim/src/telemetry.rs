//! Opt-in streaming telemetry: time-series trace of link utilization,
//! router queue depths, ejection latencies, fault epochs, and serving job
//! lifecycle, written as JSONL by a dedicated writer thread.
//!
//! # Design
//!
//! The hot path must stay bit-identical and (when telemetry is off)
//! cost-free, so the trace pipeline is strictly observe-only and strictly
//! staged:
//!
//! 1. **Buffer in the parallel section.** Each partition owns a
//!    [`PartTrace`]: windowed per-channel flit counters, per-endpoint
//!    latency accumulators, and a record buffer. Routers and endpoints
//!    only bump counters through [`PartTrace::link`]/[`PartTrace::latency`]
//!    — no I/O, no locks, no allocation beyond the amortized buffers.
//! 2. **Drain at the barrier.** After the BSP broadcast of a cycle
//!    returns, the engine (single-threaded at that point) appends every
//!    partition's buffered records — in partition order — into one batch,
//!    sorts it by the canonical `(cycle, kind, agent id)` key, and sends
//!    it over an mpsc channel. Sorting at the drain makes the emitted
//!    stream independent of the partition count and worker count: every
//!    agent is counted by exactly one partition with identical values, so
//!    the sorted batch is a pure function of simulated state.
//! 3. **Serialize off-thread.** A dedicated writer thread receives
//!    batches and serializes them as JSONL through the hand-rolled
//!    [`crate::json`] writer conventions. The channel is unbounded, so
//!    the simulation never blocks on the writer. [`TraceGuard`] joins the
//!    writer on drop (after all [`Tracer`] handles are gone), guaranteeing
//!    the file is complete and flushed.
//!
//! # Determinism contract
//!
//! The emitted byte stream is deterministic and identical across
//! partition counts, worker counts, and dense/event-driven stepping, so
//! trace files can be digest-pinned exactly like reports:
//!
//! * **Windows.** Link and latency records aggregate over `[k·stride,
//!   (k+1)·stride)` windows and are stamped with the window *end*. A
//!   window is flushed at the first executed cycle at or past its end;
//!   under event-driven stepping idle cycles are skipped, but any cycle
//!   with activity is always executed, so the flushed deltas — and the
//!   stamps — match the dense schedule byte for byte. Empty windows emit
//!   nothing.
//! * **Queue samples.** Router occupancancy is sampled at cycles divisible
//!   by the stride, omitting zero depths. A skipped boundary cycle
//!   provably has all queues empty (a non-empty router re-wakes itself
//!   every cycle), so both stepping modes emit the same samples.
//! * **Ordering.** Each drained batch is sorted by `(cycle, kind, id)`;
//!   batches are appended in execution order. Window stamps never exceed
//!   the draining cycle and later batches only carry later stamps, so the
//!   whole stream is cycle-monotonic.

use crate::json::{escape, read, Value};
use crate::router::RouterRt;
use std::io::Write;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which streams to record and how often to sample/flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sampling stride in cycles: queue depths are sampled at multiples
    /// of it, link/latency windows aggregate over it. Must be ≥ 1.
    pub stride: u64,
    /// Per-channel flit-traversal counts per window (`"link"` records).
    pub links: bool,
    /// Per-router buffered-flit depth at stride boundaries (`"queue"`).
    pub queues: bool,
    /// Per-destination-endpoint packet-latency aggregates per window
    /// (`"lat"` records; measurement-window packets only, matching the
    /// summary report's latency statistics).
    pub latencies: bool,
    /// Serving job lifecycle (`"admit"`/`"retire"` records).
    pub jobs: bool,
    /// Fault-epoch transitions of resilience sweeps (`"epoch"` records).
    pub epochs: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            stride: 256,
            links: true,
            queues: true,
            latencies: true,
            jobs: true,
            epochs: true,
        }
    }
}

/// Named accessor into one of [`TraceConfig`]'s stream flags.
type StreamField = (&'static str, fn(&mut TraceConfig) -> &mut bool);

impl TraceConfig {
    const STREAMS: [StreamField; 5] = [
        ("links", |c| &mut c.links),
        ("queues", |c| &mut c.queues),
        ("latencies", |c| &mut c.latencies),
        ("jobs", |c| &mut c.jobs),
        ("epochs", |c| &mut c.epochs),
    ];

    /// Parse a scenario `telemetry` section: `{"stride": N, "streams":
    /// ["links", ...]}`. `streams` absent enables everything; present, it
    /// enables exactly the named streams. Errors carry exact paths.
    pub fn from_json(v: &Value, path: &str) -> Result<TraceConfig, String> {
        read::check_keys(v, path, &["stride", "streams"])?;
        let stride = read::u64_or(v, path, "stride", 256)?;
        if stride == 0 {
            return Err(format!("{path}.stride: expected positive integer"));
        }
        let mut cfg = TraceConfig {
            stride,
            ..TraceConfig::default()
        };
        if v.get("streams").is_some() {
            for (_, field) in Self::STREAMS {
                *field(&mut cfg) = false;
            }
            for (i, item) in read::arr_field(v, path, "streams")?.iter().enumerate() {
                let name = item
                    .as_str()
                    .ok_or_else(|| format!("{path}.streams[{i}]: expected string"))?;
                let Some((_, field)) = Self::STREAMS.iter().find(|(n, _)| *n == name) else {
                    return Err(format!("{path}.streams[{i}]: unknown stream \"{name}\""));
                };
                *field(&mut cfg) = true;
            }
        }
        Ok(cfg)
    }

    /// Canonical writer (inverse of [`TraceConfig::from_json`]): fixed
    /// field and stream order so scenario round-trips are byte-stable.
    pub fn to_json(&self) -> String {
        let mut cfg = self.clone();
        let streams: Vec<String> = Self::STREAMS
            .iter()
            .filter(|(_, field)| *field(&mut cfg))
            .map(|(name, _)| format!("\"{name}\""))
            .collect();
        format!(
            "{{\"stride\": {}, \"streams\": [{}]}}",
            self.stride,
            streams.join(", ")
        )
    }
}

/// One trace record. Serialized as a single JSONL line; ordered by
/// [`TraceRec::sort_key`] within each drained batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRec {
    /// Buffered-flit depth of one router at a stride boundary
    /// (zero depths are omitted from the stream).
    Queue {
        /// Sample cycle (multiple of the stride).
        cycle: u64,
        /// Global router id.
        router: u32,
        /// Flits buffered across all input VCs.
        depth: u32,
    },
    /// Flits that traversed one channel during the window ending at
    /// `cycle` (all traversals, not just measured ones).
    Link {
        /// Window-end cycle (multiple of the stride).
        cycle: u64,
        /// Global channel id.
        ch: u32,
        /// Flit traversals in the window.
        flits: u64,
    },
    /// Latency aggregate of packets ejected at one endpoint during the
    /// window ending at `cycle`. Gated exactly like the summary report:
    /// only packets *created* inside the measurement window count, so
    /// stream totals reconcile with `Metrics::{packets_ejected,
    /// latency_sum, latency_max}`.
    Lat {
        /// Window-end cycle (multiple of the stride).
        cycle: u64,
        /// Destination endpoint id.
        ep: u32,
        /// Packets ejected in the window.
        n: u64,
        /// Sum of their latencies (cycles).
        sum: u64,
        /// Maximum latency in the window (cycles).
        max: u64,
    },
    /// A fault-epoch transition of a resilience sweep. Each epoch is an
    /// independent simulation starting at cycle 0, so the record marks a
    /// segment boundary rather than a point on one shared clock.
    Epoch {
        /// Cycle within the epoch (0 at emission).
        cycle: u64,
        /// Epoch index (position in the fault-fraction sweep).
        epoch: u32,
        /// Human-readable epoch label (e.g. the fault fraction).
        label: String,
    },
    /// A serving job entered the network (first message released).
    Admit {
        /// Admission cycle.
        cycle: u64,
        /// Job instance id.
        job: u32,
        /// Job class index within the serving spec.
        class: u32,
    },
    /// A serving job completed (stamped at the detection cycle; `done`
    /// is the arrival cycle of its last message, which may trail by up
    /// to one channel latency).
    Retire {
        /// Detection cycle.
        cycle: u64,
        /// Job instance id.
        job: u32,
        /// Arrival cycle of the job's final message.
        done: u64,
    },
}

impl TraceRec {
    /// Canonical in-batch order: `(cycle, kind rank, agent id)`. Unique
    /// within a batch (one record per agent per kind per stamp), so the
    /// sorted batch is independent of partition iteration order.
    pub fn sort_key(&self) -> (u64, u8, u64) {
        match self {
            TraceRec::Queue { cycle, router, .. } => (*cycle, 0, *router as u64),
            TraceRec::Link { cycle, ch, .. } => (*cycle, 1, *ch as u64),
            TraceRec::Lat { cycle, ep, .. } => (*cycle, 2, *ep as u64),
            TraceRec::Epoch { cycle, epoch, .. } => (*cycle, 3, *epoch as u64),
            TraceRec::Admit { cycle, job, .. } => (*cycle, 4, *job as u64),
            TraceRec::Retire { cycle, job, .. } => (*cycle, 5, *job as u64),
        }
    }

    /// Append this record's JSONL line (without the trailing newline).
    pub fn write_line(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            TraceRec::Queue {
                cycle,
                router,
                depth,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\": \"queue\", \"cycle\": {cycle}, \"router\": {router}, \"depth\": {depth}}}"
                );
            }
            TraceRec::Link { cycle, ch, flits } => {
                let _ = write!(
                    out,
                    "{{\"t\": \"link\", \"cycle\": {cycle}, \"ch\": {ch}, \"flits\": {flits}}}"
                );
            }
            TraceRec::Lat {
                cycle,
                ep,
                n,
                sum,
                max,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\": \"lat\", \"cycle\": {cycle}, \"ep\": {ep}, \"n\": {n}, \"sum\": {sum}, \"max\": {max}}}"
                );
            }
            TraceRec::Epoch {
                cycle,
                epoch,
                label,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\": \"epoch\", \"cycle\": {cycle}, \"epoch\": {epoch}, \"label\": \"{}\"}}",
                    escape(label)
                );
            }
            TraceRec::Admit { cycle, job, class } => {
                let _ = write!(
                    out,
                    "{{\"t\": \"admit\", \"cycle\": {cycle}, \"job\": {job}, \"class\": {class}}}"
                );
            }
            TraceRec::Retire { cycle, job, done } => {
                let _ = write!(
                    out,
                    "{{\"t\": \"retire\", \"cycle\": {cycle}, \"job\": {job}, \"done\": {done}}}"
                );
            }
        }
    }
}

/// Per-partition trace state, owned by the partition and touched only
/// inside the parallel section. Allocated once at attach time; the hot
/// path bumps counters and pushes into pre-grown vectors.
#[derive(Debug)]
pub struct PartTrace {
    stride: u64,
    links: bool,
    queues: bool,
    latencies: bool,
    /// End cycle of the currently accumulating window.
    next_sample: u64,
    /// Per-channel flit count in the open window (global channel id).
    link_win: Vec<u64>,
    /// Channels with a non-zero count in the open window.
    link_dirty: Vec<u32>,
    /// Per-endpoint latency aggregates in the open window.
    lat_n: Vec<u64>,
    lat_sum: Vec<u64>,
    lat_max: Vec<u64>,
    /// Endpoints with ejections in the open window.
    lat_dirty: Vec<u32>,
    /// Records buffered since the last barrier drain.
    out: Vec<TraceRec>,
}

impl PartTrace {
    /// State for one partition of a network with `channels` channels and
    /// `endpoints` endpoints (counter vectors are globally indexed; each
    /// partition only touches the agents it owns).
    pub fn new(cfg: &TraceConfig, channels: usize, endpoints: usize) -> PartTrace {
        PartTrace {
            stride: cfg.stride,
            links: cfg.links,
            queues: cfg.queues,
            latencies: cfg.latencies,
            next_sample: cfg.stride,
            link_win: vec![0; if cfg.links { channels } else { 0 }],
            link_dirty: Vec::new(),
            lat_n: vec![0; if cfg.latencies { endpoints } else { 0 }],
            lat_sum: vec![0; if cfg.latencies { endpoints } else { 0 }],
            lat_max: vec![0; if cfg.latencies { endpoints } else { 0 }],
            lat_dirty: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Record one flit traversing channel `ch` (called by the sending
    /// router/endpoint — each channel has exactly one sender, so exactly
    /// one partition counts it).
    #[inline]
    pub fn link(&mut self, ch: u32) {
        if self.links {
            let slot = &mut self.link_win[ch as usize];
            if *slot == 0 {
                self.link_dirty.push(ch);
            }
            *slot += 1;
        }
    }

    /// Record one measured packet ejected at endpoint `ep` with latency
    /// `lat` (called at the attach router's partition, which also owns
    /// the endpoint).
    #[inline]
    pub fn latency(&mut self, ep: u32, lat: u64) {
        if self.latencies {
            let i = ep as usize;
            if self.lat_n[i] == 0 {
                self.lat_dirty.push(ep);
            }
            self.lat_n[i] += 1;
            self.lat_sum[i] += lat;
            self.lat_max[i] = self.lat_max[i].max(lat);
        }
    }

    /// Cycle-entry hook: flush any window whose end has passed (stamped
    /// with the window end, not the current cycle — see the module docs
    /// for why this is stepping-mode invariant), then sample queue depths
    /// if `now` is a stride boundary.
    pub fn begin_cycle(&mut self, now: u64, routers: &[RouterRt]) {
        if now >= self.next_sample {
            self.flush_windows();
            self.next_sample = (now / self.stride + 1) * self.stride;
        }
        if self.queues && now.is_multiple_of(self.stride) {
            for r in routers {
                let depth = r.buffered();
                if depth != 0 {
                    self.out.push(TraceRec::Queue {
                        cycle: now,
                        router: r.id,
                        depth,
                    });
                }
            }
        }
    }

    /// End-of-run hook: flush the final (possibly partial) window.
    pub fn finish(&mut self) {
        self.flush_windows();
    }

    fn flush_windows(&mut self) {
        let cycle = self.next_sample;
        for ch in self.link_dirty.drain(..) {
            let flits = std::mem::take(&mut self.link_win[ch as usize]);
            self.out.push(TraceRec::Link { cycle, ch, flits });
        }
        for ep in self.lat_dirty.drain(..) {
            let i = ep as usize;
            self.out.push(TraceRec::Lat {
                cycle,
                ep,
                n: std::mem::take(&mut self.lat_n[i]),
                sum: std::mem::take(&mut self.lat_sum[i]),
                max: std::mem::take(&mut self.lat_max[i]),
            });
        }
    }

    /// Move buffered records into `into` (the engine's serial barrier
    /// drain).
    pub fn drain_into(&mut self, into: &mut Vec<TraceRec>) {
        into.append(&mut self.out);
    }
}

/// Sort one drained batch into the canonical stream order.
pub fn canonicalize(batch: &mut [TraceRec]) {
    batch.sort_by_key(TraceRec::sort_key);
}

/// Handle for emitting trace batches. Cheap to clone; attach one to each
/// simulation of a run (and keep one for out-of-engine records like
/// epochs). The writer thread exits once every clone is dropped.
#[derive(Debug, Clone)]
pub struct Tracer {
    tx: mpsc::Sender<Vec<TraceRec>>,
    cfg: TraceConfig,
}

impl Tracer {
    /// Spawn the writer thread over `sink`. Returns the emit handle and
    /// the guard that joins the writer: drop (or [`TraceGuard::finish`])
    /// the guard *after* every `Tracer` clone is gone, or the join will
    /// wait for them.
    pub fn new(cfg: TraceConfig, sink: Box<dyn Write + Send>) -> (Tracer, TraceGuard) {
        let (tx, rx) = mpsc::channel::<Vec<TraceRec>>();
        let handle = std::thread::Builder::new()
            .name("wsdf-trace-writer".into())
            .spawn(move || {
                let mut sink = std::io::BufWriter::new(sink);
                let mut line = String::new();
                while let Ok(batch) = rx.recv() {
                    for rec in &batch {
                        line.clear();
                        rec.write_line(&mut line);
                        line.push('\n');
                        sink.write_all(line.as_bytes())?;
                    }
                }
                sink.flush()
            })
            .expect("failed to spawn trace writer thread");
        (
            Tracer { tx, cfg },
            TraceGuard {
                handle: Some(handle),
            },
        )
    }

    /// The stream/stride configuration this tracer was created with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Send one canonicalized batch to the writer (non-blocking; the
    /// channel is unbounded). Dropped silently if the writer died — the
    /// error surfaces at [`TraceGuard::finish`].
    pub fn emit(&self, batch: Vec<TraceRec>) {
        if !batch.is_empty() {
            let _ = self.tx.send(batch);
        }
    }

    /// Emit a single out-of-engine record (fault epochs, markers).
    pub fn emit_one(&self, rec: TraceRec) {
        let _ = self.tx.send(vec![rec]);
    }
}

/// Joins the writer thread on drop, guaranteeing every emitted batch is
/// serialized and the sink flushed before the trace file is read. Use
/// [`TraceGuard::finish`] to surface I/O errors instead of ignoring them.
#[derive(Debug)]
pub struct TraceGuard {
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

impl TraceGuard {
    /// Join the writer and report its I/O result.
    pub fn finish(mut self) -> Result<(), String> {
        self.join_writer()
    }

    fn join_writer(&mut self) -> Result<(), String> {
        match self.handle.take() {
            None => Ok(()),
            Some(h) => match h.join() {
                Ok(Ok(())) => Ok(()),
                Ok(Err(e)) => Err(format!("trace writer I/O error: {e}")),
                Err(_) => Err("trace writer thread panicked".into()),
            },
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let _ = self.join_writer();
    }
}

/// An in-memory `Write` sink shareable across the writer thread and the
/// caller: tests and the corpus digest trace files without touching the
/// filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh, empty buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// A copy of everything written so far (call after the guard joined).
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("trace buffer poisoned").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_round_trip() {
        let v = Value::parse(r#"{"stride": 128, "streams": ["links", "queues"]}"#).unwrap();
        let cfg = TraceConfig::from_json(&v, "telemetry").unwrap();
        assert_eq!(cfg.stride, 128);
        assert!(cfg.links && cfg.queues);
        assert!(!cfg.latencies && !cfg.jobs && !cfg.epochs);
        let back = Value::parse(&cfg.to_json()).unwrap();
        assert_eq!(TraceConfig::from_json(&back, "telemetry").unwrap(), cfg);
    }

    #[test]
    fn config_defaults_enable_everything() {
        let v = Value::parse("{}").unwrap();
        let cfg = TraceConfig::from_json(&v, "telemetry").unwrap();
        assert_eq!(cfg, TraceConfig::default());
    }

    #[test]
    fn config_errors_carry_exact_paths() {
        let v = Value::parse(r#"{"stride": 0}"#).unwrap();
        assert_eq!(
            TraceConfig::from_json(&v, "telemetry").unwrap_err(),
            "telemetry.stride: expected positive integer"
        );
        let v = Value::parse(r#"{"streams": ["links", "bogus"]}"#).unwrap();
        assert_eq!(
            TraceConfig::from_json(&v, "telemetry").unwrap_err(),
            "telemetry.streams[1]: unknown stream \"bogus\""
        );
        let v = Value::parse(r#"{"cadence": 4}"#).unwrap();
        assert_eq!(
            TraceConfig::from_json(&v, "telemetry").unwrap_err(),
            "telemetry.cadence: unknown key"
        );
    }

    #[test]
    fn records_serialize_canonically() {
        let mut line = String::new();
        TraceRec::Link {
            cycle: 256,
            ch: 7,
            flits: 42,
        }
        .write_line(&mut line);
        assert_eq!(
            line,
            "{\"t\": \"link\", \"cycle\": 256, \"ch\": 7, \"flits\": 42}"
        );
        line.clear();
        TraceRec::Epoch {
            cycle: 0,
            epoch: 2,
            label: "f=0.10".into(),
        }
        .write_line(&mut line);
        assert_eq!(
            line,
            "{\"t\": \"epoch\", \"cycle\": 0, \"epoch\": 2, \"label\": \"f=0.10\"}"
        );
    }

    #[test]
    fn canonical_order_is_cycle_kind_id() {
        let mut batch = vec![
            TraceRec::Lat {
                cycle: 256,
                ep: 1,
                n: 1,
                sum: 9,
                max: 9,
            },
            TraceRec::Queue {
                cycle: 256,
                router: 3,
                depth: 2,
            },
            TraceRec::Link {
                cycle: 128,
                ch: 9,
                flits: 1,
            },
            TraceRec::Queue {
                cycle: 256,
                router: 1,
                depth: 5,
            },
        ];
        canonicalize(&mut batch);
        let keys: Vec<_> = batch.iter().map(TraceRec::sort_key).collect();
        assert_eq!(
            keys,
            vec![(128, 1, 9), (256, 0, 1), (256, 0, 3), (256, 2, 1)]
        );
    }

    #[test]
    fn part_trace_windows_flush_with_end_stamp() {
        let cfg = TraceConfig {
            stride: 100,
            ..TraceConfig::default()
        };
        let mut pt = PartTrace::new(&cfg, 4, 2);
        pt.begin_cycle(0, &[]);
        pt.link(2);
        pt.link(2);
        pt.latency(1, 50);
        // First executed cycle past the window end flushes it, stamped 100
        // even though the cycle is 240 (event-driven skip).
        pt.begin_cycle(240, &[]);
        pt.link(3);
        pt.finish();
        let mut got = Vec::new();
        pt.drain_into(&mut got);
        assert_eq!(
            got,
            vec![
                TraceRec::Link {
                    cycle: 100,
                    ch: 2,
                    flits: 2
                },
                TraceRec::Lat {
                    cycle: 100,
                    ep: 1,
                    n: 1,
                    sum: 50,
                    max: 50
                },
                TraceRec::Link {
                    cycle: 300,
                    ch: 3,
                    flits: 1
                },
            ]
        );
    }

    #[test]
    fn writer_thread_serializes_and_guard_joins() {
        let buf = SharedBuf::new();
        let (tracer, guard) = Tracer::new(TraceConfig::default(), Box::new(buf.clone()));
        tracer.emit(vec![
            TraceRec::Queue {
                cycle: 0,
                router: 1,
                depth: 3,
            },
            TraceRec::Link {
                cycle: 256,
                ch: 0,
                flits: 10,
            },
        ]);
        drop(tracer);
        guard.finish().unwrap();
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(
            text,
            "{\"t\": \"queue\", \"cycle\": 0, \"router\": 1, \"depth\": 3}\n\
             {\"t\": \"link\", \"cycle\": 256, \"ch\": 0, \"flits\": 10}\n"
        );
    }
}
