//! Compact fault state consumed by the engine.
//!
//! A [`FaultMap`] marks routers and channels of one [`crate::NetworkDesc`]
//! as dead. The engine compiles it into per-port flags so that any attempt
//! to traverse a dead channel is a *hard assert* — a faulted fabric must
//! never silently carry traffic over failed hardware; a routing policy that
//! tries is a bug, not congestion.
//!
//! Fault *sampling* (seeded link/router failure draws, schedules) lives in
//! `wsdf-topo`, which sits above this crate; `FaultMap` is only the
//! dependency-free representation both sides agree on.

use crate::network::NetworkDesc;

/// Dead-router and dead-channel marking for one network.
///
/// Invariants are established by [`FaultMap::seal`]: every channel touching
/// a dead router (including endpoint injection/ejection channels) is dead
/// too. The engine requires a sealed map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    dead_router: Vec<bool>,
    dead_channel: Vec<bool>,
}

impl FaultMap {
    /// All-alive map for a network with `routers` routers and `channels`
    /// channels.
    pub fn new(routers: usize, channels: usize) -> Self {
        FaultMap {
            dead_router: vec![false; routers],
            dead_channel: vec![false; channels],
        }
    }

    /// All-alive map sized for `net`.
    pub fn pristine(net: &NetworkDesc) -> Self {
        Self::new(net.num_routers(), net.channels.len())
    }

    /// Mark router `r` dead (idempotent). Call [`FaultMap::seal`] afterwards
    /// to propagate to its channels.
    pub fn kill_router(&mut self, r: u32) {
        self.dead_router[r as usize] = true;
    }

    /// Mark channel `c` dead (idempotent).
    pub fn kill_channel(&mut self, c: u32) {
        self.dead_channel[c as usize] = true;
    }

    /// True if router `r` is dead.
    #[inline]
    pub fn router_dead(&self, r: u32) -> bool {
        self.dead_router[r as usize]
    }

    /// True if channel `c` is dead.
    #[inline]
    pub fn channel_dead(&self, c: u32) -> bool {
        self.dead_channel[c as usize]
    }

    /// Number of routers covered by the map.
    pub fn num_routers(&self) -> usize {
        self.dead_router.len()
    }

    /// Number of channels covered by the map.
    pub fn num_channels(&self) -> usize {
        self.dead_channel.len()
    }

    /// Routers still alive.
    pub fn live_routers(&self) -> usize {
        self.dead_router.iter().filter(|&&d| !d).count()
    }

    /// Dead routers.
    pub fn dead_routers(&self) -> usize {
        self.dead_router.iter().filter(|&&d| d).count()
    }

    /// Dead channels (unidirectional count).
    pub fn dead_channels(&self) -> usize {
        self.dead_channel.iter().filter(|&&d| d).count()
    }

    /// True when nothing is marked dead.
    pub fn is_empty(&self) -> bool {
        !self.dead_router.iter().any(|&d| d) && !self.dead_channel.iter().any(|&d| d)
    }

    /// Merge another map's failures into this one (sizes must match).
    pub fn union(&mut self, other: &FaultMap) {
        assert_eq!(self.dead_router.len(), other.dead_router.len());
        assert_eq!(self.dead_channel.len(), other.dead_channel.len());
        for (a, b) in self.dead_router.iter_mut().zip(&other.dead_router) {
            *a |= b;
        }
        for (a, b) in self.dead_channel.iter_mut().zip(&other.dead_channel) {
            *a |= b;
        }
    }

    /// Propagate router death to every channel touching a dead router
    /// (both directions, including endpoint injection/ejection channels —
    /// an endpoint attached to a dead router cannot inject or eject).
    pub fn seal(&mut self, net: &NetworkDesc) {
        self.validate(net)
            .expect("fault map does not match network");
        for (c, ch) in net.channels.iter().enumerate() {
            for t in [&ch.src, &ch.dst] {
                let touches_dead = match t {
                    crate::Terminus::Router { router, .. } => self.router_dead(*router),
                    crate::Terminus::Endpoint { endpoint } => {
                        self.router_dead(net.endpoints[*endpoint as usize].router)
                    }
                };
                if touches_dead {
                    self.dead_channel[c] = true;
                }
            }
        }
    }

    /// Dimension check against `net`.
    pub fn validate(&self, net: &NetworkDesc) -> Result<(), String> {
        if self.dead_router.len() != net.num_routers() {
            return Err(format!(
                "fault map covers {} routers, network has {}",
                self.dead_router.len(),
                net.num_routers()
            ));
        }
        if self.dead_channel.len() != net.channels.len() {
            return Err(format!(
                "fault map covers {} channels, network has {}",
                self.dead_channel.len(),
                net.channels.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelClass;

    fn two_router_net() -> NetworkDesc {
        let mut n = NetworkDesc::new();
        let a = n.add_router(2);
        let b = n.add_router(2);
        let ea = n.add_endpoint(a);
        let eb = n.add_endpoint(b);
        n.attach_endpoint(ea, a, 0, 1, 1);
        n.attach_endpoint(eb, b, 0, 1, 1);
        n.connect((a, 1), (b, 1), 1, 1, ChannelClass::ShortReach);
        n
    }

    #[test]
    fn pristine_is_empty_and_validates() {
        let net = two_router_net();
        let m = FaultMap::pristine(&net);
        assert!(m.is_empty());
        assert_eq!(m.live_routers(), 2);
        m.validate(&net).unwrap();
    }

    #[test]
    fn seal_kills_all_channels_of_a_dead_router() {
        let net = two_router_net();
        let mut m = FaultMap::pristine(&net);
        m.kill_router(0);
        m.seal(&net);
        assert_eq!(m.live_routers(), 1);
        // Router 0's endpoint channels (0, 1) and both ring channels (4, 5)
        // must be dead; router 1's endpoint channels (2, 3) stay alive.
        for (c, ch) in net.channels.iter().enumerate() {
            let touches_r0 = [ch.src, ch.dst].iter().any(|t| match t {
                crate::Terminus::Router { router, .. } => *router == 0,
                crate::Terminus::Endpoint { endpoint } => *endpoint == 0,
            });
            assert_eq!(m.channel_dead(c as u32), touches_r0, "channel {c}");
        }
    }

    #[test]
    fn union_merges_failures() {
        let net = two_router_net();
        let mut a = FaultMap::pristine(&net);
        a.kill_channel(4);
        let mut b = FaultMap::pristine(&net);
        b.kill_router(1);
        a.union(&b);
        assert!(a.channel_dead(4));
        assert!(a.router_dead(1));
        assert!(!a.router_dead(0));
    }

    #[test]
    fn validate_rejects_size_mismatch() {
        let net = two_router_net();
        let m = FaultMap::new(1, net.channels.len());
        assert!(m.validate(&net).is_err());
        let m = FaultMap::new(net.num_routers(), 0);
        assert!(m.validate(&net).is_err());
    }
}
