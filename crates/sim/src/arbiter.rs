//! Round-robin arbitration.
//!
//! The router's VC and switch allocators are *separable* allocators built
//! from these arbiters (Dally & Towles, ch. 18–19): fair, stateful, O(n)
//! per decision over a small n.

/// A round-robin arbiter over `n` requesters.
///
/// Grants rotate: after granting requester `i`, requester `i+1` has the
/// highest priority next time. This guarantees starvation freedom among
/// persistent requesters.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    next: u16,
    n: u16,
}

impl RoundRobin {
    /// Arbiter over `n` requesters.
    pub fn new(n: usize) -> Self {
        RoundRobin {
            next: 0,
            n: n as u16,
        }
    }

    /// Pick the first active requester at or after the priority pointer.
    /// `active` is indexed by requester. Advances the pointer past the
    /// winner on a grant.
    pub fn pick<F: Fn(usize) -> bool>(&mut self, active: F) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for off in 0..self.n {
            let i = ((self.next + off) % self.n) as usize;
            if active(i) {
                self.next = (i as u16 + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True if the arbiter has no requesters.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_only_active() {
        let mut a = RoundRobin::new(4);
        assert_eq!(a.pick(|i| i == 2), Some(2));
        assert_eq!(a.pick(|_| false), None);
    }

    #[test]
    fn rotates_fairly() {
        let mut a = RoundRobin::new(3);
        let mut grants = Vec::new();
        for _ in 0..6 {
            grants.push(a.pick(|_| true).unwrap());
        }
        assert_eq!(grants, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_inactive_and_resumes() {
        let mut a = RoundRobin::new(4);
        assert_eq!(a.pick(|i| i != 0), Some(1));
        assert_eq!(a.pick(|_| true), Some(2));
        assert_eq!(a.pick(|_| true), Some(3));
        assert_eq!(a.pick(|_| true), Some(0));
    }

    #[test]
    fn no_starvation_under_contention() {
        // Two persistent requesters must alternate.
        let mut a = RoundRobin::new(2);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            counts[a.pick(|_| true).unwrap()] += 1;
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }

    #[test]
    fn empty_arbiter() {
        let mut a = RoundRobin::new(0);
        assert!(a.is_empty());
        assert_eq!(a.pick(|_| true), None);
    }
}
