//! Routing interface between the engine and routing algorithms.
//!
//! The engine is topology-agnostic: at every head flit it asks the oracle
//! where to go next. Oracles are immutable and `Sync` so the BSP engine can
//! query them from every partition concurrently. All adaptivity must be a
//! pure function of (router, input port, header, RNG draw) — the RNG stream
//! passed in is the per-router deterministic stream, keeping parallel and
//! sequential runs identical.

use crate::flit::PacketHeader;
use crate::rng::SplitMix64;

/// Routing decision for a head flit: the output port and the exact VC to
/// request on it. Returning the precise VC (rather than a class) keeps the
/// engine simple; VC *policies* live inside the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// Output port of the current router.
    pub out_port: u8,
    /// Virtual channel to allocate on that port.
    pub out_vc: u8,
}

/// A routing algorithm + VC discipline for a specific network.
pub trait RouteOracle: Sync + Send {
    /// Route the packet with header `pkt` sitting at `router`, having
    /// arrived on `in_port` (input VC `in_vc`). Must return a valid output
    /// port; for the final hop this is the ejection port of the destination
    /// endpoint's router.
    fn route(
        &self,
        router: u32,
        in_port: u8,
        in_vc: u8,
        pkt: &PacketHeader,
        rng: &mut SplitMix64,
    ) -> RouteChoice;

    /// VC on which the packet is injected from its source endpoint.
    fn initial_vc(&self, pkt: &PacketHeader) -> u8;

    /// Number of VCs this oracle can request (engine checks it against
    /// `SimConfig::num_vcs`).
    fn num_vcs(&self) -> u8;

    /// Tag a freshly created packet with its intermediate W-group for
    /// non-minimal routing. The default (minimal routing) leaves the header
    /// untouched.
    fn tag_packet(&self, _pkt: &mut PacketHeader, _rng: &mut SplitMix64) {}
}

/// Blanket impl so oracles can be boxed/shared.
impl<T: RouteOracle + ?Sized> RouteOracle for &T {
    fn route(
        &self,
        router: u32,
        in_port: u8,
        in_vc: u8,
        pkt: &PacketHeader,
        rng: &mut SplitMix64,
    ) -> RouteChoice {
        (**self).route(router, in_port, in_vc, pkt, rng)
    }
    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        (**self).initial_vc(pkt)
    }
    fn num_vcs(&self) -> u8 {
        (**self).num_vcs()
    }
    fn tag_packet(&self, pkt: &mut PacketHeader, rng: &mut SplitMix64) {
        (**self).tag_packet(pkt, rng)
    }
}

impl<T: RouteOracle + ?Sized> RouteOracle for Box<T> {
    fn route(
        &self,
        router: u32,
        in_port: u8,
        in_vc: u8,
        pkt: &PacketHeader,
        rng: &mut SplitMix64,
    ) -> RouteChoice {
        (**self).route(router, in_port, in_vc, pkt, rng)
    }
    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        (**self).initial_vc(pkt)
    }
    fn num_vcs(&self) -> u8 {
        (**self).num_vcs()
    }
    fn tag_packet(&self, pkt: &mut PacketHeader, rng: &mut SplitMix64) {
        (**self).tag_packet(pkt, rng)
    }
}

impl<T: RouteOracle + ?Sized> RouteOracle for std::sync::Arc<T> {
    fn route(
        &self,
        router: u32,
        in_port: u8,
        in_vc: u8,
        pkt: &PacketHeader,
        rng: &mut SplitMix64,
    ) -> RouteChoice {
        (**self).route(router, in_port, in_vc, pkt, rng)
    }
    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        (**self).initial_vc(pkt)
    }
    fn num_vcs(&self) -> u8 {
        (**self).num_vcs()
    }
    fn tag_packet(&self, pkt: &mut PacketHeader, rng: &mut SplitMix64) {
        (**self).tag_packet(pkt, rng)
    }
}
