//! Deterministic, splittable pseudo-random number generation.
//!
//! Every endpoint (and every other stochastic agent) owns an independent
//! [`SplitMix64`] stream derived from the global seed and its own id, so the
//! generated traffic is identical whether the engine runs sequentially or
//! BSP-parallel, and regardless of partition count. SplitMix64 is the
//! standard seeding/splitting generator (Steele et al., OOPSLA'14); it is
//! statistically solid for workload generation and extremely cheap.

/// A 64-bit SplitMix PRNG. `Copy` on purpose: streams are tiny and freely
/// duplicated into per-partition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent stream for agent `id` under global `seed`.
    ///
    /// The golden-ratio stride guarantees distinct, well-separated state
    /// trajectories for consecutive ids.
    pub fn for_agent(seed: u64, id: u64) -> Self {
        let mut s = Self::new(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn a few outputs so nearby seeds decorrelate immediately.
        s.next_u64();
        s.next_u64();
        s
    }

    /// Derive a stream keyed on `(seed, id, cycle)`: the same key always
    /// yields the same stream, regardless of any draws made at other
    /// cycles. This is what makes idle fast-forward sound for open-loop
    /// traffic — an endpoint's draws at cycle `c` are a pure function of
    /// the key, not of how many earlier cycles were simulated densely.
    #[inline]
    pub fn for_event(seed: u64, id: u64, cycle: u64) -> Self {
        let mut s = Self::new(
            seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ cycle.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        // Burn a few outputs so nearby keys decorrelate immediately.
        s.next_u64();
        s.next_u64();
        s
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Lemire's multiply-shift method with rejection for exact uniformity.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::for_agent(42, 7);
        let mut b = SplitMix64::for_agent(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_agents_diverge() {
        let mut a = SplitMix64::for_agent(42, 7);
        let mut b = SplitMix64::for_agent(42, 8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn event_key_is_history_independent() {
        // The stream at (seed, id, cycle) must not depend on draws made at
        // any other cycle — the property fast-forward relies on.
        let mut a = SplitMix64::for_event(42, 7, 1000);
        let mut warm = SplitMix64::for_event(42, 7, 999);
        for _ in 0..17 {
            warm.next_u64(); // unrelated draws at another cycle
        }
        let mut b = SplitMix64::for_event(42, 7, 1000);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn event_keys_diverge_across_cycles() {
        let mut a = SplitMix64::for_event(42, 7, 1000);
        let mut b = SplitMix64::for_event(42, 7, 1001);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn event_keys_diverge_across_agents() {
        let mut a = SplitMix64::for_event(42, 7, 1000);
        let mut b = SplitMix64::for_event(42, 8, 1000);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_bound_is_uniform_enough() {
        let mut r = SplitMix64::new(99);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should land near n/10 (chi-square would be stricter;
            // a 10% tolerance catches gross bias and stays flake-free).
            assert!((c as f64 - n as f64 / 10.0).abs() < n as f64 * 0.01);
        }
    }

    #[test]
    fn below_one_is_zero() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(r.next_below(1), 0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }
}
