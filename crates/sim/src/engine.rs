//! Simulation engine: network compilation, the cycle loop, and the BSP
//! parallel scheme.
//!
//! Routers are split into `partitions` — by default contiguous id blocks,
//! or any explicit router→partition assignment via
//! [`SimConfig::partition_map`] (e.g. `wsdf_topo::locality_partition`,
//! which minimizes cut channels) — executed on the persistent [`BspPool`]
//! executor (`wsdf-exec`). Every cycle is one [`BspPool::broadcast`] — a
//! release/collect round trip on the pool's reusable two-phase barrier,
//! *not* a thread spawn/join. Each pool slot owns a fixed contiguous range
//! of partitions for the whole run (weight-balanced over routers +
//! endpoints at compile time), so the same OS thread touches the same
//! router and ring state every cycle: cache and NUMA affinity come from
//! the mapping, no `sched_setaffinity` needed.
//!
//! Inside a broadcast, each partition:
//!
//! 1. **Delivers** last cycle's cross-partition messages: it drains the
//!    *read* mailbox of every in-edge of the partition adjacency graph
//!    into the channel queues it owns.
//! 2. **Advances** its endpoints and routers one cycle. Flits/credits
//!    crossing into another partition are appended to the *write* mailbox
//!    of the corresponding out-edge.
//!
//! Cross-partition exchange is **sparse**: the partition adjacency graph
//! is computed at network-compile time (one directed edge per adjacent
//! (src, dst) partition pair that shares a live channel), and the
//! double-buffered mailboxes (the private `Exchange`) hold exactly one
//! cell per edge — not a dense P×P grid. A partition physically borders
//! only a handful of others on a mesh or wafer, so barriers touch O(E)
//! cells, not O(P²). Out-edges are written by their source partition,
//! in-edges drained by their destination partition (disjoint, so the
//! whole exchange runs inside the parallel section without locks), and
//! the two buffers swap in O(1) between cycles. Per-edge written/drained
//! counters make the exchange auditable ([`Simulation::exchange_edges`]).
//!
//! Because every channel has latency ≥ 1, nothing produced in cycle *t* can
//! be consumed before *t+1*, so partitions never observe each other's
//! in-cycle state, and the executor never re-splits or re-orders work:
//! results are bit-identical for any partition count *and* any worker
//! count (see the determinism matrix in `tests/determinism_and_vcs.rs`).
//!
//! ## Monomorphized hot path
//!
//! [`Simulation`] is generic over its [`RouteOracle`], so the per-flit
//! route computation compiles to direct calls — no vtable dispatch in the
//! cycle loop. Heterogeneous callers (sweeps over benches with different
//! oracle types) use [`simulate_dyn`], which instantiates the same engine
//! with `&dyn RouteOracle` at the API boundary; the blanket
//! `impl RouteOracle for &T` makes both paths share one implementation.
//!
//! ## Fixed-capacity channel queues
//!
//! Channel queues are [`TimedRing`]s sized when the network is compiled:
//! a channel can hold at most `width` entries per cycle for `latency`
//! cycles (plus one cycle of producer/consumer skew within a BSP step), so
//! flit rings get `(latency + 1) × width` slots and credit rings
//! additionally scale by the consuming router's crossbar speedup (its
//! per-cycle credit-return bound). The hot path therefore never allocates.

use crate::channel::{Terminus, TimedRing};
use crate::config::SimConfig;
use crate::fault::FaultMap;
use crate::flit::Flit;
use crate::flit::{PacketHeader, NO_INTERMEDIATE};
use crate::metrics::Metrics;
use crate::network::NetworkDesc;
use crate::oracle::RouteOracle;
use crate::pattern::TrafficPattern;
use crate::router::{
    Arrival, CreditTarget, CycleCtx, EndpointRt, FlitTarget, Msg, PortIn, PortOut, RouterRt,
};
use crate::telemetry::{self, PartTrace, TraceRec, Tracer};
use crate::wake::{ep_code, router_code, WakeWheel, EP_BIT};
use wsdf_exec::BspPool;

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The network or configuration failed validation.
    Invalid(String),
    /// The deadlock watchdog fired: no flit moved for the configured window
    /// while flits were in flight.
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Flits stuck in the network.
        in_flight: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Invalid(m) => write!(f, "invalid simulation input: {m}"),
            SimError::Deadlock { cycle, in_flight } => write!(
                f,
                "deadlock detected at cycle {cycle}: {in_flight} flits stuck"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for engine operations.
pub type SimResult<T> = Result<T, SimError>;

/// One BSP partition: a contiguous block of routers plus their endpoints
/// and the channel queues they own. Cross-partition mailboxes live outside
/// the partition (in `Mailboxes`) so the exchange can run in parallel.
struct Partition {
    routers: Vec<RouterRt>,
    endpoints: Vec<EndpointRt>,
    flit_qs: Vec<TimedRing<Flit>>,
    credit_qs: Vec<TimedRing<u8>>,
    metrics: Metrics,
    moved: u64,
    in_flight: i64,
    /// Packet-arrival events of this cycle (closed-loop runs only; stays
    /// empty — and unallocated — in open-loop runs).
    arrivals: Vec<Arrival>,
    /// This partition's wake wheel ([`WakeWheel::disabled`] when dense).
    wheel: WakeWheel,
    /// Local flit queue index → wake code of the consuming agent.
    flit_cons: Vec<u32>,
    /// Local credit queue index → wake code of the consuming agent.
    credit_cons: Vec<u32>,
    /// Local credit queue index → consuming router's output port.
    credit_cons_port: Vec<u8>,
    /// Pending-credit bitmap per local router (bit = output port); lets
    /// credit absorption touch only ports with credits actually in flight.
    /// Maintained in dense mode too.
    credit_pend: Vec<u64>,
    /// Worklist dedup stamps: last cycle each local router / endpoint was
    /// enqueued (the wheel allows duplicate pushes).
    r_seen: Vec<u64>,
    e_seen: Vec<u64>,
    /// Next open-loop emission cycle per local endpoint (`u64::MAX` if its
    /// schedule never fires), and the minimum over them.
    next_gen: Vec<u64>,
    gen_min: u64,
    /// Per-cycle worklist scratch (kept to avoid re-allocating).
    work_r: Vec<u32>,
    work_e: Vec<u32>,
    /// Earliest arrival cycle among the cross-partition messages this
    /// partition emitted on its latest advance (`u64::MAX` if none). After
    /// the barrier those messages sit undelivered in the read mailboxes
    /// with no wheel wake yet, so this bounds the idle fast-forward.
    out_min: u64,
    /// Opt-in telemetry state ([`Simulation::attach_trace`]); `None`
    /// keeps the hot path allocation- and branch-cost-free apart from one
    /// `Option` check per emission site.
    trace: Option<Box<PartTrace>>,
}

impl Partition {
    /// Deliver one source partition's mailbox into the channel queues this
    /// partition owns, registering consumer wakes (the producer partition
    /// cannot reach this wheel, so remote messages wake at delivery).
    fn deliver(
        &mut self,
        msgs: &mut Vec<Msg>,
        flit_loc: &[(u32, u32)],
        credit_loc: &[(u32, u32)],
        event: bool,
    ) {
        for msg in msgs.drain(..) {
            match msg {
                Msg::Flit { ch, arrive, flit } => {
                    let (_, idx) = flit_loc[ch as usize];
                    self.flit_qs[idx as usize]
                        .try_push(arrive, flit)
                        .expect("remote flit ring overflow: capacity bound violated");
                    if event {
                        self.wheel.push(arrive, self.flit_cons[idx as usize]);
                    }
                }
                Msg::Credit { ch, arrive, vc } => {
                    let (_, idx) = credit_loc[ch as usize];
                    self.credit_qs[idx as usize]
                        .try_push(arrive, vc)
                        .expect("remote credit ring overflow: capacity bound violated");
                    let code = self.credit_cons[idx as usize];
                    if code & EP_BIT == 0 {
                        self.credit_pend[code as usize] |= 1 << self.credit_cons_port[idx as usize];
                    }
                    if event {
                        self.wheel.push(arrive, code);
                    }
                }
            }
        }
    }

    /// Advance all endpoints and routers one cycle, appending outbound
    /// cross-partition messages to `outboxes` (this partition's row of the
    /// write-side mailbox buffer). Monomorphizes per oracle/pattern.
    ///
    /// With `event` set, only the agents on this cycle's worklist run: the
    /// wake-wheel bucket for `now` (queue pushes, deliveries, self-wakes,
    /// closed-loop submissions) plus every endpoint whose open-loop
    /// emission schedule fires now. An agent off the worklist would have
    /// been a strict no-op in the dense loop — no flit or credit due,
    /// nothing buffered, nothing to generate — so both modes execute the
    /// identical sequence of state changes, in the identical order
    /// (worklists are sorted; endpoints run before routers, as densely).
    #[allow(clippy::too_many_arguments)]
    fn advance<O: RouteOracle + ?Sized, P: TrafficPattern + ?Sized>(
        &mut self,
        oracle: &O,
        pattern: &P,
        now: u64,
        measure_start: u64,
        measure_end: u64,
        packet_len: u8,
        collect_arrivals: bool,
        outboxes: &mut [Vec<Msg>],
        event: bool,
    ) {
        self.moved = 0;
        self.out_min = u64::MAX;
        let Partition {
            routers,
            endpoints,
            flit_qs,
            credit_qs,
            metrics,
            moved,
            in_flight,
            arrivals,
            wheel,
            flit_cons,
            credit_cons,
            credit_cons_port,
            credit_pend,
            r_seen,
            e_seen,
            next_gen,
            gen_min,
            work_r,
            work_e,
            out_min,
            trace,
        } = self;
        // Telemetry cycle entry: flush any completed sampling window and
        // take the boundary queue-depth sample *before* this cycle's state
        // changes. Runs for every partition at every executed cycle (even
        // with an empty event worklist), which is what makes the emitted
        // stream independent of the stepping mode — see `crate::telemetry`.
        let mut trace = trace.as_deref_mut();
        if let Some(t) = trace.as_deref_mut() {
            t.begin_cycle(now, routers);
        }
        let mut ctx = CycleCtx {
            now,
            flit_qs,
            credit_qs,
            outboxes,
            metrics,
            arrivals,
            collect_arrivals,
            moved,
            in_flight,
            measuring: now >= measure_start && now < measure_end,
            injecting: now < measure_end,
            measure_start,
            measure_end,
            event,
            wheel,
            flit_cons,
            credit_cons,
            credit_cons_port,
            credit_pend,
            out_min,
            trace,
        };
        if !event {
            for ep in endpoints.iter_mut() {
                ep.absorb_credits(&mut ctx);
                ep.cycle(&mut ctx, oracle, pattern, packet_len);
            }
            for (lr, r) in routers.iter_mut().enumerate() {
                r.cycle(&mut ctx, oracle, lr as u32);
            }
            return;
        }

        // Build the worklist: generation wakes first (deduped against the
        // wheel with the same cycle stamps), then this cycle's bucket.
        work_r.clear();
        work_e.clear();
        let gen_due = ctx.injecting && *gen_min <= now;
        if gen_due {
            for (e, ng) in next_gen.iter().enumerate() {
                if *ng <= now && e_seen[e] != now {
                    e_seen[e] = now;
                    work_e.push(e as u32);
                }
            }
        }
        let mut bucket = std::mem::take(ctx.wheel.bucket_mut(now));
        for &code in &bucket {
            if code & EP_BIT != 0 {
                let e = (code & !EP_BIT) as usize;
                if e_seen[e] != now {
                    e_seen[e] = now;
                    work_e.push(e as u32);
                }
            } else if r_seen[code as usize] != now {
                r_seen[code as usize] = now;
                work_r.push(code);
            }
        }
        bucket.clear();
        *ctx.wheel.bucket_mut(now) = bucket;

        // Replay the dense iteration order: ascending ids, endpoints before
        // routers. Near saturation the worklist covers most of the
        // partition, and a stamp scan produces it already ordered for O(n) —
        // cheaper than sorting the bucket-ordered list.
        if work_e.len() >= endpoints.len() / 4 {
            work_e.clear();
            for (e, seen) in e_seen.iter().enumerate() {
                if *seen == now {
                    work_e.push(e as u32);
                }
            }
        } else {
            work_e.sort_unstable();
        }
        if work_r.len() >= routers.len() / 4 {
            work_r.clear();
            for (r, seen) in r_seen.iter().enumerate() {
                if *seen == now {
                    work_r.push(r as u32);
                }
            }
        } else {
            work_r.sort_unstable();
        }
        for &e in work_e.iter() {
            let ep = &mut endpoints[e as usize];
            ep.absorb_credits(&mut ctx);
            ep.cycle(&mut ctx, oracle, pattern, packet_len);
            if ep.backlog() > 0 {
                ctx.wheel.push(now + 1, ep_code(e as usize));
            }
        }
        for &rc in work_r.iter() {
            let r = &mut routers[rc as usize];
            r.cycle(&mut ctx, oracle, rc);
            if r.buffered() > 0 {
                ctx.wheel.push(now + 1, router_code(rc as usize));
            }
        }

        // Re-arm the emission schedule for every endpoint that fired.
        if gen_due {
            for &e in work_e.iter() {
                let ei = e as usize;
                if next_gen[ei] <= now {
                    next_gen[ei] = endpoints[ei].next_gen_cycle(pattern, packet_len, now + 1);
                }
            }
            *gen_min = next_gen.iter().copied().min().unwrap_or(u64::MAX);
        }
    }
}

/// Sparse double-buffered cross-partition mailboxes over the partition
/// adjacency graph.
///
/// `edges` holds one directed `(src, dst)` pair per adjacent partition
/// pair, sorted by `(src, dst)` and computed once at network-compile time
/// from the live cross-partition channels: each such channel induces a
/// flit edge (producer partition → consumer partition) and a credit edge
/// in the opposite direction, so the edge set is the symmetric closure of
/// "shares a live boundary channel". Both message buffers hold exactly one
/// cell per edge — there is no dense P×P grid anywhere.
///
/// During cycle *t* every partition *p* drains the read cells of its
/// in-edges (`in_flat[in_start[p]..in_start[p+1]]`, ascending source
/// order) and fills the write cells of its out-edges
/// (`edges[out_start[p]..out_start[p+1]]`, which are contiguous because
/// the edge list is sorted). In- and out-edge sets are disjoint across
/// partitions, so the whole exchange runs inside the parallel section
/// without locks; the buffers swap in O(1) at the barrier — by then the
/// read buffer is fully drained and becomes next cycle's write side.
///
/// `written`/`drained` count lifetime messages per edge; each counter is
/// updated by exactly one partition (the writer for `written`, the
/// drainer for `drained`), making the sparse exchange auditable.
struct Exchange {
    /// Directed adjacency edges, sorted by `(src, dst)`.
    edges: Vec<(u32, u32)>,
    /// Edge-id range of partition `p`'s out-edges: `out_start[p]..out_start[p+1]`.
    out_start: Vec<u32>,
    /// Flattened in-edge ids per destination partition (ascending source).
    in_flat: Vec<u32>,
    /// In-edge range of partition `p`: `in_flat[in_start[p]..in_start[p+1]]`.
    in_start: Vec<u32>,
    read: Vec<Vec<Msg>>,
    write: Vec<Vec<Msg>>,
    written: Vec<u64>,
    drained: Vec<u64>,
}

impl Exchange {
    /// Build the sparse exchange for `nparts` partitions from the directed
    /// adjacency `edges` (deduplicated, any order).
    fn new(nparts: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let ne = edges.len();
        let mut out_start = vec![0u32; nparts + 1];
        for &(src, _) in &edges {
            out_start[src as usize + 1] += 1;
        }
        for p in 0..nparts {
            out_start[p + 1] += out_start[p];
        }
        let mut in_lists: Vec<Vec<u32>> = vec![Vec::new(); nparts];
        for (e, &(_, dst)) in edges.iter().enumerate() {
            // Edge ids ascend in (src, dst) order, so each dst's list comes
            // out in ascending-source order — the deterministic drain order
            // the dense column walk used to impose.
            in_lists[dst as usize].push(e as u32);
        }
        let mut in_start = vec![0u32; nparts + 1];
        let mut in_flat = Vec::with_capacity(ne);
        for (p, list) in in_lists.into_iter().enumerate() {
            in_flat.extend_from_slice(&list);
            in_start[p + 1] = in_flat.len() as u32;
        }
        Exchange {
            edges,
            out_start,
            in_flat,
            in_start,
            read: (0..ne).map(|_| Vec::new()).collect(),
            write: (0..ne).map(|_| Vec::new()).collect(),
            written: vec![0; ne],
            drained: vec![0; ne],
        }
    }

    /// Out-edge slot of `(src, dst)` within `src`'s outbox range, if the
    /// partitions are adjacent.
    fn slot(&self, src: u32, dst: u32) -> Option<u32> {
        let lo = self.out_start[src as usize] as usize;
        let hi = self.out_start[src as usize + 1] as usize;
        self.edges[lo..hi]
            .binary_search(&(src, dst))
            .ok()
            .map(|i| i as u32)
    }

    fn swap(&mut self) {
        std::mem::swap(&mut self.read, &mut self.write);
    }
}

/// Raw shared view of one cycle's mutable state, handed to the pool
/// workers. Soundness rests on the slot→partition mapping: each partition
/// index is processed by exactly one slot per broadcast, and partition `p`
/// touches only `parts[p]`, the read cells + `drained` counters of its
/// in-edges, and the write cells + `written` counters of its out-edges —
/// disjoint edge sets across partitions by construction.
struct CycleShared<'a> {
    parts: *mut Partition,
    read: *mut Vec<Msg>,
    write: *mut Vec<Msg>,
    written: *mut u64,
    drained: *mut u64,
    out_start: &'a [u32],
    in_flat: &'a [u32],
    in_start: &'a [u32],
}

// SAFETY: slots dereference disjoint partitions/edge cells (see above).
unsafe impl Sync for CycleShared<'_> {}

impl CycleShared<'_> {
    /// Deliver + advance partition `p`.
    ///
    /// # Safety
    /// `p` must be a valid partition index, and no other thread may
    /// process `p` concurrently.
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_partition<O: RouteOracle + ?Sized, P: TrafficPattern + ?Sized>(
        &self,
        p: usize,
        oracle: &O,
        pattern: &P,
        now: u64,
        measure_start: u64,
        measure_end: u64,
        flit_loc: &[(u32, u32)],
        credit_loc: &[(u32, u32)],
        packet_len: u8,
        collect_arrivals: bool,
        event: bool,
    ) {
        let part = &mut *self.parts.add(p);
        // Drain this partition's in-edges in ascending source order (the
        // same deterministic order the dense column walk used to impose —
        // non-adjacent sources never had anything to contribute).
        for &e in &self.in_flat[self.in_start[p] as usize..self.in_start[p + 1] as usize] {
            let cell = &mut *self.read.add(e as usize);
            *self.drained.add(e as usize) += cell.len() as u64;
            part.deliver(cell, flit_loc, credit_loc, event);
        }
        // This partition's out-edge cells are its outbox set; emit targets
        // were compiled to slot indices within this range.
        let o0 = self.out_start[p] as usize;
        let o1 = self.out_start[p + 1] as usize;
        let outboxes = std::slice::from_raw_parts_mut(self.write.add(o0), o1 - o0);
        part.advance(
            oracle,
            pattern,
            now,
            measure_start,
            measure_end,
            packet_len,
            collect_arrivals,
            outboxes,
            event,
        );
        for (i, ob) in outboxes.iter().enumerate() {
            if !ob.is_empty() {
                *self.written.add(o0 + i) += ob.len() as u64;
            }
        }
    }
}

/// One directed edge of the partition adjacency graph with its lifetime
/// message counters (see [`Simulation::exchange_edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeEdge {
    /// Source partition.
    pub src: u32,
    /// Destination partition.
    pub dst: u32,
    /// Messages (flits + credits) written into this edge's mailbox.
    pub written: u64,
    /// Messages drained out of this edge's mailbox.
    pub drained: u64,
    /// Messages currently sitting undelivered in the read buffer
    /// (`written == drained + pending` always holds between cycles).
    pub pending: u64,
}

/// A compiled, runnable simulation bound to its routing oracle.
///
/// The oracle is a type parameter (owned by value; pass `&MyOracle` thanks
/// to the blanket `impl RouteOracle for &T` to borrow instead), which
/// monomorphizes the entire cycle loop. Use [`simulate_dyn`] when the
/// oracle type is only known at runtime.
pub struct Simulation<O: RouteOracle> {
    cfg: SimConfig,
    oracle: O,
    partitions: Vec<Partition>,
    exch: Exchange,
    /// channel id → (owning partition, local flit-queue index)
    flit_loc: Vec<(u32, u32)>,
    /// channel id → (owning partition, local credit-queue index)
    credit_loc: Vec<(u32, u32)>,
    /// endpoint id → (owning partition, local endpoint index)
    ep_loc: Vec<(u32, u32)>,
    /// endpoint id → attach router id (canonical arrival ordering).
    ep_router: Vec<u32>,
    now: u64,
    stall: u64,
    endpoints_total: u64,
    packet_len: u8,
    /// Event-driven stepping enabled (compiled in from the config).
    event: bool,
    /// Cycles actually simulated / fast-forwarded over (metrics).
    busy_cycles: u64,
    skipped_cycles: u64,
    /// Saturation storm: event stepping has fallen back to dense cycles
    /// because nearly every agent is active anyway
    /// (see [`update_regime`](Self::update_regime)).
    storm: bool,
    /// Consecutive saturated cycles observed while not yet in a storm.
    storm_hot: u32,
    /// Total agents (routers + endpoints): the storm-entry threshold base.
    agents: u64,
    /// Telemetry emit handle ([`Simulation::attach_trace`]); `None` = off.
    tracer: Option<Tracer>,
    /// Serial-section scratch: records drained from the partitions at the
    /// barrier, canonicalized and shipped by `emit_trace_batch`.
    trace_batch: Vec<TraceRec>,
}

/// Consecutive cycles with ≥ a quarter of all agents moving flits before
/// the event engine declares a saturation storm and drops to dense
/// stepping (hysteresis against entering on a single bursty cycle).
const STORM_ENTER: u32 = 4;

impl<O: RouteOracle> Simulation<O> {
    /// Compile `net` under `cfg` with `oracle`. Fails on structural errors
    /// or when the oracle needs more VCs than the config provides.
    pub fn new(net: &NetworkDesc, cfg: &SimConfig, oracle: O) -> SimResult<Self> {
        Self::with_faults(net, cfg, oracle, None)
    }

    /// [`Simulation::new`] with an optional [`FaultMap`]: dead channels are
    /// compiled into per-port flags that make any traversal attempt a hard
    /// assert (a fault-aware oracle must route around them), and automatic
    /// partition sizing counts *live* routers only — a heavily degraded
    /// fabric does not get over-partitioned for compute it no longer has.
    pub fn with_faults(
        net: &NetworkDesc,
        cfg: &SimConfig,
        oracle: O,
        faults: Option<&FaultMap>,
    ) -> SimResult<Self> {
        cfg.validate().map_err(SimError::Invalid)?;
        net.validate().map_err(SimError::Invalid)?;
        if let Some(f) = faults {
            f.validate(net).map_err(SimError::Invalid)?;
        }
        if oracle.num_vcs() > cfg.num_vcs {
            return Err(SimError::Invalid(format!(
                "oracle needs {} VCs but config provides {}",
                oracle.num_vcs(),
                cfg.num_vcs
            )));
        }
        let live_routers = faults.map_or(net.num_routers(), |f| f.live_routers());
        let channel_dead = |c: usize| faults.is_some_and(|f| f.channel_dead(c as u32));
        let nr = net.num_routers();

        // Router→partition assignment: an explicit map when provided
        // (locality-aware maps come from `wsdf_topo::locality_partition`),
        // otherwise contiguous id blocks balanced by count. Results are
        // bit-identical for any valid assignment — only barrier traffic
        // and parallel balance change.
        let (nparts, assign): (usize, Vec<u32>) = if let Some(map) = &cfg.partition_map {
            if map.len() != nr {
                return Err(SimError::Invalid(format!(
                    "partition_map covers {} routers but the network has {nr}",
                    map.len()
                )));
            }
            let p = map.iter().copied().max().map_or(0, |m| m as usize + 1);
            if p == 0 || p > nr {
                return Err(SimError::Invalid(format!(
                    "partition_map has {p} partitions for {nr} routers"
                )));
            }
            let mut counts = vec![0usize; p];
            for &q in map.iter() {
                counts[q as usize] += 1;
            }
            if let Some(empty) = counts.iter().position(|&c| c == 0) {
                return Err(SimError::Invalid(format!(
                    "partition_map leaves partition {empty} empty (ids must be dense in 0..P)"
                )));
            }
            (p, map.as_ref().clone())
        } else {
            let p = effective_partitions(
                cfg.partitions,
                live_routers,
                wsdf_exec::configured_threads(),
            );
            (p, (0..nr).map(|r| (r * p / nr.max(1)) as u32).collect())
        };
        let part_of = |r: usize| -> u32 { assign[r] };

        // Queue ownership: flit queue with the channel's consumer, credit
        // queue with the channel's producer (endpoints live with their
        // router's partition). Ring capacities come from the physical
        // channel bound — see the module docs.
        let home = |t: &Terminus| -> u32 {
            match t {
                Terminus::Router { router, .. } => part_of(*router as usize),
                Terminus::Endpoint { endpoint } => {
                    part_of(net.endpoints[*endpoint as usize].router as usize)
                }
            }
        };
        let mut flit_loc = Vec::with_capacity(net.channels.len());
        let mut credit_loc = Vec::with_capacity(net.channels.len());
        let mut flit_caps: Vec<Vec<usize>> = vec![Vec::new(); nparts];
        let mut credit_caps: Vec<Vec<usize>> = vec![Vec::new(); nparts];
        for ch in &net.channels {
            // Credits for a channel are returned by its consuming router,
            // whose per-cycle forwarding (and hence credit) bound is
            // `width × speedup`; endpoints consume at channel width.
            let consumer_speedup = match ch.dst {
                Terminus::Router { router, .. } => {
                    net.routers[router as usize].speedup.max(1) as usize
                }
                Terminus::Endpoint { .. } => 1,
            };
            let base = (ch.latency as usize + 1) * ch.width as usize;
            let fp = home(&ch.dst);
            flit_loc.push((fp, flit_caps[fp as usize].len() as u32));
            flit_caps[fp as usize].push(base);
            let cp = home(&ch.src);
            credit_loc.push((cp, credit_caps[cp as usize].len() as u32));
            credit_caps[cp as usize].push(base * consumer_speedup);
        }

        let mut partitions: Vec<Partition> = flit_caps
            .iter()
            .zip(credit_caps.iter())
            .map(|(fc, cc)| Partition {
                routers: Vec::new(),
                endpoints: Vec::new(),
                flit_qs: fc.iter().map(|&c| TimedRing::with_capacity(c)).collect(),
                credit_qs: cc.iter().map(|&c| TimedRing::with_capacity(c)).collect(),
                metrics: Metrics {
                    ejected_per_endpoint: if cfg.per_endpoint_stats {
                        vec![0; net.num_endpoints()]
                    } else {
                        Vec::new()
                    },
                    flits_per_channel: if cfg.per_channel_stats {
                        vec![0; net.channels.len()]
                    } else {
                        Vec::new()
                    },
                    ..Default::default()
                },
                moved: 0,
                in_flight: 0,
                arrivals: Vec::new(),
                wheel: WakeWheel::disabled(),
                flit_cons: Vec::new(),
                credit_cons: Vec::new(),
                credit_cons_port: Vec::new(),
                credit_pend: Vec::new(),
                r_seen: Vec::new(),
                e_seen: Vec::new(),
                next_gen: Vec::new(),
                gen_min: u64::MAX,
                work_r: Vec::new(),
                work_e: Vec::new(),
                out_min: u64::MAX,
                trace: None,
            })
            .collect();

        // Routers.
        for (r, rd) in net.routers.iter().enumerate() {
            let p = part_of(r) as usize;
            partitions[p].routers.push(RouterRt::new(
                r as u32,
                rd.ports,
                cfg.num_vcs,
                cfg.buffer_flits,
                rd.speedup,
                cfg.seed,
            ));
        }
        // Port wiring. Routers were pushed in ascending global id order,
        // so a router's partition-local index is its insertion rank within
        // its partition (works for any assignment, contiguous or not).
        let local_idx: Vec<u32> = {
            let mut counts = vec![0u32; nparts];
            (0..nr)
                .map(|r| {
                    let p = part_of(r) as usize;
                    let idx = counts[p];
                    counts[p] += 1;
                    idx
                })
                .collect()
        };
        let local_router = |r: u32| -> (usize, usize) {
            (part_of(r as usize) as usize, local_idx[r as usize] as usize)
        };

        // Partition adjacency: every live cross-partition channel induces a
        // flit edge (producer partition → consumer partition, i.e. the
        // credit-queue home → flit-queue home) and a credit edge in the
        // opposite direction. Dead channels are skipped, so a `seal`-ed
        // fault map shrinks the graph consistently with the dead-channel
        // traversal asserts.
        let mut adj_edges: Vec<(u32, u32)> = Vec::new();
        for c in 0..net.channels.len() {
            if channel_dead(c) {
                continue;
            }
            let (fp, _) = flit_loc[c];
            let (cp, _) = credit_loc[c];
            if fp != cp {
                adj_edges.push((cp, fp));
                adj_edges.push((fp, cp));
            }
        }
        let exch = Exchange::new(nparts, adj_edges);
        // Cross-partition message targets compile to the *slot index* of
        // the (emitter, owner) edge within the emitter's outbox range.
        // Dead cross-partition channels have no edge; any traversal
        // attempt hard-asserts on the dead flag before the slot is read.
        let remote_slot = |from: u32, to: u32, dead: bool| -> u32 {
            match exch.slot(from, to) {
                Some(s) => s,
                None => {
                    debug_assert!(dead, "missing adjacency edge {from}->{to} for live channel");
                    u32::MAX
                }
            }
        };

        for (c, ch) in net.channels.iter().enumerate() {
            let (fp, fq) = flit_loc[c];
            let (cp, cq) = credit_loc[c];
            // Output side.
            if let Terminus::Router { router, port } = ch.src {
                let (p, lr) = local_router(router);
                let flit_to = if fp as usize == p {
                    FlitTarget::Local(fq)
                } else {
                    FlitTarget::Remote {
                        slot: remote_slot(p as u32, fp, channel_dead(c)),
                        ch: c as u32,
                    }
                };
                partitions[p].routers[lr].wire_out(
                    port,
                    PortOut {
                        ch: c as u32,
                        credit_q: cq,
                        flit_to,
                        latency: ch.latency,
                        width: ch.width,
                        class: ch.class,
                        is_ejection: matches!(ch.dst, Terminus::Endpoint { .. }),
                        dead: channel_dead(c),
                    },
                );
            }
            // Input side.
            if let Terminus::Router { router, port } = ch.dst {
                let (p, lr) = local_router(router);
                let credit_to = if cp as usize == p {
                    CreditTarget::Local(cq)
                } else {
                    CreditTarget::Remote {
                        slot: remote_slot(p as u32, cp, channel_dead(c)),
                        ch: c as u32,
                    }
                };
                partitions[p].routers[lr].wire_in(
                    port,
                    PortIn {
                        flit_q: fq,
                        credit_to,
                        credit_latency: ch.latency,
                        width: ch.width,
                    },
                );
            }
        }

        // Endpoints: locate their injection/ejection channels.
        let mut inj_of = vec![usize::MAX; net.num_endpoints()];
        let mut ej_of = vec![usize::MAX; net.num_endpoints()];
        for (c, ch) in net.channels.iter().enumerate() {
            if let Terminus::Endpoint { endpoint } = ch.src {
                inj_of[endpoint as usize] = c;
            }
            if let Terminus::Endpoint { endpoint } = ch.dst {
                ej_of[endpoint as usize] = c;
            }
        }
        let mut ep_loc = Vec::with_capacity(net.num_endpoints());
        for (e, ed) in net.endpoints.iter().enumerate() {
            let p = part_of(ed.router as usize) as usize;
            ep_loc.push((p as u32, partitions[p].endpoints.len() as u32));
            let inj = inj_of[e];
            let ej = ej_of[e];
            let inj_ch = &net.channels[inj];
            let ej_ch = &net.channels[ej];
            let (ifp, ifq) = flit_loc[inj];
            let inj_to = if ifp as usize == p {
                FlitTarget::Local(ifq)
            } else {
                FlitTarget::Remote {
                    slot: remote_slot(p as u32, ifp, channel_dead(inj)),
                    ch: inj as u32,
                }
            };
            let (icp, icq) = credit_loc[inj];
            debug_assert_eq!(icp as usize, p, "inj credit queue must be local");
            let (efp, efq) = flit_loc[ej];
            debug_assert_eq!(efp as usize, p, "ejection flit queue must be local");
            let (ecp, ecq) = credit_loc[ej];
            let ej_credit_to = if ecp as usize == p {
                CreditTarget::Local(ecq)
            } else {
                CreditTarget::Remote {
                    slot: remote_slot(p as u32, ecp, channel_dead(ej)),
                    ch: ej as u32,
                }
            };
            partitions[p].endpoints.push(EndpointRt::new(
                e as u32,
                cfg.num_vcs,
                cfg.buffer_flits,
                inj as u32,
                inj_to,
                icq,
                inj_ch.latency,
                inj_ch.width,
                efq,
                ej_credit_to,
                ej_ch.latency,
                cfg.seed,
                channel_dead(inj),
            ));
        }

        // Consumer maps (queue index → wake code) for the wake wheel and
        // the pending-credit bitmaps: a channel's flits wake its dst, its
        // credits wake its src (the flit producer absorbs credit returns).
        let mut flit_cons: Vec<Vec<u32>> =
            flit_caps.iter().map(|v| vec![u32::MAX; v.len()]).collect();
        let mut credit_cons: Vec<Vec<u32>> = credit_caps
            .iter()
            .map(|v| vec![u32::MAX; v.len()])
            .collect();
        let mut credit_cons_port: Vec<Vec<u8>> =
            credit_caps.iter().map(|v| vec![0u8; v.len()]).collect();
        for (c, ch) in net.channels.iter().enumerate() {
            let (fp, fq) = flit_loc[c];
            flit_cons[fp as usize][fq as usize] = match ch.dst {
                Terminus::Router { router, .. } => router_code(local_router(router).1),
                Terminus::Endpoint { endpoint } => ep_code(ep_loc[endpoint as usize].1 as usize),
            };
            let (cp, cq) = credit_loc[c];
            match ch.src {
                Terminus::Router { router, port } => {
                    credit_cons[cp as usize][cq as usize] = router_code(local_router(router).1);
                    credit_cons_port[cp as usize][cq as usize] = port;
                }
                Terminus::Endpoint { endpoint } => {
                    credit_cons[cp as usize][cq as usize] =
                        ep_code(ep_loc[endpoint as usize].1 as usize);
                }
            }
        }
        // Wake dues never exceed now + max channel latency (self-wakes are
        // now + 1), which bounds the wheel size — see `crate::wake`.
        let maxlat = net
            .channels
            .iter()
            .map(|c| c.latency as u64)
            .max()
            .unwrap_or(1)
            .max(1);
        for (p, part) in partitions.iter_mut().enumerate() {
            part.flit_cons = std::mem::take(&mut flit_cons[p]);
            part.credit_cons = std::mem::take(&mut credit_cons[p]);
            part.credit_cons_port = std::mem::take(&mut credit_cons_port[p]);
            part.credit_pend = vec![0; part.routers.len()];
            part.r_seen = vec![u64::MAX; part.routers.len()];
            part.e_seen = vec![u64::MAX; part.endpoints.len()];
            part.next_gen = vec![u64::MAX; part.endpoints.len()];
            if cfg.event_driven {
                part.wheel = WakeWheel::new(maxlat, part.routers.len(), part.endpoints.len());
            }
        }

        Ok(Simulation {
            cfg: cfg.clone(),
            oracle,
            exch,
            partitions,
            flit_loc,
            credit_loc,
            ep_loc,
            ep_router: net.endpoints.iter().map(|ed| ed.router).collect(),
            now: 0,
            stall: 0,
            endpoints_total: net.num_endpoints() as u64,
            packet_len: cfg.packet_len,
            event: cfg.event_driven,
            busy_cycles: 0,
            skipped_cycles: 0,
            storm: false,
            storm_hot: 0,
            agents: (net.num_routers() + net.num_endpoints()) as u64,
            tracer: None,
            trace_batch: Vec::new(),
        })
    }

    /// Arm streaming telemetry: allocate each partition's [`PartTrace`]
    /// buffers and keep a clone of `tracer` for the barrier drain. Call
    /// before the run; the emitted stream covers the whole schedule.
    ///
    /// Observe-only by construction — partitions record into private
    /// buffers inside the parallel section, the engine drains them in
    /// partition order in the serial barrier section, sorts the batch into
    /// the canonical `(cycle, kind, id)` order, and hands it to the
    /// tracer's writer thread. Simulated state never depends on any of it,
    /// and the emitted bytes are identical for every partition count,
    /// worker count, and stepping mode.
    pub fn attach_trace(&mut self, tracer: &Tracer) {
        let cfg = tracer.config();
        let channels = self.flit_loc.len();
        let endpoints = self.ep_loc.len();
        for part in &mut self.partitions {
            part.trace = Some(Box::new(PartTrace::new(cfg, channels, endpoints)));
        }
        self.tracer = Some(tracer.clone());
    }

    /// Canonicalize and ship the batch drained since the last emit.
    fn emit_trace_batch(&mut self) {
        if self.trace_batch.is_empty() {
            return;
        }
        telemetry::canonicalize(&mut self.trace_batch);
        match &self.tracer {
            Some(t) => t.emit(std::mem::take(&mut self.trace_batch)),
            None => self.trace_batch.clear(),
        }
    }

    /// End-of-run telemetry: flush each partition's final (possibly
    /// partial) window, drain, and emit.
    fn finish_trace(&mut self) {
        if self.tracer.is_none() {
            return;
        }
        let mut batch = std::mem::take(&mut self.trace_batch);
        for part in &mut self.partitions {
            if let Some(tr) = part.trace.as_deref_mut() {
                tr.finish();
                tr.drain_into(&mut batch);
            }
        }
        self.trace_batch = batch;
        self.emit_trace_batch();
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of BSP partitions this simulation compiled to (auto mode
    /// resolves against *live* routers when a fault map is present).
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The oracle driving this simulation.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// The partition adjacency graph with per-edge lifetime message
    /// counters: one entry per directed (src, dst) partition pair that
    /// shares a live boundary channel, sorted by (src, dst). Between
    /// cycles `written == drained + pending` holds for every edge, and
    /// messages only ever flow on these edges — the sparse exchange never
    /// touches a non-adjacent pair (there is no cell to touch).
    pub fn exchange_edges(&self) -> Vec<ExchangeEdge> {
        self.exch
            .edges
            .iter()
            .enumerate()
            .map(|(e, &(src, dst))| ExchangeEdge {
                src,
                dst,
                written: self.exch.written[e],
                drained: self.exch.drained[e],
                pending: self.exch.read[e].len() as u64,
            })
            .collect()
    }

    /// Fixed slot→partition ranges for a run on `pool`: contiguous,
    /// weight-balanced by per-partition agent count (routers + endpoints),
    /// so a locality map with uneven partition sizes still spreads compute
    /// evenly. Deterministic — worker count never affects results, only
    /// which thread advances which partition.
    fn slot_ranges(&self, pool: &BspPool) -> Vec<std::ops::Range<usize>> {
        let weights: Vec<u64> = self
            .partitions
            .iter()
            .map(|p| (p.routers.len() + p.endpoints.len() + 1) as u64)
            .collect();
        wsdf_exec::balanced_ranges(&weights, pool.workers())
    }

    /// Run the full schedule (warm-up + measurement + drain) on the
    /// process-wide executor ([`wsdf_exec::global_pool`]) and return the
    /// merged metrics. Errors out if a deadlock is detected.
    pub fn run<P: TrafficPattern + ?Sized>(&mut self, pattern: &P) -> SimResult<Metrics> {
        self.run_on(wsdf_exec::global_pool(), pattern)
    }

    /// Like [`run`](Self::run), but on an explicit executor. Results are
    /// bit-identical for any pool size (the determinism matrix test); the
    /// pool only bounds how many partitions advance concurrently.
    ///
    /// Note that auto partitioning (`cfg.partitions == 0`) was resolved at
    /// [`Simulation::new`] against the *process-wide* pool size
    /// ([`wsdf_exec::configured_threads`]); when targeting a pool of a
    /// different size, set `cfg.partitions` explicitly to match it.
    pub fn run_on<P: TrafficPattern + ?Sized>(
        &mut self,
        pool: &BspPool,
        pattern: &P,
    ) -> SimResult<Metrics> {
        let warm = self.cfg.warmup_cycles;
        let meas_end = warm + self.cfg.measure_cycles;
        let total = meas_end + self.cfg.drain_cycles;
        let ranges = self.slot_ranges(pool);
        if self.event {
            self.init_gen(pattern);
        }
        while self.now < total {
            let (moved, in_flight) = self.step(pool, pattern, &ranges, warm, meas_end, false);
            self.emit_trace_batch();
            if self.update_regime(moved) {
                // Storm over: the wheels and the emission schedule went
                // stale while stepping densely — rebuild both.
                self.reseed();
                self.init_gen(pattern);
            }
            if self.cfg.watchdog_cycles > 0 {
                if moved == 0 && in_flight > 0 {
                    self.stall += 1;
                    if self.stall >= self.cfg.watchdog_cycles {
                        return Err(SimError::Deadlock {
                            cycle: self.now,
                            in_flight: in_flight as u64,
                        });
                    }
                } else {
                    self.stall = 0;
                }
            }
            // Early drain exit: nothing in flight and nothing queued.
            if self.now >= meas_end && in_flight == 0 && self.backlog() == 0 {
                break;
            }
            // Idle fast-forward: jump to the earliest cycle at which
            // anything can happen. Cycles in between would have been
            // strict no-op steps, so metrics stay bit-identical; the
            // watchdog advances as if they had been stepped (they all
            // have moved == 0).
            if self.event && !self.storm {
                let bound = if self.now < meas_end { meas_end } else { total };
                let gen_live = self.now < meas_end;
                let target = self.next_event_cycle(gen_live).min(bound);
                if target > self.now {
                    let delta = target - self.now;
                    if self.cfg.watchdog_cycles > 0 && in_flight > 0 {
                        let left = self.cfg.watchdog_cycles - self.stall;
                        if delta >= left {
                            self.now += left;
                            return Err(SimError::Deadlock {
                                cycle: self.now,
                                in_flight: in_flight as u64,
                            });
                        }
                        self.stall += delta;
                    }
                    self.now = target;
                    self.skipped_cycles += delta;
                    // The dense loop re-checks the drain exit after every
                    // cycle; the jump may have crossed measure_end.
                    if self.now >= meas_end && in_flight == 0 && self.backlog() == 0 {
                        break;
                    }
                }
            }
        }
        self.finish_trace();
        Ok(self.collect())
    }

    /// Earliest cycle ≥ `now` at which any partition has pending work:
    /// the minimum wheel due time, plus (while injecting) the earliest
    /// open-loop emission. Undelivered cross-partition messages pin the
    /// next event to `now` — their consumer wakes are only registered at
    /// delivery, so jumping over them would lose work.
    fn next_event_cycle(&self, gen_live: bool) -> u64 {
        let mut t = u64::MAX;
        for p in &self.partitions {
            if let Some(d) = p.wheel.next_due(self.now) {
                t = t.min(d);
            }
            // Cross-partition messages sitting undelivered in the read
            // mailboxes have no wheel wake yet (it registers at delivery),
            // so their earliest arrival caps the jump: the set of pending
            // event cycles — and therefore the busy/skipped split — is the
            // same for every partition count.
            t = t.min(p.out_min);
            if gen_live {
                t = t.min(p.gen_min);
            }
        }
        t.max(self.now)
    }

    /// Saturation-storm hysteresis on the merged per-cycle `moved` count.
    ///
    /// Near saturation almost every agent runs every cycle, so wake-wheel
    /// maintenance and jump checks are pure overhead: once at least a
    /// quarter of all agents move flits for [`STORM_ENTER`] consecutive
    /// cycles, the engine enters a *storm* and steps densely (the `event`
    /// flag handed to the cycle workers goes false — no wheel pushes, no
    /// worklists, no fast-forwards). The first globally idle cycle
    /// (`moved == 0`) ends the storm; the caller must then
    /// [`reseed`](Self::reseed) the wheels from live queue/agent state
    /// before event stepping resumes — this returns `true` exactly then.
    ///
    /// Dense and event cycles execute identical state transitions, so the
    /// regime switch cannot change results; and every input here (the
    /// merged `moved` sum, the agent count) is partition- and
    /// worker-invariant, so the regime schedule — and with it the
    /// busy/skipped split — stays bit-identical across the determinism
    /// matrix.
    fn update_regime(&mut self, moved: u64) -> bool {
        if !self.event {
            return false;
        }
        if self.storm {
            if moved == 0 {
                self.storm = false;
                self.storm_hot = 0;
                return true;
            }
        } else if moved * 4 >= self.agents {
            self.storm_hot += 1;
            if self.storm_hot >= STORM_ENTER {
                self.storm = true;
            }
        } else {
            self.storm_hot = 0;
        }
        false
    }

    /// Rebuild every wake wheel from live state after a dense storm
    /// interval, during which the wheels went stale: pending flit/credit
    /// ring entries wake their consumer at their due cycle; routers with
    /// buffered flits and endpoints with queued (or partially serialized —
    /// a packet stays queued until its tail goes) packets wake immediately.
    /// Messages still undelivered in the mailboxes are covered by
    /// `out_min`, which every advance tracks. All pending dues lie in
    /// `[now, now + max_latency)` — older entries were absorbed by the
    /// dense cycles themselves — so the wheel's no-alias bound holds.
    fn reseed(&mut self) {
        let now = self.now;
        for part in &mut self.partitions {
            let Partition {
                routers,
                endpoints,
                flit_qs,
                credit_qs,
                wheel,
                flit_cons,
                credit_cons,
                ..
            } = part;
            wheel.reset();
            for (q, ring) in flit_qs.iter().enumerate() {
                for due in ring.dues() {
                    wheel.push(due.max(now), flit_cons[q]);
                }
            }
            for (q, ring) in credit_qs.iter().enumerate() {
                for due in ring.dues() {
                    wheel.push(due.max(now), credit_cons[q]);
                }
            }
            for (lr, r) in routers.iter().enumerate() {
                if r.buffered() > 0 {
                    wheel.push(now, router_code(lr));
                }
            }
            for (le, e) in endpoints.iter().enumerate() {
                if e.backlog() > 0 {
                    wheel.push(now, ep_code(le));
                }
            }
        }
    }

    /// Prime the per-endpoint open-loop emission schedule (event mode).
    fn init_gen<P: TrafficPattern + ?Sized>(&mut self, pattern: &P) {
        let plen = self.packet_len;
        let from = self.now;
        for part in &mut self.partitions {
            let Partition {
                endpoints,
                next_gen,
                gen_min,
                ..
            } = part;
            for (e, ep) in endpoints.iter().enumerate() {
                next_gen[e] = ep.next_gen_cycle(pattern, plen, from);
            }
            *gen_min = next_gen.iter().copied().min().unwrap_or(u64::MAX);
        }
    }

    /// Advance one cycle: one pool broadcast over the partitions, then an
    /// O(1) mailbox-buffer swap. Returns (flits moved, flits in flight).
    fn step<P: TrafficPattern + ?Sized>(
        &mut self,
        pool: &BspPool,
        pattern: &P,
        ranges: &[std::ops::Range<usize>],
        measure_start: u64,
        measure_end: u64,
        collect_arrivals: bool,
    ) -> (u64, i64) {
        let now = self.now;
        let flit_loc = &self.flit_loc;
        let credit_loc = &self.credit_loc;
        let packet_len = self.packet_len;
        let oracle = &self.oracle;

        let event = self.event && !self.storm;
        let slots = ranges.len();
        let shared = CycleShared {
            parts: self.partitions.as_mut_ptr(),
            read: self.exch.read.as_mut_ptr(),
            write: self.exch.write.as_mut_ptr(),
            written: self.exch.written.as_mut_ptr(),
            drained: self.exch.drained.as_mut_ptr(),
            out_start: &self.exch.out_start,
            in_flat: &self.exch.in_flat,
            in_start: &self.exch.in_start,
        };
        pool.broadcast(slots, |s| {
            // Fixed slot→partition mapping for the whole run (weight-
            // balanced contiguous ranges, computed once): slot s always
            // owns the same partitions, so its thread keeps this state
            // cache-hot for the whole run (partition pinning).
            for p in ranges[s].clone() {
                // SAFETY: the ranges tile 0..nparts disjointly and the
                // broadcast joins before `shared` dies.
                unsafe {
                    shared.run_partition(
                        p,
                        oracle,
                        pattern,
                        now,
                        measure_start,
                        measure_end,
                        flit_loc,
                        credit_loc,
                        packet_len,
                        collect_arrivals,
                        event,
                    );
                }
            }
        });
        // Two-phase swap: this cycle's write side becomes next cycle's
        // read side (the read side was fully drained above).
        self.exch.swap();

        // Serial telemetry drain: move every partition's buffered records
        // into the batch (partition order — the canonical sort at emit
        // time erases it from the output).
        if self.tracer.is_some() {
            let batch = &mut self.trace_batch;
            for part in &mut self.partitions {
                if let Some(tr) = part.trace.as_deref_mut() {
                    tr.drain_into(batch);
                }
            }
        }

        self.busy_cycles += 1;
        self.now += 1;
        let moved: u64 = self.partitions.iter().map(|p| p.moved).sum();
        let in_flight: i64 = self.partitions.iter().map(|p| p.in_flight).sum();
        (moved, in_flight)
    }

    /// Total packets waiting in source queues.
    fn backlog(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.endpoints.iter())
            .map(|e| e.backlog())
            .sum()
    }

    /// Merge per-partition metrics into the final result.
    fn collect(&self) -> Metrics {
        self.collect_with(self.cfg.measure_cycles)
    }

    /// [`collect`](Self::collect) with an explicit rate denominator —
    /// closed-loop runs measure over every cycle actually simulated, not
    /// the configured open-loop window.
    fn collect_with(&self, measure_cycles: u64) -> Metrics {
        let mut m = Metrics {
            measure_cycles,
            endpoints: self.endpoints_total,
            cycles_run: self.now,
            busy_cycles: self.busy_cycles,
            skipped_cycles: self.skipped_cycles,
            ..Default::default()
        };
        for p in &self.partitions {
            m.merge(&p.metrics);
        }
        m
    }

    /// Run a closed-loop workload to quiescence on the process-wide
    /// executor. See [`run_closed_loop_on`](Self::run_closed_loop_on).
    pub fn run_closed_loop<W: WorkloadDriver>(&mut self, driver: &mut W) -> SimResult<Metrics> {
        self.run_closed_loop_on(wsdf_exec::global_pool(), driver)
    }

    /// Run a closed-loop workload to quiescence on an explicit executor.
    ///
    /// Unlike [`run_on`](Self::run_on), there is no fixed cycle schedule:
    /// every cycle starts with [`WorkloadDriver::pre_cycle`] (the driver
    /// submits whatever messages became eligible through the [`Injector`]),
    /// advances the network one BSP broadcast, and ends — at the barrier,
    /// where partition state is globally consistent — by handing the cycle's
    /// packet [`Arrival`] events to [`WorkloadDriver::on_arrivals`]. The
    /// run terminates at **quiescence**: the driver reports
    /// [`done`](WorkloadDriver::done), no flit is in flight, and every
    /// source queue is empty. All three conditions are functions of merged
    /// per-partition state evaluated between broadcasts, so the stopping
    /// cycle — and every metric — is bit-identical for any partition or
    /// worker count, exactly like the open-loop path.
    ///
    /// The whole run is measured (`measure_start = 0`, no drain phase);
    /// the returned [`Metrics::measure_cycles`] equals the cycles actually
    /// simulated. The deadlock watchdog stays armed: if nothing moves for
    /// `watchdog_cycles` consecutive cycles before quiescence — flits stuck
    /// *or* a driver that never finishes — the run fails with
    /// [`SimError::Deadlock`] instead of spinning forever.
    pub fn run_closed_loop_on<W: WorkloadDriver>(
        &mut self,
        pool: &BspPool,
        driver: &mut W,
    ) -> SimResult<Metrics> {
        let idle = IdlePattern;
        let mut events: Vec<Arrival> = Vec::new();
        let ranges = self.slot_ranges(pool);
        self.stall = 0;
        loop {
            {
                // Serial injection point: deterministic by construction
                // (runs between broadcasts, in whatever order the driver
                // submits — the driver owns that order).
                let Simulation {
                    partitions,
                    oracle,
                    ep_loc,
                    now,
                    event,
                    storm,
                    ..
                } = self;
                let mut inj = Injector {
                    parts: partitions,
                    ep_loc,
                    oracle,
                    now: *now,
                    // During a storm the wheels are unmaintained; skipping
                    // submission wakes keeps stale buckets from piling up
                    // (the post-storm reseed re-wakes queued endpoints).
                    event: *event && !*storm,
                };
                driver.pre_cycle(*now, &mut inj);
            }
            let cycle = self.now;
            let (moved, in_flight) = self.step(pool, &idle, &ranges, 0, u64::MAX, true);
            if self.update_regime(moved) {
                // No open-loop schedule to re-arm here: the driver owns
                // injection, and reseed re-wakes its queued submissions.
                self.reseed();
            }
            // Drain this cycle's arrival events and put them in canonical
            // order: ascending ejecting-router id, ties preserving each
            // router's own ejection sequence (the stable sort keeps the
            // within-partition order, which is ascending-local-router and
            // therefore ascending-global within any one partition). This
            // reproduces the single-partition dense order for *any*
            // router→partition assignment, contiguous or not.
            events.clear();
            for p in &mut self.partitions {
                events.append(&mut p.arrivals);
            }
            let ep_router = &self.ep_router;
            events.sort_by_key(|a| ep_router[a.dst as usize]);
            driver.on_arrivals(cycle, &events);
            // Merge the driver's job-lifecycle records (stamped `cycle`)
            // into this cycle's batch before the canonical sort, keeping
            // the emitted stream cycle-monotonic.
            if self.tracer.is_some() {
                driver.drain_trace(&mut self.trace_batch);
            }
            self.emit_trace_batch();
            if in_flight == 0 && self.backlog() == 0 && driver.done() {
                break;
            }
            if self.cfg.watchdog_cycles > 0 {
                if moved == 0 {
                    self.stall += 1;
                    if self.stall >= self.cfg.watchdog_cycles {
                        return Err(SimError::Deadlock {
                            cycle: self.now,
                            in_flight: in_flight.max(0) as u64,
                        });
                    }
                } else {
                    self.stall = 0;
                }
            }
            // Idle fast-forward to the earlier of the network's next event
            // and the driver's next release — but only when the driver
            // promises one ([`WorkloadDriver::next_release`]; `None` keeps
            // the dense schedule). Skipped cycles all have moved == 0, so
            // the closed-loop watchdog (which counts every unmoved cycle)
            // advances across the jump exactly as if they were stepped.
            if self.event && !self.storm {
                if let Some(rel) = driver.next_release() {
                    let target = self.next_event_cycle(false).min(rel);
                    if target > self.now && (self.cfg.watchdog_cycles > 0 || target < u64::MAX) {
                        let delta = target - self.now;
                        if self.cfg.watchdog_cycles > 0 {
                            let left = self.cfg.watchdog_cycles - self.stall;
                            if delta >= left {
                                self.now += left;
                                return Err(SimError::Deadlock {
                                    cycle: self.now,
                                    in_flight: in_flight.max(0) as u64,
                                });
                            }
                            self.stall += delta;
                        }
                        self.now = target;
                        self.skipped_cycles += delta;
                    }
                }
            }
        }
        self.finish_trace();
        Ok(self.collect_with(self.now))
    }
}

/// Driver side of a closed-loop (workload-driven) simulation: the engine
/// owns the cycle loop, the driver owns *what* gets injected *when*.
///
/// Contract for determinism: decisions may depend only on the cycle number
/// and on previously observed [`Arrival`] events (both are partition- and
/// worker-count-invariant), and submissions for one cycle must come in a
/// deterministic order — e.g. sorted by a message id.
pub trait WorkloadDriver {
    /// Called before cycle `now` advances. Submit every packet that is
    /// eligible at `now` through `inj`; packets queue at their source
    /// endpoint and serialize into the network under credit backpressure.
    fn pre_cycle(&mut self, now: u64, inj: &mut Injector<'_>);

    /// Called after cycle `now`, at the BSP barrier, with every packet
    /// whose tail was ejected this cycle. `Arrival::arrive` may lie up to
    /// one ejection-channel latency in the future (see [`Arrival`]).
    fn on_arrivals(&mut self, now: u64, arrivals: &[Arrival]);

    /// True once every expected arrival has been observed. Quiescence —
    /// the end of the run — additionally requires the network and all
    /// source queues to be empty.
    fn done(&self) -> bool;

    /// Earliest future cycle at which [`pre_cycle`](Self::pre_cycle) might
    /// submit something, given everything observed so far — the driver's
    /// contribution to the event-driven engine's next-event computation.
    ///
    /// `None` (the default) means "unknown": the engine steps every cycle
    /// densely, which is always correct. `Some(c)` promises that
    /// `pre_cycle` is a no-op strictly before cycle `c` (use `u64::MAX`
    /// when nothing is scheduled at all), letting the engine fast-forward
    /// idle stretches; the promise must be consistent with the determinism
    /// contract above, i.e. derived from cycle numbers and observed
    /// arrivals only.
    fn next_release(&self) -> Option<u64> {
        None
    }

    /// Move any buffered telemetry records (job admissions/retirements,
    /// workload phase markers) into `out`. Called at the BSP barrier of
    /// every cycle when tracing is armed, right before the batch is
    /// canonicalized — stamp records with the cycle passed to
    /// [`pre_cycle`](Self::pre_cycle)/[`on_arrivals`](Self::on_arrivals)
    /// so the stream stays cycle-monotonic. The default buffers nothing.
    fn drain_trace(&mut self, out: &mut Vec<TraceRec>) {
        let _ = out;
    }
}

/// Closed-loop injection handle passed to [`WorkloadDriver::pre_cycle`].
///
/// Lives only between BSP broadcasts, so pushing into endpoint source
/// queues needs no synchronization.
pub struct Injector<'a> {
    parts: &'a mut [Partition],
    ep_loc: &'a [(u32, u32)],
    oracle: &'a dyn RouteOracle,
    now: u64,
    event: bool,
}

impl Injector<'_> {
    /// Current cycle (packets submitted now are created at this cycle).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of endpoints in the network.
    pub fn endpoints(&self) -> u32 {
        self.ep_loc.len() as u32
    }

    /// Submit one packet of `len` flits from endpoint `src` to `dst`.
    ///
    /// `id` is the caller's tag (message id + sequence in the low 56 bits;
    /// the top 8 are reserved for the engine's in-network VC stamp) and
    /// comes back verbatim in the matching [`Arrival`]. The packet is
    /// tagged by the routing oracle (Valiant intermediate groups etc.)
    /// using the source endpoint's deterministic RNG stream and then
    /// queued; `Metrics::packets_created` counts it this cycle.
    ///
    /// # Panics
    /// If `src`/`dst` are out of range, equal, `len` is 0, or `id` uses
    /// the reserved top 8 bits (the in-network VC stamp would corrupt it
    /// and the [`Arrival`] would come back with a different id).
    pub fn submit(&mut self, src: u32, dst: u32, id: u64, len: u8) {
        assert!(len >= 1, "zero-length packet");
        assert_ne!(src, dst, "closed-loop self-traffic is not routable");
        assert_eq!(
            id >> 56,
            0,
            "packet id {id:#x} overlaps the reserved VC-stamp bits"
        );
        assert!(
            (dst as usize) < self.ep_loc.len(),
            "dst {dst} out of range ({} endpoints)",
            self.ep_loc.len()
        );
        let (p, e) = self.ep_loc[src as usize];
        let part = &mut self.parts[p as usize];
        let mut pkt = PacketHeader {
            id,
            src,
            dst,
            inter_w: NO_INTERMEDIATE,
            created: self.now,
            len,
        };
        let ep = &mut part.endpoints[e as usize];
        self.oracle.tag_packet(&mut pkt, ep.rng_mut());
        ep.push_packet(pkt);
        part.metrics.packets_created += 1;
        if self.event {
            // The submission's bucket is drained inside the upcoming step.
            part.wheel.push(self.now, ep_code(e as usize));
        }
    }
}

/// The pattern bound of a closed-loop run: offers zero open-loop load, so
/// endpoint generation is inert and every injected flit comes from the
/// [`Injector`].
struct IdlePattern;

impl TrafficPattern for IdlePattern {
    fn rate(&self, _src: u32) -> f64 {
        0.0
    }
    fn dest(&self, _src: u32, _seq: u64, _rng: &mut crate::rng::SplitMix64) -> Option<u32> {
        None
    }
}

/// Resolve the partition count. Explicit requests are honored verbatim
/// (clamped to the router count — determinism makes any value valid);
/// auto (`0`) scales to the executor's worker count, capped so no
/// partition drops below ~256 routers (below that, barrier overhead beats
/// the per-partition compute it buys).
///
/// `routers` is the *live* router count: under a [`FaultMap`] dead routers
/// contribute no compute, so they must not count toward the ≥256 guard.
///
/// Public so callers that build an explicit [`SimConfig::partition_map`]
/// (e.g. with `wsdf_topo::locality_partition`) can resolve the same count
/// the engine would have picked on its own.
pub fn effective_partitions(requested: usize, routers: usize, workers: usize) -> usize {
    let n = if requested == 0 {
        // Don't over-partition small networks: ≥ 256 routers per partition.
        workers.min(routers / 256 + 1)
    } else {
        requested
    };
    n.clamp(1, routers.max(1))
}

/// One-shot convenience: compile and run with a statically known oracle.
///
/// `O` is taken by value; pass `&oracle` (the blanket `impl RouteOracle
/// for &T`) to borrow. The cycle loop monomorphizes per oracle type.
pub fn simulate<O: RouteOracle, P: TrafficPattern + ?Sized>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    pattern: &P,
) -> SimResult<Metrics> {
    Simulation::new(net, cfg, oracle)?.run(pattern)
}

/// [`simulate`] on an explicit executor instead of the process-wide pool.
/// Worker count never affects results, only wall-clock time.
pub fn simulate_on<O: RouteOracle, P: TrafficPattern + ?Sized>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    pattern: &P,
    pool: &BspPool,
) -> SimResult<Metrics> {
    Simulation::new(net, cfg, oracle)?.run_on(pool, pattern)
}

/// The full-surface one-shot entry point: optional [`FaultMap`] (`None`
/// is byte-for-byte the pristine path) and optional streaming telemetry
/// ([`Tracer`]). This is the function every higher-level run kind bottoms
/// out in; prefer the `wsdf::Session` builder for anything user-facing.
pub fn simulate_traced_on<O: RouteOracle, P: TrafficPattern + ?Sized>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    pattern: &P,
    pool: &BspPool,
    faults: Option<&FaultMap>,
    trace: Option<&Tracer>,
) -> SimResult<Metrics> {
    let mut sim = Simulation::with_faults(net, cfg, oracle, faults)?;
    if let Some(t) = trace {
        sim.attach_trace(t);
    }
    sim.run_on(pool, pattern)
}

/// [`simulate_on`] with an optional [`FaultMap`]: `None` is byte-for-byte
/// the pristine path (same compilation, same hot path); `Some` arms the
/// dead-channel asserts and sizes auto partitions by live routers. See
/// [`Simulation::with_faults`].
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder (or simulate_traced_on) instead"
)]
pub fn simulate_faulted_on<O: RouteOracle, P: TrafficPattern + ?Sized>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    pattern: &P,
    pool: &BspPool,
    faults: Option<&FaultMap>,
) -> SimResult<Metrics> {
    simulate_traced_on(net, cfg, oracle, pattern, pool, faults, None)
}

/// Type-erased entry point for heterogeneous sweeps: same engine, same
/// semantics, but dispatched through `dyn` references. This is the only
/// place a `dyn RouteOracle` enters the engine; prefer [`simulate`] when
/// the oracle type is known at compile time.
pub fn simulate_dyn(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: &dyn RouteOracle,
    pattern: &dyn TrafficPattern,
) -> SimResult<Metrics> {
    simulate(net, cfg, oracle, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelClass;
    use crate::flit::PacketHeader;
    use crate::oracle::RouteChoice;
    use crate::pattern::UniformPattern;
    use crate::rng::SplitMix64;

    /// A ring of `n` routers, endpoint on port 0, ring links on ports 1 (cw
    /// out) and 2 (cw in).
    pub(super) fn ring(n: u32) -> NetworkDesc {
        let mut net = NetworkDesc::new();
        for _ in 0..n {
            net.add_router(3);
        }
        for r in 0..n {
            let e = net.add_endpoint(r);
            net.attach_endpoint(e, r, 0, 1, 1);
            let next = (r + 1) % n;
            // r port1 -> next port2
            net.add_channel(crate::channel::ChannelDesc::router_to_router(
                r,
                1,
                next,
                2,
                1,
                1,
                ChannelClass::ShortReach,
            ));
        }
        net
    }

    /// Clockwise ring routing with the classic dateline VC scheme: packets
    /// start on VC 0 and switch to VC 1 after wrapping past router 0, which
    /// breaks the ring's cyclic channel dependency.
    pub(super) struct RingOracle {
        pub(super) n: u32,
    }
    impl RouteOracle for RingOracle {
        fn route(
            &self,
            router: u32,
            _in_port: u8,
            _in_vc: u8,
            pkt: &PacketHeader,
            _rng: &mut SplitMix64,
        ) -> RouteChoice {
            if pkt.dst == router {
                RouteChoice {
                    out_port: 0,
                    out_vc: 0,
                }
            } else {
                // Crossed the dateline iff we are now below our source.
                let vc = u8::from(router < pkt.src);
                RouteChoice {
                    out_port: 1,
                    out_vc: vc,
                }
            }
        }
        fn initial_vc(&self, _pkt: &PacketHeader) -> u8 {
            0
        }
        fn num_vcs(&self) -> u8 {
            let _ = self.n;
            2
        }
    }

    pub(super) fn small_cfg() -> SimConfig {
        SimConfig {
            num_vcs: 2,
            warmup_cycles: 200,
            measure_cycles: 500,
            drain_cycles: 200,
            watchdog_cycles: 500,
            ..Default::default()
        }
    }

    #[test]
    fn ring_delivers_traffic() {
        let net = ring(8);
        let m = simulate(
            &net,
            &small_cfg(),
            &RingOracle { n: 8 },
            &UniformPattern::new(8, 0.1),
        )
        .unwrap();
        assert!(m.packets_ejected > 0, "no packets delivered");
        let lat = m.avg_latency().unwrap();
        // Zero-load-ish: inj 1 + avg 4 ring hops + ej 1 + serialization 3.
        assert!(lat > 4.0 && lat < 40.0, "implausible latency {lat}");
        assert!(!m.deadlocked);
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let net = ring(8);
        // Uni ring uniform saturation ≈ 2/avg_dist/... keep well below.
        let m = simulate(
            &net,
            &small_cfg(),
            &RingOracle { n: 8 },
            &UniformPattern::new(8, 0.2),
        )
        .unwrap();
        let acc = m.accepted_rate();
        assert!(
            (acc - 0.2).abs() < 0.04,
            "accepted {acc} should track offered 0.2"
        );
    }

    #[test]
    fn saturated_ring_keeps_running_without_deadlock() {
        let net = ring(8);
        let m = simulate(
            &net,
            &small_cfg(),
            &RingOracle { n: 8 },
            &UniformPattern::new(8, 1.0),
        )
        .unwrap();
        // Uniform on a unidirectional 8-ring: avg distance 4 hops, 8 links of
        // 1 flit/cycle → ideal capacity 0.25 flits/cycle/node. Wormhole +
        // round-robin arbitration lands at roughly 60-70% of ideal.
        let acc = m.accepted_rate();
        assert!(
            acc > 0.12 && acc <= 0.27,
            "saturation rate {acc} out of range"
        );
    }

    #[test]
    fn deterministic_across_partition_counts() {
        let net = ring(16);
        let cfg = small_cfg();
        let run = |parts: usize| {
            let mut c = cfg.clone();
            c.partitions = parts;
            simulate(
                &net,
                &c,
                &RingOracle { n: 16 },
                &UniformPattern::new(16, 0.3),
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(2);
        let c4 = run(4);
        for (x, y) in [(&a, &b), (&a, &c4)] {
            assert_eq!(x.packets_ejected, y.packets_ejected);
            assert_eq!(x.latency_sum, y.latency_sum);
            assert_eq!(x.flits_injected_measured, y.flits_injected_measured);
            assert_eq!(x.class_hops.total(), y.class_hops.total());
        }
        // And across worker counts: the same partitioned run on explicit
        // pools of 1, 2, and 4 workers must reproduce the sequential
        // metrics bit for bit.
        for workers in [1usize, 2, 4] {
            let pool = BspPool::new(workers);
            let mut c = cfg.clone();
            c.partitions = 4;
            let m = simulate_on(
                &net,
                &c,
                &RingOracle { n: 16 },
                &UniformPattern::new(16, 0.3),
                &pool,
            )
            .unwrap();
            assert_eq!(m.packets_ejected, a.packets_ejected, "workers={workers}");
            assert_eq!(m.latency_sum, a.latency_sum, "workers={workers}");
            assert_eq!(
                m.class_hops.total(),
                a.class_hops.total(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn effective_partitions_honors_guard_and_caps() {
        // Auto mode caps at the pool's worker count...
        assert_eq!(effective_partitions(0, 10_000, 4), 4);
        // ...and at the ≥256-routers-per-partition guard: small networks
        // stay sequential no matter how many workers exist.
        assert_eq!(effective_partitions(0, 100, 8), 1);
        assert_eq!(effective_partitions(0, 255, 8), 1);
        assert_eq!(effective_partitions(0, 256, 8), 2);
        assert_eq!(effective_partitions(0, 1024, 8), 5);
        assert_eq!(effective_partitions(0, 1_000_000, 8), 8);
        // Explicit requests are honored (determinism makes them all valid),
        // clamped only by the router count.
        assert_eq!(effective_partitions(7, 16, 1), 7);
        assert_eq!(effective_partitions(99, 16, 4), 16);
        // Degenerate inputs stay sane.
        assert_eq!(effective_partitions(0, 0, 8), 1);
        assert_eq!(effective_partitions(3, 0, 8), 1);
    }

    #[test]
    fn explicit_partitions_clamp_to_live_routers() {
        // 16-ring with 12 dead routers: an explicit request for 16
        // partitions must clamp to the 4 *live* routers, not the total.
        let net = ring(16);
        let mut faults = crate::fault::FaultMap::pristine(&net);
        for r in 4..16 {
            faults.kill_router(r);
        }
        faults.seal(&net);
        let mut cfg = small_cfg();
        cfg.partitions = 16;
        let sim =
            Simulation::with_faults(&net, &cfg, &RingOracle { n: 16 }, Some(&faults)).unwrap();
        assert_eq!(sim.partitions(), 4);
        let pristine = Simulation::new(&net, &cfg, &RingOracle { n: 16 }).unwrap();
        assert_eq!(pristine.partitions(), 16);
    }

    #[test]
    fn effective_partitions_guard_counts_live_routers() {
        // The ≥256-routers-per-partition guard operates on *live* routers:
        // a 10k-router fabric with only 255 survivors stays sequential,
        // and one with 256 survivors gets exactly two partitions — the
        // same thresholds as a pristine fabric of that size.
        assert_eq!(effective_partitions(0, 255, 8), 1);
        assert_eq!(effective_partitions(0, 256, 8), 2);
        assert_eq!(effective_partitions(0, 1024, 8), 5);
    }

    #[test]
    #[should_panic(expected = "dead channel")]
    fn traversing_a_faulted_channel_asserts() {
        // Kill one ring link but route with the fault-oblivious oracle:
        // the first flit sent over the dead channel must hard-assert.
        let net = ring(4);
        let mut faults = crate::fault::FaultMap::pristine(&net);
        let cut = net
            .channels
            .iter()
            .position(|ch| ch.src.router() == Some(1) && ch.dst.router() == Some(2))
            .unwrap();
        faults.kill_channel(cut as u32);
        faults.seal(&net);
        let mut sim =
            Simulation::with_faults(&net, &small_cfg(), &RingOracle { n: 4 }, Some(&faults))
                .unwrap();
        let _ = sim.run(&UniformPattern::new(4, 0.5));
    }

    #[test]
    #[should_panic(expected = "dead channel")]
    fn injecting_from_a_dead_endpoint_asserts() {
        // Router 2 dies; its endpoint's injection channel dies with it
        // (seal), so open-loop generation from endpoint 2 must assert.
        let net = ring(4);
        let mut faults = crate::fault::FaultMap::pristine(&net);
        faults.kill_router(2);
        faults.seal(&net);
        let mut sim =
            Simulation::with_faults(&net, &small_cfg(), &RingOracle { n: 4 }, Some(&faults))
                .unwrap();
        let _ = sim.run(&UniformPattern::new(4, 0.5));
    }

    #[test]
    fn pristine_fault_map_changes_nothing() {
        // An all-alive map must be byte-identical to no map at all.
        let net = ring(8);
        let cfg = small_cfg();
        let pattern = UniformPattern::new(8, 0.3);
        let a = simulate(&net, &cfg, &RingOracle { n: 8 }, &pattern).unwrap();
        let faults = crate::fault::FaultMap::pristine(&net);
        let b = Simulation::with_faults(&net, &cfg, &RingOracle { n: 8 }, Some(&faults))
            .unwrap()
            .run(&pattern)
            .unwrap();
        assert_eq!(a.packets_ejected, b.packets_ejected);
        assert_eq!(a.latency_sum, b.latency_sum);
        assert_eq!(a.latency_hist, b.latency_hist);
    }

    #[test]
    fn dyn_entry_point_matches_monomorphized_engine() {
        let net = ring(8);
        let cfg = small_cfg();
        let oracle = RingOracle { n: 8 };
        let pattern = UniformPattern::new(8, 0.3);
        let a = simulate(&net, &cfg, &oracle, &pattern).unwrap();
        let b = simulate_dyn(&net, &cfg, &oracle, &pattern).unwrap();
        assert_eq!(a.packets_created, b.packets_created);
        assert_eq!(a.packets_ejected, b.packets_ejected);
        assert_eq!(a.latency_sum, b.latency_sum);
        assert_eq!(a.latency_max, b.latency_max);
        assert_eq!(a.flits_injected_measured, b.flits_injected_measured);
        assert_eq!(a.flits_ejected_measured, b.flits_ejected_measured);
        assert_eq!(a.class_hops.flit_hops, b.class_hops.flit_hops);
    }

    #[test]
    fn zero_rate_runs_clean() {
        let net = ring(4);
        let m = simulate(
            &net,
            &small_cfg(),
            &RingOracle { n: 4 },
            &UniformPattern::new(4, 0.0),
        )
        .unwrap();
        assert_eq!(m.packets_created, 0);
        assert_eq!(m.packets_ejected, 0);
    }

    /// Minimal closed-loop driver: a fixed burst of packets 0 → n/2, done
    /// when every flit has arrived.
    struct Burst {
        sent: bool,
        packets: u64,
        dst: u32,
        arrived_flits: u64,
        expect_flits: u64,
        last_arrival: u64,
    }

    impl WorkloadDriver for Burst {
        fn pre_cycle(&mut self, _now: u64, inj: &mut Injector<'_>) {
            if !self.sent {
                for i in 0..self.packets {
                    inj.submit(0, self.dst, i, 4);
                }
                self.sent = true;
            }
        }
        fn on_arrivals(&mut self, _now: u64, arrivals: &[Arrival]) {
            for a in arrivals {
                assert_eq!(a.dst, self.dst);
                self.arrived_flits += a.flits as u64;
                self.last_arrival = self.last_arrival.max(a.arrive);
            }
        }
        fn done(&self) -> bool {
            self.arrived_flits == self.expect_flits
        }
    }

    fn burst(packets: u64, dst: u32) -> Burst {
        Burst {
            sent: false,
            packets,
            dst,
            arrived_flits: 0,
            expect_flits: packets * 4,
            last_arrival: 0,
        }
    }

    #[test]
    fn closed_loop_runs_to_quiescence() {
        let net = ring(8);
        let mut sim = Simulation::new(&net, &small_cfg(), &RingOracle { n: 8 }).unwrap();
        let mut driver = burst(6, 4);
        let m = sim.run_closed_loop(&mut driver).unwrap();
        assert!(driver.done());
        assert_eq!(m.packets_created, 6);
        assert_eq!(m.packets_ejected, 6);
        // Quiescence, not a fixed budget: the loop stopped within one
        // ejection latency of the last arrival, far before the open-loop
        // schedule (900 cycles) would have.
        assert!(m.cycles_run <= driver.last_arrival + 1);
        assert!(m.cycles_run < 900, "quiescence exit ran {}", m.cycles_run);
        // Closed-loop rates are normalized over the cycles actually run.
        assert_eq!(m.measure_cycles, m.cycles_run);
        assert_eq!(m.latency_hist.count(), 6);
    }

    #[test]
    fn closed_loop_deterministic_across_partitions_and_workers() {
        let net = ring(16);
        let run = |parts: usize, workers: usize| {
            let mut c = small_cfg();
            c.partitions = parts;
            let mut sim = Simulation::new(&net, &c, &RingOracle { n: 16 }).unwrap();
            let mut driver = burst(10, 7);
            let pool = BspPool::new(workers);
            let m = sim.run_closed_loop_on(&pool, &mut driver).unwrap();
            (m, driver.last_arrival)
        };
        let (base, base_last) = run(1, 1);
        assert_eq!(base.packets_ejected, 10);
        for (parts, workers) in [(2, 1), (4, 2), (7, 4)] {
            let (m, last) = run(parts, workers);
            assert_eq!(m.cycles_run, base.cycles_run, "p={parts} w={workers}");
            assert_eq!(m.latency_sum, base.latency_sum, "p={parts} w={workers}");
            assert_eq!(m.latency_hist, base.latency_hist, "p={parts} w={workers}");
            assert_eq!(last, base_last, "p={parts} w={workers}");
        }
    }

    #[test]
    fn closed_loop_starved_driver_trips_watchdog() {
        /// Never submits, never done: the watchdog must end the run.
        struct Never;
        impl WorkloadDriver for Never {
            fn pre_cycle(&mut self, _now: u64, _inj: &mut Injector<'_>) {}
            fn on_arrivals(&mut self, _now: u64, _arrivals: &[Arrival]) {}
            fn done(&self) -> bool {
                false
            }
        }
        let net = ring(4);
        let mut cfg = small_cfg();
        cfg.watchdog_cycles = 50;
        let mut sim = Simulation::new(&net, &cfg, &RingOracle { n: 4 }).unwrap();
        let err = sim.run_closed_loop(&mut Never).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn vc_mismatch_is_rejected() {
        struct Greedy;
        impl RouteOracle for Greedy {
            fn route(
                &self,
                _: u32,
                _: u8,
                _: u8,
                _: &PacketHeader,
                _: &mut SplitMix64,
            ) -> RouteChoice {
                RouteChoice {
                    out_port: 0,
                    out_vc: 0,
                }
            }
            fn initial_vc(&self, _: &PacketHeader) -> u8 {
                0
            }
            fn num_vcs(&self) -> u8 {
                8
            }
        }
        let net = ring(4);
        let err = simulate(&net, &small_cfg(), &Greedy, &UniformPattern::new(4, 0.1)).unwrap_err();
        assert!(matches!(err, SimError::Invalid(_)));
    }
}

#[cfg(test)]
mod channel_stat_tests {
    use super::tests::{ring, small_cfg, RingOracle};
    use super::*;
    use crate::pattern::UniformPattern;

    /// Injection flits must equal the flits counted on injection channels,
    /// and every used channel's utilization must be ≤ 1.
    #[test]
    fn channel_stats_are_conserved_and_bounded() {
        let net = ring(8);
        let mut cfg = small_cfg();
        cfg.per_channel_stats = true;
        let m = simulate(
            &net,
            &cfg,
            &RingOracle { n: 8 },
            &UniformPattern::new(8, 0.3),
        )
        .unwrap();
        let inj_total: u64 = net
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.class == crate::ChannelClass::Injection)
            .map(|(i, _)| m.flits_per_channel[i] as u64)
            .sum();
        assert_eq!(inj_total, m.flits_injected_measured);
        for (i, ch) in net.channels.iter().enumerate() {
            let u = m.channel_utilization(i, ch.width).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&u), "channel {i}: {u}");
        }
    }
}
