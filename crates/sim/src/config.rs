//! Simulation parameters (Table IV of the paper).

/// Engine configuration. `Default` reproduces Table IV exactly.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Packet length in flits (Table IV: 4).
    pub packet_len: u8,
    /// Input buffer capacity per (port, VC) in flits (Table IV: 32).
    pub buffer_flits: u16,
    /// Number of virtual channels per port. Must cover the routing policy's
    /// maximum VC index + 1.
    pub num_vcs: u8,
    /// Measured cycles after warm-up (Table IV: 10000 total incl. 5000 warm-up
    /// — i.e. 5000 measured).
    pub measure_cycles: u64,
    /// Warm-up cycles excluded from statistics (Table IV: 5000).
    pub warmup_cycles: u64,
    /// Extra cycles after measurement in which injection stops and in-flight
    /// measured packets may drain (latency of measured packets is recorded
    /// whenever they arrive). 0 = open-loop snapshot only.
    pub drain_cycles: u64,
    /// Abort if no flit moves anywhere for this many consecutive cycles while
    /// flits are in flight (deadlock detector). 0 disables.
    pub watchdog_cycles: u64,
    /// Global RNG seed.
    pub seed: u64,
    /// Number of BSP partitions; 1 = sequential. `0` = auto (rayon threads).
    pub partitions: usize,
    /// Explicit router→partition assignment (length = `num_routers`,
    /// partition ids dense in `0..P`, every partition non-empty). When set
    /// it overrides [`SimConfig::partitions`] and the engine's contiguous
    /// block scheme — `wsdf_topo::locality_partition` produces cut-minimizing
    /// maps. `None` keeps the legacy contiguous blocks. Results are
    /// bit-identical for *any* valid assignment; only barrier traffic and
    /// parallel balance change.
    pub partition_map: Option<std::sync::Arc<Vec<u32>>>,
    /// Collect per-endpoint ejected-flit counts (bottleneck analysis for
    /// collectives; small memory/time overhead).
    pub per_endpoint_stats: bool,
    /// Collect per-channel flit counts (link utilization heatmaps).
    pub per_channel_stats: bool,
    /// Event-driven stepping: only routers/endpoints with pending work run
    /// each cycle, and fully idle stretches are fast-forwarded. Results
    /// are bit-identical to the dense loop (covered by
    /// `tests/event_equivalence.rs`); `false` forces the dense loop. The
    /// default honors the `WSDF_EVENT_DRIVEN` env var (`0` disables).
    pub event_driven: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_len: 4,
            buffer_flits: 32,
            num_vcs: 4,
            measure_cycles: 5_000,
            warmup_cycles: 5_000,
            drain_cycles: 0,
            watchdog_cycles: 2_000,
            seed: 0xD5A6_0F17,
            partitions: 1,
            partition_map: None,
            per_endpoint_stats: false,
            per_channel_stats: false,
            event_driven: event_driven_default(),
        }
    }
}

/// Process-wide default for [`SimConfig::event_driven`]: the
/// `WSDF_EVENT_DRIVEN` env var, where only the literal `0` opts out.
/// Cached so repeated `SimConfig::default()` calls cannot race a test
/// harness mutating the environment mid-run. Public so the `wsdf`
/// crate's `SessionConfig::from_env` resolves stepping from the same
/// cached read instead of a second per-callsite lookup.
pub fn event_driven_default() -> bool {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| resolve_event_driven(|k| std::env::var(k).ok()))
}

/// The pure resolution rule behind [`event_driven_default`]: only the
/// literal `0` in `WSDF_EVENT_DRIVEN` selects dense stepping; anything
/// else (or unset) selects event-driven. Split out so the precedence
/// table is testable without mutating the process environment.
pub fn resolve_event_driven(get: impl Fn(&str) -> Option<String>) -> bool {
    get("WSDF_EVENT_DRIVEN").is_none_or(|v| v != "0")
}

impl SimConfig {
    /// Table IV defaults with an explicit VC count.
    pub fn with_vcs(num_vcs: u8) -> Self {
        SimConfig {
            num_vcs,
            ..Default::default()
        }
    }

    /// Total simulated cycles (excluding drain).
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }

    /// Scale warm-up and measurement windows by `f` (used by the harness's
    /// quick modes and by Criterion benches).
    pub fn scaled(mut self, f: f64) -> Self {
        self.warmup_cycles = ((self.warmup_cycles as f64 * f) as u64).max(1);
        self.measure_cycles = ((self.measure_cycles as f64 * f) as u64).max(1);
        self
    }

    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_len == 0 {
            return Err("packet_len must be >= 1".into());
        }
        if self.buffer_flits < self.packet_len as u16 {
            return Err(format!(
                "buffer_flits ({}) must hold at least one packet ({})",
                self.buffer_flits, self.packet_len
            ));
        }
        if self.num_vcs == 0 {
            return Err("num_vcs must be >= 1".into());
        }
        if self.num_vcs > 64 {
            return Err("num_vcs must be <= 64 (router occupancy bitmaps)".into());
        }
        if self.measure_cycles == 0 {
            return Err("measure_cycles must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iv() {
        let c = SimConfig::default();
        assert_eq!(c.packet_len, 4);
        assert_eq!(c.buffer_flits, 32);
        assert_eq!(c.total_cycles(), 10_000);
        assert_eq!(c.warmup_cycles, 5_000);
        c.validate().unwrap();
    }

    #[test]
    fn rejects_buffer_smaller_than_packet() {
        let c = SimConfig {
            buffer_flits: 2,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaled_shrinks_windows() {
        let c = SimConfig::default().scaled(0.1);
        assert_eq!(c.warmup_cycles, 500);
        assert_eq!(c.measure_cycles, 500);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(SimConfig {
            packet_len: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            num_vcs: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            measure_cycles: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
