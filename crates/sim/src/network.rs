//! Static network description consumed by the engine.
//!
//! `NetworkDesc` is a plain graph: routers with ports, unidirectional
//! channels between router ports (or to/from endpoints), and endpoints.
//! Topology builders in `wsdf-topo` produce these; the engine validates and
//! compiles them into runtime state.

use crate::channel::{ChannelClass, ChannelDesc, Terminus};

/// Static description of one router.
#[derive(Debug, Clone, Copy)]
pub struct RouterDesc {
    /// Number of ports (each port may have an incoming and an outgoing
    /// channel attached).
    pub ports: u8,
    /// Crossbar input speedup: how many flits one input port may forward
    /// per cycle (1 = wormhole-realistic, ≥ radix = ideal switch). Output
    /// bandwidth is still bounded by each channel's width.
    pub speedup: u8,
}

/// Static description of one endpoint (traffic source/sink).
#[derive(Debug, Clone, Copy)]
pub struct EndpointDesc {
    /// Router this endpoint is attached to (for partition colocation).
    pub router: u32,
}

/// A full static network: the input to [`crate::Simulation`].
#[derive(Debug, Clone, Default)]
pub struct NetworkDesc {
    /// All routers.
    pub routers: Vec<RouterDesc>,
    /// All unidirectional channels.
    pub channels: Vec<ChannelDesc>,
    /// All endpoints.
    pub endpoints: Vec<EndpointDesc>,
}

impl NetworkDesc {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a router with `ports` ports and no input speedup.
    pub fn add_router(&mut self, ports: u8) -> u32 {
        self.add_router_speedup(ports, 1)
    }

    /// Add a router with explicit crossbar input speedup (used for the
    /// paper's "ideal high-radix router" switch model).
    pub fn add_router_speedup(&mut self, ports: u8, speedup: u8) -> u32 {
        let id = self.routers.len() as u32;
        self.routers.push(RouterDesc {
            ports,
            speedup: speedup.max(1),
        });
        id
    }

    /// Add an endpoint attached to `router`; returns its index.
    ///
    /// The caller must still wire injection/ejection channels between the
    /// endpoint and a router port.
    pub fn add_endpoint(&mut self, router: u32) -> u32 {
        let id = self.endpoints.len() as u32;
        self.endpoints.push(EndpointDesc { router });
        id
    }

    /// Add a channel; returns its index.
    pub fn add_channel(&mut self, desc: ChannelDesc) -> u32 {
        let id = self.channels.len() as u32;
        self.channels.push(desc);
        id
    }

    /// Wire an endpoint to a router port with injection and ejection
    /// channels of the given latency/width.
    pub fn attach_endpoint(
        &mut self,
        endpoint: u32,
        router: u32,
        port: u8,
        latency: u32,
        width: u8,
    ) {
        self.add_channel(ChannelDesc {
            src: Terminus::Endpoint { endpoint },
            dst: Terminus::Router { router, port },
            latency,
            width,
            class: ChannelClass::Injection,
        });
        self.add_channel(ChannelDesc {
            src: Terminus::Router { router, port },
            dst: Terminus::Endpoint { endpoint },
            latency,
            width,
            class: ChannelClass::Ejection,
        });
    }

    /// Wire a bidirectional router-to-router link (two channels).
    pub fn connect(
        &mut self,
        a: (u32, u8),
        b: (u32, u8),
        latency: u32,
        width: u8,
        class: ChannelClass,
    ) {
        self.add_channel(ChannelDesc::router_to_router(
            a.0, a.1, b.0, b.1, latency, width, class,
        ));
        self.add_channel(ChannelDesc::router_to_router(
            b.0, b.1, a.0, a.1, latency, width, class,
        ));
    }

    /// Structural validation: indices in range, no port used twice in the
    /// same direction, latency ≥ 1, width ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        let nr = self.routers.len() as u32;
        let ne = self.endpoints.len() as u32;
        for (i, e) in self.endpoints.iter().enumerate() {
            if e.router >= nr {
                return Err(format!(
                    "endpoint {i} attached to missing router {}",
                    e.router
                ));
            }
        }
        // (router, port) -> used as channel src / dst.
        let mut out_used = std::collections::HashSet::new();
        let mut in_used = std::collections::HashSet::new();
        let mut ep_out = std::collections::HashSet::new();
        let mut ep_in = std::collections::HashSet::new();
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.latency == 0 {
                return Err(format!("channel {i} has zero latency"));
            }
            if ch.width == 0 {
                return Err(format!("channel {i} has zero width"));
            }
            for (t, used, ep_used, dir) in [
                (&ch.src, &mut out_used, &mut ep_out, "src"),
                (&ch.dst, &mut in_used, &mut ep_in, "dst"),
            ] {
                match t {
                    Terminus::Router { router, port } => {
                        if *router >= nr {
                            return Err(format!("channel {i} {dir}: missing router {router}"));
                        }
                        if *port >= self.routers[*router as usize].ports {
                            return Err(format!(
                                "channel {i} {dir}: router {router} has no port {port}"
                            ));
                        }
                        if !used.insert((*router, *port)) {
                            return Err(format!(
                                "channel {i} {dir}: port ({router},{port}) already used"
                            ));
                        }
                    }
                    Terminus::Endpoint { endpoint } => {
                        if *endpoint >= ne {
                            return Err(format!("channel {i} {dir}: missing endpoint {endpoint}"));
                        }
                        if !ep_used.insert(*endpoint) {
                            return Err(format!(
                                "channel {i} {dir}: endpoint {endpoint} already wired"
                            ));
                        }
                    }
                }
            }
        }
        // Every endpoint must have exactly one injection and one ejection side.
        for e in 0..ne {
            if !ep_out.contains(&e) {
                return Err(format!("endpoint {e} has no injection channel"));
            }
            if !ep_in.contains(&e) {
                return Err(format!("endpoint {e} has no ejection channel"));
            }
        }
        Ok(())
    }

    /// Total number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Total number of endpoints.
    pub fn num_endpoints(&self) -> usize {
        self.endpoints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two routers, one endpoint each, bidirectional link between them.
    pub fn tiny() -> NetworkDesc {
        let mut n = NetworkDesc::new();
        let a = n.add_router(2);
        let b = n.add_router(2);
        let ea = n.add_endpoint(a);
        let eb = n.add_endpoint(b);
        n.attach_endpoint(ea, a, 0, 1, 1);
        n.attach_endpoint(eb, b, 0, 1, 1);
        n.connect((a, 1), (b, 1), 1, 1, ChannelClass::ShortReach);
        n
    }

    #[test]
    fn tiny_validates() {
        tiny().validate().unwrap();
    }

    #[test]
    fn rejects_missing_router() {
        let mut n = tiny();
        n.channels[0].dst = Terminus::Router {
            router: 99,
            port: 0,
        };
        assert!(n.validate().is_err());
    }

    #[test]
    fn rejects_port_out_of_range() {
        let mut n = tiny();
        n.channels[4].src = Terminus::Router { router: 0, port: 7 };
        assert!(n.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_port_use() {
        let mut n = tiny();
        // Re-use router 0 port 1 as a source for another channel.
        n.add_channel(ChannelDesc::router_to_router(
            0,
            1,
            1,
            0,
            1,
            1,
            ChannelClass::ShortReach,
        ));
        assert!(n.validate().is_err());
    }

    #[test]
    fn rejects_zero_latency_and_width() {
        let mut n = tiny();
        n.channels[0].latency = 0;
        assert!(n.validate().is_err());
        let mut n = tiny();
        n.channels[0].width = 0;
        assert!(n.validate().is_err());
    }

    #[test]
    fn rejects_unwired_endpoint() {
        let mut n = tiny();
        n.add_endpoint(0);
        assert!(n.validate().is_err());
    }
}
