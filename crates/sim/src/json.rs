//! Minimal JSON support for reports, baselines, and scenario files.
//!
//! The build environment is offline, so instead of `serde`/`serde_json`
//! the workspace hand-rolls the small amount of JSON it needs: a writer
//! (string escaping + number formatting helpers used by the report
//! types in `wsdf`), a tiny recursive-descent parser returning a dynamic
//! [`Value`], and a canonical-digest helper ([`digest_hex`]) for the
//! golden scenario corpus. The module lives in `wsdf-sim` — the lowest
//! crate of the workspace — so topology, workload, and routing specs can
//! offer `from_json` constructors without a dependency cycle; `wsdf`
//! re-exports it as `wsdf::json`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced when writing non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, with `null` mapping to NaN (the writer's encoding of
    /// non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escape a string for embedding in JSON (without surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number; non-finite values become `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// 64-bit FNV-1a hash of a byte string.
///
/// The corpus digest primitive: dependency-free, stable across platforms
/// and releases, and cheap enough to hash every report of a regression
/// fleet. Not cryptographic — it pins *accidental* drift, not adversaries.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical digest of a report document: `fnv64:` + 16 lowercase hex
/// digits of [`fnv1a_64`] over the exact bytes.
///
/// Two reports have equal digests iff their serialized bytes are equal,
/// so the digest contract is exactly the writers' canonical form: stable
/// field order and [`num`] float formatting.
pub fn digest_hex(text: &str) -> String {
    format!("fnv64:{:016x}", fnv1a_64(text.as_bytes()))
}

/// Shared readers for schema-checked `from_json` constructors.
///
/// Every helper takes the JSON `path` of the value being read (e.g.
/// `scenario.faults.spec`) and produces errors of the shape
/// `<path>.<key>: <what was expected>` — the precise-error-path contract
/// of the scenario frontend. The topology/workload/routing crates and the
/// `wsdf::scenario` module all build on these, so the phrasing cannot
/// drift between schemas.
pub mod read {
    use super::Value;

    /// The members of an object, or `"<path>: expected object"`.
    pub fn obj<'a>(v: &'a Value, path: &str) -> Result<&'a [(String, Value)], String> {
        match v {
            Value::Obj(members) => Ok(members),
            _ => Err(format!("{path}: expected object")),
        }
    }

    /// Reject members outside `allowed` (`"<path>.<key>: unknown key"`)
    /// and duplicated keys. Call once per object schema so typos fail
    /// loudly instead of silently falling back to defaults.
    pub fn check_keys(v: &Value, path: &str, allowed: &[&str]) -> Result<(), String> {
        let members = obj(v, path)?;
        for (i, (k, _)) in members.iter().enumerate() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("{path}.{k}: unknown key"));
            }
            if members[..i].iter().any(|(prev, _)| prev == k) {
                return Err(format!("{path}.{k}: duplicate key"));
            }
        }
        Ok(())
    }

    /// Required member of an object.
    pub fn req<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a Value, String> {
        obj(v, path)?;
        v.get(key)
            .ok_or_else(|| format!("{path}.{key}: missing required key"))
    }

    /// Required string member.
    pub fn str_field<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a str, String> {
        req(v, path, key)?
            .as_str()
            .ok_or_else(|| format!("{path}.{key}: expected string"))
    }

    /// Required finite-number member.
    pub fn f64_field(v: &Value, path: &str, key: &str) -> Result<f64, String> {
        match req(v, path, key)? {
            Value::Num(x) => Ok(*x),
            _ => Err(format!("{path}.{key}: expected number")),
        }
    }

    /// Optional finite-number member.
    pub fn opt_f64_field(v: &Value, path: &str, key: &str) -> Result<Option<f64>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(Value::Num(x)) => Ok(Some(*x)),
            Some(_) => Err(format!("{path}.{key}: expected number")),
        }
    }

    /// Required non-negative-integer member (stored as a JSON number).
    pub fn u64_field(v: &Value, path: &str, key: &str) -> Result<u64, String> {
        as_u64(req(v, path, key)?)
            .ok_or_else(|| format!("{path}.{key}: expected non-negative integer"))
    }

    /// Optional non-negative-integer member; `default` when absent.
    pub fn u64_or(v: &Value, path: &str, key: &str, default: u64) -> Result<u64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(m) => {
                as_u64(m).ok_or_else(|| format!("{path}.{key}: expected non-negative integer"))
            }
        }
    }

    /// Required array member.
    pub fn arr_field<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a [Value], String> {
        req(v, path, key)?
            .as_arr()
            .ok_or_else(|| format!("{path}.{key}: expected array"))
    }

    /// A JSON number as a non-negative integer, if it is one.
    pub fn as_u64(v: &Value) -> Option<u64> {
        match v {
            Value::Num(x)
                if x.is_finite() && *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 =>
            {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// An array member holding non-negative integers (`"<path>.<key>[i]:
    /// expected non-negative integer"` on the first offender).
    pub fn u32_list(v: &Value, path: &str, key: &str) -> Result<Vec<u32>, String> {
        let mut out = Vec::new();
        for (i, item) in arr_field(v, path, key)?.iter().enumerate() {
            let x = as_u64(item)
                .filter(|&x| x <= u32::MAX as u64)
                .ok_or_else(|| format!("{path}.{key}[{i}]: expected non-negative integer"))?;
            out.push(x as u32);
        }
        Ok(out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // Combine UTF-16 surrogate pairs (standard
                            // serializers escape non-BMP chars this way).
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes.get(self.pos + 1..self.pos + 3)
                                    == Some(br"\u".as_slice())
                            {
                                let low = self.hex4(self.pos + 3)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    self.pos += 6;
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Four hex digits starting at byte `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = Value::parse(
            r#"{"a": 1.5, "b": [true, false, null], "s": "x\"y\n", "o": {"k": -2e3}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(
            v.get("o").unwrap().get("k").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nwith \"quotes\" \\ and \t tabs";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Value::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.25), "2.25");
        let v = Value::parse("null").unwrap();
        assert!(v.as_f64().unwrap().is_nan());
    }

    #[test]
    fn surrogate_pairs_combine() {
        // "😀" as a standard serializer escapes it (ensure_ascii):
        // high surrogate D83D + low surrogate DE00 → U+1F600.
        let v = Value::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Raw (unescaped) non-BMP chars pass through too.
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Unpaired high surrogate degrades to U+FFFD, not an error.
        let v = Value::parse(r#""\ud83d x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd} x"));
        // BMP escapes still work.
        let v = Value::parse(r#""é""#).unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        // Pinned reference value: the digest contract must never drift
        // silently, or every committed corpus digest goes stale at once.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(digest_hex("{}"), format!("fnv64:{:016x}", fnv1a_64(b"{}")));
        assert_ne!(digest_hex("{\"a\": 1}"), digest_hex("{\"a\": 2}"));
        assert_eq!(digest_hex("x"), digest_hex("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"open").is_err());
    }
}
