//! Traffic interface between the engine and workload generators.
//!
//! Open-loop injection: each endpoint draws a Bernoulli trial per cycle with
//! probability `rate_flits / packet_len`; on success it asks the pattern for
//! a destination. Patterns are immutable and `Sync` (BSP-parallel engine).

use crate::rng::SplitMix64;

/// A synthetic or collective traffic workload.
pub trait TrafficPattern: Sync + Send {
    /// Offered load at endpoint `src` in flits/cycle (per *endpoint*, i.e.
    /// per network interface — the harness converts per-chip rates).
    fn rate(&self, src: u32) -> f64;

    /// Destination endpoint for the `seq`-th packet from `src`, or `None`
    /// to skip this generation event (e.g. endpoints outside the active
    /// subset). `seq` is the per-source packet counter — deterministic
    /// patterns (alternating ring directions) key off it instead of `rng`.
    fn dest(&self, src: u32, seq: u64, rng: &mut SplitMix64) -> Option<u32>;

    /// Fraction of endpoints that inject under this pattern (1.0 for
    /// uniform; < 1 for hotspot or permutations with fixed points). Used
    /// to normalize per-chip rates to *injecting* chips, matching the
    /// paper's figure axes.
    fn active_fraction(&self) -> f64 {
        1.0
    }
}

/// Uniform-random traffic over all endpoints at a fixed rate; the canonical
/// benchmark pattern and the simplest possible [`TrafficPattern`] — kept in
/// `wsdf-sim` so the engine is testable without the traffic crate.
#[derive(Debug, Clone)]
pub struct UniformPattern {
    /// Number of endpoints.
    pub endpoints: u32,
    /// Offered load per endpoint, flits/cycle.
    pub rate_flits: f64,
    /// If true, a source may draw itself; if false (default) self-traffic is
    /// redrawn as the next endpoint (keeps rates exact without rejection
    /// loops at tiny scales).
    pub allow_self: bool,
}

impl UniformPattern {
    /// Uniform traffic over `endpoints` endpoints at `rate_flits` each.
    pub fn new(endpoints: u32, rate_flits: f64) -> Self {
        UniformPattern {
            endpoints,
            rate_flits,
            allow_self: false,
        }
    }
}

impl TrafficPattern for UniformPattern {
    fn rate(&self, _src: u32) -> f64 {
        self.rate_flits
    }

    fn dest(&self, src: u32, _seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        if self.endpoints <= 1 {
            return None;
        }
        let d = rng.next_below(self.endpoints as u64) as u32;
        if d == src && !self.allow_self {
            Some((d + 1) % self.endpoints)
        } else {
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_destinations() {
        let p = UniformPattern::new(16, 0.5);
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 16];
        for i in 0..2_000 {
            seen[p.dest(3, i, &mut rng).unwrap() as usize] = true;
        }
        // Everyone except possibly nobody; src 3 itself is remapped to 4.
        for (i, s) in seen.iter().enumerate() {
            if i != 3 {
                assert!(*s, "destination {i} never drawn");
            }
        }
        assert!(!seen[3], "self-traffic must be remapped");
    }

    #[test]
    fn single_endpoint_generates_nothing() {
        let p = UniformPattern::new(1, 0.5);
        let mut rng = SplitMix64::new(7);
        assert_eq!(p.dest(0, 0, &mut rng), None);
    }
}
