//! Traffic interface between the engine and workload generators.
//!
//! Open-loop injection: each endpoint follows a closed-form emission
//! schedule — packet `n` is generated on the first cycle `t` where
//! `⌊(t+1)·q⌋ > n`, with `q = rate_flits / packet_len` — and asks the
//! pattern for a destination with an RNG re-keyed from
//! `(seed, endpoint, cycle)` ([`SplitMix64::for_event`]). Both pieces are
//! pure functions of the absolute cycle, so the event-driven engine can
//! fast-forward over idle stretches without desynchronizing the stream,
//! and any partitioning replays it bit-identically. Patterns are
//! immutable and `Sync` (BSP-parallel engine).

use crate::rng::SplitMix64;

/// A synthetic or collective traffic workload.
///
/// # Contract
///
/// Patterns are shared *immutably* across every BSP partition and worker
/// thread for the whole run — hence the `Sync + Send` bound. An
/// implementation must not mutate interior state (no `Cell`/`Mutex`
/// counters): all variability has to come from the arguments.
///
/// **Per-endpoint determinism:** `dest` is called with the *calling
/// endpoint's* private [`SplitMix64`] stream and a per-source packet
/// sequence number. The result must be a pure function of
/// `(src, seq, draws from rng)` — never of global state, wall-clock, or
/// call interleaving — so that any partitioning of the endpoints across
/// threads replays the identical packet stream. This is what makes
/// simulation results bit-identical for every partition and worker count
/// (see `tests/determinism_and_vcs.rs`).
///
/// Patterns must not emit self-traffic: the engine cannot route a packet
/// whose source equals its destination (debug builds assert this).
pub trait TrafficPattern: Sync + Send {
    /// Offered load at endpoint `src` in flits/cycle (per *endpoint*, i.e.
    /// per network interface — the harness converts per-chip rates).
    fn rate(&self, src: u32) -> f64;

    /// Destination endpoint for the `seq`-th packet from `src`, or `None`
    /// to skip this generation event (e.g. endpoints outside the active
    /// subset). `seq` is the per-source packet counter — deterministic
    /// patterns (alternating ring directions) key off it instead of `rng`.
    fn dest(&self, src: u32, seq: u64, rng: &mut SplitMix64) -> Option<u32>;

    /// Fraction of endpoints that inject under this pattern (1.0 for
    /// uniform; < 1 for hotspot or permutations with fixed points). Used
    /// to normalize per-chip rates to *injecting* chips, matching the
    /// paper's figure axes.
    fn active_fraction(&self) -> f64 {
        1.0
    }
}

/// Uniform-random traffic over all endpoints at a fixed rate; the canonical
/// benchmark pattern and the simplest possible [`TrafficPattern`] — kept in
/// `wsdf-sim` so the engine is testable without the traffic crate.
#[derive(Debug, Clone)]
pub struct UniformPattern {
    /// Number of endpoints.
    pub endpoints: u32,
    /// Offered load per endpoint, flits/cycle.
    pub rate_flits: f64,
    /// If true, a source may draw itself; if false (default) self-traffic is
    /// redrawn as the next endpoint (keeps rates exact without rejection
    /// loops at tiny scales).
    pub allow_self: bool,
}

impl UniformPattern {
    /// Uniform traffic over `endpoints` endpoints at `rate_flits` each.
    pub fn new(endpoints: u32, rate_flits: f64) -> Self {
        UniformPattern {
            endpoints,
            rate_flits,
            allow_self: false,
        }
    }
}

impl TrafficPattern for UniformPattern {
    fn rate(&self, _src: u32) -> f64 {
        self.rate_flits
    }

    fn dest(&self, src: u32, _seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        if self.endpoints <= 1 {
            return None;
        }
        let d = rng.next_below(self.endpoints as u64) as u32;
        if d == src && !self.allow_self {
            Some((d + 1) % self.endpoints)
        } else {
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_destinations() {
        let p = UniformPattern::new(16, 0.5);
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 16];
        for i in 0..2_000 {
            seen[p.dest(3, i, &mut rng).unwrap() as usize] = true;
        }
        // Everyone except possibly nobody; src 3 itself is remapped to 4.
        for (i, s) in seen.iter().enumerate() {
            if i != 3 {
                assert!(*s, "destination {i} never drawn");
            }
        }
        assert!(!seen[3], "self-traffic must be remapped");
    }

    /// The `allow_self = false` contract: no draw may ever produce
    /// self-traffic, at any rate, from any source, on any seed — the
    /// engine cannot route such a packet. The redraw maps `src` to the
    /// next endpoint instead of rejecting (keeps rates exact).
    #[test]
    fn no_self_traffic_at_any_rate() {
        for rate in [0.01, 0.5, 1.0, 4.0] {
            let p = UniformPattern::new(9, rate);
            assert!(!p.allow_self);
            for src in 0..9u32 {
                for seed in 0..4u64 {
                    let mut rng = SplitMix64::new(seed);
                    for seq in 0..1_000 {
                        let d = p.dest(src, seq, &mut rng).unwrap();
                        assert_ne!(d, src, "self-traffic from {src} (seed {seed})");
                        assert!(d < 9);
                    }
                }
            }
        }
    }

    #[test]
    fn single_endpoint_generates_nothing() {
        let p = UniformPattern::new(1, 0.5);
        let mut rng = SplitMix64::new(7);
        assert_eq!(p.dest(0, 0, &mut rng), None);
    }
}
