//! Endpoint scoping: which W-group / chip an endpoint belongs to.
//!
//! Patterns only need two precomputed tables (W-group per endpoint, chip
//! per endpoint) plus chip geometry; [`Scope`] builds them from either
//! fabric's parameters so the pattern types stay independent of topology
//! crates' internals.

use wsdf_topo::{SlParams, SwParams};

/// Precomputed endpoint grouping for one fabric.
#[derive(Debug, Clone)]
pub struct Scope {
    /// W-group (Dragonfly group) of each endpoint.
    pub wgroup: Vec<u32>,
    /// Chip of each endpoint.
    pub chip: Vec<u32>,
    /// Intra-chip node position of each endpoint (0 for 1-node chips).
    pub chip_pos: Vec<u32>,
    /// Endpoint of (chip, position): `chip * nodes_per_chip + pos` indexed.
    chip_node: Vec<u32>,
    /// Nodes per chip (integer; panics at build time if chips don't tile).
    pub nodes_per_chip: u32,
    /// Number of W-groups.
    pub num_wgroups: u32,
    /// Chips per C-group-equivalent (ring scope "within C-group").
    pub chips_per_cgroup: u32,
    /// Side of the chip grid inside a C-group (0 when chips have no grid
    /// arrangement, e.g. switch terminals).
    pub chips_side: u32,
    /// Chips per W-group (ring scope "within W-group").
    pub chips_per_wgroup: u32,
}

impl Scope {
    /// Scope of a switch-less fabric.
    pub fn switchless(p: &SlParams) -> Self {
        let n = p.num_endpoints();
        let per_side = p.m / p.chiplet;
        let npc = p.chiplet * p.chiplet;
        let mut wgroup = Vec::with_capacity(n as usize);
        let mut chip = Vec::with_capacity(n as usize);
        let mut chip_pos = Vec::with_capacity(n as usize);
        for ep in 0..n {
            let (w, _c, x, y) = p.endpoint_location(ep);
            wgroup.push(w);
            chip.push(p.chip_of_endpoint(ep));
            let pos = (y % p.chiplet) * p.chiplet + (x % p.chiplet);
            chip_pos.push(pos);
        }
        let num_chips = (n / npc) as usize;
        let mut chip_node = vec![u32::MAX; num_chips * npc as usize];
        for ep in 0..n {
            chip_node[(chip[ep as usize] * npc + chip_pos[ep as usize]) as usize] = ep;
        }
        debug_assert!(chip_node.iter().all(|&e| e != u32::MAX));
        Scope {
            wgroup,
            chip,
            chip_pos,
            chip_node,
            nodes_per_chip: npc,
            num_wgroups: p.wgroups,
            chips_per_cgroup: per_side * per_side,
            chips_side: per_side,
            chips_per_wgroup: per_side * per_side * p.ab(),
        }
    }

    /// Scope of a switch-based fabric (one node per chip; the "C-group"
    /// ring scope is the terminals of one switch).
    pub fn switchbased(p: &SwParams) -> Self {
        let n = p.num_endpoints();
        let mut wgroup = Vec::with_capacity(n as usize);
        for ep in 0..n {
            wgroup.push(p.group_of_endpoint(ep));
        }
        Scope {
            wgroup,
            chip: (0..n).collect(),
            chip_pos: vec![0; n as usize],
            chip_node: (0..n).collect(),
            nodes_per_chip: 1,
            num_wgroups: p.groups,
            chips_per_cgroup: p.terminals,
            chips_side: 0,
            chips_per_wgroup: p.terminals * p.switches_per_group(),
        }
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> u32 {
        self.wgroup.len() as u32
    }

    /// Number of chips.
    pub fn num_chips(&self) -> u32 {
        self.endpoints() / self.nodes_per_chip
    }

    /// Endpoint at `pos` within `chip`.
    pub fn node_of(&self, chip: u32, pos: u32) -> u32 {
        self.chip_node[(chip * self.nodes_per_chip + pos) as usize]
    }

    /// Endpoints of one W-group (contiguous by construction).
    pub fn endpoints_per_wgroup(&self) -> u32 {
        self.endpoints() / self.num_wgroups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switchless_scope_is_consistent() {
        let p = SlParams::radix16().with_wgroups(3);
        let s = Scope::switchless(&p);
        assert_eq!(s.endpoints(), 3 * 8 * 16);
        assert_eq!(s.nodes_per_chip, 4);
        assert_eq!(s.num_chips(), 3 * 8 * 4);
        assert_eq!(s.chips_per_cgroup, 4);
        assert_eq!(s.chips_per_wgroup, 32);
        // node_of inverts (chip, pos).
        for ep in 0..s.endpoints() {
            assert_eq!(s.node_of(s.chip[ep as usize], s.chip_pos[ep as usize]), ep);
        }
        // W-groups are contiguous, 128 endpoints each.
        for ep in 0..s.endpoints() {
            assert_eq!(s.wgroup[ep as usize], ep / 128);
        }
    }

    #[test]
    fn switchbased_scope_is_consistent() {
        let p = SwParams::radix16().with_groups(4);
        let s = Scope::switchbased(&p);
        assert_eq!(s.endpoints(), 4 * 32);
        assert_eq!(s.nodes_per_chip, 1);
        assert_eq!(s.chips_per_cgroup, 4);
        assert_eq!(s.chips_per_wgroup, 32);
        for ep in 0..s.endpoints() {
            assert_eq!(s.wgroup[ep as usize], ep / 32);
            assert_eq!(s.node_of(ep, 0), ep);
        }
    }
}
