//! Bit-permutation traffic patterns (Dally & Towles ch. 3; the paper's
//! unicast workloads).
//!
//! Permutations act on ⌊log₂N⌋ address bits. When N is not a power of two,
//! endpoints at or above the largest power of two send uniformly instead
//! (standard practice; noted in EXPERIMENTS.md). Self-mapped sources (e.g.
//! bit-reverse palindromes) generate no traffic — they would be zero-hop
//! packets and only distort latency statistics.

use wsdf_sim::{SplitMix64, TrafficPattern};

/// Which bit permutation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermKind {
    /// Reverse the address bits (b₀b₁…b₋₁ → b₋₁…b₁b₀).
    BitReverse,
    /// Rotate left by one (perfect shuffle).
    BitShuffle,
    /// Swap the high and low halves (matrix transpose); odd bit-widths
    /// rotate by ⌊q/2⌋.
    BitTranspose,
}

impl PermKind {
    /// Apply the permutation to `x` over `q` bits.
    pub fn apply(self, x: u32, q: u32) -> u32 {
        debug_assert!(q >= 1 && x < (1 << q));
        match self {
            PermKind::BitReverse => x.reverse_bits() >> (32 - q),
            PermKind::BitShuffle => ((x << 1) | (x >> (q - 1))) & ((1 << q) - 1),
            PermKind::BitTranspose => {
                let h = q / 2;
                ((x >> h) | (x << (q - h))) & ((1 << q) - 1)
            }
        }
    }

    /// Display name (matches the paper's figure labels).
    pub fn name(self) -> &'static str {
        match self {
            PermKind::BitReverse => "bit-reverse",
            PermKind::BitShuffle => "bit-shuffle",
            PermKind::BitTranspose => "bit-transpose",
        }
    }
}

/// A fixed bit-permutation pattern at a uniform offered rate.
#[derive(Debug, Clone)]
pub struct PermutationPattern {
    dest: Vec<Option<u32>>,
    endpoints: u32,
    rate: f64,
}

impl PermutationPattern {
    /// Build the pattern for `endpoints` endpoints at `rate`
    /// flits/cycle/endpoint.
    pub fn new(kind: PermKind, endpoints: u32, rate: f64) -> Self {
        assert!(endpoints >= 2);
        let q = 31 - endpoints.leading_zeros(); // floor(log2)
        let pow2 = 1u32 << q;
        let dest = (0..endpoints)
            .map(|src| {
                if src < pow2 {
                    let d = kind.apply(src, q);
                    if d == src {
                        None
                    } else {
                        Some(d)
                    }
                } else {
                    // Outside the power-of-two region: uniform (marked by
                    // storing u32::MAX and resolving at draw time).
                    Some(u32::MAX)
                }
            })
            .collect();
        PermutationPattern {
            dest,
            endpoints,
            rate,
        }
    }

    /// Fraction of endpoints that generate traffic (self-mapped sources
    /// are silent).
    pub fn active_fraction(&self) -> f64 {
        let active = self.dest.iter().filter(|d| d.is_some()).count();
        active as f64 / self.endpoints as f64
    }
}

impl TrafficPattern for PermutationPattern {
    fn rate(&self, src: u32) -> f64 {
        if self.dest[src as usize].is_some() {
            self.rate
        } else {
            0.0
        }
    }

    fn dest(&self, src: u32, _seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        match self.dest[src as usize] {
            None => None,
            Some(u32::MAX) => {
                let d = rng.next_below(self.endpoints as u64) as u32;
                if d == src {
                    Some((d + 1) % self.endpoints)
                } else {
                    Some(d)
                }
            }
            Some(d) => Some(d),
        }
    }

    fn active_fraction(&self) -> f64 {
        PermutationPattern::active_fraction(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_is_an_involution() {
        for q in 1..=10 {
            for x in 0..(1u32 << q) {
                let y = PermKind::BitReverse.apply(x, q);
                assert_eq!(PermKind::BitReverse.apply(y, q), x);
                assert!(y < (1 << q));
            }
        }
    }

    #[test]
    fn shuffle_and_transpose_are_bijections() {
        for kind in [PermKind::BitShuffle, PermKind::BitTranspose] {
            for q in 1..=10 {
                let mut seen = vec![false; 1 << q];
                for x in 0..(1u32 << q) {
                    let y = kind.apply(x, q) as usize;
                    assert!(!seen[y], "{kind:?} not injective at q={q}");
                    seen[y] = true;
                }
            }
        }
    }

    #[test]
    fn transpose_swaps_halves_for_even_q() {
        // q=4: x = hhll → llhh.
        assert_eq!(PermKind::BitTranspose.apply(0b1100, 4), 0b0011);
        assert_eq!(PermKind::BitTranspose.apply(0b0110, 4), 0b1001);
    }

    #[test]
    fn known_reversals() {
        assert_eq!(PermKind::BitReverse.apply(0b0001, 4), 0b1000);
        assert_eq!(PermKind::BitReverse.apply(0b0110, 4), 0b0110);
        assert_eq!(PermKind::BitShuffle.apply(0b1000, 4), 0b0001);
    }

    #[test]
    fn pattern_respects_self_silence() {
        let p = PermutationPattern::new(PermKind::BitReverse, 16, 0.5);
        // Palindromes 0, 6, 9, 15 are silent.
        assert_eq!(p.rate(0), 0.0);
        assert_eq!(p.rate(6), 0.0);
        assert_eq!(p.rate(9), 0.0);
        assert_eq!(p.rate(15), 0.0);
        assert_eq!(p.rate(1), 0.5);
        let mut rng = SplitMix64::new(1);
        assert_eq!(p.dest(1, 0, &mut rng), Some(8));
        assert_eq!(p.dest(0, 0, &mut rng), None);
        assert!((p.active_fraction() - 12.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn non_pow2_tail_sends_uniform() {
        let p = PermutationPattern::new(PermKind::BitReverse, 20, 0.5);
        let mut rng = SplitMix64::new(2);
        for i in 0..100 {
            let d = p.dest(17, i, &mut rng).unwrap();
            assert!(d < 20);
            assert_ne!(d, 17);
        }
        assert_eq!(p.rate(17), 0.5);
    }
}
