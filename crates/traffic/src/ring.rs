//! Ring-based AllReduce traffic (Sec. V-A3(c), Fig. 14).
//!
//! In steady state, ring AllReduce makes every chip stream segments to its
//! ring neighbor(s): chip *i* sends to chip *(i+1) mod N* (unidirectional)
//! or halved segments to both neighbors (bidirectional). A chip whose NoC
//! has `nodes_per_chip` nodes runs that many *parallel* rings — node *j*
//! of chip *i* talks to node *j* of the neighbor chip — which is exactly
//! how a wafer chip exploits its multiple injection ports (and why the
//! paper reports 2/4 flits/cycle/chip for uni/bi rings on the switch-less
//! fabric vs 1 on a single switch port).
//!
//! The ring is scoped: all chips of one C-group (Fig. 14(a)) or one
//! W-group (Fig. 14(b)); every scope unit runs its own independent ring
//! simultaneously.

use crate::scope::Scope;
use wsdf_sim::{SplitMix64, TrafficPattern};

/// Ring direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingDirection {
    /// Each chip sends only to its successor.
    Unidirectional,
    /// Each chip alternates between successor and predecessor (halved
    /// segments; same offered rate, doubled path diversity).
    Bidirectional,
}

/// Steady-state ring AllReduce pattern.
#[derive(Debug, Clone)]
pub struct RingAllReduce {
    /// Precomputed successor endpoint per endpoint.
    next: Vec<u32>,
    /// Precomputed predecessor endpoint per endpoint.
    prev: Vec<u32>,
    direction: RingDirection,
    rate: f64,
}

impl RingAllReduce {
    /// Ring over every `chips_per_unit` consecutive chips (use
    /// `scope.chips_per_cgroup` or `scope.chips_per_wgroup`), at `rate`
    /// flits/cycle/endpoint.
    ///
    /// Within a C-group the ring follows a Hamiltonian cycle over the chip
    /// grid (boustrophedon) rather than row-major order: every ring hop is
    /// then a straight mesh move, so the forward and backward directions
    /// of a bidirectional ring use disjoint directed mesh links. With
    /// row-major order the wrap-around hops are diagonal and collide with
    /// the straight hops, halving bidirectional throughput — this
    /// embedding is what lets the paper's 4 flits/cycle/chip materialize.
    pub fn new(scope: &Scope, chips_per_unit: u32, direction: RingDirection, rate: f64) -> Self {
        assert!(chips_per_unit >= 2, "a ring needs at least 2 chips");
        assert_eq!(
            scope.num_chips() % chips_per_unit,
            0,
            "chips must tile into ring units"
        );
        // Ring rank of each chip within its C-group block, and its inverse.
        let side = scope.chips_side;
        let cpc = scope.chips_per_cgroup.max(1);
        let cycle = grid_cycle(side);
        let rank_of = |chip: u32| -> u32 {
            let base = chip - chip % cpc;
            match &cycle {
                Some(order) => base + order[(chip % cpc) as usize],
                None => chip,
            }
        };
        let chip_of_rank = |rank: u32| -> u32 {
            let base = rank - rank % cpc;
            match &cycle {
                Some(order) => {
                    let inv = order
                        .iter()
                        .position(|&r| r == rank % cpc)
                        .expect("cycle is a permutation") as u32;
                    base + inv
                }
                None => rank,
            }
        };
        let n = scope.endpoints();
        let mut next = vec![0u32; n as usize];
        let mut prev = vec![0u32; n as usize];
        for ep in 0..n {
            let chip = scope.chip[ep as usize];
            let pos = scope.chip_pos[ep as usize];
            let rank = rank_of(chip);
            let unit = rank / chips_per_unit;
            let in_unit = rank % chips_per_unit;
            let succ = chip_of_rank(unit * chips_per_unit + (in_unit + 1) % chips_per_unit);
            let pred = chip_of_rank(
                unit * chips_per_unit + (in_unit + chips_per_unit - 1) % chips_per_unit,
            );
            next[ep as usize] = scope.node_of(succ, pos);
            prev[ep as usize] = scope.node_of(pred, pos);
        }
        RingAllReduce {
            next,
            prev,
            direction,
            rate,
        }
    }

    /// Successor of an endpoint on its ring.
    pub fn successor(&self, ep: u32) -> u32 {
        self.next[ep as usize]
    }

    /// Ring rank (cycle position) of row-major chip index `i` in a
    /// `side`×`side` grid, exposed for tests.
    pub fn grid_cycle_rank(side: u32, i: u32) -> Option<u32> {
        grid_cycle(side).map(|c| c[i as usize])
    }

    /// Predecessor of an endpoint on its ring.
    pub fn predecessor(&self, ep: u32) -> u32 {
        self.prev[ep as usize]
    }
}

impl TrafficPattern for RingAllReduce {
    fn rate(&self, _src: u32) -> f64 {
        self.rate
    }

    fn dest(&self, src: u32, seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        let _ = rng;
        let d = match self.direction {
            RingDirection::Unidirectional => self.next[src as usize],
            // Strict alternation, as in segmented bidirectional AllReduce:
            // even segments go clockwise, odd ones counter-clockwise.
            RingDirection::Bidirectional => {
                if seq.is_multiple_of(2) {
                    self.next[src as usize]
                } else {
                    self.prev[src as usize]
                }
            }
        };
        if d == src {
            None
        } else {
            Some(d)
        }
    }
}

/// Ring rank of each chip (row-major index) along a Hamiltonian cycle of a
/// `side`×`side` grid: up the left column, then boustrophedon back through
/// columns 1..side over rows side-1..0, ending adjacent to the start.
/// `None` when the grid has no Hamiltonian cycle (side odd or < 2) or no
/// grid structure (side 0) — callers fall back to row-major order.
fn grid_cycle(side: u32) -> Option<Vec<u32>> {
    if side < 2 || !side.is_multiple_of(2) {
        return None;
    }
    let s = side as usize;
    let mut rank = vec![u32::MAX; s * s];
    let mut r = 0u32;
    // Left column bottom → top.
    for y in 0..s {
        rank[y * s] = r;
        r += 1;
    }
    // Rows top → bottom, snaking over x ∈ 1..s.
    for yy in 0..s {
        let y = s - 1 - yy;
        if yy % 2 == 0 {
            for x in 1..s {
                rank[y * s + x] = r;
                r += 1;
            }
        } else {
            for x in (1..s).rev() {
                rank[y * s + x] = r;
                r += 1;
            }
        }
    }
    debug_assert!(rank.iter().all(|&x| x != u32::MAX));
    Some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsdf_topo::{SlParams, SwParams};

    #[test]
    fn grid_cycle_is_a_hamiltonian_cycle() {
        for side in [2u32, 4, 6] {
            let rank = grid_cycle(side).unwrap();
            let s = side as usize;
            // Permutation.
            let mut seen = vec![false; s * s];
            for &r in &rank {
                assert!(!seen[r as usize]);
                seen[r as usize] = true;
            }
            // Consecutive ranks (and the wrap) are grid-adjacent.
            let pos_of = |want: u32| -> (i32, i32) {
                let i = rank.iter().position(|&r| r == want).unwrap();
                ((i % s) as i32, (i / s) as i32)
            };
            for r in 0..(s * s) as u32 {
                let (x1, y1) = pos_of(r);
                let (x2, y2) = pos_of((r + 1) % (s * s) as u32);
                assert_eq!(
                    (x1 - x2).abs() + (y1 - y2).abs(),
                    1,
                    "rank {r}→{} not adjacent at side {side}",
                    (r + 1) % (s * s) as u32
                );
            }
        }
    }

    #[test]
    fn grid_cycle_absent_for_odd_or_trivial() {
        assert!(grid_cycle(0).is_none());
        assert!(grid_cycle(1).is_none());
        assert!(grid_cycle(3).is_none());
    }

    #[test]
    fn ring_is_a_permutation_per_unit() {
        let s = Scope::switchless(&SlParams::radix16().with_wgroups(2));
        let r = RingAllReduce::new(&s, s.chips_per_cgroup, RingDirection::Unidirectional, 0.5);
        // next is a bijection on endpoints.
        let mut seen = vec![false; s.endpoints() as usize];
        for ep in 0..s.endpoints() {
            let d = r.successor(ep);
            assert!(!seen[d as usize]);
            seen[d as usize] = true;
            // Same intra-chip position.
            assert_eq!(s.chip_pos[ep as usize], s.chip_pos[d as usize]);
            // Same C-group unit (4 chips per C-group).
            assert_eq!(
                s.chip[ep as usize] / s.chips_per_cgroup,
                s.chip[d as usize] / s.chips_per_cgroup
            );
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn ring_cycles_cover_whole_unit() {
        let s = Scope::switchless(&SlParams::radix16().with_wgroups(1));
        let r = RingAllReduce::new(&s, s.chips_per_wgroup, RingDirection::Unidirectional, 0.5);
        // Follow the ring from endpoint 0: must return after exactly
        // chips_per_wgroup steps.
        let mut at = 0u32;
        for _ in 0..s.chips_per_wgroup {
            at = r.successor(at);
        }
        assert_eq!(at, 0);
        let mut at = 0u32;
        let mut steps = 0;
        loop {
            at = r.successor(at);
            steps += 1;
            if at == 0 {
                break;
            }
        }
        assert_eq!(steps, s.chips_per_wgroup);
    }

    #[test]
    fn prev_inverts_next() {
        let s = Scope::switchless(&SlParams::radix16().with_wgroups(1));
        let r = RingAllReduce::new(&s, s.chips_per_cgroup, RingDirection::Bidirectional, 0.5);
        for ep in 0..s.endpoints() {
            assert_eq!(r.predecessor(r.successor(ep)), ep);
        }
    }

    #[test]
    fn switchbased_ring_over_terminals() {
        let p = SwParams::radix16().with_groups(1);
        let s = Scope::switchbased(&p);
        let r = RingAllReduce::new(&s, s.chips_per_cgroup, RingDirection::Unidirectional, 0.5);
        // Terminals 0..3 of switch 0 form a ring.
        assert_eq!(r.successor(0), 1);
        assert_eq!(r.successor(3), 0);
        // Ring stays within one switch's terminals.
        for ep in 0..s.endpoints() {
            assert_eq!(ep / 4, r.successor(ep) / 4);
        }
    }

    #[test]
    fn bidirectional_draws_both_neighbors() {
        let s = Scope::switchless(&SlParams::radix16().with_wgroups(1));
        let r = RingAllReduce::new(&s, s.chips_per_cgroup, RingDirection::Bidirectional, 0.5);
        let mut rng = SplitMix64::new(11);
        let mut hits = std::collections::HashSet::new();
        for i in 0..100 {
            hits.insert(r.dest(0, i, &mut rng).unwrap());
        }
        assert_eq!(hits.len(), 2);
        // Strict alternation.
        assert_eq!(r.dest(0, 0, &mut rng), Some(r.successor(0)));
        assert_eq!(r.dest(0, 1, &mut rng), Some(r.predecessor(0)));
    }
}
