//! Adversarial traffic patterns (Sec. V-A3(b)).
//!
//! * **Hotspot** — all communication confined to four of the W-groups:
//!   only their nodes inject, destinations are uniform over the other
//!   active W-groups. Minimal routing can then use only a few of the
//!   global links between the active pairs, which is what Fig. 13(a)
//!   punishes ("only 3/40 global links are used").
//! * **Worst-case** — every node of W-group *i* sends to a uniformly
//!   random node of W-group *i+1*: all traffic of a W-group funnels into
//!   the single minimal global link (1/40 used), the canonical Dragonfly
//!   adversarial pattern from Kim et al.

use crate::scope::Scope;
use wsdf_sim::{SplitMix64, TrafficPattern};

/// Hotspot: traffic within a set of active W-groups.
#[derive(Debug, Clone)]
pub struct HotspotPattern {
    /// W-group of each endpoint.
    wgroup: Vec<u32>,
    /// Active flag per W-group.
    active: Vec<bool>,
    /// Endpoints of active W-groups, as draw candidates.
    candidates: Vec<u32>,
    rate: f64,
}

impl HotspotPattern {
    /// Traffic confined to `active` W-groups at `rate` flits/cycle per
    /// active endpoint. The paper uses four active W-groups, spread evenly.
    pub fn new(scope: &Scope, active_wgroups: &[u32], rate: f64) -> Self {
        assert!(!active_wgroups.is_empty());
        let mut active = vec![false; scope.num_wgroups as usize];
        for &w in active_wgroups {
            assert!(w < scope.num_wgroups, "active W-group {w} out of range");
            active[w as usize] = true;
        }
        let candidates = (0..scope.endpoints())
            .filter(|&e| active[scope.wgroup[e as usize] as usize])
            .collect();
        HotspotPattern {
            wgroup: scope.wgroup.clone(),
            active,
            candidates,
            rate,
        }
    }

    /// The paper's configuration: four evenly spread active W-groups.
    pub fn paper_default(scope: &Scope, rate: f64) -> Self {
        let g = scope.num_wgroups;
        assert!(g >= 4, "hotspot needs at least 4 W-groups");
        let spread = [0, g / 4, g / 2, 3 * g / 4];
        Self::new(scope, &spread, rate)
    }
}

impl TrafficPattern for HotspotPattern {
    fn rate(&self, src: u32) -> f64 {
        if self.active[self.wgroup[src as usize] as usize] {
            self.rate
        } else {
            0.0
        }
    }

    fn dest(&self, src: u32, _seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        if self.candidates.len() <= 1 {
            return None;
        }
        loop {
            let d = self.candidates[rng.next_below(self.candidates.len() as u64) as usize];
            if d != src {
                return Some(d);
            }
        }
    }

    fn active_fraction(&self) -> f64 {
        self.candidates.len() as f64 / self.wgroup.len() as f64
    }
}

/// Worst-case: W-group *i* sends to random nodes of W-group *i+1*.
#[derive(Debug, Clone)]
pub struct WorstCasePattern {
    wgroup: Vec<u32>,
    endpoints_per_wgroup: u32,
    num_wgroups: u32,
    rate: f64,
}

impl WorstCasePattern {
    /// Build at `rate` flits/cycle/endpoint.
    pub fn new(scope: &Scope, rate: f64) -> Self {
        assert!(scope.num_wgroups >= 2, "worst-case needs >= 2 W-groups");
        WorstCasePattern {
            wgroup: scope.wgroup.clone(),
            endpoints_per_wgroup: scope.endpoints_per_wgroup(),
            num_wgroups: scope.num_wgroups,
            rate,
        }
    }
}

impl TrafficPattern for WorstCasePattern {
    fn rate(&self, _src: u32) -> f64 {
        self.rate
    }

    fn dest(&self, src: u32, _seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        let w = self.wgroup[src as usize];
        let wn = (w + 1) % self.num_wgroups;
        // Endpoints of a W-group are contiguous by construction.
        let base = wn * self.endpoints_per_wgroup;
        Some(base + rng.next_below(self.endpoints_per_wgroup as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsdf_topo::SlParams;

    fn scope() -> Scope {
        Scope::switchless(&SlParams::radix16().with_wgroups(8))
    }

    #[test]
    fn hotspot_silences_inactive_wgroups() {
        let s = scope();
        let h = HotspotPattern::new(&s, &[0, 2, 4, 6], 0.5);
        let mut rng = SplitMix64::new(3);
        for ep in 0..s.endpoints() {
            let w = s.wgroup[ep as usize];
            if w.is_multiple_of(2) {
                assert_eq!(h.rate(ep), 0.5);
                let d = h.dest(ep, 0, &mut rng).unwrap();
                assert_eq!(s.wgroup[d as usize] % 2, 0, "dest in inactive W-group");
                assert_ne!(d, ep);
            } else {
                assert_eq!(h.rate(ep), 0.0);
            }
        }
    }

    #[test]
    fn hotspot_paper_default_uses_four_groups() {
        let s = scope();
        let h = HotspotPattern::paper_default(&s, 1.0);
        let active = h.active.iter().filter(|&&a| a).count();
        assert_eq!(active, 4);
    }

    #[test]
    fn worst_case_targets_next_wgroup() {
        let s = scope();
        let wc = WorstCasePattern::new(&s, 0.3);
        let mut rng = SplitMix64::new(4);
        for ep in (0..s.endpoints()).step_by(17) {
            let w = s.wgroup[ep as usize];
            for i in 0..20 {
                let d = wc.dest(ep, i, &mut rng).unwrap();
                assert_eq!(s.wgroup[d as usize], (w + 1) % 8);
            }
        }
    }

    #[test]
    fn worst_case_covers_target_wgroup() {
        let s = scope();
        let wc = WorstCasePattern::new(&s, 0.3);
        let mut rng = SplitMix64::new(5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5_000 {
            seen.insert(wc.dest(0, i, &mut rng).unwrap());
        }
        // 128 endpoints per W-group; all should be hit in 5000 draws.
        assert_eq!(seen.len() as u32, s.endpoints_per_wgroup());
    }
}
