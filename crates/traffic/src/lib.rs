//! # wsdf-traffic — workloads for the switch-less Dragonfly evaluation
//!
//! The three workload families of Sec. V-A3:
//!
//! * [`perm`] — **unicast patterns**: uniform (re-exported from
//!   `wsdf-sim`), bit-reverse, bit-shuffle, bit-transpose.
//! * [`adversarial`] — **adversarial patterns**: hotspot (traffic confined
//!   to four W-groups) and worst-case (every node in W-group *i* sends to a
//!   random node in W-group *i+1*).
//! * [`ring`] — **collective patterns**: ring-based AllReduce, uni- and
//!   bidirectional, scoped to C-groups or W-groups, with one parallel ring
//!   per intra-chip node position (a chip with four NoC nodes runs four
//!   parallel rings — how a real 2D-mesh chip uses all its injection
//!   ports, and what makes the paper's 2/4 flits/cycle/chip possible).
//!
//! Rates everywhere in this crate are **flits/cycle/endpoint** (node). The
//! harness converts the paper's per-chip x-axes by dividing by
//! `nodes_per_chip`.

#![deny(missing_docs)]

pub mod adversarial;
pub mod perm;
pub mod ring;
pub mod scope;

pub use adversarial::{HotspotPattern, WorstCasePattern};
pub use perm::{PermKind, PermutationPattern};
pub use ring::{RingAllReduce, RingDirection};
pub use scope::Scope;
pub use wsdf_sim::pattern::UniformPattern;
