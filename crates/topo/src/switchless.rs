//! The wafer-based switch-less Dragonfly (Sec. III-A, IV-A of the paper).
//!
//! Each C-group is an m×m mesh of core routers plus `k = 4m−4` SR-LR
//! converter modules, one per perimeter core. Converters are chained along
//! the perimeter (the physical layout of Fig. 9 places them side by side at
//! the wafer edge; the chain is what makes the paper's port-to-port
//! up-only/down-only paths of Property 1(c2) realizable — see DESIGN.md).
//! The `ab` C-groups of a W-group are fully connected through local
//! long-reach links, and W-groups are fully connected through global
//! long-reach links in the relative (palmtree) arrangement.
//!
//! Channel classes and latencies (Table II / Table IV):
//!
//! | link                | class           | latency | width        |
//! |---------------------|-----------------|---------|--------------|
//! | mesh, intra-chiplet | `OnChip`        | 1       | `mesh_width` |
//! | mesh, inter-chiplet | `ShortReach`    | 1       | `mesh_width` |
//! | core ↔ converter    | `ShortReach`    | 1       | 1            |
//! | converter chain     | `ShortReach`    | 1       | 1            |
//! | local (intra-W)     | `LongReachLocal`| 8       | 1            |
//! | global (inter-W)    | `LongReachGlobal`| 8      | 1            |

use crate::address::SlParams;
use crate::mesh::wire_mesh;
use crate::{conv_port, core_port, RouterKind};
use wsdf_sim::{ChannelClass, NetworkDesc};

/// Latency of long-reach links in cycles (Table IV).
pub const LR_LATENCY: u32 = 8;
/// Latency of short-reach links in cycles (Table IV).
pub const SR_LATENCY: u32 = 1;

/// A fully built switch-less Dragonfly fabric.
#[derive(Debug, Clone)]
pub struct SwitchlessFabric {
    /// The simulator network.
    pub net: NetworkDesc,
    /// The configuration it was built from.
    pub params: SlParams,
    /// Router kinds, indexed by router id.
    pub kinds: Vec<RouterKind>,
}

impl SwitchlessFabric {
    /// Build the fabric described by `params`.
    pub fn build(params: &SlParams) -> Self {
        params.validate().expect("invalid SlParams");
        let p = *params;
        let m = p.m;
        let k = p.k();
        let ab = p.ab();
        let h = p.h();
        let wn = p.wgroups;

        let mut net = NetworkDesc::new();
        let mut kinds = Vec::with_capacity(p.num_routers() as usize);

        // Routers + endpoints, C-group by C-group (ids must match the
        // arithmetic in SlParams).
        for w in 0..wn {
            for c in 0..ab {
                for y in 0..m {
                    for x in 0..m {
                        let r = net.add_router(core_port::COUNT);
                        debug_assert_eq!(r, p.core_router(w, c, x, y));
                        kinds.push(RouterKind::Core {
                            w,
                            c,
                            x: x as u16,
                            y: y as u16,
                        });
                        let e = net.add_endpoint(r);
                        debug_assert_eq!(e, p.endpoint_of(w, c, x, y));
                        net.attach_endpoint(e, r, core_port::EP, 1, 1);
                    }
                }
                for label in 0..k {
                    let r = net.add_router(conv_port::COUNT);
                    debug_assert_eq!(r, p.converter_router(w, c, label));
                    kinds.push(RouterKind::Converter {
                        w,
                        c,
                        label: label as u16,
                    });
                }
            }
        }

        // Intra-C-group wiring: mesh + converter attach + perimeter chain.
        for w in 0..wn {
            for c in 0..ab {
                wire_mesh(&mut net, m, p.chiplet, p.mesh_width, |x, y| {
                    p.core_router(w, c, x, y)
                });
                for label in 0..k {
                    let conv = p.converter_router(w, c, label);
                    let (x, y) = p.ring_to_xy(label);
                    let core = p.core_router(w, c, x, y);
                    net.connect(
                        (conv, conv_port::CORE),
                        (core, core_port::CONV),
                        SR_LATENCY,
                        1,
                        ChannelClass::ShortReach,
                    );
                    if label + 1 < k {
                        let next = p.converter_router(w, c, label + 1);
                        net.connect(
                            (conv, conv_port::NEXT),
                            (next, conv_port::PREV),
                            SR_LATENCY,
                            1,
                            ChannelClass::ShortReach,
                        );
                    }
                }
            }
        }

        // Local links: all-to-all C-groups within each W-group, at the
        // Property-2 port labels.
        for w in 0..wn {
            for c in 0..ab {
                for d in (c + 1)..ab {
                    let conv_c = p.converter_router(w, c, p.local_port_label(c, d));
                    let conv_d = p.converter_router(w, d, p.local_port_label(d, c));
                    net.connect(
                        (conv_c, conv_port::EXT),
                        (conv_d, conv_port::EXT),
                        LR_LATENCY,
                        1,
                        ChannelClass::LongReachLocal,
                    );
                }
            }
        }

        // Global links: palmtree over instantiated W-groups.
        for w in 0..wn {
            for q in 0..ab * h {
                let Some((v, qb)) = p.global_peer(w, q) else {
                    continue;
                };
                // Add each undirected link once.
                if (v, qb) < (w, q) {
                    continue;
                }
                let (c1, j1) = (q / h, q % h);
                let (c2, j2) = (qb / h, qb % h);
                let conv1 = p.converter_router(w, c1, p.global_port_label(c1, j1));
                let conv2 = p.converter_router(v, c2, p.global_port_label(c2, j2));
                net.connect(
                    (conv1, conv_port::EXT),
                    (conv2, conv_port::EXT),
                    LR_LATENCY,
                    1,
                    ChannelClass::LongReachGlobal,
                );
            }
        }

        net.validate()
            .expect("switch-less construction is structurally valid");
        SwitchlessFabric {
            net,
            params: p,
            kinds,
        }
    }

    /// Kind of a router.
    pub fn kind(&self, router: u32) -> RouterKind {
        self.kinds[router as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PortRole;
    use wsdf_sim::Terminus;

    fn tiny() -> SlParams {
        // m=4 (k=12), ab=4 → h=9, up to 37 W-groups; build 3.
        SlParams {
            a: 2,
            b: 2,
            m: 4,
            chiplet: 2,
            wgroups: 3,
            mesh_width: 1,
            nodes_per_chip: 4.0,
        }
    }

    #[test]
    fn tiny_builds_and_validates() {
        let f = SwitchlessFabric::build(&tiny());
        let p = f.params;
        assert_eq!(f.net.num_routers() as u32, p.num_routers());
        assert_eq!(f.net.num_endpoints() as u32, p.num_endpoints());
        assert_eq!(f.kinds.len(), f.net.num_routers());
    }

    #[test]
    fn radix16_single_wgroup_counts() {
        let p = SlParams::radix16().with_wgroups(1);
        let f = SwitchlessFabric::build(&p);
        // 8 C-groups × (16 cores + 12 converters).
        assert_eq!(f.net.num_routers(), 8 * 28);
        assert_eq!(f.net.num_endpoints(), 128);
        // Local links: C(8,2) = 28 bidirectional LR-local links.
        let lr_local = f
            .net
            .channels
            .iter()
            .filter(|ch| ch.class == ChannelClass::LongReachLocal)
            .count();
        assert_eq!(lr_local, 28 * 2);
        // No globals at wgroups=1.
        assert!(!f
            .net
            .channels
            .iter()
            .any(|ch| ch.class == ChannelClass::LongReachGlobal));
    }

    #[test]
    fn full_radix16_global_link_count() {
        let p = SlParams::radix16();
        let f = SwitchlessFabric::build(&p);
        // 41 W-groups × 40 ports / 2 = 820 bidirectional global links.
        let lr_global = f
            .net
            .channels
            .iter()
            .filter(|ch| ch.class == ChannelClass::LongReachGlobal)
            .count();
        assert_eq!(lr_global, 820 * 2);
        assert_eq!(f.net.num_endpoints(), 5248);
    }

    #[test]
    fn every_external_port_is_wired_at_full_scale() {
        let p = SlParams::radix16();
        let f = SwitchlessFabric::build(&p);
        // Each converter's EXT port must appear as a channel src exactly once.
        let mut ext_out = std::collections::HashSet::new();
        for ch in &f.net.channels {
            if let Terminus::Router { router, port } = ch.src {
                if port == conv_port::EXT && matches!(f.kind(router), RouterKind::Converter { .. })
                {
                    ext_out.insert(router);
                }
            }
        }
        let converters = f
            .kinds
            .iter()
            .filter(|k| matches!(k, RouterKind::Converter { .. }))
            .count();
        assert_eq!(ext_out.len(), converters);
    }

    #[test]
    fn local_links_follow_property2_labels() {
        let p = SlParams::radix16().with_wgroups(1);
        let f = SwitchlessFabric::build(&p);
        // The link between C-groups 2 and 5 must sit at label 2 (on 5's
        // side: down-local peer 2 → label 2... wait, on 2's side the peer 5
        // is up-local) — verify both endpoints via the role decoder.
        for ch in &f.net.channels {
            if ch.class != ChannelClass::LongReachLocal {
                continue;
            }
            let (Terminus::Router { router: r1, .. }, Terminus::Router { router: r2, .. }) =
                (ch.src, ch.dst)
            else {
                panic!("LR-local between non-routers")
            };
            let RouterKind::Converter {
                c: c1, label: l1, ..
            } = f.kind(r1)
            else {
                panic!("LR-local src not a converter")
            };
            let RouterKind::Converter {
                c: c2, label: l2, ..
            } = f.kind(r2)
            else {
                panic!("LR-local dst not a converter")
            };
            assert_eq!(p.port_role(c1, l1 as u32), PortRole::Local(c2));
            assert_eq!(p.port_role(c2, l2 as u32), PortRole::Local(c1));
        }
    }

    #[test]
    fn global_links_connect_distinct_wgroups_all_to_all() {
        let p = tiny();
        let f = SwitchlessFabric::build(&p);
        let mut pairs = std::collections::HashSet::new();
        for ch in &f.net.channels {
            if ch.class != ChannelClass::LongReachGlobal {
                continue;
            }
            let (Terminus::Router { router: r1, .. }, Terminus::Router { router: r2, .. }) =
                (ch.src, ch.dst)
            else {
                panic!()
            };
            let RouterKind::Converter { w: w1, .. } = f.kind(r1) else {
                panic!()
            };
            let RouterKind::Converter { w: w2, .. } = f.kind(r2) else {
                panic!()
            };
            assert_ne!(w1, w2, "global link within one W-group");
            pairs.insert((w1.min(w2), w1.max(w2)));
        }
        // 3 W-groups: all 3 unordered pairs must exist.
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn mesh_width_applies_to_mesh_only() {
        let p = SlParams::radix16().with_wgroups(1).with_mesh_width(2);
        let f = SwitchlessFabric::build(&p);
        for ch in &f.net.channels {
            match ch.class {
                ChannelClass::OnChip => assert_eq!(ch.width, 2),
                ChannelClass::LongReachLocal | ChannelClass::LongReachGlobal => {
                    assert_eq!(ch.width, 1)
                }
                _ => {}
            }
        }
        // Core↔converter and chain links stay width 1; mesh inter-chiplet
        // links are width 2. Both are ShortReach, so check by endpoint kind.
        for ch in &f.net.channels {
            if ch.class != ChannelClass::ShortReach {
                continue;
            }
            let (Terminus::Router { router: r1, .. }, Terminus::Router { router: r2, .. }) =
                (ch.src, ch.dst)
            else {
                continue;
            };
            let both_cores = matches!(f.kind(r1), RouterKind::Core { .. })
                && matches!(f.kind(r2), RouterKind::Core { .. });
            if both_cores {
                assert_eq!(ch.width, 2);
            } else {
                assert_eq!(ch.width, 1);
            }
        }
    }

    #[test]
    fn latencies_match_table_iv() {
        let f = SwitchlessFabric::build(&tiny());
        for ch in &f.net.channels {
            match ch.class {
                ChannelClass::LongReachLocal | ChannelClass::LongReachGlobal => {
                    assert_eq!(ch.latency, 8)
                }
                _ => assert_eq!(ch.latency, 1),
            }
        }
    }
}
