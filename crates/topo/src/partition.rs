//! Locality-aware BSP partition assignment.
//!
//! The engine's legacy scheme slices routers into contiguous id blocks
//! (`part_of(r) = r·P / N`), which ignores wiring: on a wafer mesh the block
//! boundary crosses every column, and on the switch-less fabric it can land
//! mid-C-group, splitting a dense 4×4 core mesh plus its converter chain
//! across two partitions. Every channel that crosses a partition boundary
//! becomes barrier traffic, so the partitioner's job is to minimize *cut
//! channels* subject to a router-count balance bound.
//!
//! [`locality_partition`] is a deterministic multi-candidate scheme built
//! from two primitives:
//!
//! * **Recursive bisection by greedy growth** — the node set is split in
//!   half (by target partition count) recursively. Each split grows one
//!   side from the lowest-id node, always absorbing the candidate with
//!   the best `internal − external` connectivity (ties broken by lowest
//!   id). Leaf splits additionally slide the boundary within the balance
//!   slack to the prefix with the smallest cut, which is what lets an
//!   odd-sized mesh settle on a straight-line frontier instead of a
//!   jagged one.
//! * **KL/FM-style refinement** — repeated deterministic passes move
//!   boundary nodes to a neighboring partition whenever that strictly
//!   reduces the cut and both partitions stay within the balance slack.
//!
//! Three candidates are produced and the lowest-cut one wins: (1) fine
//! bisection + refinement at router granularity; (2) a **multi-level**
//! pass that contracts on-chip/short-reach components into clusters —
//! on the switch-less fabric, exactly the C-groups — and bisects/refines
//! the coarse graph so whole clusters move as units (single-router moves
//! can never trade a 28-router C-group between partitions), then expands
//! and polishes; (3) the legacy contiguous blocks, refined — which
//! guarantees the result is never worse than blocks. The output is a
//! pure function of `(net, parts, faults)` — the determinism contract
//! the engine's bit-identical partition matrix relies on.
//!
//! **Balance contract:** with `L` live routers, `P` partitions and slack
//! `s = max(1, L/(8P))`, every partition holds between `⌊L/P⌋ − s` and
//! `⌈L/P⌉ + s` live routers (non-leaf splits are exact, leaf splits and
//! refinement may shift up to `s`). Dead routers are inert (all of their
//! channels are sealed) and are attached to the partition of an assigned
//! neighbor afterward so the map stays total.

use wsdf_sim::{FaultMap, NetworkDesc};

/// Quality summary of a partition assignment over a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of partitions in the assignment.
    pub parts: usize,
    /// Live router→router channels whose endpoints lie in different
    /// partitions (directed count — what the barrier exchange pays for).
    pub cut_channels: usize,
    /// Live routers in the most populated partition.
    pub max_routers: usize,
    /// Live routers in the least populated partition.
    pub min_routers: usize,
}

/// The engine's legacy contiguous-block assignment: router `r` belongs to
/// partition `r·parts / num_routers`. Kept as the `WSDF_PARTITIONER=blocks`
/// escape hatch and as the baseline the locality partitioner must beat.
pub fn contiguous_blocks(net: &NetworkDesc, parts: usize) -> Vec<u32> {
    let nr = net.num_routers();
    let p = parts.clamp(1, nr.max(1));
    (0..nr).map(|r| (r * p / nr.max(1)) as u32).collect()
}

/// True if channel `c` is live and connects two live routers.
fn live_rr_channel(net: &NetworkDesc, c: usize, faults: Option<&FaultMap>) -> Option<(u32, u32)> {
    let ch = &net.channels[c];
    let (a, b) = (ch.src.router()?, ch.dst.router()?);
    if let Some(f) = faults {
        if f.channel_dead(c as u32) || f.router_dead(a) || f.router_dead(b) {
            return None;
        }
    }
    Some((a, b))
}

/// Undirected router adjacency weighted by the number of live directed
/// channels between each pair. Sorted by neighbor id within each row.
fn live_adjacency(net: &NetworkDesc, faults: Option<&FaultMap>) -> Vec<Vec<(u32, u32)>> {
    let nr = net.num_routers();
    let mut pairs: std::collections::BTreeMap<(u32, u32), u32> = std::collections::BTreeMap::new();
    for c in 0..net.channels.len() {
        if let Some((a, b)) = live_rr_channel(net, c, faults) {
            if a != b {
                let key = (a.min(b), a.max(b));
                *pairs.entry(key).or_insert(0) += 1;
            }
        }
    }
    let mut adj = vec![Vec::new(); nr];
    for (&(a, b), &w) in &pairs {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    adj
}

/// Count directed live router→router channels crossing partition boundaries
/// under `assign`. This is exactly the per-barrier boundary-message surface
/// of the BSP engine (endpoint channels never cross: an endpoint always
/// lives with its attach router).
pub fn cut_channels(net: &NetworkDesc, assign: &[u32], faults: Option<&FaultMap>) -> usize {
    let mut cut = 0;
    for c in 0..net.channels.len() {
        if let Some((a, b)) = live_rr_channel(net, c, faults) {
            if assign[a as usize] != assign[b as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// Compute [`PartitionStats`] for an assignment.
pub fn partition_stats(
    net: &NetworkDesc,
    assign: &[u32],
    faults: Option<&FaultMap>,
) -> PartitionStats {
    let parts = assign.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut sizes = vec![0usize; parts];
    for (r, &p) in assign.iter().enumerate() {
        let dead = faults.is_some_and(|f| f.router_dead(r as u32));
        if !dead {
            sizes[p as usize] += 1;
        }
    }
    PartitionStats {
        parts,
        cut_channels: cut_channels(net, assign, faults),
        max_routers: sizes.iter().copied().max().unwrap_or(0),
        min_routers: sizes.iter().copied().min().unwrap_or(0),
    }
}

/// One bisection step: split `set` into a grown side of roughly `target`
/// routers and the remainder. The grown side starts at the lowest id in
/// the set and repeatedly absorbs the candidate with the highest
/// `internal − external` connectivity (ties broken by lowest id; stale
/// heap entries skipped by score recheck; disconnected components reseed
/// from the lowest untaken id). With `flex > 0` the split point slides
/// within `target ± flex` to the absorption prefix with the smallest cut
/// (ties: closest to `target`, then shortest prefix).
fn bisect(
    adj: &[Vec<(u32, u32)>],
    set: &[u32],
    target: usize,
    flex: usize,
) -> (Vec<u32>, Vec<u32>) {
    let nr = adj.len();
    let n = set.len();
    let hi_k = (target + flex).min(n.saturating_sub(1)).max(1);
    let lo_k = target.saturating_sub(flex).clamp(1, hi_k);
    let mut in_set = vec![false; nr];
    for &r in set {
        in_set[r as usize] = true;
    }
    // deg = total live weight within the set; inw = weight into the grown
    // side so far. Score 2·inw − deg == internal − external connectivity.
    let mut deg = vec![0i64; nr];
    for &r in set {
        deg[r as usize] = adj[r as usize]
            .iter()
            .filter(|&&(nb, _)| in_set[nb as usize])
            .map(|&(_, w)| w as i64)
            .sum();
    }
    let mut inw = vec![0i64; nr];
    let mut taken = vec![false; nr];
    let mut heap: std::collections::BinaryHeap<(i64, std::cmp::Reverse<u32>)> =
        std::collections::BinaryHeap::new();
    let mut order: Vec<u32> = Vec::with_capacity(hi_k);
    let mut cuts: Vec<i64> = Vec::with_capacity(hi_k);
    let mut cut = 0i64;
    while order.len() < hi_k {
        let r = loop {
            match heap.pop() {
                Some((g, std::cmp::Reverse(r))) => {
                    let r = r as usize;
                    if !taken[r] && 2 * inw[r] - deg[r] == g {
                        break Some(r as u32);
                    }
                }
                None => break set.iter().copied().find(|&r| !taken[r as usize]),
            }
        };
        let Some(r) = r else { break };
        taken[r as usize] = true;
        cut += deg[r as usize] - 2 * inw[r as usize];
        order.push(r);
        cuts.push(cut);
        for &(nb, w) in &adj[r as usize] {
            let nb = nb as usize;
            if in_set[nb] && !taken[nb] {
                inw[nb] += w as i64;
                heap.push((2 * inw[nb] - deg[nb], std::cmp::Reverse(nb as u32)));
            }
        }
    }
    let kmax = order.len();
    let mut best_k = lo_k.min(kmax);
    for k in lo_k.min(kmax)..=kmax {
        let better = cuts[k - 1] < cuts[best_k - 1]
            || (cuts[k - 1] == cuts[best_k - 1] && k.abs_diff(target) < best_k.abs_diff(target));
        if better {
            best_k = k;
        }
    }
    let mut in_left = vec![false; nr];
    for &r in &order[..best_k] {
        in_left[r as usize] = true;
    }
    let left = order[..best_k].to_vec();
    let right: Vec<u32> = set
        .iter()
        .copied()
        .filter(|&r| !in_left[r as usize])
        .collect();
    (left, right)
}

/// Recursive-bisection assignment over the live adjacency. Returns a
/// partial assignment covering exactly the live routers (`u32::MAX`
/// elsewhere). Non-leaf splits are exact (the side takes precisely the sum
/// of its regions' even-split targets); leaf splits pass `slack` to
/// [`bisect`] so a straight frontier within the balance bound can beat a
/// jagged exact one.
fn partition_by_bisection(
    adj: &[Vec<(u32, u32)>],
    live: &[u32],
    parts: usize,
    slack: usize,
) -> Vec<u32> {
    let nr = adj.len();
    let mut assign = vec![u32::MAX; nr];
    let n = live.len();
    let base = n / parts;
    let extra = n % parts;
    let sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < extra)).collect();
    let mut stack: Vec<(Vec<u32>, usize, usize)> = vec![(live.to_vec(), 0, parts)];
    while let Some((set, first, k)) = stack.pop() {
        if k == 1 {
            for r in set {
                assign[r as usize] = first as u32;
            }
            continue;
        }
        let lk = k.div_ceil(2);
        let rk = k - lk;
        let target: usize = sizes[first..first + lk].iter().sum();
        let flex = if lk == 1 && rk == 1 { slack } else { 0 };
        let (left, right) = bisect(adj, &set, target, flex);
        stack.push((left, first, lk));
        stack.push((right, first + lk, rk));
    }
    assign
}

/// Deterministic KL/FM-style boundary refinement: repeatedly move a live
/// boundary node to the adjacent partition with the highest strictly
/// positive cut reduction, while both partitions stay within
/// `[lo, hi] = [⌊n/P⌋ − slack, ⌈n/P⌉ + slack]` (node counts over `live`).
/// Runs at router granularity for the fine pass and at cluster granularity
/// for the coarse pass. Mutates `assign` in place.
fn refine(adj: &[Vec<(u32, u32)>], live: &[u32], parts: usize, assign: &mut [u32], slack: usize) {
    if parts < 2 {
        return;
    }
    let n = live.len();
    let lo = (n / parts).saturating_sub(slack).max(1);
    let hi = n.div_ceil(parts) + slack;
    let mut sizes = vec![0usize; parts];
    for &r in live {
        sizes[assign[r as usize] as usize] += 1;
    }
    let mut conn = vec![0u32; parts];
    for _pass in 0..16 {
        let mut moved = 0usize;
        for &r in live {
            let a = assign[r as usize] as usize;
            if sizes[a] <= lo {
                continue;
            }
            // Connectivity of r to each adjacent partition.
            let mut touched: Vec<usize> = Vec::new();
            for &(nb, w) in &adj[r as usize] {
                let q = assign[nb as usize];
                if q != u32::MAX {
                    if conn[q as usize] == 0 {
                        touched.push(q as usize);
                    }
                    conn[q as usize] += w;
                }
            }
            // Best strictly improving admissible destination; ties broken
            // by lowest partition id via the ascending scan.
            let mut best: Option<(u32, usize)> = None;
            for &q in &touched {
                if q != a && sizes[q] < hi && conn[q] > conn[a] {
                    let better = match best {
                        Some((bg, _)) => conn[q] > bg,
                        None => true,
                    };
                    if better {
                        best = Some((conn[q], q));
                    }
                }
            }
            if let Some((_, q)) = best {
                assign[r as usize] = q as u32;
                sizes[a] -= 1;
                sizes[q] += 1;
                moved += 1;
            }
            for &q in &touched {
                conn[q] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Contract live routers along live on-chip/short-reach channels into
/// clusters (connected components). On the switch-less fabric this
/// recovers exactly the C-groups (cores + their converter ring); long-reach
/// locals and globals stay inter-cluster. Returns the cluster id per
/// router (`u32::MAX` for dead routers) and the cluster count; ids are
/// ordered by each cluster's lowest router id, so the result is
/// deterministic. Returns `None` when the network has no router-router
/// channels at all.
fn sr_clusters(
    net: &NetworkDesc,
    faults: Option<&FaultMap>,
    live: &[u32],
) -> Option<(Vec<u32>, u32)> {
    let nr = net.num_routers();
    let mut sr_adj: Vec<Vec<u32>> = vec![Vec::new(); nr];
    let mut any = false;
    for c in 0..net.channels.len() {
        if let Some((a, b)) = live_rr_channel(net, c, faults) {
            any = true;
            let short = matches!(
                net.channels[c].class,
                wsdf_sim::ChannelClass::OnChip | wsdf_sim::ChannelClass::ShortReach
            );
            if short && a != b {
                sr_adj[a as usize].push(b);
                sr_adj[b as usize].push(a);
            }
        }
    }
    if !any {
        return None;
    }
    let mut cluster_of = vec![u32::MAX; nr];
    let mut is_live = vec![false; nr];
    for &r in live {
        is_live[r as usize] = true;
    }
    let mut nc = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for &seed in live {
        if cluster_of[seed as usize] != u32::MAX {
            continue;
        }
        cluster_of[seed as usize] = nc;
        queue.push_back(seed);
        while let Some(r) = queue.pop_front() {
            for &nb in &sr_adj[r as usize] {
                if is_live[nb as usize] && cluster_of[nb as usize] == u32::MAX {
                    cluster_of[nb as usize] = nc;
                    queue.push_back(nb);
                }
            }
        }
        nc += 1;
    }
    Some((cluster_of, nc))
}

/// Coarse adjacency between clusters: weight = number of live directed
/// router-router channels between the two clusters.
fn cluster_adjacency(
    net: &NetworkDesc,
    faults: Option<&FaultMap>,
    cluster_of: &[u32],
    nc: u32,
) -> Vec<Vec<(u32, u32)>> {
    let mut pairs: std::collections::BTreeMap<(u32, u32), u32> = std::collections::BTreeMap::new();
    for c in 0..net.channels.len() {
        if let Some((a, b)) = live_rr_channel(net, c, faults) {
            let (ca, cb) = (cluster_of[a as usize], cluster_of[b as usize]);
            if ca != cb && ca != u32::MAX && cb != u32::MAX {
                *pairs.entry((ca.min(cb), ca.max(cb))).or_insert(0) += 1;
            }
        }
    }
    let mut adj = vec![Vec::new(); nc as usize];
    for (&(a, b), &w) in &pairs {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    adj
}

/// Cut weight (undirected channel count) of a partial assignment, counting
/// only pairs where both sides are assigned.
fn cut_weight(adj: &[Vec<(u32, u32)>], assign: &[u32]) -> u64 {
    let mut cut = 0u64;
    for (r, row) in adj.iter().enumerate() {
        for &(nb, w) in row {
            if nb as usize > r {
                let (pa, pb) = (assign[r], assign[nb as usize]);
                if pa != u32::MAX && pb != u32::MAX && pa != pb {
                    cut += w as u64;
                }
            }
        }
    }
    cut
}

/// Topology-locality-aware partition assignment: `assign[r]` is the
/// partition of router `r`, with partitions `0..P` where
/// `P = parts.clamp(1, live_routers)`. Deterministic for a given
/// `(net, parts, faults)` triple, never worse (in cut channels) than
/// [`contiguous_blocks`], and every partition is non-empty. See the module
/// docs for the algorithm and balance contract.
pub fn locality_partition(net: &NetworkDesc, parts: usize, faults: Option<&FaultMap>) -> Vec<u32> {
    let nr = net.num_routers();
    if nr == 0 {
        return Vec::new();
    }
    let live: Vec<u32> = (0..nr as u32)
        .filter(|&r| !faults.is_some_and(|f| f.router_dead(r)))
        .collect();
    let mut is_live = vec![false; nr];
    for &r in &live {
        is_live[r as usize] = true;
    }
    let p = parts.clamp(1, live.len().max(1));
    let adj = live_adjacency(net, faults);
    let n = live.len();
    let slack = (n / (8 * p)).max(1);
    let lo = (n / p).saturating_sub(slack).max(1);
    let hi = n.div_ceil(p) + slack;
    let balanced = |assign: &[u32]| {
        let mut sizes = vec![0usize; p];
        for &r in &live {
            sizes[assign[r as usize] as usize] += 1;
        }
        sizes.iter().all(|&sz| sz >= lo && sz <= hi)
    };

    // Candidate 1: recursive bisection + refinement at router granularity.
    let mut grown = partition_by_bisection(&adj, &live, p, slack);
    refine(&adj, &live, p, &mut grown, slack);
    let mut best = grown;
    // Candidate 2: multi-level — contract short-reach components (the
    // C-group clusters of the switch-less fabric), bisect and refine the
    // coarse graph so whole clusters move as units (single-router FM
    // cannot trade a 28-router C-group), then expand and polish. Skipped
    // when contraction gives no freedom (a mesh is one big cluster) or
    // the expansion breaks the balance contract (uneven clusters).
    if let Some((cluster_of, nc)) = sr_clusters(net, faults, &live) {
        if nc as usize >= p && nc > 1 && (nc as usize) < n {
            let coarse_adj = cluster_adjacency(net, faults, &cluster_of, nc);
            let coarse_live: Vec<u32> = (0..nc).collect();
            // Slack in cluster units, floored — never exceeds the router
            // contract when clusters are even; uneven expansions are
            // caught by the balance check below.
            let cs = n / nc as usize;
            let slack_c = slack / cs.max(1);
            let mut coarse = partition_by_bisection(&coarse_adj, &coarse_live, p, slack_c);
            refine(&coarse_adj, &coarse_live, p, &mut coarse, slack_c);
            let mut expanded = vec![u32::MAX; nr];
            for &r in &live {
                expanded[r as usize] = coarse[cluster_of[r as usize] as usize];
            }
            refine(&adj, &live, p, &mut expanded, slack);
            if balanced(&expanded) && cut_weight(&adj, &expanded) < cut_weight(&adj, &best) {
                best = expanded;
            }
        }
    }
    // Candidate 3: the legacy blocks, also refined — guarantees the result
    // is never worse than blocks, and turns any misaligned block boundary
    // into a strict win.
    let mut blocks: Vec<u32> = contiguous_blocks(net, p);
    for r in 0..nr {
        if !is_live[r] {
            blocks[r] = u32::MAX;
        }
    }
    // Blocks over *all* routers can leave a partition without live routers
    // under faults; only use the candidate when every partition kept one.
    let blocks_valid = {
        let mut seen = vec![false; p];
        for &r in &live {
            seen[blocks[r as usize] as usize] = true;
        }
        seen.iter().all(|&s| s)
    };
    if blocks_valid {
        refine(&adj, &live, p, &mut blocks, slack);
        if cut_weight(&adj, &blocks) < cut_weight(&adj, &best) {
            best = blocks;
        }
    }
    // Attach dead routers to an assigned neighbor (label propagation over
    // the full channel list, sealed links included), falling back to
    // partition 0 for fully isolated dead clusters.
    loop {
        let mut progress = false;
        for c in 0..net.channels.len() {
            let ch = &net.channels[c];
            if let (Some(a), Some(b)) = (ch.src.router(), ch.dst.router()) {
                let (pa, pb) = (best[a as usize], best[b as usize]);
                if pa != u32::MAX && pb == u32::MAX {
                    best[b as usize] = pa;
                    progress = true;
                } else if pb != u32::MAX && pa == u32::MAX {
                    best[a as usize] = pb;
                    progress = true;
                }
            }
        }
        if !progress {
            break;
        }
    }
    for v in best.iter_mut() {
        if *v == u32::MAX {
            *v = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::single_mesh;
    use crate::switchless::SwitchlessFabric;
    use crate::SlParams;

    fn mesh(m: u32) -> NetworkDesc {
        single_mesh(m, m, 1).net
    }

    #[test]
    fn blocks_matches_engine_formula() {
        let net = mesh(4);
        let a = contiguous_blocks(&net, 4);
        for (r, &p) in a.iter().enumerate() {
            assert_eq!(p, (r * 4 / 16) as u32);
        }
    }

    #[test]
    fn locality_beats_blocks_on_mesh_quads() {
        // 4×4 mesh at P=4: blocks are row strips (3 boundaries × 4 links ×
        // 2 directions = 24 cut channels); quadrants cut 16.
        let net = mesh(4);
        let blocks = contiguous_blocks(&net, 4);
        let loc = locality_partition(&net, 4, None);
        let cb = cut_channels(&net, &blocks, None);
        let cl = cut_channels(&net, &loc, None);
        assert_eq!(cb, 24);
        assert!(cl < cb, "locality {cl} !< blocks {cb}");
        assert_eq!(cl, 16);
    }

    #[test]
    fn locality_beats_blocks_on_odd_mesh() {
        // 7×7: blocks boundaries land mid-row (jagged); the leaf-split
        // window lets the bisection settle on straight frontiers instead.
        let net = mesh(7);
        for p in [2usize, 4, 8] {
            let cb = cut_channels(&net, &contiguous_blocks(&net, p), None);
            let cl = cut_channels(&net, &locality_partition(&net, p, None), None);
            assert!(cl < cb, "P={p}: locality {cl} !< blocks {cb}");
        }
    }

    #[test]
    fn multilevel_beats_blocks_on_switchless() {
        // With 5 W-groups, every blocks boundary is C-group aligned, and
        // at C-group granularity the local (all-to-all) cut is already
        // optimal — wins must come from moving whole C-groups to exploit
        // palmtree global-link placement and the balance window. That is
        // exactly what the coarse (cluster-level) candidate does.
        let pp = SlParams::radix16().with_wgroups(5);
        let net = SwitchlessFabric::build(&pp).net;
        for p in [2usize, 4, 8] {
            let cb = cut_channels(&net, &contiguous_blocks(&net, p), None);
            let cl = cut_channels(&net, &locality_partition(&net, p, None), None);
            assert!(cl < cb, "P={p}: locality {cl} !< blocks {cb}");
        }
    }

    #[test]
    fn locality_never_worse_and_balanced() {
        for m in [4u32, 5, 6, 8] {
            let net = mesh(m);
            let n = (m * m) as usize;
            for p in [1usize, 2, 3, 4, 7, 8] {
                let loc = locality_partition(&net, p, None);
                let blocks = contiguous_blocks(&net, p);
                let s = partition_stats(&net, &loc, None);
                let pe = p.clamp(1, n);
                assert_eq!(s.parts, pe);
                assert!(
                    s.cut_channels <= cut_channels(&net, &blocks, None),
                    "mesh {m} p {p}"
                );
                let slack = (n / (8 * pe)).max(1);
                assert!(s.min_routers >= (n / pe).saturating_sub(slack).max(1));
                assert!(s.max_routers <= n.div_ceil(pe) + slack);
            }
        }
    }

    #[test]
    fn deterministic_and_total() {
        let p = SlParams::radix16().with_wgroups(1);
        let net = SwitchlessFabric::build(&p).net;
        let a = locality_partition(&net, 4, None);
        let b = locality_partition(&net, 4, None);
        assert_eq!(a, b);
        assert_eq!(a.len(), net.num_routers());
        assert!(a.iter().all(|&x| x < 4));
    }

    #[test]
    fn single_partition_is_all_zero() {
        let net = mesh(4);
        assert!(locality_partition(&net, 1, None).iter().all(|&p| p == 0));
    }

    #[test]
    fn faulted_map_stays_total_and_nonempty() {
        let net = mesh(6);
        let mut f = wsdf_sim::FaultMap::pristine(&net);
        // Kill a corner cluster.
        for r in [0u32, 1, 6, 7] {
            f.kill_router(r);
        }
        f.seal(&net);
        let a = locality_partition(&net, 4, Some(&f));
        assert_eq!(a.len(), 36);
        let s = partition_stats(&net, &a, Some(&f));
        assert_eq!(s.parts, 4);
        assert!(s.min_routers >= 1);
        // Dead routers got some partition too.
        assert!(a.iter().all(|&x| x < 4));
    }
}
