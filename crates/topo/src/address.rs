//! Configuration parameters and address arithmetic.
//!
//! All layout is regular, so every lookup (router id of a core, converter of
//! a ring position, endpoint of a node, peer of a local/global port) is pure
//! arithmetic — no tables. This is what lets the routing oracles stay
//! allocation-free on the hot path.
//!
//! Both parameter structs round-trip through JSON (`to_json`/`from_json`,
//! built on `wsdf_sim::json`) so scenario files can bind a topology either
//! by paper preset (`"preset": "radix16"`) or field by field.

use wsdf_sim::json::{self, read, Value};

/// Perimeter ring position of an m×m mesh, clockwise from the top-left
/// corner: along the top row (+x), down the right column (−y), along the
/// bottom row (−x), up the left column (+y).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingPos(pub u16);

/// Parameters of a switch-less Dragonfly-on-wafers system (Sec. III-A).
///
/// The external port count is fixed at the perimeter size `k = 4m − 4`,
/// which is exactly the paper's configurations (m=4 → k=12 "radix-16
/// equivalent", m=7 → k=24 "radix-32 equivalent").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlParams {
    /// C-groups per wafer (`a`).
    pub a: u32,
    /// Wafers per W-group (`b`).
    pub b: u32,
    /// Mesh side of a C-group in cores (`m`).
    pub m: u32,
    /// Chiplet side in cores (for chip ids and on-chip/short-reach energy
    /// classing). Must divide `m`.
    pub chiplet: u32,
    /// Instantiated W-groups (1 ..= `max_wgroups()`).
    pub wgroups: u32,
    /// Intra-C-group (mesh) link width in flits/cycle: 1 = paper baseline,
    /// 2 = "2B", 4 = "4B".
    pub mesh_width: u8,
    /// Nodes per chip for per-chip rate normalization; defaults to
    /// `chiplet²`. Overridable for configs whose nominal chip count does
    /// not tile the mesh (the paper's radix-32 case: 49 cores / 8 chips).
    pub nodes_per_chip: f64,
}

impl SlParams {
    /// The paper's radix-16-equivalent configuration (Sec. V-A4):
    /// 4×4-core C-groups (2×2 chiplets of 2×2 cores), 12 external ports
    /// (7 local + 5 global), 8 C-groups per W-group, 41 W-groups,
    /// 1312 chips / 5248 nodes at full scale.
    pub fn radix16() -> Self {
        let mut p = SlParams {
            a: 4,
            b: 2,
            m: 4,
            chiplet: 2,
            wgroups: 0,
            mesh_width: 1,
            nodes_per_chip: 4.0,
        };
        p.wgroups = p.max_wgroups();
        p
    }

    /// The paper's radix-32-equivalent configuration: 7×7-core C-groups,
    /// 24 external ports (15 local + 9 global), 16 C-groups per W-group,
    /// 145 W-groups, 18560 chips at full scale. The nominal 8 chips per
    /// C-group do not tile 49 cores, so `nodes_per_chip = 49/8` is used
    /// purely for rate normalization (see DESIGN.md).
    pub fn radix32() -> Self {
        let mut p = SlParams {
            a: 4,
            b: 4,
            m: 7,
            chiplet: 7,
            wgroups: 0,
            mesh_width: 1,
            nodes_per_chip: 49.0 / 8.0,
        };
        p.wgroups = p.max_wgroups();
        p
    }

    /// Same configuration with a different instantiated W-group count.
    pub fn with_wgroups(mut self, wgroups: u32) -> Self {
        self.wgroups = wgroups;
        self
    }

    /// Same configuration with a different intra-C-group link width
    /// (1 = baseline, 2 = "2B", 4 = "4B").
    pub fn with_mesh_width(mut self, w: u8) -> Self {
        self.mesh_width = w;
        self
    }

    /// C-groups per W-group (`ab`).
    pub fn ab(&self) -> u32 {
        self.a * self.b
    }

    /// External ports per C-group (`k = 4m − 4`, the mesh perimeter).
    pub fn k(&self) -> u32 {
        4 * self.m - 4
    }

    /// Global ports per C-group (`h = k − ab + 1`).
    pub fn h(&self) -> u32 {
        self.k() - self.ab() + 1
    }

    /// Maximum W-groups (`g = abh + 1`).
    pub fn max_wgroups(&self) -> u32 {
        self.ab() * self.h() + 1
    }

    /// Cores (= endpoints) per C-group.
    pub fn cores_per_cgroup(&self) -> u32 {
        self.m * self.m
    }

    /// Routers per C-group (cores + converters).
    pub fn routers_per_cgroup(&self) -> u32 {
        self.cores_per_cgroup() + self.k()
    }

    /// Total C-groups instantiated.
    pub fn num_cgroups(&self) -> u32 {
        self.wgroups * self.ab()
    }

    /// Total endpoints instantiated.
    pub fn num_endpoints(&self) -> u32 {
        self.num_cgroups() * self.cores_per_cgroup()
    }

    /// Total routers instantiated.
    pub fn num_routers(&self) -> u32 {
        self.num_cgroups() * self.routers_per_cgroup()
    }

    /// Chips per C-group (nominal, for reporting).
    pub fn chips_per_cgroup(&self) -> f64 {
        self.cores_per_cgroup() as f64 / self.nodes_per_chip
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.m < 2 {
            return Err("mesh side m must be >= 2".into());
        }
        if self.a == 0 || self.b == 0 {
            return Err("a and b must be >= 1".into());
        }
        if self.ab() > self.k() {
            return Err(format!(
                "ab = {} exceeds external ports k = {} (h would be < 1)",
                self.ab(),
                self.k()
            ));
        }
        if self.wgroups == 0 || self.wgroups > self.max_wgroups() {
            return Err(format!(
                "wgroups = {} out of range 1..={}",
                self.wgroups,
                self.max_wgroups()
            ));
        }
        if self.chiplet == 0 || !self.m.is_multiple_of(self.chiplet) {
            return Err(format!(
                "chiplet side {} must divide mesh side {}",
                self.chiplet, self.m
            ));
        }
        if self.nodes_per_chip.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("nodes_per_chip must be positive".into());
        }
        if !matches!(self.mesh_width, 1 | 2 | 4) {
            return Err("mesh_width must be 1, 2 or 4".into());
        }
        Ok(())
    }

    /// Canonical one-line JSON form: every field explicit, preset-free, in
    /// declaration order. `from_json(to_json(p)) == p` for any valid `p`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"a\": {}, \"b\": {}, \"m\": {}, \"chiplet\": {}, \"wgroups\": {}, \
             \"mesh_width\": {}, \"nodes_per_chip\": {}}}",
            self.a,
            self.b,
            self.m,
            self.chiplet,
            self.wgroups,
            self.mesh_width,
            json::num(self.nodes_per_chip)
        )
    }

    /// Parse switch-less parameters from a JSON object at `path` (for
    /// error messages). Accepts an optional `"preset"` (`"radix16"` /
    /// `"radix32"`) as the starting point, with any individual field as an
    /// override; without a preset, `a`, `b`, `m` and `chiplet` are
    /// required (`wgroups` defaults to the maximum, `mesh_width` to 1,
    /// `nodes_per_chip` to `chiplet²`). The result is validated.
    pub fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(
            v,
            path,
            &[
                "preset",
                "a",
                "b",
                "m",
                "chiplet",
                "wgroups",
                "mesh_width",
                "nodes_per_chip",
            ],
        )?;
        let preset = match v.get("preset") {
            None => None,
            Some(p) => match p.as_str() {
                Some("radix16") => Some(SlParams::radix16()),
                Some("radix32") => Some(SlParams::radix32()),
                _ => {
                    return Err(format!(
                        "{path}.preset: expected \"radix16\" or \"radix32\""
                    ))
                }
            },
        };
        let u32f = |key: &str, dflt: Option<u32>| -> Result<u32, String> {
            match (v.get(key), dflt) {
                (None, Some(d)) => Ok(d),
                (None, None) => Err(format!("{path}.{key}: missing required key")),
                (Some(_), _) => {
                    let x = read::u64_field(v, path, key)?;
                    u32::try_from(x)
                        .map_err(|_| format!("{path}.{key}: expected non-negative integer"))
                }
            }
        };
        let mut p = SlParams {
            a: u32f("a", preset.map(|p| p.a))?,
            b: u32f("b", preset.map(|p| p.b))?,
            m: u32f("m", preset.map(|p| p.m))?,
            chiplet: u32f("chiplet", preset.map(|p| p.chiplet))?,
            wgroups: u32f("wgroups", preset.map(|p| p.wgroups).or(Some(0)))?,
            mesh_width: {
                let w = u32f(
                    "mesh_width",
                    preset.map(|p| p.mesh_width as u32).or(Some(1)),
                )?;
                u8::try_from(w).map_err(|_| format!("{path}.mesh_width: expected 1, 2 or 4"))?
            },
            nodes_per_chip: 0.0,
        };
        p.nodes_per_chip = match read::opt_f64_field(v, path, "nodes_per_chip")? {
            Some(x) => x,
            None => preset
                .map(|p| p.nodes_per_chip)
                .unwrap_or((p.chiplet * p.chiplet) as f64),
        };
        if p.wgroups == 0 {
            p.wgroups = p.max_wgroups();
        }
        p.validate().map_err(|e| format!("{path}: {e}"))?;
        Ok(p)
    }

    // ---- address arithmetic -------------------------------------------

    /// Global C-group index of (w, c).
    pub fn cgroup_index(&self, w: u32, c: u32) -> u32 {
        w * self.ab() + c
    }

    /// Router id of core (x, y) in C-group (w, c).
    pub fn core_router(&self, w: u32, c: u32, x: u32, y: u32) -> u32 {
        self.cgroup_index(w, c) * self.routers_per_cgroup() + y * self.m + x
    }

    /// Router id of the converter with external-port `label` in (w, c).
    pub fn converter_router(&self, w: u32, c: u32, label: u32) -> u32 {
        self.cgroup_index(w, c) * self.routers_per_cgroup() + self.m * self.m + label
    }

    /// Inverse of the router-id mapping: (w, c, kind-local info).
    pub fn router_location(&self, router: u32) -> (u32, u32, u32) {
        let per = self.routers_per_cgroup();
        let cg = router / per;
        let local = router % per;
        (cg / self.ab(), cg % self.ab(), local)
    }

    /// True if the C-group-local router index `local` is a core.
    pub fn local_is_core(&self, local: u32) -> bool {
        local < self.m * self.m
    }

    /// Endpoint id of the core (x, y) in (w, c).
    pub fn endpoint_of(&self, w: u32, c: u32, x: u32, y: u32) -> u32 {
        self.cgroup_index(w, c) * self.cores_per_cgroup() + y * self.m + x
    }

    /// (w, c, x, y) of an endpoint id.
    pub fn endpoint_location(&self, ep: u32) -> (u32, u32, u32, u32) {
        let per = self.cores_per_cgroup();
        let cg = ep / per;
        let local = ep % per;
        (
            cg / self.ab(),
            cg % self.ab(),
            local % self.m,
            local / self.m,
        )
    }

    /// W-group of an endpoint.
    pub fn wgroup_of_endpoint(&self, ep: u32) -> u32 {
        ep / (self.ab() * self.cores_per_cgroup())
    }

    /// Global chip id of an endpoint (chips tile the mesh in
    /// `chiplet`×`chiplet` blocks, row-major per C-group).
    pub fn chip_of_endpoint(&self, ep: u32) -> u32 {
        let (w, c, x, y) = self.endpoint_location(ep);
        let per_side = self.m / self.chiplet;
        let chip_in_cg = (y / self.chiplet) * per_side + (x / self.chiplet);
        self.cgroup_index(w, c) * per_side * per_side + chip_in_cg
    }

    // ---- perimeter ring -----------------------------------------------

    /// Mesh coordinates of perimeter ring position `r` (clockwise from
    /// top-left, see [`RingPos`]).
    pub fn ring_to_xy(&self, r: u32) -> (u32, u32) {
        let m = self.m;
        debug_assert!(r < self.k());
        let side = m - 1;
        if r < side {
            // top row, left→right: (r, m-1)
            (r, m - 1)
        } else if r < 2 * side {
            // right column, top→bottom: (m-1, m-1-(r-side))
            (m - 1, m - 1 - (r - side))
        } else if r < 3 * side {
            // bottom row, right→left: (m-1-(r-2side), 0)
            (m - 1 - (r - 2 * side), 0)
        } else {
            // left column, bottom→top: (0, r-3side)
            (0, r - 3 * side)
        }
    }

    /// Ring position of perimeter core (x, y), or `None` for interior cores.
    pub fn xy_to_ring(&self, x: u32, y: u32) -> Option<u32> {
        let m = self.m;
        let side = m - 1;
        if y == m - 1 && x < side {
            Some(x)
        } else if x == m - 1 && y > 0 {
            Some(side + (m - 1 - y))
        } else if y == 0 && x > 0 {
            Some(2 * side + (m - 1 - x))
        } else if x == 0 && y < side {
            Some(3 * side + y)
        } else {
            None
        }
    }

    // ---- Property-2 port labeling (Fig. 6(b)) ---------------------------

    /// External-port label of C-group `c`'s local port toward peer C-group
    /// `d` (d ≠ c): down-local peers at the lowest labels, then global
    /// ports, then up-local peers.
    pub fn local_port_label(&self, c: u32, d: u32) -> u32 {
        debug_assert_ne!(c, d);
        if d < c {
            d
        } else {
            c + self.h() + (d - c - 1)
        }
    }

    /// External-port label of C-group `c`'s `j`-th global port (0 ≤ j < h).
    pub fn global_port_label(&self, c: u32, j: u32) -> u32 {
        debug_assert!(j < self.h());
        c + j
    }

    /// Inverse: what is external port `label` of C-group `c`? Returns
    /// `PortRole::Local(peer)` or `PortRole::Global(j)`.
    pub fn port_role(&self, c: u32, label: u32) -> PortRole {
        if label < c {
            PortRole::Local(label)
        } else if label < c + self.h() {
            PortRole::Global(label - c)
        } else {
            PortRole::Local(label - self.h() + 1)
        }
    }

    // ---- global (palmtree) wiring ---------------------------------------

    /// W-group-level global port index of (c, j).
    pub fn wgroup_global_port(&self, c: u32, j: u32) -> u32 {
        c * self.h() + j
    }

    /// Peer of W-group `w`'s global port `q` under the relative (palmtree)
    /// arrangement over the *instantiated* W-group count, with trunking
    /// when ports outnumber peers. Returns `None` if the port is unpaired
    /// (count mismatch at reduced scale) or if there are no peers.
    pub fn global_peer(&self, w: u32, q: u32) -> Option<(u32, u32)> {
        let wn = self.wgroups;
        if wn <= 1 {
            return None;
        }
        let ports = self.ab() * self.h();
        debug_assert!(q < ports);
        // Peer W-group by relative offset.
        let off = q % (wn - 1); // offsets 0..wn-2 → peers w+1 .. w+wn-1
        let trunk = q / (wn - 1); // trunk index toward that peer
        let v = (w + off + 1) % wn;
        // Reverse: v's offset toward w.
        let off_back = (w + wn - v - 1) % wn; // ∈ 0..wn-2
        let q_back = off_back + trunk * (wn - 1);
        if q_back >= ports {
            return None;
        }
        Some((v, q_back))
    }
}

/// Role of an external port of a C-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// Local port toward the given peer C-group.
    Local(u32),
    /// The `j`-th global port of this C-group.
    Global(u32),
}

/// Parameters of the switch-based Dragonfly baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwParams {
    /// Terminals per switch (`t`).
    pub terminals: u32,
    /// Local ports per switch (`l`); group size is `l + 1`.
    pub locals: u32,
    /// Global ports per switch (`gl`).
    pub globals: u32,
    /// Instantiated groups (1 ..= `max_groups()`).
    pub groups: u32,
}

impl SwParams {
    /// The paper's radix-16 baseline: 4:7:5 split, 41 groups, 1312 chips.
    pub fn radix16() -> Self {
        let mut p = SwParams {
            terminals: 4,
            locals: 7,
            globals: 5,
            groups: 0,
        };
        p.groups = p.max_groups();
        p
    }

    /// The paper's radix-32 baseline: 8:15:9 split, 145 groups, 18560 chips.
    pub fn radix32() -> Self {
        let mut p = SwParams {
            terminals: 8,
            locals: 15,
            globals: 9,
            groups: 0,
        };
        p.groups = p.max_groups();
        p
    }

    /// Same configuration with a different instantiated group count.
    pub fn with_groups(mut self, groups: u32) -> Self {
        self.groups = groups;
        self
    }

    /// Switch radix.
    pub fn radix(&self) -> u32 {
        self.terminals + self.locals + self.globals
    }

    /// Switches per group (`a = l + 1`).
    pub fn switches_per_group(&self) -> u32 {
        self.locals + 1
    }

    /// Maximum groups (`a·gl + 1`).
    pub fn max_groups(&self) -> u32 {
        self.switches_per_group() * self.globals + 1
    }

    /// Endpoints (chips) instantiated.
    pub fn num_endpoints(&self) -> u32 {
        self.groups * self.switches_per_group() * self.terminals
    }

    /// Switches instantiated.
    pub fn num_switches(&self) -> u32 {
        self.groups * self.switches_per_group()
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.terminals == 0 || self.locals == 0 {
            return Err("terminals and locals must be >= 1".into());
        }
        if self.groups == 0 || self.groups > self.max_groups() {
            return Err(format!(
                "groups = {} out of range 1..={}",
                self.groups,
                self.max_groups()
            ));
        }
        if self.groups > 1 && self.globals == 0 {
            return Err("multi-group network needs global ports".into());
        }
        if self.radix() > 64 {
            return Err("radix exceeds engine port limit (64)".into());
        }
        Ok(())
    }

    /// Canonical one-line JSON form: every field explicit, preset-free.
    /// `from_json(to_json(p)) == p` for any valid `p`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"terminals\": {}, \"locals\": {}, \"globals\": {}, \"groups\": {}}}",
            self.terminals, self.locals, self.globals, self.groups
        )
    }

    /// Parse switch-based parameters from a JSON object at `path`.
    /// Mirrors [`SlParams::from_json`]: optional `"preset"` plus field
    /// overrides, or all of `terminals`/`locals`/`globals` explicit
    /// (`groups` defaults to the maximum). The result is validated.
    pub fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(
            v,
            path,
            &["preset", "terminals", "locals", "globals", "groups"],
        )?;
        let preset = match v.get("preset") {
            None => None,
            Some(p) => match p.as_str() {
                Some("radix16") => Some(SwParams::radix16()),
                Some("radix32") => Some(SwParams::radix32()),
                _ => {
                    return Err(format!(
                        "{path}.preset: expected \"radix16\" or \"radix32\""
                    ))
                }
            },
        };
        let u32f = |key: &str, dflt: Option<u32>| -> Result<u32, String> {
            match (v.get(key), dflt) {
                (None, Some(d)) => Ok(d),
                (None, None) => Err(format!("{path}.{key}: missing required key")),
                (Some(_), _) => {
                    let x = read::u64_field(v, path, key)?;
                    u32::try_from(x)
                        .map_err(|_| format!("{path}.{key}: expected non-negative integer"))
                }
            }
        };
        let mut p = SwParams {
            terminals: u32f("terminals", preset.map(|p| p.terminals))?,
            locals: u32f("locals", preset.map(|p| p.locals))?,
            globals: u32f("globals", preset.map(|p| p.globals))?,
            groups: u32f("groups", preset.map(|p| p.groups).or(Some(0)))?,
        };
        if p.groups == 0 {
            p.groups = p.max_groups();
        }
        p.validate().map_err(|e| format!("{path}: {e}"))?;
        Ok(p)
    }

    /// Switch router id of (group, idx).
    pub fn switch_router(&self, group: u32, idx: u32) -> u32 {
        group * self.switches_per_group() + idx
    }

    /// (group, idx) of a switch router id.
    pub fn switch_location(&self, router: u32) -> (u32, u32) {
        (
            router / self.switches_per_group(),
            router % self.switches_per_group(),
        )
    }

    /// Endpoint id of terminal `t` on switch (group, idx).
    pub fn endpoint_of(&self, group: u32, idx: u32, t: u32) -> u32 {
        (group * self.switches_per_group() + idx) * self.terminals + t
    }

    /// (group, switch idx, terminal) of an endpoint.
    pub fn endpoint_location(&self, ep: u32) -> (u32, u32, u32) {
        let sw = ep / self.terminals;
        let (g, i) = self.switch_location(sw);
        (g, i, ep % self.terminals)
    }

    /// Group of an endpoint.
    pub fn group_of_endpoint(&self, ep: u32) -> u32 {
        ep / (self.switches_per_group() * self.terminals)
    }

    /// Group-level global port index of switch `idx`'s `j`-th global port.
    pub fn group_global_port(&self, idx: u32, j: u32) -> u32 {
        idx * self.globals + j
    }

    /// Peer of group `g`'s global port `q` (palmtree over instantiated
    /// groups, trunked like [`SlParams::global_peer`]).
    pub fn global_peer(&self, g: u32, q: u32) -> Option<(u32, u32)> {
        let gn = self.groups;
        if gn <= 1 {
            return None;
        }
        let ports = self.switches_per_group() * self.globals;
        let off = q % (gn - 1);
        let trunk = q / (gn - 1);
        let v = (g + off + 1) % gn;
        let off_back = (g + gn - v - 1) % gn;
        let q_back = off_back + trunk * (gn - 1);
        if q_back >= ports {
            return None;
        }
        Some((v, q_back))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix16_matches_paper_scale() {
        let p = SlParams::radix16();
        p.validate().unwrap();
        assert_eq!(p.k(), 12);
        assert_eq!(p.ab(), 8);
        assert_eq!(p.h(), 5);
        assert_eq!(p.max_wgroups(), 41);
        assert_eq!(p.num_endpoints(), 5248); // 41 · 8 · 16 on-chip nodes
        assert_eq!(p.num_endpoints() / 4, 1312); // paper counts 1312 chips
    }

    #[test]
    fn radix32_matches_paper_scale() {
        let p = SlParams::radix32();
        p.validate().unwrap();
        assert_eq!(p.k(), 24);
        assert_eq!(p.ab(), 16);
        assert_eq!(p.h(), 9);
        assert_eq!(p.max_wgroups(), 145);
        // 18560 chips at 49/8 nodes per chip.
        let chips = p.num_endpoints() as f64 / p.nodes_per_chip;
        assert!((chips - 18560.0).abs() < 1e-6);
    }

    #[test]
    fn sw_baselines_match_paper_scale() {
        let p = SwParams::radix16();
        p.validate().unwrap();
        assert_eq!(p.radix(), 16);
        assert_eq!(p.max_groups(), 41);
        assert_eq!(p.num_endpoints(), 1312);
        let p = SwParams::radix32();
        assert_eq!(p.radix(), 32);
        assert_eq!(p.max_groups(), 145);
        assert_eq!(p.num_endpoints(), 18560);
    }

    #[test]
    fn ring_roundtrip() {
        for m in [2u32, 3, 4, 5, 7, 9] {
            let p = SlParams {
                m,
                chiplet: 1,
                a: 1,
                b: 1,
                wgroups: 1,
                mesh_width: 1,
                nodes_per_chip: 1.0,
            };
            let k = p.k();
            let mut seen = std::collections::HashSet::new();
            for r in 0..k {
                let (x, y) = p.ring_to_xy(r);
                assert!(x < m && y < m);
                // Perimeter check.
                assert!(x == 0 || y == 0 || x == m - 1 || y == m - 1);
                assert!(seen.insert((x, y)), "duplicate ring coord at {r}");
                assert_eq!(p.xy_to_ring(x, y), Some(r));
            }
            assert_eq!(seen.len(), k as usize);
        }
    }

    #[test]
    fn interior_has_no_ring_position() {
        let p = SlParams::radix16(); // m = 4
        assert_eq!(p.xy_to_ring(1, 1), None);
        assert_eq!(p.xy_to_ring(2, 2), None);
        assert_eq!(p.xy_to_ring(1, 2), None);
    }

    #[test]
    fn ring_consecutive_positions_are_mesh_adjacent() {
        let p = SlParams::radix32(); // m = 7
        let k = p.k();
        for r in 0..k {
            let (x1, y1) = p.ring_to_xy(r);
            let (x2, y2) = p.ring_to_xy((r + 1) % k);
            let d = x1.abs_diff(x2) + y1.abs_diff(y2);
            assert_eq!(d, 1, "ring positions {r},{} not adjacent", (r + 1) % k);
        }
    }

    #[test]
    fn property2_labels_are_a_bijection() {
        let p = SlParams::radix16();
        for c in 0..p.ab() {
            let mut used = vec![false; p.k() as usize];
            for d in 0..p.ab() {
                if d == c {
                    continue;
                }
                let l = p.local_port_label(c, d) as usize;
                assert!(!used[l], "label {l} reused");
                used[l] = true;
                assert_eq!(p.port_role(c, l as u32), PortRole::Local(d));
            }
            for j in 0..p.h() {
                let l = p.global_port_label(c, j) as usize;
                assert!(!used[l], "label {l} reused");
                used[l] = true;
                assert_eq!(p.port_role(c, l as u32), PortRole::Global(j));
            }
            assert!(used.iter().all(|&u| u), "labels not exhaustive for c={c}");
        }
    }

    #[test]
    fn property2_ordering_holds() {
        // down-local < global < up-local for every C-group.
        let p = SlParams::radix16();
        for c in 0..p.ab() {
            for d in 0..c {
                assert!(p.local_port_label(c, d) < p.global_port_label(c, 0));
            }
            for d in (c + 1)..p.ab() {
                assert!(p.local_port_label(c, d) > p.global_port_label(c, p.h() - 1));
            }
        }
    }

    #[test]
    fn palmtree_is_an_involution_full_scale() {
        let p = SlParams::radix16();
        let ports = p.ab() * p.h();
        for w in 0..p.wgroups {
            for q in 0..ports {
                let (v, qb) = p.global_peer(w, q).expect("full scale pairs all ports");
                assert_ne!(v, w, "self-link at w={w} q={q}");
                let (w2, q2) = p.global_peer(v, qb).unwrap();
                assert_eq!((w2, q2), (w, q), "palmtree not involutive");
            }
        }
    }

    #[test]
    fn palmtree_all_to_all_at_reduced_scale() {
        for wn in [2u32, 3, 5, 9] {
            let p = SlParams::radix16().with_wgroups(wn);
            for w in 0..wn {
                let mut peers = std::collections::HashSet::new();
                for q in 0..p.ab() * p.h() {
                    if let Some((v, _)) = p.global_peer(w, q) {
                        peers.insert(v);
                    }
                }
                assert_eq!(peers.len() as u32, wn - 1, "w={w} not all-to-all");
            }
        }
    }

    #[test]
    fn palmtree_reduced_scale_is_consistent() {
        // Every paired port must agree from both sides.
        let p = SlParams::radix16().with_wgroups(9);
        let ports = p.ab() * p.h();
        for w in 0..9 {
            for q in 0..ports {
                if let Some((v, qb)) = p.global_peer(w, q) {
                    assert_eq!(p.global_peer(v, qb), Some((w, q)));
                }
            }
        }
    }

    #[test]
    fn sw_palmtree_consistent() {
        let p = SwParams::radix16();
        let ports = p.switches_per_group() * p.globals;
        for g in 0..p.groups {
            for q in 0..ports {
                let (v, qb) = p.global_peer(g, q).unwrap();
                assert_eq!(p.global_peer(v, qb), Some((g, q)));
                assert_ne!(v, g);
            }
        }
    }

    #[test]
    fn endpoint_roundtrip() {
        let p = SlParams::radix16().with_wgroups(3);
        for ep in 0..p.num_endpoints() {
            let (w, c, x, y) = p.endpoint_location(ep);
            assert_eq!(p.endpoint_of(w, c, x, y), ep);
            assert_eq!(p.wgroup_of_endpoint(ep), w);
        }
    }

    #[test]
    fn chip_ids_tile_the_mesh() {
        let p = SlParams::radix16().with_wgroups(1);
        // 2×2 chiplets → 4 chips per C-group, 4 nodes each.
        let mut counts = std::collections::HashMap::new();
        for ep in 0..p.num_endpoints() {
            *counts.entry(p.chip_of_endpoint(ep)).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len() as u32, p.ab() * 4);
        assert!(counts.values().all(|&v| v == 4));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut p = SlParams::radix16();
        p.chiplet = 3; // does not divide 4
        assert!(p.validate().is_err());
        let mut p = SlParams::radix16();
        p.wgroups = p.max_wgroups() + 1;
        assert!(p.validate().is_err());
        let mut p = SlParams::radix16();
        p.a = 13;
        p.b = 1; // ab = 13 > k = 12
        assert!(p.validate().is_err());
        let mut p = SwParams::radix16();
        p.groups = 99;
        assert!(p.validate().is_err());
    }

    #[test]
    fn params_json_round_trip() {
        for p in [
            SlParams::radix16(),
            SlParams::radix32(),
            SlParams::radix16().with_wgroups(3).with_mesh_width(2),
        ] {
            let v = Value::parse(&p.to_json()).unwrap();
            assert_eq!(SlParams::from_json(&v, "t").unwrap(), p);
        }
        for p in [SwParams::radix16(), SwParams::radix32().with_groups(5)] {
            let v = Value::parse(&p.to_json()).unwrap();
            assert_eq!(SwParams::from_json(&v, "t").unwrap(), p);
        }
    }

    #[test]
    fn params_from_json_presets_and_overrides() {
        let v = Value::parse(r#"{"preset": "radix16", "wgroups": 2}"#).unwrap();
        let p = SlParams::from_json(&v, "t").unwrap();
        assert_eq!(p, SlParams::radix16().with_wgroups(2));
        let v = Value::parse(r#"{"preset": "radix32"}"#).unwrap();
        assert_eq!(SwParams::from_json(&v, "t").unwrap(), SwParams::radix32());
        // Explicit form without preset: wgroups defaults to the maximum.
        let v = Value::parse(r#"{"a": 4, "b": 2, "m": 4, "chiplet": 2}"#).unwrap();
        let p = SlParams::from_json(&v, "t").unwrap();
        assert_eq!(p.wgroups, p.max_wgroups());
        assert_eq!(p.nodes_per_chip, 4.0);
    }

    #[test]
    fn params_from_json_error_paths_are_precise() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"preset": "radix99"}"#,
                "t.preset: expected \"radix16\" or \"radix32\"",
            ),
            (
                r#"{"preset": "radix16", "bogus": 1}"#,
                "t.bogus: unknown key",
            ),
            (r#"{"a": 4}"#, "t.b: missing required key"),
            (
                r#"{"preset": "radix16", "m": -3}"#,
                "t.m: expected non-negative integer",
            ),
            (
                r#"{"preset": "radix16", "wgroups": 99}"#,
                "t: wgroups = 99 out of range 1..=41",
            ),
        ];
        for (doc, want) in cases {
            let v = Value::parse(doc).unwrap();
            assert_eq!(&SlParams::from_json(&v, "t").unwrap_err(), want, "{doc}");
        }
        let v = Value::parse(r#"{"terminals": 4}"#).unwrap();
        assert_eq!(
            SwParams::from_json(&v, "t").unwrap_err(),
            "t.locals: missing required key"
        );
    }

    #[test]
    fn router_id_roundtrip() {
        let p = SlParams::radix16().with_wgroups(2);
        for w in 0..2 {
            for c in 0..p.ab() {
                for y in 0..p.m {
                    for x in 0..p.m {
                        let r = p.core_router(w, c, x, y);
                        let (w2, c2, local) = p.router_location(r);
                        assert_eq!((w2, c2), (w, c));
                        assert!(p.local_is_core(local));
                        assert_eq!(local, y * p.m + x);
                    }
                }
                for l in 0..p.k() {
                    let r = p.converter_router(w, c, l);
                    let (w2, c2, local) = p.router_location(r);
                    assert_eq!((w2, c2), (w, c));
                    assert!(!p.local_is_core(local));
                    assert_eq!(local - p.m * p.m, l);
                }
            }
        }
    }
}
