//! # wsdf-topo — topology construction for the switch-less Dragonfly
//!
//! Builders that turn paper configurations into [`wsdf_sim::NetworkDesc`]
//! graphs plus the metadata routing oracles need:
//!
//! * [`address`] — parameter sets ([`SlParams`], [`SwParams`]), the
//!   hierarchical (W-group, C-group, node) address arithmetic, perimeter
//!   ring geometry, Property-2 port labeling and palmtree global wiring.
//! * [`mesh`] — standalone m×m mesh C-groups and single ideal switches
//!   (the Fig. 10(a,b) intra-C-group comparison).
//! * [`switchless`] — the full wafer-based switch-less Dragonfly
//!   (Sec. III-A): core meshes, SR-LR converters with perimeter chaining,
//!   all-to-all local wiring inside W-groups, palmtree global wiring.
//! * [`switchbased`] — the traditional switch-based Dragonfly baseline
//!   (Kim et al. / Slingshot-style) with ideal single-router switches.
//! * [`partition`] — locality-aware BSP partition assignment (greedy BFS
//!   growth + KL/FM boundary refinement minimizing cut channels under a
//!   router-count balance bound).
//!
//! ## Router/port conventions
//!
//! Core (on-chip) routers have 6 ports: `0` endpoint, `1` +x, `2` −x, `3`
//! +y, `4` −y, `5` converter. Converters have 4 ports: `0` core side, `1`
//! long-reach external side, `2` chain toward label−1, `3` chain toward
//! label+1. Switch routers have `radix` ports: terminals, then locals, then
//! globals.

#![deny(missing_docs)]

pub mod address;
pub mod fault;
pub mod mesh;
pub mod partition;
pub mod switchbased;
pub mod switchless;

pub use address::{RingPos, SlParams, SwParams};
pub use fault::{FaultSchedule, FaultSet, FaultSpec};
pub use mesh::{single_mesh, single_switch, MeshFabric, SwitchNode};
pub use partition::{
    contiguous_blocks, cut_channels, locality_partition, partition_stats, PartitionStats,
};
pub use switchbased::SwitchFabric;
pub use switchless::SwitchlessFabric;

/// What a router in a built fabric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// On-chip router inside a C-group mesh.
    Core {
        /// W-group index.
        w: u32,
        /// C-group index within the W-group.
        c: u32,
        /// Mesh x coordinate.
        x: u16,
        /// Mesh y coordinate.
        y: u16,
    },
    /// SR-LR conversion module on the C-group perimeter.
    Converter {
        /// W-group index.
        w: u32,
        /// C-group index within the W-group.
        c: u32,
        /// External port label (= perimeter ring position).
        label: u16,
    },
    /// High-radix switch of the baseline Dragonfly.
    Switch {
        /// Dragonfly group index.
        group: u32,
        /// Switch index within the group.
        idx: u32,
    },
}

/// Core-router port indices (see module docs).
pub mod core_port {
    /// Endpoint injection/ejection port.
    pub const EP: u8 = 0;
    /// +x neighbor.
    pub const XP: u8 = 1;
    /// −x neighbor.
    pub const XM: u8 = 2;
    /// +y neighbor.
    pub const YP: u8 = 3;
    /// −y neighbor.
    pub const YM: u8 = 4;
    /// Attached SR-LR converter (perimeter cores only).
    pub const CONV: u8 = 5;
    /// Port count of a core router.
    pub const COUNT: u8 = 6;
}

/// Converter port indices (see module docs).
pub mod conv_port {
    /// Short-reach side toward the attached core.
    pub const CORE: u8 = 0;
    /// Long-reach external side (local or global link).
    pub const EXT: u8 = 1;
    /// Chain link toward label−1.
    pub const PREV: u8 = 2;
    /// Chain link toward label+1.
    pub const NEXT: u8 = 3;
    /// Port count of a converter.
    pub const COUNT: u8 = 4;
}
