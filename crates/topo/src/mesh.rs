//! Standalone intra-C-group fabrics: a single m×m mesh and a single ideal
//! switch. These are the two sides of the paper's Fig. 10(a,b) comparison
//! ("intra-C-group / intra-switch performance").

use crate::{core_port, RouterKind};
use wsdf_sim::{ChannelClass, NetworkDesc};

/// A single C-group: m×m mesh of core routers, one endpoint per core, no
/// external ports.
#[derive(Debug, Clone)]
pub struct MeshFabric {
    /// The simulator network.
    pub net: NetworkDesc,
    /// Mesh side in cores.
    pub m: u32,
    /// Chiplet side (for on-chip vs short-reach link classing).
    pub chiplet: u32,
    /// Router kinds (all `Core` here).
    pub kinds: Vec<RouterKind>,
}

impl MeshFabric {
    /// Router id of core (x, y).
    pub fn router(&self, x: u32, y: u32) -> u32 {
        y * self.m + x
    }

    /// Endpoint id of core (x, y) (same numbering as routers).
    pub fn endpoint(&self, x: u32, y: u32) -> u32 {
        y * self.m + x
    }

    /// (x, y) of a router/endpoint id.
    pub fn xy(&self, id: u32) -> (u32, u32) {
        (id % self.m, id / self.m)
    }
}

/// Class of the mesh link between two adjacent cores: inside one chiplet it
/// is an on-chip (NoC) hop, across chiplet boundaries a short-reach
/// (on-wafer) hop.
pub(crate) fn mesh_link_class(chiplet: u32, x1: u32, y1: u32, x2: u32, y2: u32) -> ChannelClass {
    if chiplet == 0 {
        return ChannelClass::ShortReach;
    }
    let same = (x1 / chiplet == x2 / chiplet) && (y1 / chiplet == y2 / chiplet);
    if same {
        ChannelClass::OnChip
    } else {
        ChannelClass::ShortReach
    }
}

/// Wire the interior of an m×m core mesh into `net`.
///
/// `router_of(x, y)` maps coordinates to already-created router ids. Links
/// use +x/−x/+y/−y ports (see [`core_port`]), latency 1, width `mesh_width`.
pub(crate) fn wire_mesh<F: Fn(u32, u32) -> u32>(
    net: &mut NetworkDesc,
    m: u32,
    chiplet: u32,
    mesh_width: u8,
    router_of: F,
) {
    for y in 0..m {
        for x in 0..m {
            let here = router_of(x, y);
            if x + 1 < m {
                let right = router_of(x + 1, y);
                let class = mesh_link_class(chiplet, x, y, x + 1, y);
                net.connect(
                    (here, core_port::XP),
                    (right, core_port::XM),
                    1,
                    mesh_width,
                    class,
                );
            }
            if y + 1 < m {
                let up = router_of(x, y + 1);
                let class = mesh_link_class(chiplet, x, y, x, y + 1);
                net.connect(
                    (here, core_port::YP),
                    (up, core_port::YM),
                    1,
                    mesh_width,
                    class,
                );
            }
        }
    }
}

/// Build a standalone m×m mesh C-group with one endpoint per core.
pub fn single_mesh(m: u32, chiplet: u32, mesh_width: u8) -> MeshFabric {
    assert!(m >= 2, "mesh side must be >= 2");
    assert!(
        chiplet >= 1 && m.is_multiple_of(chiplet),
        "chiplet must divide m"
    );
    let mut net = NetworkDesc::new();
    let mut kinds = Vec::with_capacity((m * m) as usize);
    for y in 0..m {
        for x in 0..m {
            let r = net.add_router(core_port::COUNT);
            debug_assert_eq!(r, y * m + x);
            kinds.push(RouterKind::Core {
                w: 0,
                c: 0,
                x: x as u16,
                y: y as u16,
            });
            let e = net.add_endpoint(r);
            debug_assert_eq!(e, r);
            net.attach_endpoint(e, r, core_port::EP, 1, 1);
        }
    }
    wire_mesh(&mut net, m, chiplet, mesh_width, |x, y| y * m + x);
    net.validate()
        .expect("mesh construction is structurally valid");
    MeshFabric {
        net,
        m,
        chiplet,
        kinds,
    }
}

/// A single ideal high-radix switch with `terminals` endpoints — the
/// switch-based side of the intra-C-group comparison.
#[derive(Debug, Clone)]
pub struct SwitchNode {
    /// The simulator network.
    pub net: NetworkDesc,
    /// Number of terminals.
    pub terminals: u32,
}

/// Build a single switch with `terminals` directly attached endpoints.
/// Terminal links use latency 1 (the paper deliberately underestimates the
/// baseline's terminal-hop cost; see DESIGN.md).
pub fn single_switch(terminals: u32) -> SwitchNode {
    assert!(terminals >= 2);
    let mut net = NetworkDesc::new();
    // Ideal switch: full crossbar input speedup (the paper models switches
    // as single ideal high-radix routers).
    let sw = net.add_router_speedup(terminals as u8, terminals as u8);
    for t in 0..terminals {
        let e = net.add_endpoint(sw);
        net.attach_endpoint(e, sw, t as u8, 1, 1);
    }
    net.validate()
        .expect("switch construction is structurally valid");
    SwitchNode { net, terminals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsdf_sim::Terminus;

    #[test]
    fn mesh_counts() {
        let f = single_mesh(4, 2, 1);
        assert_eq!(f.net.num_routers(), 16);
        assert_eq!(f.net.num_endpoints(), 16);
        // Channels: 2·16 endpoint + 2·(2·4·3) mesh.
        assert_eq!(f.net.channels.len(), 32 + 48);
    }

    #[test]
    fn mesh_link_classes_follow_chiplets() {
        // 4×4 mesh of 2×2 chiplets: the x-link from (0,0)-(1,0) is on-chip,
        // from (1,0)-(2,0) short-reach.
        assert_eq!(mesh_link_class(2, 0, 0, 1, 0), ChannelClass::OnChip);
        assert_eq!(mesh_link_class(2, 1, 0, 2, 0), ChannelClass::ShortReach);
        assert_eq!(mesh_link_class(2, 3, 1, 3, 2), ChannelClass::ShortReach);
        assert_eq!(mesh_link_class(2, 2, 2, 2, 3), ChannelClass::OnChip);
        // chiplet = 1: everything short-reach.
        assert_eq!(mesh_link_class(1, 0, 0, 1, 0), ChannelClass::ShortReach);
    }

    #[test]
    fn mesh_degree_is_correct() {
        let f = single_mesh(3, 1, 1);
        // Count outgoing router-to-router channels per router.
        let mut deg = [0u32; 9];
        for ch in &f.net.channels {
            if let (Terminus::Router { router, .. }, Terminus::Router { .. }) = (ch.src, ch.dst) {
                deg[router as usize] += 1;
            }
        }
        // Corners 2, edges 3, center 4.
        assert_eq!(deg[f.router(0, 0) as usize], 2);
        assert_eq!(deg[f.router(1, 0) as usize], 3);
        assert_eq!(deg[f.router(1, 1) as usize], 4);
    }

    #[test]
    fn mesh_2b_width() {
        let f = single_mesh(4, 2, 2);
        for ch in &f.net.channels {
            match ch.class {
                ChannelClass::OnChip | ChannelClass::ShortReach => assert_eq!(ch.width, 2),
                _ => assert_eq!(ch.width, 1),
            }
        }
    }

    #[test]
    fn switch_counts() {
        let s = single_switch(16);
        assert_eq!(s.net.num_routers(), 1);
        assert_eq!(s.net.num_endpoints(), 16);
        assert_eq!(s.net.channels.len(), 32);
    }

    #[test]
    #[should_panic(expected = "chiplet must divide m")]
    fn mesh_rejects_bad_chiplet() {
        single_mesh(4, 3, 1);
    }
}
