//! The traditional switch-based Dragonfly baseline (Kim et al. 2008; the
//! paper's Sec. V-A4 experiment setup).
//!
//! Every switch is modeled as a single ideal input-queued high-radix router
//! — exactly the paper's (self-admittedly favorable-to-the-baseline)
//! methodology: "all the switches are modeled as single ideal high-radix
//! routers". Terminal links use latency 1 for the same reason (the paper
//! notes it underestimates the baseline's latency "for easier comparison").

use crate::address::SwParams;
use crate::RouterKind;
use wsdf_sim::{ChannelClass, NetworkDesc};

/// Latency of long-reach (local/global) links in cycles.
pub const LR_LATENCY: u32 = 8;

/// A fully built switch-based Dragonfly.
#[derive(Debug, Clone)]
pub struct SwitchFabric {
    /// The simulator network.
    pub net: NetworkDesc,
    /// The configuration it was built from.
    pub params: SwParams,
    /// Router kinds, indexed by router id (all `Switch`).
    pub kinds: Vec<RouterKind>,
}

impl SwitchFabric {
    /// Port of a switch for terminal `t`.
    pub fn terminal_port(p: &SwParams, t: u32) -> u8 {
        debug_assert!(t < p.terminals);
        t as u8
    }

    /// Port of switch `i` toward switch `j` in the same group.
    pub fn local_port(p: &SwParams, i: u32, j: u32) -> u8 {
        debug_assert_ne!(i, j);
        let off = if j < i { j } else { j - 1 };
        (p.terminals + off) as u8
    }

    /// Port of a switch for its `j`-th global port.
    pub fn global_port(p: &SwParams, j: u32) -> u8 {
        debug_assert!(j < p.globals);
        (p.terminals + p.locals + j) as u8
    }

    /// Build the fabric described by `params`.
    pub fn build(params: &SwParams) -> Self {
        params.validate().expect("invalid SwParams");
        let p = *params;
        let spg = p.switches_per_group();
        let mut net = NetworkDesc::new();
        let mut kinds = Vec::with_capacity(p.num_switches() as usize);

        for g in 0..p.groups {
            for i in 0..spg {
                // Ideal high-radix router: full crossbar input speedup.
                let r = net.add_router_speedup(p.radix() as u8, p.radix() as u8);
                debug_assert_eq!(r, p.switch_router(g, i));
                kinds.push(RouterKind::Switch { group: g, idx: i });
                for t in 0..p.terminals {
                    let e = net.add_endpoint(r);
                    debug_assert_eq!(e, p.endpoint_of(g, i, t));
                    net.attach_endpoint(e, r, Self::terminal_port(&p, t), 1, 1);
                }
            }
        }

        // Local all-to-all within each group.
        for g in 0..p.groups {
            for i in 0..spg {
                for j in (i + 1)..spg {
                    net.connect(
                        (p.switch_router(g, i), Self::local_port(&p, i, j)),
                        (p.switch_router(g, j), Self::local_port(&p, j, i)),
                        LR_LATENCY,
                        1,
                        ChannelClass::LongReachLocal,
                    );
                }
            }
        }

        // Global palmtree.
        for g in 0..p.groups {
            for q in 0..spg * p.globals {
                let Some((v, qb)) = p.global_peer(g, q) else {
                    continue;
                };
                if (v, qb) < (g, q) {
                    continue;
                }
                let (i1, j1) = (q / p.globals, q % p.globals);
                let (i2, j2) = (qb / p.globals, qb % p.globals);
                net.connect(
                    (p.switch_router(g, i1), Self::global_port(&p, j1)),
                    (p.switch_router(v, i2), Self::global_port(&p, j2)),
                    LR_LATENCY,
                    1,
                    ChannelClass::LongReachGlobal,
                );
            }
        }

        net.validate()
            .expect("switch-based construction is structurally valid");
        SwitchFabric {
            net,
            params: p,
            kinds,
        }
    }

    /// Kind of a router.
    pub fn kind(&self, router: u32) -> RouterKind {
        self.kinds[router as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsdf_sim::Terminus;

    #[test]
    fn radix16_full_counts() {
        let p = SwParams::radix16();
        let f = SwitchFabric::build(&p);
        assert_eq!(f.net.num_routers(), 41 * 8);
        assert_eq!(f.net.num_endpoints(), 1312);
        let globals = f
            .net
            .channels
            .iter()
            .filter(|c| c.class == ChannelClass::LongReachGlobal)
            .count();
        // 41 groups × 40 ports / 2 bidirectional links.
        assert_eq!(globals, 41 * 40);
        let locals = f
            .net
            .channels
            .iter()
            .filter(|c| c.class == ChannelClass::LongReachLocal)
            .count();
        // Per group: C(8,2)=28 links → 56 channels.
        assert_eq!(locals, 41 * 56);
    }

    #[test]
    fn single_group_has_no_globals() {
        let p = SwParams::radix16().with_groups(1);
        let f = SwitchFabric::build(&p);
        assert!(!f
            .net
            .channels
            .iter()
            .any(|c| c.class == ChannelClass::LongReachGlobal));
        assert_eq!(f.net.num_endpoints(), 32);
    }

    #[test]
    fn port_map_is_injective_per_switch() {
        let p = SwParams::radix16();
        let mut used = std::collections::HashSet::new();
        for t in 0..p.terminals {
            assert!(used.insert(SwitchFabric::terminal_port(&p, t)));
        }
        for j in 0..p.switches_per_group() {
            if j != 3 {
                assert!(used.insert(SwitchFabric::local_port(&p, 3, j)));
            }
        }
        for j in 0..p.globals {
            assert!(used.insert(SwitchFabric::global_port(&p, j)));
        }
        assert_eq!(used.len() as u32, p.radix());
    }

    #[test]
    fn every_switch_port_wired_at_full_scale() {
        let p = SwParams::radix16();
        let f = SwitchFabric::build(&p);
        let mut out_ports = std::collections::HashSet::new();
        for ch in &f.net.channels {
            if let Terminus::Router { router, port } = ch.src {
                out_ports.insert((router, port));
            }
        }
        assert_eq!(out_ports.len() as u32, p.num_switches() * p.radix());
    }

    #[test]
    fn terminal_links_have_unit_latency() {
        let p = SwParams::radix16().with_groups(2);
        let f = SwitchFabric::build(&p);
        for ch in &f.net.channels {
            match ch.class {
                ChannelClass::Injection | ChannelClass::Ejection => assert_eq!(ch.latency, 1),
                ChannelClass::LongReachLocal | ChannelClass::LongReachGlobal => {
                    assert_eq!(ch.latency, 8)
                }
                _ => {}
            }
        }
    }
}
