//! Deterministic fault injection: seeded sampling of failed links and
//! routers, explicit failure lists, and cycle-scheduled degradation.
//!
//! ## Determinism contract
//!
//! [`FaultSet::sample`] is a pure function of `(network, spec)`: the same
//! [`FaultSpec`] on the same [`NetworkDesc`] always yields the identical
//! fault set, on every platform and for every partition/worker count — the
//! sampler draws from private [`SplitMix64`] streams derived from
//! `spec.seed` and walks links/routers in construction order. Resilience
//! experiments are therefore exactly reproducible from `(topology
//! parameters, seed, fractions)` alone.
//!
//! ## What fails
//!
//! * **Links** fail as undirected pairs: a physical cable/trace carries
//!   both unidirectional channels, so sampling kills both directions
//!   together. Endpoint injection/ejection channels are *not* sampled (they
//!   are NIC wiring, not fabric) — they only die with their router.
//! * **Routers** fail whole: a dead router takes every attached channel
//!   with it, including its endpoints' injection/ejection channels
//!   ([`wsdf_sim::FaultMap::seal`]).
//!
//! Fractions request `round(fraction × population)` failures, selected by
//! a seeded partial Fisher–Yates shuffle — exact counts, not Bernoulli
//! noise, so a sweep over fractions is monotone in failure *count*.

use crate::RouterKind;
use wsdf_sim::json::{self, read, Value};
use wsdf_sim::{FaultMap, NetworkDesc, SplitMix64, Terminus};

/// What to fail, and how. See the module docs for the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the sampling streams.
    pub seed: u64,
    /// Fraction of undirected router-router links to fail (0.0 ..= 1.0).
    pub link_fraction: f64,
    /// Fraction of routers to fail (0.0 ..= 1.0).
    pub router_fraction: f64,
    /// Explicitly failed channels (by channel id; the paired reverse
    /// channel of a router-router link dies too).
    pub explicit_links: Vec<u32>,
    /// Explicitly failed routers (by router id).
    pub explicit_routers: Vec<u32>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0xFA17_5EED,
            link_fraction: 0.0,
            router_fraction: 0.0,
            explicit_links: Vec::new(),
            explicit_routers: Vec::new(),
        }
    }
}

impl FaultSpec {
    /// Spec failing `fraction` of links (routers untouched).
    pub fn links(fraction: f64, seed: u64) -> Self {
        FaultSpec {
            seed,
            link_fraction: fraction,
            ..Default::default()
        }
    }

    /// Spec failing `fraction` of routers (links only die with them).
    pub fn routers(fraction: f64, seed: u64) -> Self {
        FaultSpec {
            seed,
            router_fraction: fraction,
            ..Default::default()
        }
    }

    /// True when the spec can never fail anything.
    pub fn is_empty(&self) -> bool {
        self.link_fraction <= 0.0
            && self.router_fraction <= 0.0
            && self.explicit_links.is_empty()
            && self.explicit_routers.is_empty()
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        for (name, f) in [
            ("link_fraction", self.link_fraction),
            ("router_fraction", self.router_fraction),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("{name} = {f} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// Canonical one-line JSON form: every field explicit, in declaration
    /// order. `from_json(to_json(s)) == s` for any valid spec.
    pub fn to_json(&self) -> String {
        let ints = |v: &[u32]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\"seed\": {}, \"link_fraction\": {}, \"router_fraction\": {}, \
             \"explicit_links\": [{}], \"explicit_routers\": [{}]}}",
            self.seed,
            json::num(self.link_fraction),
            json::num(self.router_fraction),
            ints(&self.explicit_links),
            ints(&self.explicit_routers)
        )
    }

    /// Parse a spec from a JSON object at `path` (for error messages).
    /// Every field is optional and defaults as [`FaultSpec::default`];
    /// fractions outside `[0, 1]` are rejected with a precise path.
    pub fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(
            v,
            path,
            &[
                "seed",
                "link_fraction",
                "router_fraction",
                "explicit_links",
                "explicit_routers",
            ],
        )?;
        let dflt = FaultSpec::default();
        let frac = |key: &str, d: f64| -> Result<f64, String> {
            let x = read::opt_f64_field(v, path, key)?.unwrap_or(d);
            if (0.0..=1.0).contains(&x) {
                Ok(x)
            } else {
                Err(format!("{path}.{key}: expected number in [0, 1]"))
            }
        };
        let list = |key: &str| -> Result<Vec<u32>, String> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(_) => read::u32_list(v, path, key),
            }
        };
        Ok(FaultSpec {
            seed: read::u64_or(v, path, "seed", dflt.seed)?,
            link_fraction: frac("link_fraction", dflt.link_fraction)?,
            router_fraction: frac("router_fraction", dflt.router_fraction)?,
            explicit_links: list("explicit_links")?,
            explicit_routers: list("explicit_routers")?,
        })
    }
}

/// A sampled, sealed fault assignment for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSet {
    map: FaultMap,
    dead_links: u32,
    dead_routers: u32,
}

impl FaultSet {
    /// Nothing failed.
    pub fn empty(net: &NetworkDesc) -> Self {
        FaultSet {
            map: FaultMap::pristine(net),
            dead_links: 0,
            dead_routers: 0,
        }
    }

    /// Sample `spec` over `net` (see the module docs). Panics on an invalid
    /// spec or on explicit ids out of range.
    pub fn sample(net: &NetworkDesc, spec: &FaultSpec) -> Self {
        spec.validate().expect("invalid FaultSpec");
        let mut map = FaultMap::pristine(net);

        // Undirected fabric links: each router-router channel pair, keyed
        // by its lower channel id, in construction order.
        let links = undirected_links(net);

        // Routers to fail: seeded partial Fisher-Yates over all routers.
        let k_routers = exact_count(spec.router_fraction, net.num_routers());
        let mut rng = SplitMix64::for_agent(spec.seed, 0xDEAD_0001);
        for r in sample_indices(net.num_routers(), k_routers, &mut rng) {
            map.kill_router(r as u32);
        }
        for &r in &spec.explicit_routers {
            assert!(
                (r as usize) < net.num_routers(),
                "explicit router {r} out of range"
            );
            map.kill_router(r);
        }

        // Links to fail, drawn from an independent stream so adding router
        // faults never reshuffles which links die.
        let k_links = exact_count(spec.link_fraction, links.len());
        let mut rng = SplitMix64::for_agent(spec.seed, 0xDEAD_0002);
        for i in sample_indices(links.len(), k_links, &mut rng) {
            let (a, b) = links[i];
            map.kill_channel(a);
            map.kill_channel(b);
        }
        for &c in &spec.explicit_links {
            assert!(
                (c as usize) < net.channels.len(),
                "explicit channel {c} out of range"
            );
            map.kill_channel(c);
            if let Some(&(a, b)) = links.iter().find(|&&(a, b)| a == c || b == c) {
                map.kill_channel(a);
                map.kill_channel(b);
            }
        }

        map.seal(net);
        Self::from_map(net, map)
    }

    /// Wrap an existing (sealed) map, recounting undirected dead links and
    /// dead routers.
    pub fn from_map(net: &NetworkDesc, map: FaultMap) -> Self {
        map.validate(net).expect("fault map does not match network");
        let dead_links = undirected_links(net)
            .iter()
            .filter(|&&(a, b)| map.channel_dead(a) || map.channel_dead(b))
            .count() as u32;
        let dead_routers = map.dead_routers() as u32;
        FaultSet {
            map,
            dead_links,
            dead_routers,
        }
    }

    /// The engine-facing fault map.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Consume into the engine-facing map.
    pub fn into_map(self) -> FaultMap {
        self.map
    }

    /// True when nothing failed (a pristine run).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Failed undirected fabric links (a link counts once even if both of
    /// its channels died, or if it died as collateral of a router).
    pub fn dead_links(&self) -> u32 {
        self.dead_links
    }

    /// Failed routers.
    pub fn dead_routers(&self) -> u32 {
        self.dead_routers
    }

    /// Routers still alive.
    pub fn live_routers(&self) -> usize {
        self.map.live_routers()
    }
}

/// One scheduled degradation step.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Cycle at which this failure batch strikes.
    pub cycle: u64,
    /// What fails at that cycle (sampled independently per event; give
    /// events distinct seeds unless overlap is intended).
    pub spec: FaultSpec,
}

/// A cycle-ordered schedule of fault events for mid-run degradation
/// studies.
///
/// Failures are **cumulative and permanent**: the fault state at cycle `t`
/// is the union of every event with `cycle ≤ t` (no repair model). The
/// epoch decomposition ([`FaultSchedule::epochs`]) drives degradation
/// timelines: one simulation segment per epoch, each against the sealed
/// union of all failures so far — deterministic because every event's
/// sample is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule (always pristine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a failure batch at `cycle`. Events may be pushed in any order.
    pub fn push(&mut self, cycle: u64, spec: FaultSpec) -> &mut Self {
        self.events.push(FaultEvent { cycle, spec });
        self.events.sort_by_key(|e| e.cycle);
        self
    }

    /// The scheduled events, cycle-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Cumulative fault set in effect at `cycle` (union of all events with
    /// `event.cycle <= cycle`).
    pub fn at_cycle(&self, net: &NetworkDesc, cycle: u64) -> FaultSet {
        let mut map = FaultMap::pristine(net);
        for e in self.events.iter().filter(|e| e.cycle <= cycle) {
            map.union(FaultSet::sample(net, &e.spec).map());
        }
        FaultSet::from_map(net, map)
    }

    /// Canonical JSON form: the cycle-ordered event array, one event per
    /// line. `from_json(to_json(s)) == s` for any schedule.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            s.push_str(&format!(
                "{}{{\"cycle\": {}, \"spec\": {}}}",
                if i == 0 { "" } else { ", " },
                e.cycle,
                e.spec.to_json()
            ));
        }
        s.push(']');
        s
    }

    /// Parse a schedule from a JSON array of `{"cycle", "spec"}` events at
    /// `path` (for error messages). Events may appear in any order; they
    /// are re-sorted by cycle like [`FaultSchedule::push`].
    pub fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        let items = v
            .as_arr()
            .ok_or_else(|| format!("{path}: expected array"))?;
        let mut sched = FaultSchedule::new();
        for (i, item) in items.iter().enumerate() {
            let ipath = format!("{path}[{i}]");
            read::check_keys(item, &ipath, &["cycle", "spec"])?;
            let cycle = read::u64_field(item, &ipath, "cycle")?;
            let spec =
                FaultSpec::from_json(read::req(item, &ipath, "spec")?, &format!("{ipath}.spec"))?;
            sched.push(cycle, spec);
        }
        Ok(sched)
    }

    /// Epoch decomposition: `(start_cycle, cumulative fault set)` for cycle
    /// 0 and after every event, deduplicated by start cycle. The first
    /// epoch always starts at 0 (pristine unless an event strikes at 0).
    pub fn epochs(&self, net: &NetworkDesc) -> Vec<(u64, FaultSet)> {
        let mut starts: Vec<u64> = std::iter::once(0)
            .chain(self.events.iter().map(|e| e.cycle))
            .collect();
        starts.dedup();
        starts
            .into_iter()
            .map(|c| (c, self.at_cycle(net, c)))
            .collect()
    }
}

/// Undirected router-router links as channel-id pairs `(lower, upper)`,
/// in construction order of the lower id. Unpaired unidirectional channels
/// count as their own link.
pub fn undirected_links(net: &NetworkDesc) -> Vec<(u32, u32)> {
    let mut by_ends = std::collections::HashMap::new();
    for (c, ch) in net.channels.iter().enumerate() {
        if let (
            Terminus::Router {
                router: r1,
                port: p1,
            },
            Terminus::Router {
                router: r2,
                port: p2,
            },
        ) = (ch.src, ch.dst)
        {
            by_ends.insert((r1, p1, r2, p2), c as u32);
        }
    }
    let mut links = Vec::new();
    for (&(r1, p1, r2, p2), &c) in &by_ends {
        match by_ends.get(&(r2, p2, r1, p1)) {
            Some(&rev) if rev != c => {
                if c < rev {
                    links.push((c, rev));
                }
            }
            _ => links.push((c, c)),
        }
    }
    links.sort_unstable();
    links
}

/// `round(fraction × n)`, clamped to `0..=n`.
fn exact_count(fraction: f64, n: usize) -> usize {
    ((fraction * n as f64).round() as usize).min(n)
}

/// The first `k` entries of a seeded Fisher-Yates shuffle of `0..n`,
/// sorted ascending (selection is order-independent; sorting keeps the
/// kill order deterministic too).
fn sample_indices(n: usize, k: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + rng.next_below((n - i) as u64) as usize;
        idx.swap(i, j);
    }
    let mut picked = idx[..k].to_vec();
    picked.sort_unstable();
    picked
}

/// Routers of a [`crate::SwitchlessFabric`] that are *converters* (useful
/// for yield-defect studies that spare the compute cores).
pub fn converter_routers(kinds: &[RouterKind]) -> Vec<u32> {
    kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| matches!(k, RouterKind::Converter { .. }))
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SlParams, SwitchlessFabric};

    fn wgroup_net() -> NetworkDesc {
        SwitchlessFabric::build(&SlParams::radix16().with_wgroups(1)).net
    }

    #[test]
    fn zero_fraction_is_empty_and_pristine() {
        let net = wgroup_net();
        let fs = FaultSet::sample(&net, &FaultSpec::links(0.0, 7));
        assert!(fs.is_empty());
        assert_eq!(fs.dead_links(), 0);
        assert_eq!(fs.dead_routers(), 0);
        assert_eq!(fs.live_routers(), net.num_routers());
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let net = wgroup_net();
        let a = FaultSet::sample(&net, &FaultSpec::links(0.1, 42));
        let b = FaultSet::sample(&net, &FaultSpec::links(0.1, 42));
        assert_eq!(a, b);
        let c = FaultSet::sample(&net, &FaultSpec::links(0.1, 43));
        assert_ne!(a, c, "different seeds should fail different links");
    }

    #[test]
    fn link_fraction_kills_exact_round_count_in_pairs() {
        let net = wgroup_net();
        let n_links = undirected_links(&net).len();
        let fs = FaultSet::sample(&net, &FaultSpec::links(0.1, 9));
        assert_eq!(
            fs.dead_links() as usize,
            (0.1 * n_links as f64).round() as usize
        );
        assert_eq!(fs.dead_routers(), 0);
        // Both directions of every failed link die.
        for (a, b) in undirected_links(&net) {
            assert_eq!(fs.map().channel_dead(a), fs.map().channel_dead(b));
        }
    }

    #[test]
    fn router_faults_take_their_channels_along() {
        let net = wgroup_net();
        let spec = FaultSpec {
            explicit_routers: vec![3],
            ..Default::default()
        };
        let fs = FaultSet::sample(&net, &spec);
        assert_eq!(fs.dead_routers(), 1);
        assert!(fs.map().router_dead(3));
        for (c, ch) in net.channels.iter().enumerate() {
            let touches = [ch.src, ch.dst].iter().any(|t| t.router() == Some(3));
            if touches {
                assert!(fs.map().channel_dead(c as u32), "channel {c} survived");
            }
        }
    }

    #[test]
    fn explicit_link_kills_its_pair() {
        let net = wgroup_net();
        let (a, b) = undirected_links(&net)[5];
        let spec = FaultSpec {
            explicit_links: vec![a],
            ..Default::default()
        };
        let fs = FaultSet::sample(&net, &spec);
        assert!(fs.map().channel_dead(a));
        assert!(fs.map().channel_dead(b));
        assert_eq!(fs.dead_links(), 1);
    }

    #[test]
    fn undirected_links_cover_fabric_channels_exactly_once() {
        let net = wgroup_net();
        let links = undirected_links(&net);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &links {
            assert!(seen.insert(*a));
            assert!(seen.insert(*b));
        }
        let rr_channels = net
            .channels
            .iter()
            .filter(|ch| ch.src.router().is_some() && ch.dst.router().is_some())
            .count();
        assert_eq!(seen.len(), rr_channels);
    }

    #[test]
    fn schedule_is_cumulative_and_monotone() {
        let net = wgroup_net();
        let mut sched = FaultSchedule::new();
        sched.push(1000, FaultSpec::links(0.05, 1));
        sched.push(500, FaultSpec::links(0.05, 2));
        let e = sched.epochs(&net);
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].0, 0);
        assert!(e[0].1.is_empty());
        assert_eq!((e[1].0, e[2].0), (500, 1000));
        // Monotone degradation: every later epoch contains the earlier one.
        let mid = &e[1].1;
        let late = &e[2].1;
        assert!(late.dead_links() >= mid.dead_links());
        for c in 0..net.channels.len() as u32 {
            if mid.map().channel_dead(c) {
                assert!(late.map().channel_dead(c), "repair is not modeled");
            }
        }
        assert_eq!(sched.at_cycle(&net, 750), e[1].1);
    }

    #[test]
    fn converter_routers_spares_cores() {
        let f = SwitchlessFabric::build(&SlParams::radix16().with_wgroups(1));
        let convs = converter_routers(&f.kinds);
        assert_eq!(convs.len(), 8 * 12);
        for r in convs {
            assert!(matches!(f.kind(r), RouterKind::Converter { .. }));
        }
    }

    #[test]
    fn fault_spec_json_round_trips() {
        let spec = FaultSpec {
            seed: 42,
            link_fraction: 0.125,
            router_fraction: 0.0625,
            explicit_links: vec![3, 9],
            explicit_routers: vec![7],
        };
        let v = Value::parse(&spec.to_json()).unwrap();
        assert_eq!(FaultSpec::from_json(&v, "t").unwrap(), spec);
        // Defaults apply field by field.
        let v = Value::parse(r#"{"link_fraction": 0.5}"#).unwrap();
        let s = FaultSpec::from_json(&v, "t").unwrap();
        assert_eq!(s.seed, FaultSpec::default().seed);
        assert_eq!(s.link_fraction, 0.5);
    }

    #[test]
    fn fault_spec_json_errors_are_precise() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"link_fraction": 1.5}"#,
                "t.link_fraction: expected number in [0, 1]",
            ),
            (
                r#"{"router_fraction": -0.1}"#,
                "t.router_fraction: expected number in [0, 1]",
            ),
            (
                r#"{"seed": "abc"}"#,
                "t.seed: expected non-negative integer",
            ),
            (
                r#"{"explicit_links": [1, "x"]}"#,
                "t.explicit_links[1]: expected non-negative integer",
            ),
            (r#"{"frobnicate": 1}"#, "t.frobnicate: unknown key"),
        ];
        for (doc, want) in cases {
            let v = Value::parse(doc).unwrap();
            assert_eq!(&FaultSpec::from_json(&v, "t").unwrap_err(), want, "{doc}");
        }
    }

    #[test]
    fn fault_schedule_json_round_trips() {
        let mut sched = FaultSchedule::new();
        sched.push(1000, FaultSpec::links(0.05, 1));
        sched.push(500, FaultSpec::routers(0.1, 2));
        let v = Value::parse(&sched.to_json()).unwrap();
        assert_eq!(FaultSchedule::from_json(&v, "t").unwrap(), sched);
        let v = Value::parse(r#"[{"cycle": 5}]"#).unwrap();
        assert_eq!(
            FaultSchedule::from_json(&v, "t").unwrap_err(),
            "t[0].spec: missing required key"
        );
        let v = Value::parse(r#"[{"cycle": 5, "spec": {"link_fraction": 7}}]"#).unwrap();
        assert_eq!(
            FaultSchedule::from_json(&v, "t").unwrap_err(),
            "t[0].spec.link_fraction: expected number in [0, 1]"
        );
    }

    #[test]
    fn invalid_fractions_rejected() {
        assert!(FaultSpec::links(1.5, 0).validate().is_err());
        assert!(FaultSpec::routers(-0.1, 0).validate().is_err());
        assert!(FaultSpec::links(1.0, 0).validate().is_ok());
    }
}
