//! Result containers and plain-text/JSON rendering for the harness.

use crate::sweep::SweepPoint;
use serde::{Deserialize, Serialize};

/// An (x, y) pair of a rendered series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Point {
    /// X value (offered load, flits/cycle/chip).
    pub x: f64,
    /// Y value (latency in cycles, or accepted rate).
    pub y: f64,
}

/// One labeled series of a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label (matches the paper's: "SW-based", "SW-less-2B", ...).
    pub label: String,
    /// Measured sweep points.
    pub points: Vec<SweepPoint>,
}

impl Curve {
    /// Wrap sweep output.
    pub fn new(label: impl Into<String>, points: Vec<SweepPoint>) -> Self {
        Curve {
            label: label.into(),
            points,
        }
    }

    /// Latency-vs-offered-load series (the paper's figure axes).
    pub fn latency_series(&self) -> Vec<Point> {
        self.points
            .iter()
            .map(|p| Point {
                x: p.offered_chip,
                y: p.latency,
            })
            .collect()
    }

    /// Highest accepted throughput, flits/cycle/chip.
    pub fn saturation(&self) -> f64 {
        crate::sweep::saturation_rate(&self.points)
    }

    /// Render as aligned text rows.
    pub fn render(&self) -> String {
        let mut s = format!(
            "  {:<18} {:>10} {:>12} {:>12} {:>6}\n",
            self.label, "offered", "latency(cyc)", "accepted", "sat"
        );
        for p in &self.points {
            s.push_str(&format!(
                "  {:<18} {:>10.3} {:>12.1} {:>12.3} {:>6}\n",
                "",
                p.offered_chip,
                p.latency,
                p.accepted_chip,
                if p.saturated { "*" } else { "" }
            ));
        }
        s
    }
}

/// A whole figure: several curves plus context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Figure id ("fig10a", "fig13b", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// All series.
    pub curves: Vec<Curve>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            curves: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, curve: Curve) {
        self.curves.push(curve);
    }

    /// Render the figure as text (harness output).
    pub fn render(&self) -> String {
        let mut s = format!("== {} — {} ==\n", self.id, self.title);
        for c in &self.curves {
            s.push_str(&c.render());
        }
        let sats: Vec<String> = self
            .curves
            .iter()
            .map(|c| format!("{} = {:.2}", c.label, c.saturation()))
            .collect();
        s.push_str(&format!(
            "  saturation throughput (flits/cycle/chip): {}\n",
            sats.join(", ")
        ));
        s
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figures serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(offered: f64, lat: f64, acc: f64) -> SweepPoint {
        SweepPoint {
            offered_chip: offered,
            offered_node: offered / 4.0,
            latency: lat,
            accepted_chip: acc,
            accepted_node: acc / 4.0,
            delivered: 1.0,
            saturated: false,
        }
    }

    #[test]
    fn curve_saturation_is_max_accepted() {
        let c = Curve::new("x", vec![pt(0.4, 10.0, 0.4), pt(0.8, 12.0, 0.8), pt(1.2, 80.0, 0.9)]);
        assert_eq!(c.saturation(), 0.9);
        assert_eq!(c.latency_series().len(), 3);
    }

    #[test]
    fn figure_renders_and_serializes() {
        let mut f = Figure::new("fig10a", "Intra-C-group: Uniform");
        f.push(Curve::new("2D-Mesh", vec![pt(0.4, 9.0, 0.4)]));
        f.push(Curve::new("Switch", vec![pt(0.4, 8.0, 0.4)]));
        let txt = f.render();
        assert!(txt.contains("fig10a"));
        assert!(txt.contains("2D-Mesh"));
        let json = f.to_json();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(back.curves.len(), 2);
    }
}
