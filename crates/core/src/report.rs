//! Result containers and plain-text/JSON rendering for the harness.
//!
//! JSON goes through the in-crate [`crate::json`] module (the build
//! environment is offline, so there is no serde); `to_json`/`from_json`
//! are hand-rolled and covered by a round-trip test.

use crate::json::{self, Value};
use crate::sweep::SweepPoint;

/// An (x, y) pair of a rendered series.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// X value (offered load, flits/cycle/chip).
    pub x: f64,
    /// Y value (latency in cycles, or accepted rate).
    pub y: f64,
}

/// One labeled series of a figure.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label (matches the paper's: "SW-based", "SW-less-2B", ...).
    pub label: String,
    /// Measured sweep points.
    pub points: Vec<SweepPoint>,
}

impl Curve {
    /// Wrap sweep output.
    pub fn new(label: impl Into<String>, points: Vec<SweepPoint>) -> Self {
        Curve {
            label: label.into(),
            points,
        }
    }

    /// Latency-vs-offered-load series (the paper's figure axes).
    pub fn latency_series(&self) -> Vec<Point> {
        self.points
            .iter()
            .map(|p| Point {
                x: p.offered_chip,
                y: p.latency,
            })
            .collect()
    }

    /// Highest accepted throughput, flits/cycle/chip.
    pub fn saturation(&self) -> f64 {
        crate::sweep::saturation_rate(&self.points)
    }

    /// Render as aligned text rows.
    pub fn render(&self) -> String {
        let mut s = format!(
            "  {:<18} {:>10} {:>12} {:>8} {:>8} {:>8} {:>12} {:>6}\n",
            self.label, "offered", "latency(cyc)", "p50", "p95", "p99", "accepted", "sat"
        );
        for p in &self.points {
            s.push_str(&format!(
                "  {:<18} {:>10.3} {:>12.1} {:>8.1} {:>8.1} {:>8.1} {:>12.3} {:>6}\n",
                "",
                p.offered_chip,
                p.latency,
                p.p50,
                p.p95,
                p.p99,
                p.accepted_chip,
                if p.saturated { "*" } else { "" }
            ));
        }
        s
    }
}

/// A whole figure: several curves plus context.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id ("fig10a", "fig13b", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// All series.
    pub curves: Vec<Curve>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            curves: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, curve: Curve) {
        self.curves.push(curve);
    }

    /// Render the figure as text (harness output).
    pub fn render(&self) -> String {
        let mut s = format!("== {} — {} ==\n", self.id, self.title);
        for c in &self.curves {
            s.push_str(&c.render());
        }
        let sats: Vec<String> = self
            .curves
            .iter()
            .map(|c| format!("{} = {:.2}", c.label, c.saturation()))
            .collect();
        s.push_str(&format!(
            "  saturation throughput (flits/cycle/chip): {}\n",
            sats.join(", ")
        ));
        s
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"id\": \"{}\",\n", json::escape(&self.id)));
        s.push_str(&format!(
            "  \"title\": \"{}\",\n",
            json::escape(&self.title)
        ));
        s.push_str("  \"curves\": [\n");
        for (ci, c) in self.curves.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!(
                "      \"label\": \"{}\",\n",
                json::escape(&c.label)
            ));
            s.push_str("      \"points\": [\n");
            for (pi, p) in c.points.iter().enumerate() {
                s.push_str(&format!(
                    "        {}{}\n",
                    point_json(p),
                    if pi + 1 < c.points.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if ci + 1 < self.curves.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a figure previously written by [`Figure::to_json`].
    pub fn from_json(text: &str) -> Result<Figure, String> {
        let v = Value::parse(text)?;
        let mut fig = Figure::new(
            field(&v, "id")?.as_str().ok_or("'id' not a string")?,
            field(&v, "title")?.as_str().ok_or("'title' not a string")?,
        );
        for c in field(&v, "curves")?
            .as_arr()
            .ok_or("'curves' not an array")?
        {
            let mut points = Vec::new();
            for p in field(c, "points")?
                .as_arr()
                .ok_or("'points' not an array")?
            {
                points.push(point_from_json(p)?);
            }
            fig.push(Curve::new(
                field(c, "label")?.as_str().ok_or("'label' not a string")?,
                points,
            ));
        }
        Ok(fig)
    }
}

impl crate::sweep::SaturationReport {
    /// Serialize to pretty JSON (`label` names the bench/workload, matching
    /// the curve labels of the figure files).
    pub fn to_json(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"label\": \"{}\",\n", json::escape(label)));
        s.push_str(&format!("  \"sat_chip\": {},\n", json::num(self.sat_chip)));
        s.push_str(&format!("  \"sat_node\": {},\n", json::num(self.sat_node)));
        s.push_str(&format!(
            "  \"zero_load_latency\": {},\n",
            json::num(self.zero_load_latency)
        ));
        s.push_str("  \"points\": [\n");
        for (pi, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {}{}\n",
                point_json(p),
                if pi + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by
    /// [`to_json`](Self::to_json). Returns `(label, report)`.
    pub fn from_json(text: &str) -> Result<(String, Self), String> {
        let v = Value::parse(text)?;
        let label = field(&v, "label")?
            .as_str()
            .ok_or("'label' not a string")?
            .to_string();
        let mut points = Vec::new();
        for p in field(&v, "points")?
            .as_arr()
            .ok_or("'points' not an array")?
        {
            points.push(point_from_json(p)?);
        }
        Ok((
            label,
            crate::sweep::SaturationReport {
                sat_chip: num(&v, "sat_chip")?,
                sat_node: num(&v, "sat_node")?,
                zero_load_latency: num(&v, "zero_load_latency")?,
                points,
            },
        ))
    }
}

/// Member of a JSON object by key, as a parse error when absent.
fn field<'a>(v: &'a Value, k: &str) -> Result<&'a Value, String> {
    v.get(k).ok_or_else(|| format!("missing key '{k}'"))
}

/// Required numeric member of a JSON object.
fn num(v: &Value, k: &str) -> Result<f64, String> {
    field(v, k)?
        .as_f64()
        .ok_or_else(|| format!("'{k}' not a number"))
}

/// Numeric member that older files may lack (pre-percentile baselines);
/// missing maps to NaN, matching the writer's non-finite encoding.
fn num_or_nan(v: &Value, k: &str) -> Result<f64, String> {
    match v.get(k) {
        None => Ok(f64::NAN),
        Some(m) => m.as_f64().ok_or_else(|| format!("'{k}' not a number")),
    }
}

/// One [`SweepPoint`] as a single-line JSON object (shared by the figure
/// and saturation-report writers).
fn point_json(p: &SweepPoint) -> String {
    format!(
        "{{\"offered_chip\": {}, \"offered_node\": {}, \"latency\": {}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"latency_max\": {}, \
         \"accepted_chip\": {}, \"accepted_node\": {}, \"delivered\": {}, \
         \"saturated\": {}, \"busy_cycles\": {}, \"skipped_cycles\": {}}}",
        json::num(p.offered_chip),
        json::num(p.offered_node),
        json::num(p.latency),
        json::num(p.p50),
        json::num(p.p95),
        json::num(p.p99),
        json::num(p.latency_max),
        json::num(p.accepted_chip),
        json::num(p.accepted_node),
        json::num(p.delivered),
        p.saturated,
        p.busy_cycles,
        p.skipped_cycles
    )
}

/// Parse one [`SweepPoint`] object. The percentile fields are optional so
/// baselines recorded before they existed still load (they read as NaN).
fn point_from_json(p: &Value) -> Result<SweepPoint, String> {
    Ok(SweepPoint {
        offered_chip: num(p, "offered_chip")?,
        offered_node: num(p, "offered_node")?,
        latency: num(p, "latency")?,
        p50: num_or_nan(p, "p50")?,
        p95: num_or_nan(p, "p95")?,
        p99: num_or_nan(p, "p99")?,
        latency_max: num_or_nan(p, "latency_max")?,
        accepted_chip: num(p, "accepted_chip")?,
        accepted_node: num(p, "accepted_node")?,
        delivered: num(p, "delivered")?,
        saturated: field(p, "saturated")?
            .as_bool()
            .ok_or("'saturated' not a bool")?,
        busy_cycles: int_or_zero(p, "busy_cycles")?,
        skipped_cycles: int_or_zero(p, "skipped_cycles")?,
    })
}

/// Optional non-negative integer field: 0 when absent, so baselines
/// recorded before the stepping counters existed still load.
fn int_or_zero(v: &Value, k: &str) -> Result<u64, String> {
    match v.get(k) {
        None => Ok(0),
        Some(m) => {
            let x = m.as_f64().ok_or_else(|| format!("'{k}' not a number"))?;
            if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                Ok(x as u64)
            } else {
                Err(format!("'{k}' not a non-negative integer"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(offered: f64, lat: f64, acc: f64) -> SweepPoint {
        SweepPoint {
            offered_chip: offered,
            offered_node: offered / 4.0,
            latency: lat,
            p50: lat * 0.9,
            p95: lat * 1.5,
            p99: lat * 2.0,
            latency_max: lat * 3.0,
            accepted_chip: acc,
            accepted_node: acc / 4.0,
            delivered: 1.0,
            saturated: false,
            busy_cycles: 1000,
            skipped_cycles: 200,
        }
    }

    #[test]
    fn curve_saturation_is_max_accepted() {
        let c = Curve::new(
            "x",
            vec![pt(0.4, 10.0, 0.4), pt(0.8, 12.0, 0.8), pt(1.2, 80.0, 0.9)],
        );
        assert_eq!(c.saturation(), 0.9);
        assert_eq!(c.latency_series().len(), 3);
    }

    #[test]
    fn figure_renders_and_serializes() {
        let mut f = Figure::new("fig10a", "Intra-C-group: Uniform");
        f.push(Curve::new("2D-Mesh", vec![pt(0.4, 9.0, 0.4)]));
        f.push(Curve::new("Switch", vec![pt(0.4, 8.0, 0.4)]));
        let txt = f.render();
        assert!(txt.contains("fig10a"));
        assert!(txt.contains("2D-Mesh"));
        let json = f.to_json();
        let back = Figure::from_json(&json).unwrap();
        assert_eq!(back.curves.len(), 2);
        assert_eq!(back.id, "fig10a");
        assert_eq!(back.curves[0].label, "2D-Mesh");
        assert_eq!(back.curves[0].points, f.curves[0].points);
    }

    #[test]
    fn points_without_percentiles_still_parse() {
        // Figure files recorded before the percentile fields existed must
        // still load; the missing fields read as NaN.
        let json = r#"{
          "id": "old", "title": "t",
          "curves": [{"label": "c", "points": [
            {"offered_chip": 0.4, "offered_node": 0.1, "latency": 9,
             "accepted_chip": 0.4, "accepted_node": 0.1, "delivered": 1,
             "saturated": false}
          ]}]
        }"#;
        let fig = Figure::from_json(json).unwrap();
        let p = &fig.curves[0].points[0];
        assert_eq!(p.latency, 9.0);
        assert!(p.p50.is_nan() && p.p95.is_nan() && p.p99.is_nan());
        assert!(p.latency_max.is_nan());
    }

    #[test]
    fn saturation_report_round_trips() {
        let report = crate::sweep::SaturationReport {
            sat_chip: 2.4,
            sat_node: 0.6,
            zero_load_latency: 11.5,
            points: vec![pt(0.4, 10.0, 0.4), pt(2.4, 60.0, 2.3)],
        };
        let json = report.to_json("2D-Mesh");
        assert!(json.contains("\"p95\""));
        let (label, back) = crate::sweep::SaturationReport::from_json(&json).unwrap();
        assert_eq!(label, "2D-Mesh");
        assert_eq!(back, report);
    }

    #[test]
    fn infinite_latency_round_trips_as_nan() {
        let mut p = pt(0.4, 0.0, 0.1);
        p.latency = f64::INFINITY;
        let mut f = Figure::new("x", "t");
        f.push(Curve::new("c", vec![p]));
        let back = Figure::from_json(&f.to_json()).unwrap();
        assert!(back.curves[0].points[0].latency.is_nan());
    }
}
