//! Declarative scenario frontend: one JSON file describes one complete
//! experiment.
//!
//! A [`Scenario`] binds everything a run needs — topology family and
//! size, routing oracle, simulation windows, stepping mode, partitioning,
//! an optional fault spec or cycle-ordered fault schedule, a traffic
//! pattern, and one of the five run kinds (open-loop sweep, adaptive
//! saturation search, closed-loop collective, resilience sweep,
//! multi-tenant serving) — and
//! executes it through the same monomorphized [`Bench`] machinery the
//! figure harness uses. The goals:
//!
//! * **Precise validation.** Every parse error names the exact JSON path
//!   (`scenario.traffic.rate: expected number in (0,1]`), so a corpus of
//!   malformed files can pin error strings in tests.
//! * **Canonical round-trip.** [`Scenario::to_json`] writes the full
//!   resolved form; parsing it back yields an identical scenario.
//! * **Environment independence.** Stepping mode and the partition map
//!   are resolved from the scenario itself, never from `WSDF_*` env vars,
//!   so a scenario's report digest is a pure function of its file.
//! * **Golden digests.** [`ScenarioOutcome::digest`] hashes the
//!   canonical report JSON (FNV-1a via [`crate::json::digest_hex`]),
//!   giving the `scenarios/` corpus a one-line regression signature per
//!   file.

use crate::bench::{Bench, PatternSpec};
use crate::collective::{run_workload_impl, WorkloadReport, WorkloadUnits};
use crate::json::{self, read, Value};
use crate::report::{Curve, Figure};
use crate::resilience::{resilience_impl, ResilienceConfig, ResilienceReport};
use crate::serving::{run_serving_impl, ServingReport};
use crate::sweep::{adaptive_impl, sweep_impl, AdaptiveConfig, SaturationReport, SweepConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wsdf_exec::BspPool;
use wsdf_routing::{RouteMode, VcScheme};
use wsdf_sim::{SimConfig, TraceConfig, Tracer};
use wsdf_topo::{FaultSchedule, FaultSet, FaultSpec, SlParams, SwParams};
use wsdf_traffic::{PermKind, RingDirection};
use wsdf_workload::tenancy::{ArrivalProcess, JobClass, Placement, ServingSpec};
use wsdf_workload::Workload;

/// Which fabric a scenario builds, with its size parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Switch-less Dragonfly on wafers.
    Switchless(SlParams),
    /// Switch-based Dragonfly baseline.
    Switchbased(SwParams),
    /// Standalone m×m mesh C-group.
    Mesh {
        /// Mesh side in routers.
        m: u32,
        /// Chiplet side (nodes per chip = chiplet²).
        chiplet: u32,
        /// Channel width multiplier.
        width: u8,
    },
    /// Single ideal switch.
    Switch {
        /// Attached terminal chips.
        terminals: u32,
    },
}

impl Topology {
    /// Stable family name used in scenario files.
    pub fn family(&self) -> &'static str {
        match self {
            Topology::Switchless(_) => "switchless",
            Topology::Switchbased(_) => "switchbased",
            Topology::Mesh { .. } => "mesh",
            Topology::Switch { .. } => "switch",
        }
    }

    /// W-group count of the built fabric (1 for mesh/switch).
    fn wgroups(&self) -> u32 {
        match self {
            Topology::Switchless(p) => p.wgroups,
            Topology::Switchbased(p) => p.groups,
            _ => 1,
        }
    }

    fn to_json(&self) -> String {
        match self {
            Topology::Switchless(p) => {
                format!(
                    "{{\"family\": \"switchless\", \"params\": {}}}",
                    p.to_json()
                )
            }
            Topology::Switchbased(p) => {
                format!(
                    "{{\"family\": \"switchbased\", \"params\": {}}}",
                    p.to_json()
                )
            }
            Topology::Mesh { m, chiplet, width } => format!(
                "{{\"family\": \"mesh\", \"m\": {m}, \"chiplet\": {chiplet}, \"width\": {width}}}"
            ),
            Topology::Switch { terminals } => {
                format!("{{\"family\": \"switch\", \"terminals\": {terminals}}}")
            }
        }
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::obj(v, path)?;
        let family = read::str_field(v, path, "family")?;
        match family {
            "switchless" => {
                read::check_keys(v, path, &["family", "params"])?;
                let p =
                    SlParams::from_json(read::req(v, path, "params")?, &format!("{path}.params"))?;
                Ok(Topology::Switchless(p))
            }
            "switchbased" => {
                read::check_keys(v, path, &["family", "params"])?;
                let p =
                    SwParams::from_json(read::req(v, path, "params")?, &format!("{path}.params"))?;
                Ok(Topology::Switchbased(p))
            }
            "mesh" => {
                read::check_keys(v, path, &["family", "m", "chiplet", "width"])?;
                let m = read::u64_field(v, path, "m")?;
                let chiplet = read::u64_field(v, path, "chiplet")?;
                let width = read::u64_or(v, path, "width", 1)?;
                if m == 0 || m > u32::MAX as u64 {
                    return Err(format!("{path}.m: must be at least 1"));
                }
                if chiplet == 0 || m % chiplet != 0 {
                    return Err(format!("{path}.chiplet: must divide m ({m})"));
                }
                if width == 0 || width > 255 {
                    return Err(format!("{path}.width: expected integer in 1..=255"));
                }
                Ok(Topology::Mesh {
                    m: m as u32,
                    chiplet: chiplet as u32,
                    width: width as u8,
                })
            }
            "switch" => {
                read::check_keys(v, path, &["family", "terminals"])?;
                let terminals = read::u64_field(v, path, "terminals")?;
                if terminals < 2 || terminals > u32::MAX as u64 {
                    return Err(format!("{path}.terminals: must be at least 2"));
                }
                Ok(Topology::Switch {
                    terminals: terminals as u32,
                })
            }
            _ => Err(format!(
                "{path}.family: expected \"switchless\", \"switchbased\", \"mesh\" or \"switch\""
            )),
        }
    }
}

/// Simulation-window overrides of a scenario (a [`SimConfig`] subset; the
/// engine's Table-IV defaults fill anything unspecified).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Warm-up cycles excluded from statistics.
    pub warmup_cycles: u64,
    /// Measured cycles after warm-up.
    pub measure_cycles: u64,
    /// Drain cycles after measurement.
    pub drain_cycles: u64,
    /// Global RNG seed.
    pub seed: u64,
    /// Packet length in flits.
    pub packet_len: u8,
    /// Input buffer capacity per (port, VC) in flits.
    pub buffer_flits: u16,
}

impl Default for SimSpec {
    fn default() -> Self {
        let d = SimConfig::default();
        SimSpec {
            warmup_cycles: d.warmup_cycles,
            measure_cycles: d.measure_cycles,
            drain_cycles: d.drain_cycles,
            seed: d.seed,
            packet_len: d.packet_len,
            buffer_flits: d.buffer_flits,
        }
    }
}

impl SimSpec {
    fn to_json(&self) -> String {
        format!(
            "{{\"warmup_cycles\": {}, \"measure_cycles\": {}, \"drain_cycles\": {}, \
             \"seed\": {}, \"packet_len\": {}, \"buffer_flits\": {}}}",
            self.warmup_cycles,
            self.measure_cycles,
            self.drain_cycles,
            self.seed,
            self.packet_len,
            self.buffer_flits
        )
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(
            v,
            path,
            &[
                "warmup_cycles",
                "measure_cycles",
                "drain_cycles",
                "seed",
                "packet_len",
                "buffer_flits",
            ],
        )?;
        let d = SimSpec::default();
        let packet_len = read::u64_or(v, path, "packet_len", d.packet_len as u64)?;
        if packet_len == 0 || packet_len > 255 {
            return Err(format!("{path}.packet_len: expected integer in 1..=255"));
        }
        let buffer_flits = read::u64_or(v, path, "buffer_flits", d.buffer_flits as u64)?;
        if buffer_flits < packet_len || buffer_flits > 65_535 {
            return Err(format!(
                "{path}.buffer_flits: expected integer in {packet_len}..=65535 (at least one packet)"
            ));
        }
        let spec = SimSpec {
            warmup_cycles: read::u64_or(v, path, "warmup_cycles", d.warmup_cycles)?,
            measure_cycles: read::u64_or(v, path, "measure_cycles", d.measure_cycles)?,
            drain_cycles: read::u64_or(v, path, "drain_cycles", d.drain_cycles)?,
            seed: read::u64_or(v, path, "seed", d.seed)?,
            packet_len: packet_len as u8,
            buffer_flits: buffer_flits as u16,
        };
        if spec.measure_cycles == 0 {
            return Err(format!("{path}.measure_cycles: must be at least 1"));
        }
        Ok(spec)
    }
}

/// Engine stepping mode, fixed by the scenario (never the
/// `WSDF_EVENT_DRIVEN` env var — digests must not depend on the
/// environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stepping {
    /// Event-driven: idle routers skip, idle stretches fast-forward.
    Event,
    /// Dense: every router steps every cycle.
    Dense,
}

impl Stepping {
    /// Stable lowercase name used by scenario files.
    pub fn name(self) -> &'static str {
        match self {
            Stepping::Event => "event",
            Stepping::Dense => "dense",
        }
    }
}

/// Which partition-map builder a scenario uses when it runs parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Cut-minimizing locality-aware assignment
    /// ([`wsdf_topo::locality_partition`]).
    Locality,
    /// Legacy contiguous router-id blocks
    /// ([`wsdf_topo::contiguous_blocks`]).
    Blocks,
}

impl PartitionerKind {
    /// Stable lowercase name used by scenario files.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::Locality => "locality",
            PartitionerKind::Blocks => "blocks",
        }
    }
}

/// How a scenario assigns routers to BSP partitions. Always resolved to
/// an explicit [`SimConfig::partition_map`] at execution, so the
/// `WSDF_PARTITIONER` env var cannot influence a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Build the map with a named partitioner; `partitions == 0` sizes
    /// automatically from the worker-thread count (results are
    /// partition-count independent, so digests stay machine-independent).
    Auto {
        /// Requested partition count (0 = auto).
        partitions: u64,
        /// Map builder to use when the run is parallel.
        partitioner: PartitionerKind,
    },
    /// Explicit router→partition assignment (length = router count, ids
    /// dense in `0..P`).
    Map(Vec<u32>),
}

impl Default for Partitioning {
    fn default() -> Self {
        Partitioning::Auto {
            partitions: 1,
            partitioner: PartitionerKind::Locality,
        }
    }
}

impl Partitioning {
    fn to_json(&self) -> String {
        match self {
            Partitioning::Auto {
                partitions,
                partitioner,
            } => format!(
                "{{\"partitions\": {partitions}, \"partitioner\": \"{}\"}}",
                partitioner.name()
            ),
            Partitioning::Map(map) => {
                let ids: Vec<String> = map.iter().map(|p| p.to_string()).collect();
                format!("{{\"map\": [{}]}}", ids.join(", "))
            }
        }
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(v, path, &["partitions", "partitioner", "map"])?;
        if v.get("map").is_some() {
            if v.get("partitions").is_some() || v.get("partitioner").is_some() {
                return Err(format!(
                    "{path}: give either \"map\" or \"partitions\"/\"partitioner\", not both"
                ));
            }
            return Ok(Partitioning::Map(read::u32_list(v, path, "map")?));
        }
        let partitions = read::u64_or(v, path, "partitions", 1)?;
        let partitioner = match v.get("partitioner") {
            None => PartitionerKind::Locality,
            Some(p) => match p.as_str() {
                Some("locality") => PartitionerKind::Locality,
                Some("blocks") => PartitionerKind::Blocks,
                _ => {
                    return Err(format!(
                        "{path}.partitioner: expected \"locality\" or \"blocks\""
                    ))
                }
            },
        };
        Ok(Partitioning::Auto {
            partitions,
            partitioner,
        })
    }
}

/// Fault injection of a scenario: a one-shot spec, or a cycle-ordered
/// schedule resolved at a chosen cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultsSpec {
    /// Sample one [`FaultSpec`] against the fabric.
    Spec(FaultSpec),
    /// Accumulate a [`FaultSchedule`]'s events up to `at_cycle`.
    Schedule {
        /// The cycle-ordered event list.
        schedule: FaultSchedule,
        /// Cycle at which the fault state is materialized.
        at_cycle: u64,
    },
}

impl FaultsSpec {
    fn to_json(&self) -> String {
        match self {
            FaultsSpec::Spec(s) => format!("{{\"spec\": {}}}", s.to_json()),
            FaultsSpec::Schedule { schedule, at_cycle } => format!(
                "{{\"schedule\": {}, \"at_cycle\": {at_cycle}}}",
                schedule.to_json()
            ),
        }
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(v, path, &["spec", "schedule", "at_cycle"])?;
        match (v.get("spec").is_some(), v.get("schedule").is_some()) {
            (true, true) => Err(format!(
                "{path}: give either \"spec\" or \"schedule\", not both"
            )),
            (false, false) => Err(format!(
                "{path}: expected a \"spec\" or \"schedule\" member"
            )),
            (true, false) => {
                if v.get("at_cycle").is_some() {
                    return Err(format!("{path}.at_cycle: only a schedule takes at_cycle"));
                }
                Ok(FaultsSpec::Spec(FaultSpec::from_json(
                    read::req(v, path, "spec")?,
                    &format!("{path}.spec"),
                )?))
            }
            (false, true) => {
                let schedule = FaultSchedule::from_json(
                    read::req(v, path, "schedule")?,
                    &format!("{path}.schedule"),
                )?;
                let at_cycle = read::u64_field(v, path, "at_cycle")?;
                Ok(FaultsSpec::Schedule { schedule, at_cycle })
            }
        }
    }
}

/// Open-loop traffic of a scenario: a named pattern, plus (for
/// single-point open-loop runs) a per-node injection rate.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// The generator.
    pub pattern: PatternSpec,
    /// Offered load in flits/cycle/node, in `(0, 1]`.
    pub rate: Option<f64>,
}

impl TrafficSpec {
    fn to_json(&self) -> String {
        match self.rate {
            Some(r) => format!(
                "{{\"pattern\": \"{}\", \"rate\": {}}}",
                pattern_name(self.pattern),
                json::num(r)
            ),
            None => format!("{{\"pattern\": \"{}\"}}", pattern_name(self.pattern)),
        }
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(v, path, &["pattern", "rate"])?;
        let name = read::str_field(v, path, "pattern")?;
        let pattern = pattern_from_name(name)
            .ok_or_else(|| format!("{path}.pattern: unknown pattern \"{name}\""))?;
        let rate = match v.get("rate") {
            None => None,
            Some(Value::Num(x)) if *x > 0.0 && *x <= 1.0 => Some(*x),
            Some(_) => return Err(format!("{path}.rate: expected number in (0,1]")),
        };
        Ok(TrafficSpec { pattern, rate })
    }
}

/// Stable scenario-file name of a [`PatternSpec`].
pub fn pattern_name(spec: PatternSpec) -> &'static str {
    match spec {
        PatternSpec::Uniform => "uniform",
        PatternSpec::Permutation(PermKind::BitReverse) => "bit_reverse",
        PatternSpec::Permutation(PermKind::BitShuffle) => "bit_shuffle",
        PatternSpec::Permutation(PermKind::BitTranspose) => "bit_transpose",
        PatternSpec::Hotspot => "hotspot",
        PatternSpec::WorstCase => "worst_case",
        PatternSpec::RingCGroup(RingDirection::Unidirectional) => "ring_cgroup",
        PatternSpec::RingCGroup(RingDirection::Bidirectional) => "ring_cgroup_bidir",
        PatternSpec::RingWGroup(RingDirection::Unidirectional) => "ring_wgroup",
        PatternSpec::RingWGroup(RingDirection::Bidirectional) => "ring_wgroup_bidir",
    }
}

/// Inverse of [`pattern_name`].
pub fn pattern_from_name(name: &str) -> Option<PatternSpec> {
    Some(match name {
        "uniform" => PatternSpec::Uniform,
        "bit_reverse" => PatternSpec::Permutation(PermKind::BitReverse),
        "bit_shuffle" => PatternSpec::Permutation(PermKind::BitShuffle),
        "bit_transpose" => PatternSpec::Permutation(PermKind::BitTranspose),
        "hotspot" => PatternSpec::Hotspot,
        "worst_case" => PatternSpec::WorstCase,
        "ring_cgroup" => PatternSpec::RingCGroup(RingDirection::Unidirectional),
        "ring_cgroup_bidir" => PatternSpec::RingCGroup(RingDirection::Bidirectional),
        "ring_wgroup" => PatternSpec::RingWGroup(RingDirection::Unidirectional),
        "ring_wgroup_bidir" => PatternSpec::RingWGroup(RingDirection::Bidirectional),
        _ => return None,
    })
}

/// Closed-loop workload participants.
#[derive(Debug, Clone, PartialEq)]
pub enum Participants {
    /// One node per chip (node 0), filtered to the largest live component
    /// when the bench is degraded — matching the resilience probe.
    Chips,
    /// Explicit endpoint ids.
    List(Vec<u32>),
}

/// Closed-loop workload of a scenario: a named collective builder or an
/// explicit message DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Build with one of the [`Workload`] collective constructors.
    Collective {
        /// Builder name (`ring_allreduce`, `rd_allreduce`, `all_to_all`,
        /// `broadcast`, `reduce`, `pipeline`).
        kind: String,
        /// Who participates.
        participants: Participants,
        /// Payload flits (per participant, per pair, or per activation —
        /// whatever the builder takes).
        flits: u64,
        /// Microbatch count (pipeline builder only).
        microbatches: u32,
    },
    /// An explicit DAG in [`Workload::from_json`] form.
    Dag(Workload),
}

const COLLECTIVES: &[&str] = &[
    "ring_allreduce",
    "rd_allreduce",
    "all_to_all",
    "broadcast",
    "reduce",
    "pipeline",
];

impl WorkloadSpec {
    fn to_json(&self) -> String {
        match self {
            WorkloadSpec::Collective {
                kind,
                participants,
                flits,
                microbatches,
            } => {
                let parts = match participants {
                    Participants::Chips => "\"chips\"".to_string(),
                    Participants::List(ids) => {
                        let ids: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
                        format!("[{}]", ids.join(", "))
                    }
                };
                let mb = if kind == "pipeline" {
                    format!(", \"microbatches\": {microbatches}")
                } else {
                    String::new()
                };
                format!(
                    "{{\"collective\": \"{kind}\", \"participants\": {parts}, \"flits\": {flits}{mb}}}"
                )
            }
            WorkloadSpec::Dag(wl) => format!("{{\"dag\": {}}}", wl.to_json()),
        }
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(
            v,
            path,
            &["collective", "dag", "participants", "flits", "microbatches"],
        )?;
        match (v.get("collective").is_some(), v.get("dag").is_some()) {
            (true, true) => Err(format!(
                "{path}: give either \"collective\" or \"dag\", not both"
            )),
            (false, false) => Err(format!(
                "{path}: expected a \"collective\" or \"dag\" member"
            )),
            (false, true) => {
                for key in ["participants", "flits", "microbatches"] {
                    if v.get(key).is_some() {
                        return Err(format!(
                            "{path}.{key}: only collective workloads take {key}"
                        ));
                    }
                }
                let wl = Workload::from_json(read::req(v, path, "dag")?, &format!("{path}.dag"))?;
                Ok(WorkloadSpec::Dag(wl))
            }
            (true, false) => {
                let kind = read::str_field(v, path, "collective")?;
                if !COLLECTIVES.contains(&kind) {
                    return Err(format!("{path}.collective: unknown collective \"{kind}\""));
                }
                let participants = match v.get("participants") {
                    None => Participants::Chips,
                    Some(Value::Str(s)) if s == "chips" => Participants::Chips,
                    Some(Value::Arr(_)) => {
                        Participants::List(read::u32_list(v, path, "participants")?)
                    }
                    Some(_) => {
                        return Err(format!(
                            "{path}.participants: expected \"chips\" or an id array"
                        ))
                    }
                };
                let flits = read::u64_or(v, path, "flits", 64)?;
                if flits == 0 {
                    return Err(format!("{path}.flits: must be at least 1"));
                }
                let microbatches = match v.get("microbatches") {
                    None => 1,
                    Some(_) if kind != "pipeline" => {
                        return Err(format!(
                            "{path}.microbatches: only the pipeline collective takes microbatches"
                        ))
                    }
                    Some(_) => {
                        let mb = read::u64_field(v, path, "microbatches")?;
                        if mb == 0 || mb > u32::MAX as u64 {
                            return Err(format!("{path}.microbatches: must be at least 1"));
                        }
                        mb as u32
                    }
                };
                Ok(WorkloadSpec::Collective {
                    kind: kind.to_string(),
                    participants,
                    flits,
                    microbatches,
                })
            }
        }
    }
}

/// What a scenario measures.
#[derive(Debug, Clone, PartialEq)]
pub enum RunSpec {
    /// Fixed-grid open-loop sweep → a [`Figure`]. Without `rates_chip`
    /// the single point `traffic.rate × nodes_per_chip` is swept.
    OpenLoop {
        /// Per-chip offered rates, in sweep order.
        rates_chip: Option<Vec<f64>>,
    },
    /// Adaptive saturation search → a [`SaturationReport`].
    Adaptive {
        /// First coarse-scan rate, flits/cycle/chip.
        start_chip: f64,
        /// Geometric growth factor (> 1).
        growth: f64,
        /// Bisection relative tolerance (> 0).
        rel_tol: f64,
        /// Hard cap on simulated points.
        max_points: u64,
    },
    /// Closed-loop collective → a [`WorkloadReport`].
    ClosedLoop {
        /// What to run.
        workload: WorkloadSpec,
        /// Payload bytes per flit (bandwidth reporting).
        flit_bytes: f64,
        /// Core clock in GHz (bandwidth reporting).
        clock_ghz: f64,
    },
    /// Fault-fraction resilience sweep → a [`ResilienceReport`].
    Resilience {
        /// Open-loop probe rate, flits/cycle/chip.
        rate_chip: f64,
        /// Link-fault fractions to sweep.
        fractions: Vec<f64>,
        /// Router faults ride along at `fraction × router_ratio`.
        router_ratio: f64,
        /// Fault-sampling seed.
        seed: u64,
        /// Ring-allreduce probe payload per participant (0 = skip).
        collective_flits: u64,
    },
    /// Multi-tenant serving run → a [`ServingReport`].
    Serving {
        /// Arrival process, job-class mix and placements.
        spec: ServingSpec,
    },
}

impl RunSpec {
    /// Stable run-kind name (`open_loop`, `adaptive`, `closed_loop`,
    /// `resilience`, `serving`).
    pub fn kind(&self) -> &'static str {
        match self {
            RunSpec::OpenLoop { .. } => "open_loop",
            RunSpec::Adaptive { .. } => "adaptive",
            RunSpec::ClosedLoop { .. } => "closed_loop",
            RunSpec::Resilience { .. } => "resilience",
            RunSpec::Serving { .. } => "serving",
        }
    }

    fn to_json(&self) -> String {
        match self {
            RunSpec::OpenLoop { rates_chip } => match rates_chip {
                None => "{\"kind\": \"open_loop\"}".to_string(),
                Some(rates) => format!(
                    "{{\"kind\": \"open_loop\", \"rates_chip\": [{}]}}",
                    join_nums(rates)
                ),
            },
            RunSpec::Adaptive {
                start_chip,
                growth,
                rel_tol,
                max_points,
            } => format!(
                "{{\"kind\": \"adaptive\", \"start_chip\": {}, \"growth\": {}, \
                 \"rel_tol\": {}, \"max_points\": {max_points}}}",
                json::num(*start_chip),
                json::num(*growth),
                json::num(*rel_tol)
            ),
            RunSpec::ClosedLoop {
                workload,
                flit_bytes,
                clock_ghz,
            } => format!(
                "{{\"kind\": \"closed_loop\", \"workload\": {}, \"flit_bytes\": {}, \
                 \"clock_ghz\": {}}}",
                workload.to_json(),
                json::num(*flit_bytes),
                json::num(*clock_ghz)
            ),
            RunSpec::Resilience {
                rate_chip,
                fractions,
                router_ratio,
                seed,
                collective_flits,
            } => format!(
                "{{\"kind\": \"resilience\", \"rate_chip\": {}, \"fractions\": [{}], \
                 \"router_ratio\": {}, \"seed\": {seed}, \"collective_flits\": {collective_flits}}}",
                json::num(*rate_chip),
                join_nums(fractions),
                json::num(*router_ratio)
            ),
            RunSpec::Serving { spec } => {
                let arrivals = match &spec.arrivals {
                    ArrivalProcess::Poisson {
                        rate_per_kcycle,
                        horizon,
                    } => format!(
                        "{{\"process\": \"poisson\", \"rate_per_kcycle\": {}, \"horizon\": {horizon}}}",
                        json::num(*rate_per_kcycle)
                    ),
                    ArrivalProcess::Trace { cycles } => {
                        let cs: Vec<String> = cycles.iter().map(|c| c.to_string()).collect();
                        format!("{{\"process\": \"trace\", \"cycles\": [{}]}}", cs.join(", "))
                    }
                };
                let classes: Vec<String> = spec
                    .classes
                    .iter()
                    .map(|c| {
                        let mb = if c.collective == "pipeline" {
                            format!(", \"microbatches\": {}", c.microbatches)
                        } else {
                            String::new()
                        };
                        format!(
                            "{{\"name\": \"{}\", \"collective\": \"{}\", \"flits\": {}{mb}, \
                             \"participants\": {}, \"placement\": \"{}\", \"slo_cycles\": {}, \
                             \"weight\": {}}}",
                            json::escape(&c.name),
                            c.collective,
                            c.flits,
                            c.participants,
                            c.placement.name(),
                            c.slo_cycles,
                            json::num(c.weight)
                        )
                    })
                    .collect();
                format!(
                    "{{\"kind\": \"serving\", \"seed\": {}, \"max_jobs\": {}, \
                     \"arrivals\": {arrivals}, \"classes\": [{}]}}",
                    spec.seed,
                    spec.max_jobs,
                    classes.join(", ")
                )
            }
        }
    }

    fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::obj(v, path)?;
        let kind = read::str_field(v, path, "kind")?;
        match kind {
            "open_loop" => {
                read::check_keys(v, path, &["kind", "rates_chip"])?;
                let rates_chip = match v.get("rates_chip") {
                    None => None,
                    Some(_) => {
                        let arr = read::arr_field(v, path, "rates_chip")?;
                        if arr.is_empty() {
                            return Err(format!("{path}.rates_chip: expected at least one rate"));
                        }
                        let mut rates = Vec::with_capacity(arr.len());
                        for (i, r) in arr.iter().enumerate() {
                            match r {
                                Value::Num(x) if *x > 0.0 => rates.push(*x),
                                _ => {
                                    return Err(format!(
                                        "{path}.rates_chip[{i}]: expected number > 0"
                                    ))
                                }
                            }
                        }
                        Some(rates)
                    }
                };
                Ok(RunSpec::OpenLoop { rates_chip })
            }
            "adaptive" => {
                read::check_keys(
                    v,
                    path,
                    &["kind", "start_chip", "growth", "rel_tol", "max_points"],
                )?;
                let d = AdaptiveConfig::default();
                let start_chip =
                    read::opt_f64_field(v, path, "start_chip")?.unwrap_or(d.start_chip);
                if start_chip <= 0.0 {
                    return Err(format!("{path}.start_chip: expected number > 0"));
                }
                let growth = read::opt_f64_field(v, path, "growth")?.unwrap_or(d.growth);
                if growth <= 1.0 {
                    return Err(format!("{path}.growth: expected number > 1"));
                }
                let rel_tol = read::opt_f64_field(v, path, "rel_tol")?.unwrap_or(d.rel_tol);
                if rel_tol <= 0.0 {
                    return Err(format!("{path}.rel_tol: expected number > 0"));
                }
                let max_points = read::u64_or(v, path, "max_points", d.max_points as u64)?;
                if max_points < 3 {
                    return Err(format!("{path}.max_points: must be at least 3"));
                }
                Ok(RunSpec::Adaptive {
                    start_chip,
                    growth,
                    rel_tol,
                    max_points,
                })
            }
            "closed_loop" => {
                read::check_keys(v, path, &["kind", "workload", "flit_bytes", "clock_ghz"])?;
                let workload = WorkloadSpec::from_json(
                    read::req(v, path, "workload")?,
                    &format!("{path}.workload"),
                )?;
                let d = WorkloadUnits::default();
                let flit_bytes =
                    read::opt_f64_field(v, path, "flit_bytes")?.unwrap_or(d.flit_bytes);
                if flit_bytes <= 0.0 {
                    return Err(format!("{path}.flit_bytes: expected number > 0"));
                }
                let clock_ghz = read::opt_f64_field(v, path, "clock_ghz")?.unwrap_or(d.clock_ghz);
                if clock_ghz <= 0.0 {
                    return Err(format!("{path}.clock_ghz: expected number > 0"));
                }
                Ok(RunSpec::ClosedLoop {
                    workload,
                    flit_bytes,
                    clock_ghz,
                })
            }
            "resilience" => {
                read::check_keys(
                    v,
                    path,
                    &[
                        "kind",
                        "rate_chip",
                        "fractions",
                        "router_ratio",
                        "seed",
                        "collective_flits",
                    ],
                )?;
                let d = ResilienceConfig::default();
                let rate_chip = read::opt_f64_field(v, path, "rate_chip")?.unwrap_or(d.rate_chip);
                if rate_chip <= 0.0 {
                    return Err(format!("{path}.rate_chip: expected number > 0"));
                }
                let fractions = match v.get("fractions") {
                    None => d.fractions.clone(),
                    Some(_) => {
                        let arr = read::arr_field(v, path, "fractions")?;
                        let mut out = Vec::with_capacity(arr.len());
                        for (i, f) in arr.iter().enumerate() {
                            match f {
                                Value::Num(x) if (0.0..=1.0).contains(x) => out.push(*x),
                                _ => {
                                    return Err(format!(
                                        "{path}.fractions[{i}]: expected number in [0, 1]"
                                    ))
                                }
                            }
                        }
                        if out.is_empty() {
                            return Err(format!(
                                "{path}.fractions: expected at least one fraction"
                            ));
                        }
                        out
                    }
                };
                let router_ratio =
                    read::opt_f64_field(v, path, "router_ratio")?.unwrap_or(d.router_ratio);
                if !(0.0..=1.0).contains(&router_ratio) {
                    return Err(format!("{path}.router_ratio: expected number in [0, 1]"));
                }
                Ok(RunSpec::Resilience {
                    rate_chip,
                    fractions,
                    router_ratio,
                    seed: read::u64_or(v, path, "seed", d.seed)?,
                    collective_flits: read::u64_or(
                        v,
                        path,
                        "collective_flits",
                        d.collective_flits,
                    )?,
                })
            }
            "serving" => {
                read::check_keys(
                    v,
                    path,
                    &["kind", "seed", "max_jobs", "arrivals", "classes"],
                )?;
                let seed = read::u64_or(v, path, "seed", 1)?;
                let max_jobs = read::u64_or(v, path, "max_jobs", 256)?;
                if max_jobs == 0 || max_jobs > wsdf_workload::message::MAX_JOBS {
                    return Err(format!(
                        "{path}.max_jobs: must be in 1..={}",
                        wsdf_workload::message::MAX_JOBS
                    ));
                }
                let apath = format!("{path}.arrivals");
                let a = read::req(v, path, "arrivals")?;
                read::check_keys(
                    a,
                    &apath,
                    &["process", "rate_per_kcycle", "horizon", "cycles"],
                )?;
                let arrivals = match read::str_field(a, &apath, "process")? {
                    "poisson" => {
                        if a.get("cycles").is_some() {
                            return Err(format!("{apath}.cycles: only trace arrivals take cycles"));
                        }
                        let rate =
                            read::opt_f64_field(a, &apath, "rate_per_kcycle")?.unwrap_or(1.0);
                        if !(rate > 0.0 && rate <= 1000.0) {
                            return Err(format!(
                                "{apath}.rate_per_kcycle: expected number in (0, 1000]"
                            ));
                        }
                        let horizon = read::u64_or(a, &apath, "horizon", 10_000)?;
                        if horizon == 0 {
                            return Err(format!("{apath}.horizon: must be at least 1"));
                        }
                        ArrivalProcess::Poisson {
                            rate_per_kcycle: rate,
                            horizon,
                        }
                    }
                    "trace" => {
                        for key in ["rate_per_kcycle", "horizon"] {
                            if a.get(key).is_some() {
                                return Err(format!(
                                    "{apath}.{key}: only poisson arrivals take {key}"
                                ));
                            }
                        }
                        let arr = read::arr_field(a, &apath, "cycles")?;
                        if arr.is_empty() {
                            return Err(format!(
                                "{apath}.cycles: expected at least one arrival cycle"
                            ));
                        }
                        let mut cycles = Vec::with_capacity(arr.len());
                        for (i, c) in arr.iter().enumerate() {
                            cycles.push(read::as_u64(c).ok_or_else(|| {
                                format!("{apath}.cycles[{i}]: expected non-negative integer")
                            })?);
                        }
                        ArrivalProcess::Trace { cycles }
                    }
                    _ => {
                        return Err(format!(
                            "{apath}.process: expected \"poisson\" or \"trace\""
                        ))
                    }
                };
                let arr = read::arr_field(v, path, "classes")?;
                if arr.is_empty() {
                    return Err(format!("{path}.classes: expected at least one class"));
                }
                let mut classes = Vec::with_capacity(arr.len());
                for (i, c) in arr.iter().enumerate() {
                    let cpath = format!("{path}.classes[{i}]");
                    read::check_keys(
                        c,
                        &cpath,
                        &[
                            "name",
                            "collective",
                            "flits",
                            "microbatches",
                            "participants",
                            "placement",
                            "slo_cycles",
                            "weight",
                        ],
                    )?;
                    let name = read::str_field(c, &cpath, "name")?.to_string();
                    if name.is_empty() {
                        return Err(format!("{cpath}.name: must not be empty"));
                    }
                    let collective = read::str_field(c, &cpath, "collective")?;
                    if !COLLECTIVES.contains(&collective) {
                        return Err(format!(
                            "{cpath}.collective: unknown collective \"{collective}\""
                        ));
                    }
                    let flits = read::u64_or(c, &cpath, "flits", 64)?;
                    if flits == 0 {
                        return Err(format!("{cpath}.flits: must be at least 1"));
                    }
                    let microbatches = match c.get("microbatches") {
                        None => 1,
                        Some(_) if collective != "pipeline" => {
                            return Err(format!(
                            "{cpath}.microbatches: only the pipeline collective takes microbatches"
                        ))
                        }
                        Some(_) => {
                            let mb = read::u64_field(c, &cpath, "microbatches")?;
                            if mb == 0 || mb > u32::MAX as u64 {
                                return Err(format!("{cpath}.microbatches: must be at least 1"));
                            }
                            mb as u32
                        }
                    };
                    let participants = read::u64_field(c, &cpath, "participants")?;
                    if !(2..=u32::MAX as u64).contains(&participants) {
                        return Err(format!("{cpath}.participants: must be at least 2"));
                    }
                    let placement = match c.get("placement") {
                        None => Placement::Block,
                        Some(p) => p.as_str().and_then(Placement::from_name).ok_or_else(|| {
                            format!(
                                "{cpath}.placement: expected \"block\", \"strided\" or \"overlapping\""
                            )
                        })?,
                    };
                    let weight = read::opt_f64_field(c, &cpath, "weight")?.unwrap_or(1.0);
                    if weight <= 0.0 {
                        return Err(format!("{cpath}.weight: expected number > 0"));
                    }
                    classes.push(JobClass {
                        name,
                        collective: collective.to_string(),
                        flits,
                        microbatches,
                        participants: participants as u32,
                        placement,
                        slo_cycles: read::u64_or(c, &cpath, "slo_cycles", 0)?,
                        weight,
                    });
                }
                Ok(RunSpec::Serving {
                    spec: ServingSpec {
                        seed,
                        arrivals,
                        max_jobs,
                        classes,
                    },
                })
            }
            _ => Err(format!(
                "{path}.kind: expected \"open_loop\", \"adaptive\", \"closed_loop\", \
                 \"resilience\" or \"serving\""
            )),
        }
    }
}

/// A fully validated, executable experiment description. See the module
/// docs for the JSON schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (doubles as the open-loop figure id).
    pub name: String,
    /// Fabric family and size.
    pub topology: Topology,
    /// Routing mode (switchless/switchbased families only).
    pub route: RouteMode,
    /// VC discipline (switchless family only).
    pub vcs: VcScheme,
    /// Simulation windows/seed.
    pub sim: SimSpec,
    /// Engine stepping mode.
    pub stepping: Stepping,
    /// BSP partitioning.
    pub partitioning: Partitioning,
    /// Fault injection (never for resilience runs, which sample their
    /// own).
    pub faults: Option<FaultsSpec>,
    /// Open-loop traffic (open-loop/adaptive/resilience runs).
    pub traffic: Option<TrafficSpec>,
    /// Streaming telemetry (optional; observe-only). Adding or removing
    /// this section never changes the *report* digest — it only controls
    /// whether a trace stream is produced alongside.
    pub telemetry: Option<TraceConfig>,
    /// What to measure.
    pub run: RunSpec,
}

impl Scenario {
    /// Parse a scenario document (the whole file).
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        Self::from_json(&v, "scenario")
    }

    /// Parse a scenario from an already-parsed [`Value`] rooted at `path`.
    pub fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(
            v,
            path,
            &[
                "name",
                "topology",
                "oracle",
                "sim",
                "stepping",
                "partitioning",
                "faults",
                "traffic",
                "telemetry",
                "run",
            ],
        )?;
        let name = read::str_field(v, path, "name")?.to_string();
        if name.is_empty() {
            return Err(format!("{path}.name: must not be empty"));
        }
        let topology =
            Topology::from_json(read::req(v, path, "topology")?, &format!("{path}.topology"))?;

        // Oracle: only the Dragonfly families route configurably.
        let (mut route, mut vcs) = (RouteMode::Minimal, VcScheme::Baseline);
        if let Some(o) = v.get("oracle") {
            let opath = format!("{path}.oracle");
            match topology {
                Topology::Mesh { .. } | Topology::Switch { .. } => {
                    return Err(format!(
                        "{opath}: not configurable for family \"{}\"",
                        topology.family()
                    ));
                }
                _ => {}
            }
            read::check_keys(o, &opath, &["route", "vcs"])?;
            if let Some(r) = o.get("route") {
                route = r
                    .as_str()
                    .and_then(RouteMode::from_name)
                    .ok_or_else(|| format!("{opath}.route: expected \"minimal\" or \"valiant\""))?;
            }
            if let Some(s) = o.get("vcs") {
                if !matches!(topology, Topology::Switchless(_)) {
                    return Err(format!(
                        "{opath}.vcs: only the switch-less family has a VC scheme"
                    ));
                }
                vcs = s
                    .as_str()
                    .and_then(VcScheme::from_name)
                    .ok_or_else(|| format!("{opath}.vcs: expected \"baseline\" or \"reduced\""))?;
            }
        }

        let sim = match v.get("sim") {
            None => SimSpec::default(),
            Some(s) => SimSpec::from_json(s, &format!("{path}.sim"))?,
        };
        let stepping = match v.get("stepping") {
            None => Stepping::Event,
            Some(s) => match s.as_str() {
                Some("event") => Stepping::Event,
                Some("dense") => Stepping::Dense,
                _ => return Err(format!("{path}.stepping: expected \"event\" or \"dense\"")),
            },
        };
        let partitioning = match v.get("partitioning") {
            None => Partitioning::default(),
            Some(p) => Partitioning::from_json(p, &format!("{path}.partitioning"))?,
        };
        let faults = match v.get("faults") {
            None => None,
            Some(f) => Some(FaultsSpec::from_json(f, &format!("{path}.faults"))?),
        };
        let run = RunSpec::from_json(read::req(v, path, "run")?, &format!("{path}.run"))?;
        let traffic = match v.get("traffic") {
            None => None,
            Some(t) => Some(TrafficSpec::from_json(t, &format!("{path}.traffic"))?),
        };
        let telemetry = match v.get("telemetry") {
            None => None,
            Some(t) => Some(TraceConfig::from_json(t, &format!("{path}.telemetry"))?),
        };

        // Cross-section rules: what each run kind takes.
        let tpath = format!("{path}.traffic");
        match &run {
            RunSpec::ClosedLoop { .. } => {
                if traffic.is_some() {
                    return Err(format!(
                        "{tpath}: closed-loop runs take {path}.run.workload, not traffic"
                    ));
                }
            }
            RunSpec::Serving { .. } => {
                if traffic.is_some() {
                    return Err(format!(
                        "{tpath}: serving runs take {path}.run.classes, not traffic"
                    ));
                }
            }
            _ => {
                let t = traffic
                    .as_ref()
                    .ok_or_else(|| format!("{tpath}: missing required key"))?;
                match &run {
                    RunSpec::OpenLoop { rates_chip } => {
                        if rates_chip.is_some() && t.rate.is_some() {
                            return Err(format!(
                                "{tpath}.rate: run.rates_chip already sets the sweep rates; remove one"
                            ));
                        }
                        if rates_chip.is_none() && t.rate.is_none() {
                            return Err(format!("{tpath}.rate: missing required key"));
                        }
                    }
                    RunSpec::Adaptive { .. } => {
                        if t.rate.is_some() {
                            return Err(format!(
                                "{tpath}.rate: adaptive runs choose their own rates"
                            ));
                        }
                    }
                    RunSpec::Resilience { .. } => {
                        if t.rate.is_some() {
                            return Err(format!(
                                "{tpath}.rate: resilience runs set {path}.run.rate_chip instead"
                            ));
                        }
                    }
                    RunSpec::ClosedLoop { .. } | RunSpec::Serving { .. } => unreachable!(),
                }
                if t.pattern == PatternSpec::Hotspot && topology.wgroups() < 4 {
                    return Err(format!(
                        "{tpath}.pattern: hotspot needs at least 4 W-groups (topology has {})",
                        topology.wgroups()
                    ));
                }
            }
        }
        if matches!(run, RunSpec::Resilience { .. }) && faults.is_some() {
            return Err(format!(
                "{path}.faults: resilience runs sample their own faults; remove this section"
            ));
        }

        Ok(Scenario {
            name,
            topology,
            route,
            vcs,
            sim,
            stepping,
            partitioning,
            faults,
            traffic,
            telemetry,
            run,
        })
    }

    /// Canonical JSON form: every resolved field, one section per line.
    /// `Scenario::from_json_str(&s.to_json())` reproduces `s` exactly.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&self.name)));
        s.push_str(&format!("  \"topology\": {},\n", self.topology.to_json()));
        match &self.topology {
            Topology::Switchless(_) => s.push_str(&format!(
                "  \"oracle\": {{\"route\": \"{}\", \"vcs\": \"{}\"}},\n",
                self.route.name(),
                self.vcs.name()
            )),
            Topology::Switchbased(_) => s.push_str(&format!(
                "  \"oracle\": {{\"route\": \"{}\"}},\n",
                self.route.name()
            )),
            _ => {}
        }
        s.push_str(&format!("  \"sim\": {},\n", self.sim.to_json()));
        s.push_str(&format!("  \"stepping\": \"{}\",\n", self.stepping.name()));
        s.push_str(&format!(
            "  \"partitioning\": {},\n",
            self.partitioning.to_json()
        ));
        if let Some(f) = &self.faults {
            s.push_str(&format!("  \"faults\": {},\n", f.to_json()));
        }
        if let Some(t) = &self.traffic {
            s.push_str(&format!("  \"traffic\": {},\n", t.to_json()));
        }
        if let Some(t) = &self.telemetry {
            s.push_str(&format!("  \"telemetry\": {},\n", t.to_json()));
        }
        s.push_str(&format!("  \"run\": {}\n}}\n", self.run.to_json()));
        s
    }

    /// Build the bench this scenario describes (topology + oracle +
    /// faults applied).
    pub fn build_bench(&self) -> Bench {
        let bench = match &self.topology {
            Topology::Switchless(p) => Bench::switchless(p, self.route, self.vcs),
            Topology::Switchbased(p) => Bench::switchbased(p, self.route),
            Topology::Mesh { m, chiplet, width } => Bench::single_mesh(*m, *chiplet, *width),
            Topology::Switch { terminals } => Bench::single_switch(*terminals),
        };
        match &self.faults {
            None => bench,
            Some(FaultsSpec::Spec(spec)) => {
                let fs = FaultSet::sample(bench.fabric.net(), spec);
                bench.with_fault_set(&fs)
            }
            Some(FaultsSpec::Schedule { schedule, at_cycle }) => {
                let fs = schedule.at_cycle(bench.fabric.net(), *at_cycle);
                bench.with_fault_set(&fs)
            }
        }
    }

    /// The [`SimConfig`] this scenario runs with (before partitioning is
    /// resolved). Stepping mode comes from the scenario, not the
    /// environment.
    fn sim_config(&self) -> SimConfig {
        SimConfig {
            packet_len: self.sim.packet_len,
            buffer_flits: self.sim.buffer_flits,
            warmup_cycles: self.sim.warmup_cycles,
            measure_cycles: self.sim.measure_cycles,
            drain_cycles: self.sim.drain_cycles,
            seed: self.sim.seed,
            event_driven: self.stepping == Stepping::Event,
            ..SimConfig::default()
        }
    }

    /// Resolve [`Self::partitioning`] into an explicit partition map on
    /// `cfg`, so the engine (and the env-sensitive
    /// [`Bench::apply_partitioner`] default) never chooses for us.
    fn apply_partitioning(&self, bench: &Bench, cfg: &mut SimConfig) -> Result<(), String> {
        let net = bench.fabric.net();
        match &self.partitioning {
            Partitioning::Map(map) => {
                if map.len() != net.num_routers() {
                    return Err(format!(
                        "scenario.partitioning.map: {} entries for {} routers",
                        map.len(),
                        net.num_routers()
                    ));
                }
                let p = map.iter().copied().max().unwrap_or(0) as usize + 1;
                let mut seen = vec![false; p];
                for &id in map.iter() {
                    seen[id as usize] = true;
                }
                if seen.iter().any(|s| !s) {
                    return Err(
                        "scenario.partitioning.map: partition ids must be dense (every id in 0..P used)"
                            .to_string(),
                    );
                }
                cfg.partitions = p;
                cfg.partition_map = Some(Arc::new(map.clone()));
            }
            Partitioning::Auto {
                partitions,
                partitioner,
            } => {
                let live = bench
                    .fault_map()
                    .map_or(net.num_routers(), |f| f.live_routers());
                let p = wsdf_sim::effective_partitions(
                    *partitions as usize,
                    live,
                    wsdf_exec::configured_threads(),
                );
                cfg.partitions = p;
                if p > 1 {
                    let map = match partitioner {
                        PartitionerKind::Locality => {
                            wsdf_topo::locality_partition(net, p, bench.fault_map())
                        }
                        PartitionerKind::Blocks => wsdf_topo::contiguous_blocks(net, p),
                    };
                    cfg.partition_map = Some(Arc::new(map));
                }
            }
        }
        Ok(())
    }

    /// Execute on the process-wide executor.
    ///
    /// Note: this ignores [`Self::telemetry`] — producing a trace stream
    /// requires a sink, which the [`crate::Session`] builder supplies
    /// (`Session::scenario(&s).run()` captures it and returns the trace
    /// digest alongside the report).
    pub fn run(&self) -> Result<ScenarioOutcome, String> {
        self.run_on(wsdf_exec::global_pool())
    }

    /// Execute on an explicit [`BspPool`]. Reports (and therefore
    /// digests) are bit-identical for any pool size, partition count and
    /// partitioner. Like [`Scenario::run`], telemetry is not captured —
    /// use the [`crate::Session`] frontend for that.
    pub fn run_on(&self, pool: &BspPool) -> Result<ScenarioOutcome, String> {
        self.run_traced_on(pool, None)
    }

    /// The full run path: every scenario execution — [`Scenario::run`],
    /// [`Scenario::run_on`], and the [`crate::Session`] frontend — goes
    /// through here. `trace` attaches streaming telemetry to every
    /// simulation the run kind performs (observe-only: the outcome is
    /// bit-identical with and without it).
    pub(crate) fn run_traced_on(
        &self,
        pool: &BspPool,
        trace: Option<&Tracer>,
    ) -> Result<ScenarioOutcome, String> {
        let bench = self.build_bench();
        let mut cfg = self.sim_config();
        self.apply_partitioning(&bench, &mut cfg)?;
        // Partitioning is already resolved into an explicit map (or a
        // deliberate single partition) above, so the scheme below is
        // inert — it only matters when the map is absent. Pass the
        // scenario's own choice for documentation value.
        let pk = match &self.partitioning {
            Partitioning::Auto { partitioner, .. } => *partitioner,
            Partitioning::Map(_) => PartitionerKind::Locality,
        };
        match &self.run {
            RunSpec::OpenLoop { rates_chip } => {
                let t = self.traffic.as_ref().expect("validated at parse");
                let rates: Vec<f64> = match rates_chip {
                    Some(r) => r.clone(),
                    None => vec![t.rate.expect("validated at parse") * bench.nodes_per_chip],
                };
                let scfg = SweepConfig {
                    sim: cfg,
                    ..Default::default()
                };
                let points = sweep_impl(&bench, &scfg, t.pattern, &rates, pool, pk, trace);
                let mut fig = Figure::new(
                    self.name.clone(),
                    format!("scenario {} — {}", self.name, pattern_name(t.pattern)),
                );
                fig.push(Curve::new(bench.label.clone(), points));
                Ok(ScenarioOutcome::OpenLoop(fig))
            }
            RunSpec::Adaptive {
                start_chip,
                growth,
                rel_tol,
                max_points,
            } => {
                let t = self.traffic.as_ref().expect("validated at parse");
                let acfg = AdaptiveConfig {
                    base: SweepConfig {
                        sim: cfg,
                        ..Default::default()
                    },
                    start_chip: *start_chip,
                    growth: *growth,
                    rel_tol: *rel_tol,
                    max_points: *max_points as usize,
                };
                let report = adaptive_impl(&bench, &acfg, t.pattern, pool, pk, trace);
                Ok(ScenarioOutcome::Adaptive {
                    label: bench.label.clone(),
                    report,
                })
            }
            RunSpec::ClosedLoop {
                workload,
                flit_bytes,
                clock_ghz,
            } => {
                let wl = build_workload(workload, &bench)?;
                wl.validate(bench.endpoints())
                    .map_err(|e| format!("scenario.run.workload: {e}"))?;
                let units = WorkloadUnits {
                    flit_bytes: *flit_bytes,
                    clock_ghz: *clock_ghz,
                };
                let wcfg = bench.prepare_cfg(&cfg, pk);
                let report = run_workload_impl(&bench, &wcfg, &wl, &units, pool, trace)
                    .map_err(|e| format!("scenario.run: closed-loop run failed: {e}"))?;
                Ok(ScenarioOutcome::ClosedLoop(report))
            }
            RunSpec::Resilience {
                rate_chip,
                fractions,
                router_ratio,
                seed,
                collective_flits,
            } => {
                let t = self.traffic.as_ref().expect("validated at parse");
                let rcfg = ResilienceConfig {
                    sim: cfg,
                    rate_chip: *rate_chip,
                    fractions: fractions.clone(),
                    router_ratio: *router_ratio,
                    seed: *seed,
                    collective_flits: *collective_flits,
                };
                let report = resilience_impl(&bench, &rcfg, t.pattern, pool, pk, trace);
                Ok(ScenarioOutcome::Resilience(report))
            }
            RunSpec::Serving { spec } => {
                let scfg = bench.prepare_cfg(&cfg, pk);
                let report = run_serving_impl(&bench, &scfg, spec, pool, trace)
                    .map_err(|e| format!("scenario.run: {e}"))?;
                Ok(ScenarioOutcome::Serving(Box::new(report)))
            }
        }
    }
}

/// Comma-join a float list in canonical number form.
fn join_nums(xs: &[f64]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| json::num(*x)).collect();
    parts.join(", ")
}

/// Materialize a [`WorkloadSpec`] against a built bench.
fn build_workload(spec: &WorkloadSpec, bench: &Bench) -> Result<Workload, String> {
    let (kind, participants, flits, microbatches) = match spec {
        WorkloadSpec::Dag(wl) => return Ok(wl.clone()),
        WorkloadSpec::Collective {
            kind,
            participants,
            flits,
            microbatches,
        } => (kind, participants, *flits, *microbatches),
    };
    let ids: Vec<u32> = match participants {
        Participants::Chips => live_chips(bench),
        Participants::List(ids) => ids.clone(),
    };
    if ids.len() < 2 {
        return Err(format!(
            "scenario.run.workload: {kind} needs at least 2 participants, got {}",
            ids.len()
        ));
    }
    match kind.as_str() {
        "ring_allreduce" => Ok(Workload::ring_allreduce(&ids, flits)),
        "rd_allreduce" => {
            Workload::rd_allreduce(&ids, flits).map_err(|e| format!("scenario.run.workload: {e}"))
        }
        "all_to_all" => Ok(Workload::all_to_all(&ids, flits)),
        "broadcast" => Ok(Workload::broadcast(&ids, flits)),
        "reduce" => Ok(Workload::reduce(&ids, flits)),
        "pipeline" => Ok(Workload::pipeline(&ids, microbatches, flits)),
        other => Err(format!(
            "scenario.run.workload.collective: unknown collective \"{other}\""
        )),
    }
}

/// One node per chip (node 0), filtered to the largest live component on
/// a degraded bench — the same participant rule as the resilience probe.
/// Serving placements resolve against this same list.
pub(crate) fn live_chips(bench: &Bench) -> Vec<u32> {
    let Some(f) = &bench.faults else {
        return (0..bench.scope.num_chips())
            .map(|c| bench.scope.node_of(c, 0))
            .collect();
    };
    let comp = f.reach.largest_component_endpoints();
    let in_comp: std::collections::HashSet<u32> = comp.into_iter().collect();
    (0..bench.scope.num_chips())
        .map(|c| bench.scope.node_of(c, 0))
        .filter(|n| in_comp.contains(n))
        .collect()
}

/// The result of executing a [`Scenario`]: one of the five report types,
/// with uniform rendering and digesting.
#[derive(Debug, Clone)]
pub enum ScenarioOutcome {
    /// Open-loop sweep result.
    OpenLoop(Figure),
    /// Adaptive saturation-search result.
    Adaptive {
        /// Bench label (curve label of the report).
        label: String,
        /// The located saturation point and measured points.
        report: SaturationReport,
    },
    /// Closed-loop collective result.
    ClosedLoop(WorkloadReport),
    /// Resilience sweep result.
    Resilience(ResilienceReport),
    /// Multi-tenant serving result (boxed: the report carries the full
    /// job-CT histogram, far larger than the other variants).
    Serving(Box<ServingReport>),
}

impl ScenarioOutcome {
    /// Run-kind name, matching [`RunSpec::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioOutcome::OpenLoop(_) => "open_loop",
            ScenarioOutcome::Adaptive { .. } => "adaptive",
            ScenarioOutcome::ClosedLoop(_) => "closed_loop",
            ScenarioOutcome::Resilience(_) => "resilience",
            ScenarioOutcome::Serving(_) => "serving",
        }
    }

    /// The canonical report JSON (the digested text).
    pub fn report_json(&self) -> String {
        match self {
            ScenarioOutcome::OpenLoop(fig) => fig.to_json(),
            ScenarioOutcome::Adaptive { label, report } => report.to_json(label),
            ScenarioOutcome::ClosedLoop(r) => r.to_json(),
            ScenarioOutcome::Resilience(r) => r.to_json(),
            ScenarioOutcome::Serving(r) => r.to_json(),
        }
    }

    /// Content digest of [`report_json`](Self::report_json)
    /// (`fnv64:<16 hex>`); the golden-corpus regression signature.
    pub fn digest(&self) -> String {
        json::digest_hex(&self.report_json())
    }

    /// Human-readable rendering (harness output).
    pub fn render(&self) -> String {
        match self {
            ScenarioOutcome::OpenLoop(fig) => fig.render(),
            ScenarioOutcome::Adaptive { label, report } => report.render(label),
            ScenarioOutcome::ClosedLoop(r) => r.render(),
            ScenarioOutcome::Resilience(r) => r.render(),
            ScenarioOutcome::Serving(r) => r.render(),
        }
    }
}

// --- Golden corpus ---------------------------------------------------------

/// File name of the pinned digest table inside a corpus directory.
pub const DIGESTS_FILE: &str = "digests.json";

/// One loaded corpus scenario.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File name within the corpus directory (e.g. `sl_open_uniform.json`).
    pub file: String,
    /// The parsed scenario.
    pub scenario: Scenario,
}

/// The corpus directory: `WSDF_SCENARIO_DIR` if set, else `scenarios/`
/// under the current directory if present, else the repo-root
/// `scenarios/` relative to this crate.
pub fn corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("WSDF_SCENARIO_DIR") {
        return PathBuf::from(dir);
    }
    let local = PathBuf::from("scenarios");
    if local.is_dir() {
        return local;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Load every `*.json` scenario in `dir` (sorted by file name;
/// [`DIGESTS_FILE`] and subdirectories are skipped). Any file that fails
/// to parse fails the whole load, with the file name in the error.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?;
    let mut files: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read corpus dir entry: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !entry.path().is_file() || !name.ends_with(".json") || name == DIGESTS_FILE {
            continue;
        }
        files.push(name);
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let path = dir.join(&file);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let scenario = Scenario::from_json_str(&text).map_err(|e| format!("{file}: {e}"))?;
        out.push(CorpusEntry { file, scenario });
    }
    Ok(out)
}

/// Read the pinned digest table of a corpus directory: `(file, digest)`
/// pairs in file order.
pub fn read_digests(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let path = dir.join(DIGESTS_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = Value::parse(&text)?;
    let members = read::obj(&v, "digests")?;
    let mut out = Vec::with_capacity(members.len());
    for (file, digest) in members {
        let digest = digest
            .as_str()
            .ok_or_else(|| format!("digests.{file}: expected string"))?;
        out.push((file.clone(), digest.to_string()));
    }
    Ok(out)
}

/// Serialize a digest table (one `"file": "digest"` line per entry,
/// sorted by file name).
pub fn digests_json(entries: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut s = String::from("{\n");
    for (i, (file, digest)) in sorted.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": \"{}\"{}\n",
            json::escape(file),
            json::escape(digest),
            if i + 1 < sorted.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_scenario(run: &str, traffic: &str) -> String {
        format!(
            r#"{{
              "name": "t",
              "topology": {{"family": "mesh", "m": 4, "chiplet": 2, "width": 1}},
              "sim": {{"warmup_cycles": 200, "measure_cycles": 500, "drain_cycles": 100}},
              {traffic}
              "run": {run}
            }}"#
        )
    }

    #[test]
    fn minimal_open_loop_parses_and_round_trips() {
        let text = mesh_scenario(
            r#"{"kind": "open_loop"}"#,
            r#""traffic": {"pattern": "uniform", "rate": 0.25},"#,
        );
        let s = Scenario::from_json_str(&text).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.stepping, Stepping::Event);
        let back = Scenario::from_json_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), s.to_json());
    }

    #[test]
    fn switchless_scenario_round_trips_with_all_sections() {
        let text = r#"{
          "name": "full",
          "topology": {"family": "switchless", "params": {"preset": "radix16", "wgroups": 4}},
          "oracle": {"route": "valiant", "vcs": "reduced"},
          "sim": {"warmup_cycles": 100, "measure_cycles": 300, "seed": 7},
          "stepping": "dense",
          "partitioning": {"partitions": 4, "partitioner": "blocks"},
          "faults": {"spec": {"link_fraction": 0.05, "seed": 3}},
          "traffic": {"pattern": "hotspot"},
          "run": {"kind": "adaptive", "max_points": 6}
        }"#;
        let s = Scenario::from_json_str(text).unwrap();
        assert_eq!(s.route, RouteMode::Valiant);
        assert_eq!(s.vcs, VcScheme::Reduced);
        assert_eq!(s.stepping, Stepping::Dense);
        assert!(matches!(s.faults, Some(FaultsSpec::Spec(_))));
        let back = Scenario::from_json_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn error_paths_are_precise() {
        let rate_oob = mesh_scenario(
            r#"{"kind": "open_loop"}"#,
            r#""traffic": {"pattern": "uniform", "rate": 1.5},"#,
        );
        let bad_pattern = mesh_scenario(
            r#"{"kind": "open_loop"}"#,
            r#""traffic": {"pattern": "zipf", "rate": 0.5},"#,
        );
        let no_traffic = mesh_scenario(r#"{"kind": "open_loop"}"#, "");
        let adaptive_rate = mesh_scenario(
            r#"{"kind": "adaptive"}"#,
            r#""traffic": {"pattern": "uniform", "rate": 0.5},"#,
        );
        let hotspot = mesh_scenario(
            r#"{"kind": "open_loop"}"#,
            r#""traffic": {"pattern": "hotspot", "rate": 0.5},"#,
        );
        let bad_kind = mesh_scenario(
            r#"{"kind": "warp"}"#,
            r#""traffic": {"pattern": "uniform", "rate": 0.5},"#,
        );
        let cases: &[(&str, &str)] = &[
            (&rate_oob, "scenario.traffic.rate: expected number in (0,1]"),
            (
                &bad_pattern,
                "scenario.traffic.pattern: unknown pattern \"zipf\"",
            ),
            (&no_traffic, "scenario.traffic: missing required key"),
            (
                &adaptive_rate,
                "scenario.traffic.rate: adaptive runs choose their own rates",
            ),
            (
                &hotspot,
                "scenario.traffic.pattern: hotspot needs at least 4 W-groups (topology has 1)",
            ),
            (
                &bad_kind,
                "scenario.run.kind: expected \"open_loop\", \"adaptive\", \"closed_loop\", \"resilience\" or \"serving\"",
            ),
        ];
        for (doc, want) in cases {
            assert_eq!(&Scenario::from_json_str(doc).unwrap_err(), want);
        }
    }

    #[test]
    fn oracle_rejected_for_flat_families() {
        let text = r#"{
          "name": "t",
          "topology": {"family": "switch", "terminals": 8},
          "oracle": {"route": "minimal"},
          "traffic": {"pattern": "uniform", "rate": 0.3},
          "run": {"kind": "open_loop"}
        }"#;
        assert_eq!(
            Scenario::from_json_str(text).unwrap_err(),
            "scenario.oracle: not configurable for family \"switch\""
        );
    }

    #[test]
    fn resilience_rejects_faults_section() {
        let text = r#"{
          "name": "t",
          "topology": {"family": "mesh", "m": 4, "chiplet": 2, "width": 1},
          "faults": {"spec": {"link_fraction": 0.1}},
          "traffic": {"pattern": "uniform"},
          "run": {"kind": "resilience", "fractions": [0, 0.1]}
        }"#;
        assert_eq!(
            Scenario::from_json_str(text).unwrap_err(),
            "scenario.faults: resilience runs sample their own faults; remove this section"
        );
    }

    #[test]
    fn open_loop_executes_and_digest_is_stable() {
        let text = mesh_scenario(
            r#"{"kind": "open_loop", "rates_chip": [0.4, 0.8]}"#,
            r#""traffic": {"pattern": "uniform"},"#,
        );
        let s = Scenario::from_json_str(&text).unwrap();
        let a = s.run().unwrap();
        let b = s.run().unwrap();
        assert_eq!(a.kind(), "open_loop");
        assert_eq!(a.digest(), b.digest());
        assert!(a.report_json().contains("2D-Mesh"));
    }

    #[test]
    fn closed_loop_dag_and_collective_execute() {
        let text = mesh_scenario(
            r#"{"kind": "closed_loop", "workload": {"collective": "ring_allreduce", "flits": 16}}"#,
            "",
        );
        let s = Scenario::from_json_str(&text).unwrap();
        let out = s.run().unwrap();
        let ScenarioOutcome::ClosedLoop(r) = &out else {
            panic!("wrong outcome kind")
        };
        assert!(r.completion_cycles > 0);

        let dag = mesh_scenario(
            r#"{"kind": "closed_loop", "workload": {"dag": {"name": "two", "phases": ["p"],
                "messages": [{"src": 0, "dst": 5, "flits": 8, "phase": 0},
                             {"src": 5, "dst": 0, "flits": 8, "phase": 0, "preds": [0]}]}}}"#,
            "",
        );
        let s = Scenario::from_json_str(&dag).unwrap();
        let out = s.run().unwrap();
        assert_eq!(out.kind(), "closed_loop");
    }

    #[test]
    fn serving_parses_round_trips_and_executes() {
        let text = mesh_scenario(
            r#"{"kind": "serving", "seed": 3,
                "arrivals": {"process": "trace", "cycles": [0, 40, 80, 120]},
                "classes": [
                  {"name": "train", "collective": "ring_allreduce", "flits": 8,
                   "participants": 4, "placement": "block", "slo_cycles": 5000},
                  {"name": "infer", "collective": "pipeline", "flits": 4,
                   "microbatches": 2, "participants": 3, "placement": "overlapping",
                   "weight": 0.5}]}"#,
            "",
        );
        let s = Scenario::from_json_str(&text).unwrap();
        assert_eq!(s.run.kind(), "serving");
        // Canonical form round-trips exactly.
        let back = Scenario::from_json_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
        let out = s.run().unwrap();
        let ScenarioOutcome::Serving(r) = &out else {
            panic!("wrong outcome kind")
        };
        assert_eq!(r.jobs.len(), 4);
        assert_eq!(r.classes.len(), 2);
        assert_eq!(out.kind(), "serving");
    }

    #[test]
    fn serving_error_paths_are_precise() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"kind": "serving", "arrivals": {"process": "zipf"},
                    "classes": [{"name": "a", "collective": "reduce", "participants": 2}]}"#,
                "scenario.run.arrivals.process: expected \"poisson\" or \"trace\"",
            ),
            (
                r#"{"kind": "serving", "arrivals": {"process": "poisson", "rate_per_kcycle": 0},
                    "classes": [{"name": "a", "collective": "reduce", "participants": 2}]}"#,
                "scenario.run.arrivals.rate_per_kcycle: expected number in (0, 1000]",
            ),
            (
                r#"{"kind": "serving", "arrivals": {"process": "trace", "cycles": []},
                    "classes": [{"name": "a", "collective": "reduce", "participants": 2}]}"#,
                "scenario.run.arrivals.cycles: expected at least one arrival cycle",
            ),
            (
                r#"{"kind": "serving", "arrivals": {"process": "trace", "cycles": [0]},
                    "classes": []}"#,
                "scenario.run.classes: expected at least one class",
            ),
            (
                r#"{"kind": "serving", "arrivals": {"process": "trace", "cycles": [0]},
                    "classes": [{"name": "a", "collective": "reduce", "participants": 2,
                                 "placement": "anywhere"}]}"#,
                "scenario.run.classes[0].placement: expected \"block\", \"strided\" or \"overlapping\"",
            ),
            (
                r#"{"kind": "serving", "arrivals": {"process": "trace", "cycles": [0]},
                    "classes": [{"name": "a", "collective": "reduce", "participants": 1}]}"#,
                "scenario.run.classes[0].participants: must be at least 2",
            ),
            (
                r#"{"kind": "serving", "arrivals": {"process": "trace", "cycles": [0]},
                    "classes": [{"name": "a", "collective": "broadcast", "participants": 2,
                                 "microbatches": 3}]}"#,
                "scenario.run.classes[0].microbatches: only the pipeline collective takes microbatches",
            ),
        ];
        for (run, want) in cases {
            let err = Scenario::from_json_str(&mesh_scenario(run, "")).unwrap_err();
            assert_eq!(&err, want);
        }
        // Serving runs reject a traffic section outright.
        let err = Scenario::from_json_str(&mesh_scenario(
            r#"{"kind": "serving", "arrivals": {"process": "trace", "cycles": [0]},
                "classes": [{"name": "a", "collective": "reduce", "participants": 2}]}"#,
            r#""traffic": {"pattern": "uniform", "rate": 0.5},"#,
        ))
        .unwrap_err();
        assert_eq!(
            err,
            "scenario.traffic: serving runs take scenario.run.classes, not traffic"
        );
    }

    #[test]
    fn partitioning_does_not_change_digest() {
        let base = mesh_scenario(
            r#"{"kind": "open_loop", "rates_chip": [0.6]}"#,
            r#""traffic": {"pattern": "uniform"},"#,
        );
        let s = Scenario::from_json_str(&base).unwrap();
        let reference = s.run().unwrap().digest();
        for partitioning in [
            r#"{"partitions": 4, "partitioner": "blocks"}"#,
            r#"{"partitions": 4, "partitioner": "locality"}"#,
        ] {
            let mut v = s.clone();
            v.partitioning =
                Partitioning::from_json(&Value::parse(partitioning).unwrap(), "p").unwrap();
            assert_eq!(v.run().unwrap().digest(), reference, "{partitioning}");
        }
    }

    #[test]
    fn digest_table_round_trips() {
        let entries = vec![
            ("b.json".to_string(), "fnv64:0000000000000001".to_string()),
            ("a.json".to_string(), "fnv64:0000000000000002".to_string()),
        ];
        let text = digests_json(&entries);
        let dir = std::env::temp_dir().join(format!("wsdf_digests_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(DIGESTS_FILE), &text).unwrap();
        let back = read_digests(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "a.json");
        assert_eq!(back[1].0, "b.json");
    }
}
