//! Load-latency sweeps: the engine behind every latency-vs-injection-rate
//! figure in the paper.
//!
//! Two drivers share one measurement core:
//!
//! * [`sweep`] — the classic fixed-grid runner: walk a caller-supplied
//!   list of offered rates in order, stop early past saturation. Used by
//!   the figure harness, whose x-axes mirror the paper's.
//! * [`adaptive_sweep`] — the saturation-seeking runner: a geometric
//!   coarse scan brackets the saturation knee, then bisection narrows the
//!   bracket to a configurable relative tolerance. It finds the saturation
//!   throughput with strictly fewer simulations than a dense grid and
//!   returns a [`SaturationReport`].
//!
//! Every measured point carries the full latency distribution summary
//! (p50/p95/p99/max) from the engine's streaming
//! [`wsdf_sim::LatencyHistogram`], not just the mean.

use crate::bench::{Bench, PatternSpec};
use crate::scenario::PartitionerKind;
use crate::session::SessionConfig;
use wsdf_exec::BspPool;
use wsdf_sim::{Metrics, SimConfig, Tracer};

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load in flits/cycle/chip (paper x-axis).
    pub offered_chip: f64,
    /// Offered load in flits/cycle/endpoint.
    pub offered_node: f64,
    /// Mean packet latency in cycles (paper y-axis).
    pub latency: f64,
    /// Median (50th-percentile) packet latency in cycles.
    pub p50: f64,
    /// 95th-percentile packet latency in cycles.
    pub p95: f64,
    /// 99th-percentile packet latency in cycles.
    pub p99: f64,
    /// Maximum packet latency observed, in cycles.
    pub latency_max: f64,
    /// Accepted throughput, flits/cycle/chip.
    pub accepted_chip: f64,
    /// Accepted throughput, flits/cycle/endpoint.
    pub accepted_node: f64,
    /// Fraction of measured packets delivered.
    pub delivered: f64,
    /// True once the run is considered past saturation.
    pub saturated: bool,
    /// Cycles the engine actually stepped for this point (see
    /// [`wsdf_sim::Metrics::busy_cycles`]).
    pub busy_cycles: u64,
    /// Cycles the event-driven engine fast-forwarded over (0 under the
    /// dense loop) — together with `busy_cycles` this sums to the cycles
    /// simulated, making the stepping efficiency visible per point.
    pub skipped_cycles: u64,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Simulation config template (VCs raised per bench automatically).
    pub sim: SimConfig,
    /// A point counts as saturated once its latency exceeds this multiple
    /// of the zero-load (first point) latency.
    pub latency_blowup: f64,
    /// ... or once accepted/offered drops below this.
    pub min_acceptance: f64,
    /// Fixed-grid driver only ([`sweep`]): keep at most this many points
    /// past saturation before stopping the walk (the figures show the
    /// "knee" and one diverging point). The adaptive driver ignores it —
    /// bisection keeps every point it measures, saturated or not, because
    /// the saturated probes *are* the knee refinement.
    pub post_saturation_points: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        let sim = SimConfig {
            // Sweeps over large fabrics benefit from the BSP-parallel
            // engine; results are partition-count independent.
            partitions: 0,
            ..Default::default()
        };
        SweepConfig {
            sim,
            latency_blowup: 12.0,
            min_acceptance: 0.80,
            post_saturation_points: 1,
        }
    }
}

impl SweepConfig {
    /// Scale simulation windows (quick modes for tests/benches).
    pub fn scaled(mut self, f: f64) -> Self {
        self.sim = self.sim.scaled(f);
        self
    }
}

/// Configuration of the adaptive saturation-seeking driver
/// ([`adaptive_sweep`]).
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Shared sweep settings (simulation template, saturation rule).
    pub base: SweepConfig,
    /// First coarse-scan rate in flits/cycle/chip. If even this saturates,
    /// the driver backs off geometrically before scanning up.
    pub start_chip: f64,
    /// Geometric growth factor between coarse-scan rates (> 1).
    pub growth: f64,
    /// Bisection stops once the saturation bracket `[lo, hi]` satisfies
    /// `(hi - lo) / hi ≤ rel_tol`.
    pub rel_tol: f64,
    /// Hard cap on simulated points across both phases.
    pub max_points: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            base: SweepConfig::default(),
            start_chip: 0.1,
            growth: 1.6,
            rel_tol: 0.02,
            max_points: 24,
        }
    }
}

impl AdaptiveConfig {
    /// Scale simulation windows (quick modes for tests/benches).
    pub fn scaled(mut self, f: f64) -> Self {
        self.base = self.base.scaled(f);
        self
    }
}

/// Result of an [`adaptive_sweep`]: the located saturation point plus every
/// point measured along the way (sorted by offered load, ready for
/// [`crate::report::Curve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationReport {
    /// Saturation throughput in flits/cycle/chip — the highest accepted
    /// per-chip rate over all measured points (the same estimator as
    /// [`saturation_rate`] on a fixed grid).
    pub sat_chip: f64,
    /// Saturation throughput in flits/cycle/endpoint.
    pub sat_node: f64,
    /// The validated zero-load reference latency in cycles: the flat-region
    /// latency the anchor probe settled on, which classifies every point's
    /// latency blowup.
    pub zero_load_latency: f64,
    /// All measured points in ascending offered-load order.
    pub points: Vec<SweepPoint>,
}

impl SaturationReport {
    /// Render as aligned text rows (harness output): one summary line,
    /// then the point table via [`crate::report::Curve::render`] so the
    /// two human-readable outputs cannot diverge.
    pub fn render(&self, label: &str) -> String {
        format!(
            "  {:<18} sat {:.3} flits/cycle/chip, zero-load {:.1} cycles, {} points\n{}",
            label,
            self.sat_chip,
            self.zero_load_latency,
            self.points.len(),
            crate::report::Curve::new("", self.points.clone()).render()
        )
    }
}

/// Shared measurement core of both sweep drivers: owns the bench, the
/// executor, the saturation rule, and the zero-load reference latency that
/// classifies subsequent points.
struct SweepDriver<'a> {
    bench: &'a Bench,
    cfg: &'a SweepConfig,
    spec: PatternSpec,
    pool: &'a BspPool,
    sim: SimConfig,
    /// Ring collectives progress at the pace of their slowest chip: report
    /// bottleneck-chip throughput, not the average (an open-loop average
    /// would let interior chips mask a saturated C-group boundary link).
    bottleneck: bool,
    zero_load: Option<f64>,
    trace: Option<&'a Tracer>,
}

impl<'a> SweepDriver<'a> {
    fn new(
        bench: &'a Bench,
        cfg: &'a SweepConfig,
        spec: PatternSpec,
        pool: &'a BspPool,
        partitioner: PartitionerKind,
        trace: Option<&'a Tracer>,
    ) -> Self {
        let bottleneck = matches!(
            spec,
            PatternSpec::RingCGroup(_) | PatternSpec::RingWGroup(_)
        );
        let mut sim = cfg.sim.clone();
        sim.per_endpoint_stats = bottleneck;
        // Normalize once: VC raise + partition map are rate-independent,
        // so every point of the sweep shares one prepared config.
        let sim = bench.prepare_cfg(&sim, partitioner);
        SweepDriver {
            bench,
            cfg,
            spec,
            pool,
            sim,
            bottleneck,
            zero_load: None,
            trace,
        }
    }

    /// Run one simulation at `rate_chip` flits/cycle/chip and classify it.
    /// The first call establishes the zero-load reference latency.
    /// Deadlocked points (which indicate a routing bug, not congestion)
    /// panic — the routing disciplines are supposed to make them
    /// impossible.
    fn measure(&mut self, rate_chip: f64) -> SweepPoint {
        let bench = self.bench;
        let rate_node = rate_chip / bench.nodes_per_chip;
        let pattern = bench.pattern(self.spec, rate_node);
        let metrics = bench
            .run_prepared(&self.sim, pattern.as_ref(), self.pool, self.trace)
            .unwrap_or_else(|e| panic!("[{}] {:?} @ {rate_chip}: {e}", bench.label, self.spec));
        let latency = metrics.avg_latency().unwrap_or(f64::INFINITY);
        let zero_load = *self.zero_load.get_or_insert(latency);
        // Normalize to *injecting* endpoints: the paper's per-chip axes
        // count only chips that generate traffic (hotspot W-groups,
        // non-palindromic permutation sources).
        let af = pattern.active_fraction().max(1e-9);
        let accepted_node = if self.bottleneck {
            // Slowest chip: min over chips of its nodes' ejected flits.
            let per_ep = &metrics.ejected_per_endpoint;
            let mut per_chip = vec![0u64; bench.scope.num_chips() as usize];
            for (ep, &flits) in per_ep.iter().enumerate() {
                per_chip[bench.scope.chip[ep] as usize] += flits as u64;
            }
            let min_chip = per_chip.iter().copied().min().unwrap_or(0);
            min_chip as f64 / (metrics.measure_cycles as f64 * bench.scope.nodes_per_chip as f64)
        } else {
            metrics.accepted_rate() / af
        };
        // Compare against the realized injection (source queues may clip).
        let offered_effective = (metrics.injected_rate() / af).max(1e-12);
        let acceptance = accepted_node / offered_effective;
        let saturated =
            latency > zero_load * self.cfg.latency_blowup || acceptance < self.cfg.min_acceptance;
        let pct = |q: Option<u64>| q.map(|v| v as f64).unwrap_or(f64::INFINITY);
        SweepPoint {
            offered_chip: rate_chip,
            offered_node: rate_node,
            latency,
            p50: pct(metrics.latency_hist.p50()),
            p95: pct(metrics.latency_hist.p95()),
            p99: pct(metrics.latency_hist.p99()),
            latency_max: latency_max_cycles(&metrics),
            accepted_chip: accepted_node * bench.nodes_per_chip,
            accepted_node,
            delivered: metrics.ejection_fraction(),
            saturated,
            busy_cycles: metrics.busy_cycles,
            skipped_cycles: metrics.skipped_cycles,
        }
    }
}

/// Max latency as f64, infinite when nothing ejected (mirrors the mean).
fn latency_max_cycles(m: &Metrics) -> f64 {
    if m.packets_ejected == 0 {
        f64::INFINITY
    } else {
        m.latency_max as f64
    }
}

/// Run a fixed-grid sweep: one simulation per offered per-chip rate, in
/// order, stopping early past saturation (see
/// [`SweepConfig::post_saturation_points`]).
///
/// Every point runs on the *same* persistent executor
/// ([`wsdf_exec::global_pool`], built on first use and shared
/// process-wide), so worker threads — and their partition-pinned cache
/// state — are reused across sweep points instead of being re-created per
/// simulation.
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).sweep(spec, rates)"
)]
pub fn sweep(
    bench: &Bench,
    cfg: &SweepConfig,
    spec: PatternSpec,
    rates_chip: &[f64],
) -> Vec<SweepPoint> {
    sweep_impl(
        bench,
        cfg,
        spec,
        rates_chip,
        wsdf_exec::global_pool(),
        SessionConfig::from_env().partitioner,
        None,
    )
}

/// [`sweep`] on an explicit [`BspPool`] executor (results are pool-size
/// independent; used by the resilience sweep to keep one pool across every
/// fault fraction).
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).pool(pool).sweep(spec, rates)"
)]
pub fn sweep_on(
    bench: &Bench,
    cfg: &SweepConfig,
    spec: PatternSpec,
    rates_chip: &[f64],
    pool: &BspPool,
) -> Vec<SweepPoint> {
    sweep_impl(
        bench,
        cfg,
        spec,
        rates_chip,
        pool,
        SessionConfig::from_env().partitioner,
        None,
    )
}

/// The fixed-grid sweep core every entry point routes through — the
/// [`crate::Session`] run kind, the deprecated free functions, and the
/// resilience probe alike.
pub(crate) fn sweep_impl(
    bench: &Bench,
    cfg: &SweepConfig,
    spec: PatternSpec,
    rates_chip: &[f64],
    pool: &BspPool,
    partitioner: PartitionerKind,
    trace: Option<&Tracer>,
) -> Vec<SweepPoint> {
    let mut driver = SweepDriver::new(bench, cfg, spec, pool, partitioner, trace);
    let mut out = Vec::new();
    let mut past_saturation = 0usize;
    for &rate_chip in rates_chip {
        let point = driver.measure(rate_chip);
        let saturated = point.saturated;
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation > cfg.post_saturation_points {
                break;
            }
        }
    }
    out
}

/// A back-off step during anchor search counts as progress when it lowers
/// the mean latency by more than this factor — the signature of a start
/// rate inside the congested region (below the knee, latency is flat in
/// rate; inside it, latency climbs steeply).
const ANCHOR_SLACK: f64 = 1.5;

/// Run an adaptive saturation-seeking sweep on the process-wide executor.
///
/// Phase 1 anchors the zero-load reference: the start rate is probed, then
/// validated by one geometrically slower probe — backing off further while
/// the slower probe is materially faster (`ANCHOR_SLACK`) or the current
/// lowest point is outright saturated, so a start inside the congested
/// region (which cannot be detected from its own numbers alone) does not
/// poison the reference. The scan then walks geometric steps up from the
/// anchored region until a point saturates, bracketing the knee. Phase 2
/// bisects the bracket until it is narrower than
/// [`AdaptiveConfig::rel_tol`] (relative to its upper edge) or the
/// [`AdaptiveConfig::max_points`] budget runs out; rates measured during
/// back-off seed the bracket directly and are never re-simulated.
///
/// All simulations reuse the persistent [`wsdf_exec::global_pool`]
/// executor, so partition state stays pinned to warm worker threads across
/// the whole search. The driver's decisions depend only on merged metrics,
/// which are bit-identical for any partition/worker count — the report is
/// therefore deterministic too (covered by the determinism matrix in
/// `tests/determinism_and_vcs.rs`).
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).adaptive(spec, &cfg)"
)]
pub fn adaptive_sweep(bench: &Bench, cfg: &AdaptiveConfig, spec: PatternSpec) -> SaturationReport {
    adaptive_impl(
        bench,
        cfg,
        spec,
        wsdf_exec::global_pool(),
        SessionConfig::from_env().partitioner,
        None,
    )
}

/// [`adaptive_sweep`] on an explicit [`BspPool`] executor (results are
/// pool-size independent; used by the scenario runner to pin worker
/// counts for digest reproducibility).
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).pool(pool).adaptive(spec, &cfg)"
)]
pub fn adaptive_sweep_on(
    bench: &Bench,
    cfg: &AdaptiveConfig,
    spec: PatternSpec,
    pool: &BspPool,
) -> SaturationReport {
    adaptive_impl(
        bench,
        cfg,
        spec,
        pool,
        SessionConfig::from_env().partitioner,
        None,
    )
}

/// The saturation-seeking core behind [`adaptive_sweep`] and the
/// [`crate::Session`] adaptive run kind.
pub(crate) fn adaptive_impl(
    bench: &Bench,
    cfg: &AdaptiveConfig,
    spec: PatternSpec,
    pool: &BspPool,
    partitioner: PartitionerKind,
    trace: Option<&Tracer>,
) -> SaturationReport {
    assert!(cfg.growth > 1.0, "growth must be > 1");
    assert!(cfg.start_chip > 0.0, "start_chip must be > 0");
    assert!(cfg.rel_tol > 0.0, "rel_tol must be > 0");
    let mut driver = SweepDriver::new(bench, &cfg.base, spec, pool, partitioner, trace);
    let budget = cfg.max_points.max(3);
    let mut points: Vec<SweepPoint> = Vec::new();

    // Phase 1a: establish a trustworthy zero-load anchor. Each candidate
    // is measured against itself (fresh reference), then validated by a
    // probe one geometric step down: keep descending while the candidate
    // is saturated or the probe is materially faster.
    let mut low_rate = cfg.start_chip;
    let mut low = driver.measure(low_rate);
    loop {
        if points.len() + 2 > budget / 2 {
            points.push(low.clone());
            break;
        }
        let probe_rate = low_rate / cfg.growth;
        driver.zero_load = None;
        let probe = driver.measure(probe_rate);
        if low.saturated || low.latency > probe.latency * ANCHOR_SLACK {
            points.push(low);
            low_rate = probe_rate;
            low = probe;
        } else {
            // Probe confirmed the anchor region is flat: adopt the better
            // of the two latencies as the reference and stop descending.
            driver.zero_load = Some(probe.latency.min(low.latency));
            points.push(probe);
            points.push(low.clone());
            break;
        }
    }
    // Points measured before the final anchor existed were classified
    // against their own (possibly congested) latency; re-apply the blowup
    // rule with the real reference. The acceptance rule is
    // anchor-independent and its verdicts are kept.
    if let Some(anchor) = driver.zero_load {
        for p in &mut points {
            if p.latency > anchor * cfg.base.latency_blowup {
                p.saturated = true;
            }
        }
    }

    // Phase 1b: the bracket. Back-off may already have produced saturated
    // points — reuse them as the upper edge instead of re-simulating;
    // otherwise scan geometrically up from the highest unsaturated rate.
    // Only saturated points *above* `lo` qualify as the upper edge: a
    // degenerate low-rate probe (too slow to complete a packet in the
    // measurement window reads as acceptance 0) must not invert the
    // bracket and shadow the real knee.
    let mut lo = points
        .iter()
        .filter(|p| !p.saturated)
        .map(|p| p.offered_chip)
        .fold(f64::NAN, f64::max);
    let mut hi = points
        .iter()
        .filter(|p| p.saturated && p.offered_chip > lo)
        .map(|p| p.offered_chip)
        .fold(f64::INFINITY, f64::min);
    if lo.is_nan() {
        // Budget exhausted without a clean point; the bracket degenerates
        // and bisection is skipped.
        hi = f64::INFINITY;
    } else if hi.is_infinite() {
        let mut rate = lo;
        while points.len() < budget {
            rate *= cfg.growth;
            let p = driver.measure(rate);
            let saturated = p.saturated;
            points.push(p);
            if saturated {
                hi = rate;
                break;
            }
            lo = rate;
        }
    }
    let hi = hi.is_finite().then_some(hi);

    // Phase 2: bisect the bracket down to the requested tolerance.
    if let Some(mut hi) = hi {
        while (hi - lo) / hi > cfg.rel_tol && points.len() < budget {
            let mid = 0.5 * (lo + hi);
            let p = driver.measure(mid);
            let saturated = p.saturated;
            points.push(p);
            if saturated {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }

    points.sort_by(|a, b| a.offered_chip.total_cmp(&b.offered_chip));
    let sat_chip = saturation_rate(&points);
    // The validated anchor, not blindly the lowest-rate point: a
    // degenerate probe below the anchor may carry an infinite latency.
    let zero_load_latency = driver.zero_load.unwrap_or(f64::NAN);
    SaturationReport {
        sat_chip,
        sat_node: sat_chip / bench.nodes_per_chip,
        zero_load_latency,
        points,
    }
}

/// Saturation throughput estimate: the highest accepted per-chip rate
/// over the sweep (flits/cycle/chip).
pub fn saturation_rate(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.accepted_chip).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::Bench;
    use crate::session::Session;

    fn run_sweep(
        bench: &Bench,
        cfg: &SweepConfig,
        spec: PatternSpec,
        rates: &[f64],
    ) -> Vec<SweepPoint> {
        Session::bench(bench)
            .sweep(cfg, spec, rates)
            .unwrap()
            .report
    }

    fn run_adaptive(bench: &Bench, cfg: &AdaptiveConfig, spec: PatternSpec) -> SaturationReport {
        Session::bench(bench).adaptive(cfg, spec).unwrap().report
    }

    fn quick() -> SweepConfig {
        SweepConfig::default().scaled(0.12)
    }

    fn quick_adaptive() -> AdaptiveConfig {
        AdaptiveConfig {
            base: quick(),
            start_chip: 0.2,
            ..Default::default()
        }
    }

    #[test]
    fn mesh_sweep_saturates_above_switch() {
        // The core Fig. 10(a) claim at miniature scale: a 4×4 mesh C-group
        // saturates well above 1 flit/cycle/chip; a single switch at ~1.
        let mesh = Bench::single_mesh(4, 2, 1);
        let sw = Bench::single_switch(16);
        let rates: Vec<f64> = (1..=8).map(|i| i as f64 * 0.4).collect();
        let pm = run_sweep(&mesh, &quick(), PatternSpec::Uniform, &rates);
        let ps = run_sweep(&sw, &quick(), PatternSpec::Uniform, &rates);
        let sat_mesh = saturation_rate(&pm);
        let sat_sw = saturation_rate(&ps);
        assert!(
            sat_mesh > 1.5 * sat_sw,
            "mesh {sat_mesh:.2} should beat switch {sat_sw:.2}"
        );
        assert!(sat_sw <= 1.05, "switch cannot exceed 1 flit/cycle/chip");
    }

    #[test]
    fn sweep_stops_after_saturation() {
        let sw = Bench::single_switch(8);
        let rates: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let pts = run_sweep(&sw, &quick(), PatternSpec::Uniform, &rates);
        assert!(pts.len() < rates.len(), "sweep must stop early");
        assert!(pts.last().unwrap().saturated);
    }

    #[test]
    fn latency_grows_monotonically_near_saturation() {
        let mesh = Bench::single_mesh(4, 2, 1);
        let pts = run_sweep(&mesh, &quick(), PatternSpec::Uniform, &[0.4, 1.2, 2.0, 2.8]);
        assert!(pts.len() >= 3);
        assert!(
            pts.last().unwrap().latency > pts[0].latency,
            "latency must rise with load"
        );
    }

    #[test]
    fn sweep_points_carry_percentiles() {
        let mesh = Bench::single_mesh(4, 2, 1);
        let pts = run_sweep(&mesh, &quick(), PatternSpec::Uniform, &[0.8]);
        let p = &pts[0];
        assert!(p.p50.is_finite() && p.p95.is_finite() && p.p99.is_finite());
        // Percentiles are monotone and bracketed by the mean's
        // neighborhood / the observed max.
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        assert!(p.p99 <= p.latency_max);
        assert!(p.p50 <= p.latency_max);
    }

    #[test]
    fn adaptive_matches_dense_grid_with_fewer_points() {
        // Both topology families of the intra-C-group comparison: the
        // adaptive driver must land within ±2% of a dense fixed-grid
        // saturation estimate while simulating strictly fewer points.
        for (bench, dense_max) in [
            (Bench::single_mesh(4, 2, 1), 3.6),
            (Bench::single_switch(16), 1.4),
        ] {
            let dense: Vec<f64> = (1..=24).map(|i| dense_max * i as f64 / 24.0).collect();
            let mut grid_cfg = quick();
            grid_cfg.post_saturation_points = dense.len(); // no early stop
            let grid = run_sweep(&bench, &grid_cfg, PatternSpec::Uniform, &dense);
            let sat_grid = saturation_rate(&grid);

            let report = run_adaptive(&bench, &quick_adaptive(), PatternSpec::Uniform);
            assert!(
                report.points.len() < grid.len(),
                "[{}] adaptive used {} points, grid {}",
                bench.label,
                report.points.len(),
                grid.len()
            );
            let err = (report.sat_chip - sat_grid).abs() / sat_grid;
            assert!(
                err <= 0.02,
                "[{}] adaptive sat {:.3} vs grid {:.3} ({:.1}% off)",
                bench.label,
                report.sat_chip,
                sat_grid,
                err * 100.0
            );
        }
    }

    #[test]
    fn adaptive_report_is_ordered_and_bracketed() {
        let mesh = Bench::single_mesh(4, 2, 1);
        let report = run_adaptive(&mesh, &quick_adaptive(), PatternSpec::Uniform);
        assert!(report.points.len() >= 3);
        assert!(report.zero_load_latency.is_finite());
        assert!(report.sat_chip > 0.0);
        assert_eq!(report.sat_node, report.sat_chip / mesh.nodes_per_chip);
        for w in report.points.windows(2) {
            assert!(w[0].offered_chip < w[1].offered_chip, "points unsorted");
        }
        // The search must actually have seen both sides of the knee.
        assert!(report.points.iter().any(|p| p.saturated));
        assert!(report.points.iter().any(|p| !p.saturated));
        // And the bracket must be tight: the widest gap between an
        // unsaturated point and the next saturated point obeys rel_tol.
        let lo = report
            .points
            .iter()
            .filter(|p| !p.saturated)
            .map(|p| p.offered_chip)
            .fold(0.0, f64::max);
        let hi = report
            .points
            .iter()
            .filter(|p| p.saturated)
            .map(|p| p.offered_chip)
            .fold(f64::INFINITY, f64::min);
        assert!(
            (hi - lo) / hi <= AdaptiveConfig::default().rel_tol + 1e-9,
            "bracket [{lo}, {hi}] wider than tolerance"
        );
    }

    #[test]
    fn anchor_probe_rejects_congested_start() {
        // Start just below the switch knee (~0.97 flits/cycle/chip): the
        // start point still accepts nearly everything, so it cannot be
        // flagged from its own numbers, but its latency already sits well
        // above the flat zero-load level. The downward anchor probe must
        // reject it, so the reported zero-load reference and saturation
        // estimate match a run started from the flat region.
        let congested = AdaptiveConfig {
            base: quick(),
            start_chip: 0.9,
            ..Default::default()
        };
        let sw = Bench::single_switch(16);
        let report = run_adaptive(&sw, &congested, PatternSpec::Uniform);
        let flat = run_adaptive(&sw, &quick_adaptive(), PatternSpec::Uniform);
        assert!(
            report.zero_load_latency <= flat.zero_load_latency * ANCHOR_SLACK,
            "congested start anchored at {:.1} cycles vs flat {:.1}",
            report.zero_load_latency,
            flat.zero_load_latency
        );
        let err = (report.sat_chip - flat.sat_chip).abs() / flat.sat_chip;
        assert!(
            err <= 0.05,
            "sat {:.3} (congested start) vs {:.3} (flat start)",
            report.sat_chip,
            flat.sat_chip
        );
    }

    #[test]
    fn adaptive_backs_off_when_start_saturates() {
        // Start far past the single switch's ~1 flit/cycle/chip limit: the
        // driver must back off to find a clean zero-load anchor and still
        // produce a sane estimate.
        let sw = Bench::single_switch(8);
        let cfg = AdaptiveConfig {
            base: quick(),
            start_chip: 4.0,
            ..Default::default()
        };
        let report = run_adaptive(&sw, &cfg, PatternSpec::Uniform);
        assert!(report.points.iter().any(|p| !p.saturated));
        assert!(report.sat_chip > 0.5 && report.sat_chip <= 1.1);
    }

    #[test]
    fn render_includes_percentile_columns() {
        let mesh = Bench::single_mesh(4, 2, 1);
        let report = run_adaptive(&mesh, &quick_adaptive(), PatternSpec::Uniform);
        let txt = report.render("2D-Mesh");
        assert!(txt.contains("p50"));
        assert!(txt.contains("p99"));
        assert!(txt.contains("sat"));
    }
}
