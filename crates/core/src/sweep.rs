//! Load-latency sweeps: the engine behind every latency-vs-injection-rate
//! figure in the paper.

use crate::bench::{Bench, PatternSpec};
use wsdf_sim::SimConfig;

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load in flits/cycle/chip (paper x-axis).
    pub offered_chip: f64,
    /// Offered load in flits/cycle/endpoint.
    pub offered_node: f64,
    /// Mean packet latency in cycles (paper y-axis).
    pub latency: f64,
    /// Accepted throughput, flits/cycle/chip.
    pub accepted_chip: f64,
    /// Accepted throughput, flits/cycle/endpoint.
    pub accepted_node: f64,
    /// Fraction of measured packets delivered.
    pub delivered: f64,
    /// True once the run is considered past saturation.
    pub saturated: bool,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Simulation config template (VCs raised per bench automatically).
    pub sim: SimConfig,
    /// Stop the sweep once latency exceeds this multiple of the
    /// zero-load (first point) latency.
    pub latency_blowup: f64,
    /// Stop once accepted/offered drops below this.
    pub min_acceptance: f64,
    /// Keep at most this many points past saturation (the figures show
    /// the "knee" and one diverging point).
    pub post_saturation_points: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        let sim = SimConfig {
            // Sweeps over large fabrics benefit from the BSP-parallel
            // engine; results are partition-count independent.
            partitions: 0,
            ..Default::default()
        };
        SweepConfig {
            sim,
            latency_blowup: 12.0,
            min_acceptance: 0.80,
            post_saturation_points: 1,
        }
    }
}

impl SweepConfig {
    /// Scale simulation windows (quick modes for tests/benches).
    pub fn scaled(mut self, f: f64) -> Self {
        self.sim = self.sim.scaled(f);
        self
    }
}

/// Run the sweep: one simulation per offered per-chip rate, in order,
/// stopping early past saturation. Deadlocked points (which indicate a
/// routing bug, not congestion) panic — the routing disciplines are
/// supposed to make them impossible.
///
/// Every point runs on the *same* persistent executor
/// ([`wsdf_exec::global_pool`], built on first use and shared
/// process-wide), so worker threads — and their partition-pinned cache
/// state — are reused across sweep points instead of being re-created per
/// simulation.
pub fn sweep(
    bench: &Bench,
    cfg: &SweepConfig,
    spec: PatternSpec,
    rates_chip: &[f64],
) -> Vec<SweepPoint> {
    let pool = wsdf_exec::global_pool();
    let mut out = Vec::new();
    let mut past_saturation = 0usize;
    let mut zero_load = None;
    // Ring collectives progress at the pace of their slowest chip: report
    // bottleneck-chip throughput, not the average (an open-loop average
    // would let interior chips mask a saturated C-group boundary link).
    let bottleneck = matches!(
        spec,
        PatternSpec::RingCGroup(_) | PatternSpec::RingWGroup(_)
    );
    let mut sim = cfg.sim.clone();
    sim.per_endpoint_stats = bottleneck;
    for &rate_chip in rates_chip {
        let rate_node = rate_chip / bench.nodes_per_chip;
        let pattern = bench.pattern(spec, rate_node);
        let metrics = bench
            .run_on(&sim, pattern.as_ref(), pool)
            .unwrap_or_else(|e| panic!("[{}] {spec:?} @ {rate_chip}: {e}", bench.label));
        let latency = metrics.avg_latency().unwrap_or(f64::INFINITY);
        if zero_load.is_none() {
            zero_load = Some(latency);
        }
        // Normalize to *injecting* endpoints: the paper's per-chip axes
        // count only chips that generate traffic (hotspot W-groups,
        // non-palindromic permutation sources).
        let af = pattern.active_fraction().max(1e-9);
        let accepted_node = if bottleneck {
            // Slowest chip: min over chips of its nodes' ejected flits.
            let per_ep = &metrics.ejected_per_endpoint;
            let mut per_chip = vec![0u64; bench.scope.num_chips() as usize];
            for (ep, &flits) in per_ep.iter().enumerate() {
                per_chip[bench.scope.chip[ep] as usize] += flits as u64;
            }
            let min_chip = per_chip.iter().copied().min().unwrap_or(0);
            min_chip as f64 / (metrics.measure_cycles as f64 * bench.scope.nodes_per_chip as f64)
        } else {
            metrics.accepted_rate() / af
        };
        // Compare against the realized injection (source queues may clip).
        let offered_effective = (metrics.injected_rate() / af).max(1e-12);
        let acceptance = accepted_node / offered_effective;
        let saturated =
            latency > zero_load.unwrap() * cfg.latency_blowup || acceptance < cfg.min_acceptance;
        out.push(SweepPoint {
            offered_chip: rate_chip,
            offered_node: rate_node,
            latency,
            accepted_chip: accepted_node * bench.nodes_per_chip,
            accepted_node,
            delivered: metrics.ejection_fraction(),
            saturated,
        });
        if saturated {
            past_saturation += 1;
            if past_saturation > cfg.post_saturation_points {
                break;
            }
        }
    }
    out
}

/// Saturation throughput estimate: the highest accepted per-chip rate
/// over the sweep (flits/cycle/chip).
pub fn saturation_rate(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.accepted_chip).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::Bench;

    fn quick() -> SweepConfig {
        SweepConfig::default().scaled(0.12)
    }

    #[test]
    fn mesh_sweep_saturates_above_switch() {
        // The core Fig. 10(a) claim at miniature scale: a 4×4 mesh C-group
        // saturates well above 1 flit/cycle/chip; a single switch at ~1.
        let mesh = Bench::single_mesh(4, 2, 1);
        let sw = Bench::single_switch(16);
        let rates: Vec<f64> = (1..=8).map(|i| i as f64 * 0.4).collect();
        let pm = sweep(&mesh, &quick(), PatternSpec::Uniform, &rates);
        let ps = sweep(&sw, &quick(), PatternSpec::Uniform, &rates);
        let sat_mesh = saturation_rate(&pm);
        let sat_sw = saturation_rate(&ps);
        assert!(
            sat_mesh > 1.5 * sat_sw,
            "mesh {sat_mesh:.2} should beat switch {sat_sw:.2}"
        );
        assert!(sat_sw <= 1.05, "switch cannot exceed 1 flit/cycle/chip");
    }

    #[test]
    fn sweep_stops_after_saturation() {
        let sw = Bench::single_switch(8);
        let rates: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let pts = sweep(&sw, &quick(), PatternSpec::Uniform, &rates);
        assert!(pts.len() < rates.len(), "sweep must stop early");
        assert!(pts.last().unwrap().saturated);
    }

    #[test]
    fn latency_grows_monotonically_near_saturation() {
        let mesh = Bench::single_mesh(4, 2, 1);
        let pts = sweep(&mesh, &quick(), PatternSpec::Uniform, &[0.4, 1.2, 2.0, 2.8]);
        assert!(pts.len() >= 3);
        assert!(
            pts.last().unwrap().latency > pts[0].latency,
            "latency must rise with load"
        );
    }
}
