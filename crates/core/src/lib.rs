//! # wsdf — Switch-Less Dragonfly on Wafers: high-level API
//!
//! The facade crate of the reproduction. It glues the substrate crates
//! together behind three concepts:
//!
//! * [`Bench`] — a built fabric (switch-less Dragonfly, switch-based
//!   baseline, standalone mesh or single switch) bundled with its routing
//!   oracle and endpoint scoping.
//! * [`PatternSpec`] — a workload selector that [`Bench::pattern`] turns
//!   into a concrete traffic generator at a given per-node rate.
//! * [`Session`] — the unified run frontend. Every run kind goes through
//!   one builder: open-loop sweeps ([`Session::sweep`]), saturation
//!   search ([`Session::adaptive`]), closed-loop collectives
//!   ([`Session::workload`]), multi-tenant serving ([`Session::serving`]),
//!   fault sweeps ([`Session::resilience`]), raw metrics
//!   ([`Session::metrics`]) and declarative scenarios ([`Session::run`]).
//!   Each returns a typed [`Outcome`] carrying the kind's report plus,
//!   when streaming telemetry is enabled via [`Session::trace`], the
//!   deterministic JSONL trace and its digest.
//!
//! The historical free-function runners (`sweep`, `adaptive_sweep`,
//! `run_workload`, `run_serving`, `resilience_sweep` and their `*_on`
//! variants) still work but are deprecated shims over the same
//! internals; new code should use [`Session`].
//!
//! ```no_run
//! use wsdf::{AdaptiveConfig, Bench, PatternSpec, Session};
//! use wsdf_topo::SlParams;
//!
//! // Fig. 10(a), switch-less side: a 4×4-core C-group under uniform load.
//! // No hand-tuned rate grid: the driver finds the knee on its own.
//! let bench = Bench::single_mesh(4, 2, 1);
//! let out = Session::bench(&bench)
//!     .adaptive(&AdaptiveConfig::default(), PatternSpec::Uniform)
//!     .unwrap();
//! let report = &out.report;
//! println!(
//!     "saturation {:.2} flits/cycle/chip, zero-load {:.1} cycles",
//!     report.sat_chip, report.zero_load_latency
//! );
//! for p in &report.points {
//!     println!(
//!         "{:.2} flits/cycle/chip → mean {:.1} / p99 {:.1} cycles",
//!         p.offered_chip, p.latency, p.p99
//!     );
//! }
//! # let _ = SlParams::radix16();
//! ```

#![deny(missing_docs)]

pub mod bench;
pub mod collective;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod serving;
pub mod session;
pub mod sweep;

// The hand-rolled JSON layer lives in `wsdf-sim` (the lowest crate, so
// topology/workload specs can offer `from_json` constructors without a
// dependency cycle); re-exported here under its historical path.
pub use wsdf_sim::json;

pub use bench::{Bench, BenchFaults, BenchOracle, Fabric, LivePattern, PatternSpec};
#[allow(deprecated)]
pub use collective::{run_workload, run_workload_on};
pub use collective::{LatencySummary, PhaseReport, WorkloadReport, WorkloadUnits};
pub use report::{Curve, Figure, Point};
#[allow(deprecated)]
pub use resilience::{resilience_sweep, resilience_sweep_on};
pub use resilience::{ResilienceConfig, ResiliencePoint, ResilienceReport};
pub use scenario::{PartitionerKind, Partitioning, Scenario, ScenarioOutcome, Stepping};
#[allow(deprecated)]
pub use serving::{run_serving, run_serving_on};
pub use serving::{ClassStat, JobRecord, ServingReport};
pub use session::{Outcome, Session, SessionConfig, TraceOutcome};
#[allow(deprecated)]
pub use sweep::{adaptive_sweep, adaptive_sweep_on, sweep, sweep_on};
pub use sweep::{saturation_rate, AdaptiveConfig, SaturationReport, SweepConfig, SweepPoint};
pub use wsdf_sim::{SharedBuf, TraceConfig, TraceRec};
pub use wsdf_workload::Workload;

pub use wsdf_analysis as analysis;
pub use wsdf_exec as exec;
pub use wsdf_routing as routing;
pub use wsdf_sim as sim;
pub use wsdf_topo as topo;
pub use wsdf_traffic as traffic;
pub use wsdf_workload as workload;
