//! # wsdf — Switch-Less Dragonfly on Wafers: high-level API
//!
//! The facade crate of the reproduction. It glues the substrate crates
//! together behind three concepts:
//!
//! * [`Bench`] — a built fabric (switch-less Dragonfly, switch-based
//!   baseline, standalone mesh or single switch) bundled with its routing
//!   oracle and endpoint scoping.
//! * [`PatternSpec`] — a workload selector that [`Bench::pattern`] turns
//!   into a concrete traffic generator at a given per-node rate.
//! * [`sweep()`] — the load-latency sweep runner that regenerates the
//!   paper's figures: it walks a list of per-chip injection rates, runs a
//!   full simulation per point, converts units, and stops once the fabric
//!   is clearly past saturation.
//!
//! ```no_run
//! use wsdf::{Bench, PatternSpec, SweepConfig};
//! use wsdf_topo::SlParams;
//!
//! // Fig. 10(a), switch-less side: a 4×4-core C-group under uniform load.
//! let bench = Bench::single_mesh(4, 2, 1);
//! let points = wsdf::sweep(
//!     &bench,
//!     &SweepConfig::default(),
//!     PatternSpec::Uniform,
//!     &[0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2],
//! );
//! for p in &points {
//!     println!("{:.2} flits/cycle/chip → {:.1} cycles", p.offered_chip, p.latency);
//! }
//! # let _ = SlParams::radix16();
//! ```

pub mod bench;
pub mod json;
pub mod report;
pub mod sweep;

pub use bench::{Bench, BenchOracle, Fabric, PatternSpec};
pub use report::{Curve, Point};
pub use sweep::{saturation_rate, sweep, SweepConfig, SweepPoint};

pub use wsdf_analysis as analysis;
pub use wsdf_exec as exec;
pub use wsdf_routing as routing;
pub use wsdf_sim as sim;
pub use wsdf_topo as topo;
pub use wsdf_traffic as traffic;
