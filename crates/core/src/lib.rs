//! # wsdf — Switch-Less Dragonfly on Wafers: high-level API
//!
//! The facade crate of the reproduction. It glues the substrate crates
//! together behind three concepts:
//!
//! * [`Bench`] — a built fabric (switch-less Dragonfly, switch-based
//!   baseline, standalone mesh or single switch) bundled with its routing
//!   oracle and endpoint scoping.
//! * [`PatternSpec`] — a workload selector that [`Bench::pattern`] turns
//!   into a concrete traffic generator at a given per-node rate.
//! * [`sweep()`] — the fixed-grid load-latency sweep runner behind the
//!   paper's figures: it walks a list of per-chip injection rates, runs a
//!   full simulation per point, converts units, and stops once the fabric
//!   is clearly past saturation.
//! * [`adaptive_sweep()`] — the saturation-seeking runner: a geometric
//!   coarse scan followed by bisection of the saturation knee, returning a
//!   [`SaturationReport`] with the saturation throughput, the zero-load
//!   latency, and every measured point — each carrying p50/p95/p99/max
//!   latency from the engine's streaming histogram.
//! * [`run_workload()`] — the closed-loop runner: drives a collective
//!   [`Workload`] DAG (allreduce, all-to-all, pipelines, ...) to
//!   quiescence and reports completion cycles and achieved bandwidth per
//!   phase as a [`WorkloadReport`].
//! * [`run_serving()`] — the multi-tenant runner: a seeded job arrival
//!   process spawns collective instances onto endpoint placements, all
//!   sharing the fabric at once, and reports job-CT percentiles,
//!   per-class interference slowdown, Jain's fairness and SLO misses as
//!   a [`ServingReport`].
//! * [`resilience_sweep()`] — the fault-injection runner: samples
//!   deterministic link/router failures at each fraction
//!   ([`topo::FaultSet`]), re-routes around them with a precomputed
//!   detour oracle ([`routing::DetourOracle`]), and reports degraded
//!   throughput/latency plus collective completion over the survivors as
//!   a [`ResilienceReport`].
//!
//! ```no_run
//! use wsdf::{AdaptiveConfig, Bench, PatternSpec};
//! use wsdf_topo::SlParams;
//!
//! // Fig. 10(a), switch-less side: a 4×4-core C-group under uniform load.
//! // No hand-tuned rate grid: the driver finds the knee on its own.
//! let bench = Bench::single_mesh(4, 2, 1);
//! let report = wsdf::adaptive_sweep(&bench, &AdaptiveConfig::default(), PatternSpec::Uniform);
//! println!(
//!     "saturation {:.2} flits/cycle/chip, zero-load {:.1} cycles",
//!     report.sat_chip, report.zero_load_latency
//! );
//! for p in &report.points {
//!     println!(
//!         "{:.2} flits/cycle/chip → mean {:.1} / p99 {:.1} cycles",
//!         p.offered_chip, p.latency, p.p99
//!     );
//! }
//! # let _ = SlParams::radix16();
//! ```

#![deny(missing_docs)]

pub mod bench;
pub mod collective;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod serving;
pub mod sweep;

// The hand-rolled JSON layer lives in `wsdf-sim` (the lowest crate, so
// topology/workload specs can offer `from_json` constructors without a
// dependency cycle); re-exported here under its historical path.
pub use wsdf_sim::json;

pub use bench::{Bench, BenchFaults, BenchOracle, Fabric, LivePattern, PatternSpec};
pub use collective::{
    run_workload, run_workload_on, LatencySummary, PhaseReport, WorkloadReport, WorkloadUnits,
};
pub use report::{Curve, Figure, Point};
pub use resilience::{
    resilience_sweep, resilience_sweep_on, ResilienceConfig, ResiliencePoint, ResilienceReport,
};
pub use scenario::{Scenario, ScenarioOutcome};
pub use serving::{run_serving, run_serving_on, ClassStat, JobRecord, ServingReport};
pub use sweep::{
    adaptive_sweep, adaptive_sweep_on, saturation_rate, sweep, sweep_on, AdaptiveConfig,
    SaturationReport, SweepConfig, SweepPoint,
};
pub use wsdf_workload::Workload;

pub use wsdf_analysis as analysis;
pub use wsdf_exec as exec;
pub use wsdf_routing as routing;
pub use wsdf_sim as sim;
pub use wsdf_topo as topo;
pub use wsdf_traffic as traffic;
pub use wsdf_workload as workload;
