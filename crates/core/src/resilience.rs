//! Resilience sweeps: throughput/latency/completion-time vs. fault
//! fraction.
//!
//! Where [`mod@crate::sweep`] asks *"what does the pristine fabric do?"*,
//! this module asks the production question: **how gracefully does it
//! degrade when links and routers die?** [`resilience_sweep`] walks a list
//! of fault fractions; at each fraction it samples a deterministic
//! [`FaultSet`], degrades the bench ([`Bench::with_fault_set`]), and
//! measures:
//!
//! * an **open-loop probe** at a fixed offered rate, through the shared
//!   sweep measurement core — accepted throughput, mean/p50/p99/max
//!   latency, delivered fraction;
//! * a **closed-loop probe**: a ring allreduce over the surviving chips of
//!   the largest live component, reusing the collective machinery —
//!   completion cycles;
//! * **reachability accounting** — dead links/routers, live endpoints,
//!   unreachable ordered pairs.
//!
//! The zero-fault point runs the *pristine* bench (same oracle, same hot
//! path), so it is bit-identical to an ordinary [`crate::sweep()`] point at
//! the same rate — the resilience axis costs the pristine path nothing.
//! Every number is a deterministic function of `(bench, config)`:
//! identical across BSP partition and worker counts, like everything else
//! in the engine.

use crate::bench::{Bench, PatternSpec};
use crate::collective::WorkloadUnits;
use crate::json::{self, Value};
use crate::scenario::PartitionerKind;
use crate::session::SessionConfig;
use crate::sweep::SweepConfig;
use wsdf_exec::BspPool;
use wsdf_sim::{SimConfig, TraceRec, Tracer};
use wsdf_topo::{FaultSet, FaultSpec};
use wsdf_workload::Workload;

/// Configuration of a [`resilience_sweep`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Simulation template (VCs raised per bench automatically).
    pub sim: SimConfig,
    /// Offered load of the open-loop probe, flits/cycle/chip.
    pub rate_chip: f64,
    /// Link-fault fractions to sweep (0.0 first gives the pristine
    /// reference point).
    pub fractions: Vec<f64>,
    /// Router faults ride along at `link_fraction × router_ratio`.
    pub router_ratio: f64,
    /// Seed of the per-fraction fault samples.
    pub seed: u64,
    /// Payload flits per participant of the closed-loop ring-allreduce
    /// probe; 0 skips the closed-loop probe entirely.
    pub collective_flits: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            sim: SimConfig::default(),
            rate_chip: 0.3,
            fractions: vec![0.0, 0.05, 0.10, 0.20],
            router_ratio: 0.5,
            seed: 0xFA17_5EED,
            collective_flits: 64,
        }
    }
}

impl ResilienceConfig {
    /// Scale simulation windows (quick modes for tests/benches/smoke).
    pub fn scaled(mut self, f: f64) -> Self {
        self.sim = self.sim.scaled(f);
        self
    }

    /// The [`FaultSpec`] sampled at link-fault fraction `f`.
    pub fn fault_spec(&self, f: f64) -> FaultSpec {
        FaultSpec {
            seed: self.seed,
            link_fraction: f,
            router_fraction: f * self.router_ratio,
            ..Default::default()
        }
    }
}

/// One measured fault fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Link-fault fraction this point was sampled at.
    pub fault_fraction: f64,
    /// Failed undirected fabric links (sampled + router collateral).
    pub dead_links: u32,
    /// Failed routers.
    pub dead_routers: u32,
    /// Endpoints whose attach router survived.
    pub live_endpoints: u32,
    /// Ordered endpoint pairs that are no longer routable.
    pub unreachable_pairs: u64,
    /// Offered load of the open-loop probe, flits/cycle/chip.
    pub offered_chip: f64,
    /// Accepted throughput, flits/cycle/chip.
    pub accepted_chip: f64,
    /// Mean packet latency, cycles.
    pub latency: f64,
    /// Median packet latency, cycles.
    pub p50: f64,
    /// 99th-percentile packet latency, cycles.
    pub p99: f64,
    /// Fraction of measured packets delivered.
    pub delivered: f64,
    /// Ring-allreduce completion over the largest live component, cycles
    /// (0 = probe skipped: disabled, or fewer than 2 surviving chips).
    pub completion_cycles: u64,
    /// Participants of the closed-loop probe.
    pub collective_chips: u32,
    /// Cycles the open-loop probe actually stepped (event-driven stepping;
    /// equals `cycles_run` under the dense engine).
    pub busy_cycles: u64,
    /// Cycles the open-loop probe fast-forwarded over (0 under the dense
    /// engine).
    pub skipped_cycles: u64,
}

/// Result of a [`resilience_sweep`]: one point per fault fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Bench label.
    pub label: String,
    /// Open-loop probe pattern name (`"Uniform"`, ...).
    pub pattern: String,
    /// Measured points, in [`ResilienceConfig::fractions`] order.
    pub points: Vec<ResiliencePoint>,
}

impl ResilienceReport {
    /// Render as aligned text rows (harness output).
    pub fn render(&self) -> String {
        let mut s = format!(
            "  {:<18} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10}\n",
            self.label,
            "fault",
            "links",
            "routers",
            "live-ep",
            "unreach",
            "accepted",
            "lat",
            "p99",
            "delivered",
            "allreduce"
        );
        for p in &self.points {
            s.push_str(&format!(
                "  {:<18} {:>6.2} {:>6} {:>7} {:>8} {:>10} {:>10.3} {:>8.1} {:>8.1} {:>9.3} {:>10}\n",
                "",
                p.fault_fraction,
                p.dead_links,
                p.dead_routers,
                p.live_endpoints,
                p.unreachable_pairs,
                p.accepted_chip,
                p.latency,
                p.p99,
                p.delivered,
                p.completion_cycles,
            ));
        }
        s
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"label\": \"{}\",\n",
            json::escape(&self.label)
        ));
        s.push_str(&format!(
            "  \"pattern\": \"{}\",\n",
            json::escape(&self.pattern)
        ));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"fault_fraction\": {}, \"dead_links\": {}, \"dead_routers\": {}, \
                 \"live_endpoints\": {}, \"unreachable_pairs\": {}, \"offered_chip\": {}, \
                 \"accepted_chip\": {}, \"latency\": {}, \"p50\": {}, \"p99\": {}, \
                 \"delivered\": {}, \"completion_cycles\": {}, \"collective_chips\": {}, \
                 \"busy_cycles\": {}, \"skipped_cycles\": {}}}{}\n",
                json::num(p.fault_fraction),
                p.dead_links,
                p.dead_routers,
                p.live_endpoints,
                p.unreachable_pairs,
                json::num(p.offered_chip),
                json::num(p.accepted_chip),
                json::num(p.latency),
                json::num(p.p50),
                json::num(p.p99),
                json::num(p.delivered),
                p.completion_cycles,
                p.collective_chips,
                p.busy_cycles,
                p.skipped_cycles,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<ResilienceReport, String> {
        let v = Value::parse(text)?;
        let field = |v: &Value, k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|m| m.as_f64())
                .ok_or_else(|| format!("missing number '{k}'"))
        };
        let int = |v: &Value, k: &str| -> Result<u64, String> {
            let x = field(v, k)?;
            if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                Ok(x as u64)
            } else {
                Err(format!("'{k}' not a non-negative integer"))
            }
        };
        // Absent in reports written before the stepping counters existed.
        let int_or_zero = |v: &Value, k: &str| -> Result<u64, String> {
            match v.get(k) {
                None => Ok(0),
                Some(_) => int(v, k),
            }
        };
        let mut points = Vec::new();
        for p in v
            .get("points")
            .and_then(|p| p.as_arr())
            .ok_or("'points' not an array")?
        {
            points.push(ResiliencePoint {
                fault_fraction: field(p, "fault_fraction")?,
                dead_links: int(p, "dead_links")? as u32,
                dead_routers: int(p, "dead_routers")? as u32,
                live_endpoints: int(p, "live_endpoints")? as u32,
                unreachable_pairs: int(p, "unreachable_pairs")?,
                offered_chip: field(p, "offered_chip")?,
                accepted_chip: field(p, "accepted_chip")?,
                latency: field(p, "latency")?,
                p50: field(p, "p50")?,
                p99: field(p, "p99")?,
                delivered: field(p, "delivered")?,
                completion_cycles: int(p, "completion_cycles")?,
                collective_chips: int(p, "collective_chips")? as u32,
                busy_cycles: int_or_zero(p, "busy_cycles")?,
                skipped_cycles: int_or_zero(p, "skipped_cycles")?,
            });
        }
        Ok(ResilienceReport {
            label: v
                .get("label")
                .and_then(|l| l.as_str())
                .ok_or("'label' not a string")?
                .to_string(),
            pattern: v
                .get("pattern")
                .and_then(|l| l.as_str())
                .ok_or("'pattern' not a string")?
                .to_string(),
            points,
        })
    }
}

/// Human name of a [`PatternSpec`] for report labeling.
fn pattern_name(spec: PatternSpec) -> String {
    format!("{spec:?}")
}

/// Surviving chips of the largest live component: chips whose node-0 is
/// alive there (one participant per chip, matching the collective suite).
fn live_chips(bench: &Bench) -> Vec<u32> {
    let Some(f) = &bench.faults else {
        return (0..bench.scope.num_chips())
            .map(|c| bench.scope.node_of(c, 0))
            .collect();
    };
    let comp = f.reach.largest_component_endpoints();
    let in_comp: std::collections::HashSet<u32> = comp.into_iter().collect();
    (0..bench.scope.num_chips())
        .map(|c| bench.scope.node_of(c, 0))
        .filter(|n| in_comp.contains(n))
        .collect()
}

/// Run a resilience sweep on an explicit executor. See the module docs.
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).pool(pool).resilience(&cfg, spec)"
)]
pub fn resilience_sweep_on(
    bench: &Bench,
    cfg: &ResilienceConfig,
    spec: PatternSpec,
    pool: &BspPool,
) -> ResilienceReport {
    resilience_impl(
        bench,
        cfg,
        spec,
        pool,
        SessionConfig::from_env().partitioner,
        None,
    )
}

/// The fault-injection core behind [`resilience_sweep`] and the
/// [`crate::Session`] resilience run kind. When telemetry is attached
/// with the `epochs` stream enabled, each fault fraction is delimited by
/// a [`TraceRec::Epoch`] record *before* its probes — every fraction is
/// an independent simulation starting at cycle 0, so the epoch records
/// are the segment boundaries of the concatenated stream.
pub(crate) fn resilience_impl(
    bench: &Bench,
    cfg: &ResilienceConfig,
    spec: PatternSpec,
    pool: &BspPool,
    partitioner: PartitionerKind,
    trace: Option<&Tracer>,
) -> ResilienceReport {
    assert!(
        bench.faults.is_none(),
        "resilience_sweep degrades the bench itself; pass the pristine bench"
    );
    let net = bench.fabric.net();
    let units = WorkloadUnits::default();
    let mut points = Vec::with_capacity(cfg.fractions.len());
    for (epoch, &f) in cfg.fractions.iter().enumerate() {
        if let Some(t) = trace {
            if t.config().epochs {
                t.emit_one(TraceRec::Epoch {
                    cycle: 0,
                    epoch: epoch as u32,
                    label: format!("fault_fraction={f}"),
                });
            }
        }
        let fs = FaultSet::sample(net, &cfg.fault_spec(f));
        let fb = bench.with_fault_set(&fs);

        // Open-loop probe through the shared sweep measurement core (same
        // saturation rule, same normalization) — one rate, no early stop.
        let scfg = SweepConfig {
            sim: cfg.sim.clone(),
            ..Default::default()
        };
        let probe =
            crate::sweep::sweep_impl(&fb, &scfg, spec, &[cfg.rate_chip], pool, partitioner, trace)
                .pop()
                .expect("single-rate sweep yields one point");

        // Reachability accounting.
        let (live_endpoints, unreachable_pairs) = match &fb.faults {
            None => (fb.endpoints(), 0),
            Some(bf) => (bf.reach.live_endpoints(), bf.reach.unreachable_pairs()),
        };

        // Closed-loop probe: ring allreduce over surviving chips.
        let chips = live_chips(&fb);
        let (completion_cycles, collective_chips) = if cfg.collective_flits > 0 && chips.len() >= 2
        {
            let wl = Workload::ring_allreduce(&chips, cfg.collective_flits);
            let wcfg = fb.prepare_cfg(&cfg.sim, partitioner);
            let r = crate::collective::run_workload_impl(&fb, &wcfg, &wl, &units, pool, trace)
                .unwrap_or_else(|e| panic!("[{} @ {f}] allreduce probe: {e}", bench.label));
            (r.completion_cycles, chips.len() as u32)
        } else {
            (0, 0)
        };

        points.push(ResiliencePoint {
            fault_fraction: f,
            dead_links: fs.dead_links(),
            dead_routers: fs.dead_routers(),
            live_endpoints,
            unreachable_pairs,
            offered_chip: probe.offered_chip,
            accepted_chip: probe.accepted_chip,
            latency: probe.latency,
            p50: probe.p50,
            p99: probe.p99,
            delivered: probe.delivered,
            completion_cycles,
            collective_chips,
            busy_cycles: probe.busy_cycles,
            skipped_cycles: probe.skipped_cycles,
        });
    }
    ResilienceReport {
        label: bench.label.clone(),
        pattern: pattern_name(spec),
        points,
    }
}

/// [`resilience_sweep_on`] on the process-wide executor.
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).resilience(&cfg, spec)"
)]
pub fn resilience_sweep(
    bench: &Bench,
    cfg: &ResilienceConfig,
    spec: PatternSpec,
) -> ResilienceReport {
    resilience_impl(
        bench,
        cfg,
        spec,
        wsdf_exec::global_pool(),
        SessionConfig::from_env().partitioner,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    fn run_res(bench: &Bench, cfg: &ResilienceConfig, spec: PatternSpec) -> ResilienceReport {
        Session::bench(bench).resilience(cfg, spec).unwrap().report
    }

    fn quick() -> ResilienceConfig {
        ResilienceConfig {
            collective_flits: 16,
            ..Default::default()
        }
        .scaled(0.1)
    }

    #[test]
    fn zero_fault_point_matches_pristine_sweep_exactly() {
        let bench = Bench::single_mesh(4, 2, 1);
        let cfg = quick();
        let report = run_res(&bench, &cfg, PatternSpec::Uniform);
        let p0 = &report.points[0];
        assert_eq!(p0.fault_fraction, 0.0);
        assert_eq!(p0.dead_links, 0);
        assert_eq!(p0.live_endpoints, 16);
        assert_eq!(p0.unreachable_pairs, 0);
        // The pristine sweep at the same rate must agree bit for bit: the
        // zero-fault path is the pristine path, not a detour-oracle run.
        let scfg = SweepConfig {
            sim: cfg.sim.clone(),
            ..Default::default()
        };
        let q = Session::bench(&bench)
            .sweep(&scfg, PatternSpec::Uniform, &[cfg.rate_chip])
            .unwrap()
            .report
            .pop()
            .unwrap();
        assert_eq!(p0.accepted_chip, q.accepted_chip);
        assert_eq!(p0.latency, q.latency);
        assert_eq!(p0.p50, q.p50);
        assert_eq!(p0.p99, q.p99);
        assert_eq!(p0.delivered, q.delivered);
    }

    #[test]
    fn degradation_is_graceful_not_fatal() {
        let bench = Bench::single_mesh(4, 2, 1);
        let report = run_res(&bench, &quick(), PatternSpec::Uniform);
        assert_eq!(report.points.len(), 4);
        for p in &report.points {
            if p.fault_fraction > 0.0 {
                assert!(p.dead_links > 0 || p.dead_routers > 0, "{p:?}");
            }
            // Whatever traffic the live pairs offer must still be served.
            assert!(p.delivered > 0.5, "{p:?}");
            assert!(p.accepted_chip > 0.0, "{p:?}");
        }
        // The collective probe ran wherever ≥ 2 chips survived.
        assert!(report.points[0].completion_cycles > 0);
        assert_eq!(report.points[0].collective_chips, 4);
    }

    #[test]
    fn report_round_trips_through_json() {
        let bench = Bench::single_switch(8);
        let mut cfg = quick();
        cfg.fractions = vec![0.0, 0.2];
        let report = run_res(&bench, &cfg, PatternSpec::Uniform);
        let back = ResilienceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn sweep_is_deterministic() {
        let bench = Bench::single_mesh(4, 2, 1);
        let a = run_res(&bench, &quick(), PatternSpec::Uniform);
        let b = run_res(&bench, &quick(), PatternSpec::Uniform);
        assert_eq!(a, b);
    }
}
