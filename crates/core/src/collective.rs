//! Closed-loop collective runs on a [`Bench`], and their reports.
//!
//! Where [`mod@crate::sweep`] asks *"what latency at what offered rate?"*,
//! this module asks the closed-loop question: *"how long does this
//! collective take on this fabric?"* [`run_workload`] drives a
//! [`wsdf_workload::Workload`] DAG through the bench's monomorphized
//! engine to quiescence and wraps the outcome in a [`WorkloadReport`] —
//! completion cycles, achieved bandwidth per phase, and the packet-latency
//! distribution — with the same hand-rolled JSON round-trip as the figure
//! reports.

use crate::bench::{Bench, BenchOracle};
use crate::json::{self, Value};
use crate::session::SessionConfig;
use wsdf_exec::BspPool;
use wsdf_sim::{Metrics, SimConfig, SimResult, Tracer};
use wsdf_workload::{run_collective_traced_on, Workload, WorkloadOutcome};

/// Unit conversions for bandwidth reporting.
///
/// The simulator works in flits and cycles; Gb/s needs a flit size and a
/// clock. The defaults match the layout model's short-reach port
/// (`wsdf_analysis::WaferLayout`: 128 lanes × 32 Gb/s = 4096 Gb/s at a
/// 1 GHz core clock → a 1 flit/cycle channel carries 512-byte flits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadUnits {
    /// Payload bytes per flit.
    pub flit_bytes: f64,
    /// Core clock in GHz (cycles per nanosecond).
    pub clock_ghz: f64,
}

impl Default for WorkloadUnits {
    fn default() -> Self {
        WorkloadUnits {
            flit_bytes: 512.0,
            clock_ghz: 1.0,
        }
    }
}

impl WorkloadUnits {
    /// Achieved bandwidth in Gb/s for `flits` delivered over `cycles`.
    pub fn gbps(&self, flits: u64, cycles: u64) -> f64 {
        let cycles = cycles.max(1) as f64;
        flits as f64 * self.flit_bytes * 8.0 * self.clock_ghz / cycles
    }
}

/// Timing and bandwidth of one workload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label (e.g. `reduce-scatter`).
    pub name: String,
    /// Messages in the phase.
    pub messages: u64,
    /// Payload flits in the phase.
    pub flits: u64,
    /// Cycle the phase's first message became eligible.
    pub start_cycle: u64,
    /// Cycle the phase's last message fully arrived.
    pub end_cycle: u64,
    /// Payload over the phase span, flits/cycle.
    pub achieved_flits_per_cycle: f64,
    /// Payload over the phase span, Gb/s (see [`WorkloadUnits`]).
    pub achieved_gbps: f64,
}

/// Packet-latency distribution summary of a closed-loop run (from the
/// engine's streaming [`wsdf_sim::LatencyHistogram`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Packets measured.
    pub count: u64,
    /// Mean packet latency, cycles.
    pub mean: f64,
    /// Median packet latency, cycles.
    pub p50: f64,
    /// 95th-percentile packet latency, cycles.
    pub p95: f64,
    /// 99th-percentile packet latency, cycles.
    pub p99: f64,
    /// Maximum packet latency, cycles.
    pub max: f64,
}

impl LatencySummary {
    fn from_metrics(m: &Metrics) -> Self {
        let pct = |q: Option<u64>| q.map(|v| v as f64).unwrap_or(f64::NAN);
        LatencySummary {
            count: m.latency_hist.count(),
            mean: m.avg_latency().unwrap_or(f64::NAN),
            p50: pct(m.latency_hist.p50()),
            p95: pct(m.latency_hist.p95()),
            p99: pct(m.latency_hist.p99()),
            max: if m.packets_ejected == 0 {
                f64::NAN
            } else {
                m.latency_max as f64
            },
        }
    }
}

/// Result of one closed-loop collective on one bench.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Bench label (`SW-less`, `SW-based`, ...).
    pub label: String,
    /// Workload name (`ring-allreduce`, `all-to-all`, ...).
    pub workload: String,
    /// End-to-end completion time in cycles (last flit reassembled).
    pub completion_cycles: u64,
    /// Messages in the workload.
    pub messages: u64,
    /// Total payload flits.
    pub flits: u64,
    /// Payload over the whole run, flits/cycle.
    pub achieved_flits_per_cycle: f64,
    /// Payload over the whole run, Gb/s.
    pub achieved_gbps: f64,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseReport>,
    /// Packet-latency distribution over the run.
    pub latency: LatencySummary,
    /// Cycles the engine actually stepped (see
    /// [`wsdf_sim::Metrics::busy_cycles`]).
    pub busy_cycles: u64,
    /// Cycles fast-forwarded over by event-driven stepping (0 under the
    /// dense loop); `busy + skipped` equals the completion cycles, so the
    /// ratio is the drain-tail efficiency of the run.
    pub skipped_cycles: u64,
}

impl WorkloadReport {
    fn build(
        bench_label: &str,
        wl: &Workload,
        out: &WorkloadOutcome,
        units: &WorkloadUnits,
    ) -> Self {
        let flits = wl.total_flits();
        let phases = out
            .phases
            .iter()
            .map(|p| PhaseReport {
                name: p.name.clone(),
                messages: p.messages,
                flits: p.flits,
                start_cycle: p.start,
                end_cycle: p.end,
                achieved_flits_per_cycle: p.achieved_flits_per_cycle(),
                achieved_gbps: units.gbps(p.flits, p.end.saturating_sub(p.start)),
            })
            .collect();
        WorkloadReport {
            label: bench_label.to_string(),
            workload: wl.name.clone(),
            completion_cycles: out.completion_cycles,
            messages: wl.len() as u64,
            flits,
            achieved_flits_per_cycle: flits as f64 / out.completion_cycles.max(1) as f64,
            achieved_gbps: units.gbps(flits, out.completion_cycles),
            phases,
            latency: LatencySummary::from_metrics(&out.metrics),
            busy_cycles: out.metrics.busy_cycles,
            skipped_cycles: out.metrics.skipped_cycles,
        }
    }

    /// Render as aligned text rows (harness output).
    pub fn render(&self) -> String {
        let mut s = format!(
            "  {:<14} {:<16} {:>8} cycles  {:>7.3} flits/cyc  {:>9.1} Gb/s  \
             (lat p50 {:.0} p99 {:.0} max {:.0})\n",
            self.label,
            self.workload,
            self.completion_cycles,
            self.achieved_flits_per_cycle,
            self.achieved_gbps,
            self.latency.p50,
            self.latency.p99,
            self.latency.max,
        );
        for p in &self.phases {
            s.push_str(&format!(
                "    {:<28} [{:>6}, {:>6}]  {:>6} msgs  {:>8} flits  {:>7.3} flits/cyc\n",
                p.name, p.start_cycle, p.end_cycle, p.messages, p.flits, p.achieved_flits_per_cycle,
            ));
        }
        s
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"label\": \"{}\",\n",
            json::escape(&self.label)
        ));
        s.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            json::escape(&self.workload)
        ));
        s.push_str(&format!(
            "  \"completion_cycles\": {},\n",
            self.completion_cycles
        ));
        s.push_str(&format!("  \"messages\": {},\n", self.messages));
        s.push_str(&format!("  \"flits\": {},\n", self.flits));
        s.push_str(&format!("  \"busy_cycles\": {},\n", self.busy_cycles));
        s.push_str(&format!("  \"skipped_cycles\": {},\n", self.skipped_cycles));
        s.push_str(&format!(
            "  \"achieved_flits_per_cycle\": {},\n",
            json::num(self.achieved_flits_per_cycle)
        ));
        s.push_str(&format!(
            "  \"achieved_gbps\": {},\n",
            json::num(self.achieved_gbps)
        ));
        s.push_str(&format!(
            "  \"latency\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \
             \"p99\": {}, \"max\": {}}},\n",
            self.latency.count,
            json::num(self.latency.mean),
            json::num(self.latency.p50),
            json::num(self.latency.p95),
            json::num(self.latency.p99),
            json::num(self.latency.max),
        ));
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"messages\": {}, \"flits\": {}, \
                 \"start_cycle\": {}, \"end_cycle\": {}, \
                 \"achieved_flits_per_cycle\": {}, \"achieved_gbps\": {}}}{}\n",
                json::escape(&p.name),
                p.messages,
                p.flits,
                p.start_cycle,
                p.end_cycle,
                json::num(p.achieved_flits_per_cycle),
                json::num(p.achieved_gbps),
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by [`to_json`](Self::to_json).
    ///
    /// Forward-compatible: files recorded before a field existed still
    /// load — missing numeric summaries parse as NaN, missing counters as
    /// 0, and a missing `phases` array as empty.
    pub fn from_json(text: &str) -> Result<WorkloadReport, String> {
        let v = Value::parse(text)?;
        let mut phases = Vec::new();
        for p in match v.get("phases") {
            None => &[][..],
            Some(a) => a.as_arr().ok_or("'phases' not an array")?,
        } {
            phases.push(PhaseReport {
                name: field(p, "name")?
                    .as_str()
                    .ok_or("'name' not a string")?
                    .to_string(),
                messages: int(p, "messages")?,
                flits: int(p, "flits")?,
                start_cycle: int(p, "start_cycle")?,
                end_cycle: int(p, "end_cycle")?,
                achieved_flits_per_cycle: num(p, "achieved_flits_per_cycle")?,
                achieved_gbps: num(p, "achieved_gbps")?,
            });
        }
        Ok(WorkloadReport {
            label: field(&v, "label")?
                .as_str()
                .ok_or("'label' not a string")?
                .to_string(),
            workload: field(&v, "workload")?
                .as_str()
                .ok_or("'workload' not a string")?
                .to_string(),
            completion_cycles: int(&v, "completion_cycles")?,
            messages: int(&v, "messages")?,
            flits: int(&v, "flits")?,
            achieved_flits_per_cycle: num(&v, "achieved_flits_per_cycle")?,
            achieved_gbps: num(&v, "achieved_gbps")?,
            phases,
            latency: match v.get("latency") {
                None => LatencySummary {
                    count: 0,
                    mean: f64::NAN,
                    p50: f64::NAN,
                    p95: f64::NAN,
                    p99: f64::NAN,
                    max: f64::NAN,
                },
                Some(lat) => LatencySummary {
                    count: opt_int(lat, "count")?,
                    mean: opt_num(lat, "mean")?,
                    p50: opt_num(lat, "p50")?,
                    p95: opt_num(lat, "p95")?,
                    p99: opt_num(lat, "p99")?,
                    max: opt_num(lat, "max")?,
                },
            },
            busy_cycles: opt_int(&v, "busy_cycles")?,
            skipped_cycles: opt_int(&v, "skipped_cycles")?,
        })
    }
}

pub(crate) fn field<'a>(v: &'a Value, k: &str) -> Result<&'a Value, String> {
    v.get(k).ok_or_else(|| format!("missing key '{k}'"))
}

pub(crate) fn num(v: &Value, k: &str) -> Result<f64, String> {
    field(v, k)?
        .as_f64()
        .ok_or_else(|| format!("'{k}' not a number"))
}

pub(crate) fn int(v: &Value, k: &str) -> Result<u64, String> {
    let x = num(v, k)?;
    if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
        Ok(x as u64)
    } else {
        Err(format!("'{k}' not a non-negative integer"))
    }
}

/// Optional integer field: 0 when absent, so reports recorded before the
/// stepping counters existed still load.
pub(crate) fn opt_int(v: &Value, k: &str) -> Result<u64, String> {
    match v.get(k) {
        None => Ok(0),
        Some(_) => int(v, k),
    }
}

/// Optional number field: NaN when absent — the forward-compatibility
/// convention for report summaries (`json::num` writes NaN back as
/// `null`, which parses as NaN again).
pub(crate) fn opt_num(v: &Value, k: &str) -> Result<f64, String> {
    match v.get(k) {
        None => Ok(f64::NAN),
        Some(_) => num(v, k),
    }
}

/// Run `wl` closed-loop on `bench`, on an explicit executor.
///
/// Dispatches on the bench's oracle enum once, so the whole run uses the
/// monomorphized engine — same discipline as [`Bench::run`]. The config's
/// VC count is raised to the oracle's requirement automatically; its
/// open-loop window fields are ignored (the run ends at quiescence).
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).pool(pool).workload(&wl, &units)"
)]
pub fn run_workload_on(
    bench: &Bench,
    cfg: &SimConfig,
    wl: &Workload,
    units: &WorkloadUnits,
    pool: &BspPool,
) -> SimResult<WorkloadReport> {
    let cfg = bench.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
    run_workload_impl(bench, &cfg, wl, units, pool, None)
}

/// The closed-loop core on an already-prepared config — every entry
/// point ([`crate::Session`], the deprecated free functions, the
/// resilience sweep's collective probe) routes through here.
pub(crate) fn run_workload_impl(
    bench: &Bench,
    cfg: &SimConfig,
    wl: &Workload,
    units: &WorkloadUnits,
    pool: &BspPool,
    trace: Option<&Tracer>,
) -> SimResult<WorkloadReport> {
    let net = bench.fabric.net();
    let faults = bench.fault_map();
    let out = match &bench.oracle {
        BenchOracle::Sl(o) => run_collective_traced_on(net, cfg, o, wl, pool, faults, trace),
        BenchOracle::Sw(o) => run_collective_traced_on(net, cfg, o, wl, pool, faults, trace),
        BenchOracle::Mesh(o) => run_collective_traced_on(net, cfg, o, wl, pool, faults, trace),
        BenchOracle::Switch(o) => run_collective_traced_on(net, cfg, o, wl, pool, faults, trace),
        BenchOracle::Detour(o) => run_collective_traced_on(net, cfg, o, wl, pool, faults, trace),
    }?;
    Ok(WorkloadReport::build(&bench.label, wl, &out, units))
}

/// [`run_workload_on`] on the process-wide executor.
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).workload(&wl, &units)"
)]
pub fn run_workload(
    bench: &Bench,
    cfg: &SimConfig,
    wl: &Workload,
    units: &WorkloadUnits,
) -> SimResult<WorkloadReport> {
    let cfg = bench.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
    run_workload_impl(bench, &cfg, wl, units, wsdf_exec::global_pool(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    fn quick_cfg() -> SimConfig {
        SimConfig::default()
    }

    fn run_wl(bench: &Bench, wl: &Workload) -> Result<WorkloadReport, String> {
        Session::bench(bench)
            .sim(quick_cfg())
            .workload(wl, &WorkloadUnits::default())
            .map(|o| o.report)
    }

    #[test]
    fn ring_allreduce_on_mesh_completes() {
        let bench = Bench::single_mesh(4, 2, 1);
        let eps: Vec<u32> = (0..bench.endpoints()).collect();
        let wl = Workload::ring_allreduce(&eps, 64);
        let r = run_wl(&bench, &wl).unwrap();
        assert!(r.completion_cycles > 0);
        assert_eq!(r.messages, wl.len() as u64);
        assert_eq!(r.flits, wl.total_flits());
        assert_eq!(r.phases.len(), 2);
        // The allgather phase cannot start before reduce-scatter finishes
        // at some node, and must end no earlier than it starts.
        assert!(r.phases[1].start_cycle > 0);
        assert!(r.phases[1].end_cycle == r.completion_cycles);
        assert!(r.latency.count > 0);
        assert!(r.achieved_flits_per_cycle > 0.0);
        assert!(r.achieved_gbps > 0.0);
    }

    #[test]
    fn workload_report_json_roundtrip() {
        let bench = Bench::single_switch(8);
        let eps: Vec<u32> = (0..8).collect();
        let wl = Workload::all_to_all(&eps, 16);
        let r = run_wl(&bench, &wl).unwrap();
        let back = WorkloadReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn units_default_matches_layout_port() {
        // 1 flit/cycle at the default units = one 4096 Gb/s SR port.
        let u = WorkloadUnits::default();
        assert_eq!(u.gbps(1000, 1000), 4096.0);
    }

    #[test]
    fn self_message_is_rejected() {
        let bench = Bench::single_switch(4);
        let mut wl = Workload::new("bad");
        let ph = wl.phase("p");
        wl.push(
            wsdf_workload::Message {
                src: 2,
                dst: 2,
                flits: 4,
                phase: ph,
            },
            &[],
        );
        let err = run_wl(&bench, &wl).unwrap_err();
        assert!(err.contains("invalid simulation input"), "{err}");
    }
}
