//! Fabric + oracle bundles and workload construction.
//!
//! [`Bench`] keeps its routing oracle in a closed enum ([`BenchOracle`])
//! rather than a `Box<dyn RouteOracle>`: [`Bench::run`] matches on it once
//! per simulation and enters the *monomorphized* engine with the concrete
//! oracle type, so the per-flit hot path never pays virtual dispatch. The
//! enum still implements [`RouteOracle`] itself (one match per call) for
//! callers that need a uniform oracle view, e.g. route walkers.

use crate::scenario::PartitionerKind;
use crate::session::SessionConfig;
use wsdf_exec::BspPool;
use wsdf_routing::{
    DetourOracle, MeshOracle, ReachMap, RouteMode, SlOracle, SwOracle, SwitchNodeOracle, VcScheme,
};
use wsdf_sim::{
    FaultMap, Metrics, NetworkDesc, PacketHeader, RouteChoice, RouteOracle, SimConfig, SimResult,
    SplitMix64, Tracer, TrafficPattern,
};
use wsdf_topo::{
    single_mesh, single_switch, FaultSet, MeshFabric, SlParams, SwParams, SwitchFabric, SwitchNode,
    SwitchlessFabric,
};
use wsdf_traffic::{
    HotspotPattern, PermKind, PermutationPattern, RingAllReduce, RingDirection, Scope,
    UniformPattern, WorstCasePattern,
};

/// A built network of one of the four evaluated kinds.
#[derive(Clone)]
pub enum Fabric {
    /// Switch-less Dragonfly on wafers.
    Switchless(SwitchlessFabric),
    /// Switch-based Dragonfly baseline.
    Switchbased(SwitchFabric),
    /// Standalone m×m mesh C-group (Fig. 10(a,b) left side).
    Mesh(MeshFabric),
    /// Single ideal switch (Fig. 10(a,b) right side).
    SingleSwitch(SwitchNode),
}

impl Fabric {
    /// The simulator network description.
    pub fn net(&self) -> &NetworkDesc {
        match self {
            Fabric::Switchless(f) => &f.net,
            Fabric::Switchbased(f) => &f.net,
            Fabric::Mesh(f) => &f.net,
            Fabric::SingleSwitch(f) => &f.net,
        }
    }
}

/// Workload selector; see [`Bench::pattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSpec {
    /// Uniform random.
    Uniform,
    /// Bit permutation.
    Permutation(PermKind),
    /// Hotspot over four evenly spread W-groups.
    Hotspot,
    /// Worst-case Wi → Wi+1.
    WorstCase,
    /// Ring AllReduce over the chips of each C-group.
    RingCGroup(RingDirection),
    /// Ring AllReduce over the chips of each W-group.
    RingWGroup(RingDirection),
}

/// The routing oracle of a [`Bench`], as a closed enum over the four
/// evaluated fabric kinds. Matching once per run (not per flit) is what
/// keeps the engine hot path free of `dyn RouteOracle` dispatch.
#[derive(Debug, Clone)]
pub enum BenchOracle {
    /// Switch-less Dragonfly routing.
    Sl(SlOracle),
    /// Switch-based Dragonfly routing.
    Sw(SwOracle),
    /// Standalone-mesh XY routing.
    Mesh(MeshOracle),
    /// Single ideal switch (VOQ) routing.
    Switch(SwitchNodeOracle),
    /// Fault-aware up*/down* detour routing (any fabric with dead
    /// links/routers — see [`Bench::with_fault_set`]).
    Detour(DetourOracle),
}

impl BenchOracle {
    /// Borrow as a trait object (route walkers, diagnostics).
    pub fn as_dyn(&self) -> &dyn RouteOracle {
        match self {
            BenchOracle::Sl(o) => o,
            BenchOracle::Sw(o) => o,
            BenchOracle::Mesh(o) => o,
            BenchOracle::Switch(o) => o,
            BenchOracle::Detour(o) => o,
        }
    }
}

impl RouteOracle for BenchOracle {
    fn route(
        &self,
        router: u32,
        in_port: u8,
        in_vc: u8,
        pkt: &PacketHeader,
        rng: &mut SplitMix64,
    ) -> RouteChoice {
        match self {
            BenchOracle::Sl(o) => o.route(router, in_port, in_vc, pkt, rng),
            BenchOracle::Sw(o) => o.route(router, in_port, in_vc, pkt, rng),
            BenchOracle::Mesh(o) => o.route(router, in_port, in_vc, pkt, rng),
            BenchOracle::Switch(o) => o.route(router, in_port, in_vc, pkt, rng),
            BenchOracle::Detour(o) => o.route(router, in_port, in_vc, pkt, rng),
        }
    }

    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        match self {
            BenchOracle::Sl(o) => o.initial_vc(pkt),
            BenchOracle::Sw(o) => o.initial_vc(pkt),
            BenchOracle::Mesh(o) => o.initial_vc(pkt),
            BenchOracle::Switch(o) => o.initial_vc(pkt),
            BenchOracle::Detour(o) => o.initial_vc(pkt),
        }
    }

    fn num_vcs(&self) -> u8 {
        match self {
            BenchOracle::Sl(o) => o.num_vcs(),
            BenchOracle::Sw(o) => o.num_vcs(),
            BenchOracle::Mesh(o) => o.num_vcs(),
            BenchOracle::Switch(o) => o.num_vcs(),
            BenchOracle::Detour(o) => o.num_vcs(),
        }
    }

    fn tag_packet(&self, pkt: &mut PacketHeader, rng: &mut SplitMix64) {
        match self {
            BenchOracle::Sl(o) => o.tag_packet(pkt, rng),
            BenchOracle::Sw(o) => o.tag_packet(pkt, rng),
            BenchOracle::Mesh(o) => o.tag_packet(pkt, rng),
            BenchOracle::Switch(o) => o.tag_packet(pkt, rng),
            BenchOracle::Detour(o) => o.tag_packet(pkt, rng),
        }
    }
}

/// Fault state of a degraded [`Bench`]: the engine-facing map plus the
/// reachability summary used to filter workloads.
#[derive(Debug, Clone)]
pub struct BenchFaults {
    /// Dead routers/channels (sealed), handed to the engine so faulted
    /// channels reject traversal with hard asserts.
    pub map: FaultMap,
    /// Per-endpoint liveness/component summary.
    pub reach: ReachMap,
    /// Failed undirected fabric links.
    pub dead_links: u32,
    /// Failed routers.
    pub dead_routers: u32,
}

/// A fabric, its routing oracle, and its endpoint scoping — everything a
/// simulation run needs besides the workload and rates.
#[derive(Clone)]
pub struct Bench {
    /// The built network.
    pub fabric: Fabric,
    /// The routing oracle driving it.
    pub oracle: BenchOracle,
    /// Endpoint grouping (W-groups, chips).
    pub scope: Scope,
    /// Nodes per chip for per-chip rate conversion (may be fractional for
    /// the radix-32 configuration; see DESIGN.md).
    pub nodes_per_chip: f64,
    /// Display label ("SW-less-2B", "SW-based", ...).
    pub label: String,
    /// Fault state, if this bench was degraded with
    /// [`Bench::with_fault_set`]; `None` = pristine.
    pub faults: Option<BenchFaults>,
}

impl Bench {
    /// Switch-less Dragonfly with the given routing mode and VC scheme.
    pub fn switchless(p: &SlParams, mode: RouteMode, scheme: VcScheme) -> Self {
        let fabric = SwitchlessFabric::build(p);
        let oracle = SlOracle::new(p, mode, scheme);
        let scope = Scope::switchless(p);
        let width_tag = match p.mesh_width {
            2 => "-2B",
            4 => "-4B",
            _ => "",
        };
        let mode_tag = match mode {
            RouteMode::Minimal => "",
            RouteMode::Valiant => "-Mis",
        };
        Bench {
            fabric: Fabric::Switchless(fabric),
            oracle: BenchOracle::Sl(oracle),
            scope,
            nodes_per_chip: p.nodes_per_chip,
            label: format!("SW-less{width_tag}{mode_tag}"),
            faults: None,
        }
    }

    /// Switch-based Dragonfly baseline.
    pub fn switchbased(p: &SwParams, mode: RouteMode) -> Self {
        let fabric = SwitchFabric::build(p);
        let oracle = match mode {
            RouteMode::Minimal => SwOracle::minimal(p),
            RouteMode::Valiant => SwOracle::valiant(p),
        };
        let scope = Scope::switchbased(p);
        let mode_tag = match mode {
            RouteMode::Minimal => "",
            RouteMode::Valiant => "-Mis",
        };
        Bench {
            fabric: Fabric::Switchbased(fabric),
            oracle: BenchOracle::Sw(oracle),
            scope,
            nodes_per_chip: 1.0,
            label: format!("SW-based{mode_tag}"),
            faults: None,
        }
    }

    /// Standalone mesh C-group (the "2D-Mesh" curve of Fig. 10(a,b)).
    pub fn single_mesh(m: u32, chiplet: u32, width: u8) -> Self {
        let fabric = single_mesh(m, chiplet, width);
        let oracle = MeshOracle::new(m);
        // Build a scope by treating the mesh as one C-group of one W-group.
        let p = SlParams {
            a: 1,
            b: 1,
            m,
            chiplet,
            wgroups: 1,
            mesh_width: width,
            nodes_per_chip: (chiplet * chiplet) as f64,
        };
        let scope = mesh_scope(&p);
        Bench {
            fabric: Fabric::Mesh(fabric),
            oracle: BenchOracle::Mesh(oracle),
            scope,
            nodes_per_chip: (chiplet * chiplet) as f64,
            label: "2D-Mesh".into(),
            faults: None,
        }
    }

    /// Single ideal switch with `terminals` chips (the "Switch" curve of
    /// Fig. 10(a,b)).
    pub fn single_switch(terminals: u32) -> Self {
        let fabric = single_switch(terminals);
        // locals = 0 → exactly one switch per "group", so the scope's
        // endpoint count matches the fabric's.
        let scope = Scope::switchbased(&SwParams {
            terminals,
            locals: 0,
            globals: 0,
            groups: 1,
        });
        Bench {
            fabric: Fabric::SingleSwitch(fabric),
            oracle: BenchOracle::Switch(SwitchNodeOracle::new(terminals.min(16) as u8)),
            scope,
            nodes_per_chip: 1.0,
            label: "Switch".into(),
            faults: None,
        }
    }

    /// Degrade this bench with a sampled [`FaultSet`].
    ///
    /// An **empty** fault set returns a plain clone — same oracle, same
    /// hot path — so a zero-fault resilience point is *exactly* the
    /// pristine bench (bit-identical metrics). A non-empty set swaps the
    /// oracle for a precomputed [`DetourOracle`] over the live graph,
    /// hands the sealed [`FaultMap`] to the engine (dead channels reject
    /// traversal with hard asserts), and filters every generated pattern
    /// down to routable endpoint pairs.
    pub fn with_fault_set(&self, fs: &FaultSet) -> Bench {
        let mut out = self.clone();
        if fs.is_empty() {
            return out;
        }
        let oracle = DetourOracle::build(self.fabric.net(), fs.map());
        out.faults = Some(BenchFaults {
            reach: oracle.reach_map(),
            map: fs.map().clone(),
            dead_links: fs.dead_links(),
            dead_routers: fs.dead_routers(),
        });
        out.oracle = BenchOracle::Detour(oracle);
        out
    }

    /// The engine-facing fault map, if degraded.
    pub fn fault_map(&self) -> Option<&FaultMap> {
        self.faults.as_ref().map(|f| &f.map)
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> u32 {
        self.fabric.net().num_endpoints() as u32
    }

    /// Number of chips (endpoints / nodes-per-chip).
    pub fn chips(&self) -> f64 {
        self.endpoints() as f64 / self.nodes_per_chip
    }

    /// Minimum VC count this bench's oracle needs.
    pub fn num_vcs(&self) -> u8 {
        self.oracle.num_vcs()
    }

    /// Build the traffic generator for `spec` at `rate_node`
    /// flits/cycle/endpoint.
    ///
    /// On a degraded bench the generator is wrapped in a [`LivePattern`]
    /// filter: dead endpoints offer no load and draws toward unroutable
    /// destinations are skipped, so open-loop traffic only exercises pairs
    /// the detour oracle can actually serve.
    pub fn pattern(&self, spec: PatternSpec, rate_node: f64) -> Box<dyn TrafficPattern> {
        let inner = self.pattern_unfiltered(spec, rate_node);
        match &self.faults {
            None => inner,
            Some(f) => Box::new(LivePattern::new(inner, f.reach.clone())),
        }
    }

    /// The raw (fault-oblivious) generator behind [`Bench::pattern`].
    fn pattern_unfiltered(&self, spec: PatternSpec, rate_node: f64) -> Box<dyn TrafficPattern> {
        let n = self.endpoints();
        match spec {
            PatternSpec::Uniform => Box::new(UniformPattern::new(n, rate_node)),
            PatternSpec::Permutation(kind) => Box::new(PermutationPattern::new(kind, n, rate_node)),
            PatternSpec::Hotspot => Box::new(HotspotPattern::paper_default(&self.scope, rate_node)),
            PatternSpec::WorstCase => Box::new(WorstCasePattern::new(&self.scope, rate_node)),
            PatternSpec::RingCGroup(dir) => Box::new(RingAllReduce::new(
                &self.scope,
                self.scope.chips_per_cgroup,
                dir,
                rate_node,
            )),
            PatternSpec::RingWGroup(dir) => Box::new(RingAllReduce::new(
                &self.scope,
                self.scope.chips_per_wgroup,
                dir,
                rate_node,
            )),
        }
    }

    /// Fill in [`SimConfig::partition_map`] with a locality-aware
    /// assignment (`wsdf_topo::locality_partition`) when the run will
    /// actually be parallel and no explicit map was given.
    ///
    /// The partition count mirrors exactly what the engine would resolve
    /// on its own ([`wsdf_sim::effective_partitions`] over live routers
    /// and `wsdf_exec::configured_threads`), so switching schemes never
    /// changes *how many* partitions run — only *which* routers share
    /// one. Results are bit-identical either way; only barrier traffic
    /// changes. Honors the `WSDF_PARTITIONER` env var (resolved once via
    /// [`SessionConfig::from_env`]): `blocks` keeps the engine's legacy
    /// contiguous blocks, anything else (or unset) selects the locality
    /// partitioner.
    pub fn apply_partitioner(&self, cfg: &mut SimConfig) {
        self.apply_partitioner_with(cfg, SessionConfig::from_env().partitioner);
    }

    /// [`Bench::apply_partitioner`] with an explicit scheme instead of the
    /// environment default. [`PartitionerKind::Blocks`] leaves the map
    /// unset — the engine then falls back to its internal contiguous
    /// blocks, which is exactly what the explicit `contiguous_blocks`
    /// map would produce.
    pub fn apply_partitioner_with(&self, cfg: &mut SimConfig, kind: PartitionerKind) {
        if cfg.partition_map.is_some() || kind != PartitionerKind::Locality {
            return;
        }
        let net = self.fabric.net();
        let live = self
            .fault_map()
            .map_or(net.num_routers(), |f| f.live_routers());
        let p =
            wsdf_sim::effective_partitions(cfg.partitions, live, wsdf_exec::configured_threads());
        if p > 1 {
            cfg.partition_map = Some(std::sync::Arc::new(wsdf_topo::locality_partition(
                net,
                p,
                self.fault_map(),
            )));
        }
    }

    /// Prepare a cloned config for a run: raise the VC count to the
    /// oracle's requirement and fill in the partition map with `kind`
    /// (unless an explicit map was given). This is the single config
    /// normalization point every run kind — [`crate::Session`] and the
    /// deprecated free functions alike — goes through.
    pub(crate) fn prepare_cfg(&self, cfg: &SimConfig, kind: PartitionerKind) -> SimConfig {
        let mut cfg = cfg.clone();
        cfg.num_vcs = cfg.num_vcs.max(self.oracle.num_vcs());
        self.apply_partitioner_with(&mut cfg, kind);
        cfg
    }

    /// Monomorphized engine entry on an already-[prepared](Bench::prepare_cfg)
    /// config, with optional streaming telemetry. Dispatches on the
    /// oracle kind *once*, then runs the engine with the concrete oracle
    /// type — the per-flit path is fully static. The pattern stays
    /// dynamic (queried per packet, not per flit).
    pub(crate) fn run_prepared(
        &self,
        cfg: &SimConfig,
        pattern: &dyn TrafficPattern,
        pool: &BspPool,
        trace: Option<&Tracer>,
    ) -> SimResult<Metrics> {
        let net = self.fabric.net();
        let faults = self.fault_map();
        match &self.oracle {
            BenchOracle::Sl(o) => {
                wsdf_sim::simulate_traced_on(net, cfg, o, pattern, pool, faults, trace)
            }
            BenchOracle::Sw(o) => {
                wsdf_sim::simulate_traced_on(net, cfg, o, pattern, pool, faults, trace)
            }
            BenchOracle::Mesh(o) => {
                wsdf_sim::simulate_traced_on(net, cfg, o, pattern, pool, faults, trace)
            }
            BenchOracle::Switch(o) => {
                wsdf_sim::simulate_traced_on(net, cfg, o, pattern, pool, faults, trace)
            }
            BenchOracle::Detour(o) => {
                wsdf_sim::simulate_traced_on(net, cfg, o, pattern, pool, faults, trace)
            }
        }
    }

    /// Run one simulation with an explicit config and pattern. The config's
    /// VC count is raised to the oracle's requirement automatically.
    #[deprecated(
        since = "0.6.0",
        note = "use the wsdf Session builder: \
                 Session::bench(&b).metrics(&pattern)"
    )]
    pub fn run(&self, cfg: &SimConfig, pattern: &dyn TrafficPattern) -> SimResult<Metrics> {
        let cfg = self.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
        self.run_prepared(&cfg, pattern, wsdf_exec::global_pool(), None)
    }

    /// [`Bench::run`] on an explicit [`BspPool`] executor instead of the
    /// process-wide pool. Metrics are bit-identical for any pool size —
    /// the determinism matrix in `tests/determinism_and_vcs.rs` pins this
    /// down — so the pool choice is purely a scheduling concern.
    #[deprecated(
        since = "0.6.0",
        note = "use the wsdf Session builder: \
                 Session::bench(&b).pool(pool).metrics(&pattern)"
    )]
    pub fn run_on(
        &self,
        cfg: &SimConfig,
        pattern: &dyn TrafficPattern,
        pool: &BspPool,
    ) -> SimResult<Metrics> {
        let cfg = self.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
        self.run_prepared(&cfg, pattern, pool, None)
    }

    /// Type-erased variant of [`Bench::run`] built on
    /// [`wsdf_sim::simulate_dyn`]; useful when a caller already holds the
    /// oracle as `&dyn RouteOracle` or wants uniform treatment across
    /// heterogeneous benches at the cost of per-flit virtual dispatch.
    #[deprecated(
        since = "0.6.0",
        note = "use the wsdf Session builder: \
                 Session::bench(&b).dyn_dispatch().metrics(&pattern)"
    )]
    pub fn run_dyn(&self, cfg: &SimConfig, pattern: &dyn TrafficPattern) -> SimResult<Metrics> {
        let cfg = self.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
        self.run_dyn_prepared(&cfg, pattern, wsdf_exec::global_pool(), None)
    }

    /// Type-erased engine entry on an already-prepared config — the
    /// dynamic-dispatch sibling of [`Bench::run_prepared`].
    pub(crate) fn run_dyn_prepared(
        &self,
        cfg: &SimConfig,
        pattern: &dyn TrafficPattern,
        pool: &BspPool,
        trace: Option<&Tracer>,
    ) -> SimResult<Metrics> {
        wsdf_sim::simulate_traced_on(
            self.fabric.net(),
            cfg,
            self.oracle.as_dyn(),
            pattern,
            pool,
            self.fault_map(),
            trace,
        )
    }
}

/// Fault filter around a [`TrafficPattern`]: endpoints on dead routers
/// offer zero load, and destination draws that are unroutable under the
/// bench's [`ReachMap`] are skipped (the generation event is dropped, the
/// inner pattern's RNG consumption is unchanged — so the surviving stream
/// is a deterministic subsequence of the pristine one).
pub struct LivePattern {
    inner: Box<dyn TrafficPattern>,
    reach: ReachMap,
    live_fraction: f64,
}

impl LivePattern {
    /// Wrap `inner` under `reach`.
    pub fn new(inner: Box<dyn TrafficPattern>, reach: ReachMap) -> Self {
        let live_fraction = reach.live_endpoints() as f64 / reach.endpoints().max(1) as f64;
        LivePattern {
            inner,
            reach,
            live_fraction,
        }
    }
}

impl TrafficPattern for LivePattern {
    fn rate(&self, src: u32) -> f64 {
        if self.reach.live(src) {
            self.inner.rate(src)
        } else {
            0.0
        }
    }

    fn dest(&self, src: u32, seq: u64, rng: &mut SplitMix64) -> Option<u32> {
        self.inner
            .dest(src, seq, rng)
            .filter(|&d| self.reach.routable(src, d))
    }

    fn active_fraction(&self) -> f64 {
        // Approximation: live endpoints are assumed uniformly spread over
        // the inner pattern's active subset (exact for uniform traffic).
        self.inner.active_fraction() * self.live_fraction
    }
}

/// Scope for a standalone mesh (single C-group): chips tile the mesh in
/// chiplet blocks, everything in W-group 0.
fn mesh_scope(p: &SlParams) -> Scope {
    Scope::switchless(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use wsdf_sim::SimConfig;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            warmup_cycles: 300,
            measure_cycles: 700,
            drain_cycles: 200,
            ..Default::default()
        }
    }

    fn run_quick(b: &Bench, pat: &dyn TrafficPattern) -> Metrics {
        Session::bench(b)
            .sim(quick_cfg())
            .metrics(pat)
            .unwrap()
            .report
    }

    #[test]
    fn mesh_bench_runs_uniform() {
        let b = Bench::single_mesh(4, 2, 1);
        assert_eq!(b.endpoints(), 16);
        assert_eq!(b.chips(), 4.0);
        let pat = b.pattern(PatternSpec::Uniform, 0.2);
        let m = run_quick(&b, pat.as_ref());
        assert!(m.packets_ejected > 0);
        assert!(!m.deadlocked);
    }

    #[test]
    fn switch_bench_runs_uniform() {
        let b = Bench::single_switch(16);
        assert_eq!(b.chips(), 16.0);
        let pat = b.pattern(PatternSpec::Uniform, 0.3);
        let m = run_quick(&b, pat.as_ref());
        assert!(m.packets_ejected > 0);
    }

    #[test]
    fn switchless_wgroup_runs_all_patterns() {
        let p = SlParams::radix16().with_wgroups(1);
        let b = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        assert_eq!(b.label, "SW-less");
        for spec in [
            PatternSpec::Uniform,
            PatternSpec::Permutation(PermKind::BitReverse),
            PatternSpec::RingCGroup(RingDirection::Unidirectional),
            PatternSpec::RingWGroup(RingDirection::Bidirectional),
        ] {
            let pat = b.pattern(spec, 0.1);
            let m = run_quick(&b, pat.as_ref());
            assert!(m.packets_ejected > 0, "{spec:?} delivered nothing");
        }
    }

    #[test]
    fn switchbased_group_runs() {
        let p = SwParams::radix16().with_groups(1);
        let b = Bench::switchbased(&p, RouteMode::Minimal);
        assert_eq!(b.label, "SW-based");
        let pat = b.pattern(PatternSpec::Uniform, 0.3);
        let m = run_quick(&b, pat.as_ref());
        assert!(m.packets_ejected > 0);
    }

    #[test]
    fn dyn_run_matches_monomorphized_run() {
        let b = Bench::single_mesh(4, 2, 1);
        let pat = b.pattern(PatternSpec::Uniform, 0.3);
        let a = run_quick(&b, pat.as_ref());
        let d = Session::bench(&b)
            .sim(quick_cfg())
            .dyn_dispatch()
            .metrics(pat.as_ref())
            .unwrap()
            .report;
        assert_eq!(a.packets_created, d.packets_created);
        assert_eq!(a.packets_ejected, d.packets_ejected);
        assert_eq!(a.latency_sum, d.latency_sum);
        assert_eq!(a.class_hops.flit_hops, d.class_hops.flit_hops);
    }

    #[test]
    fn labels_encode_width_and_mode() {
        let p = SlParams::radix16().with_wgroups(1).with_mesh_width(2);
        let b = Bench::switchless(&p, RouteMode::Valiant, VcScheme::Baseline);
        assert_eq!(b.label, "SW-less-2B-Mis");
    }
}
