//! The unified run frontend: one builder for every run kind, with
//! optional streaming telemetry.
//!
//! Historically each run kind had its own free-function entry point
//! (`sweep`, `adaptive_sweep`, `run_workload`, `run_serving`,
//! `resilience_sweep`, plus `Bench::run*` for raw metrics), each reading
//! the environment on its own. [`Session`] collapses them into one path:
//!
//! ```no_run
//! use wsdf::{AdaptiveConfig, Bench, PatternSpec, Session};
//!
//! let bench = Bench::single_mesh(4, 2, 1);
//! let out = Session::bench(&bench)
//!     .adaptive(&AdaptiveConfig::default(), PatternSpec::Uniform)
//!     .unwrap();
//! println!("saturation {:.2} flits/cycle/chip", out.report.sat_chip);
//! ```
//!
//! A session is built from either a [`Bench`] (pick a run kind:
//! [`Session::metrics`], [`Session::sweep`], [`Session::adaptive`],
//! [`Session::workload`], [`Session::serving`], [`Session::resilience`])
//! or a [`Scenario`] ([`Session::run`] dispatches on the scenario's run
//! section). Every run kind returns a typed [`Outcome`] carrying the
//! kind's report plus, when telemetry was attached, a [`TraceOutcome`].
//!
//! # Telemetry
//!
//! [`Session::trace`] buffers the JSONL stream in memory and returns it
//! (with its digest) in the outcome; [`Session::trace_to_path`] streams
//! to a file; [`Session::trace_to_writer`] streams to any `Write + Send`
//! sink. Telemetry is observe-only: reports are bit-identical with and
//! without it, and the trace byte stream itself is deterministic across
//! partition counts, worker counts and stepping modes (see
//! `wsdf_sim::telemetry`).
//!
//! # Environment resolution
//!
//! [`SessionConfig`] is the single documented resolution point for the
//! engine's environment knobs — see [`SessionConfig::resolve`] for the
//! precedence table. Builder methods always override the environment.

use crate::bench::{Bench, PatternSpec};
use crate::collective::{run_workload_impl, WorkloadReport, WorkloadUnits};
use crate::resilience::{resilience_impl, ResilienceConfig, ResilienceReport};
use crate::scenario::{PartitionerKind, Partitioning, Scenario, ScenarioOutcome, Stepping};
use crate::serving::{run_serving_impl, ServingReport};
use crate::sweep::{
    adaptive_impl, sweep_impl, AdaptiveConfig, SaturationReport, SweepConfig, SweepPoint,
};
use std::io::Write;
use std::path::PathBuf;
use wsdf_exec::BspPool;
use wsdf_sim::{
    json, Metrics, SharedBuf, SimConfig, TraceConfig, TraceGuard, Tracer, TrafficPattern,
};
use wsdf_workload::tenancy::ServingSpec;
use wsdf_workload::Workload;

/// The resolved environment configuration every run starts from: one
/// documented precedence table instead of per-callsite `env::var` reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Engine stepping default (`WSDF_EVENT_DRIVEN`): only the literal
    /// `0` selects dense stepping; anything else (or unset) selects
    /// event-driven.
    pub event_driven: bool,
    /// Partition-map scheme default (`WSDF_PARTITIONER`): only the
    /// literal `blocks` selects contiguous blocks; anything else (or
    /// unset) selects the locality partitioner.
    pub partitioner: PartitionerKind,
    /// Worker-count override (`WSDF_THREADS`, else `RAYON_NUM_THREADS`;
    /// values are trimmed, non-numeric or zero values are ignored).
    /// `None` falls back to the machine's available parallelism.
    pub threads: Option<usize>,
}

impl SessionConfig {
    /// Resolve the full precedence table from an environment lookup
    /// function. Pure — the unit tests below pin the table without
    /// mutating the process environment:
    ///
    /// | Variable | Effect |
    /// |---|---|
    /// | `WSDF_EVENT_DRIVEN=0` | dense stepping (any other value, or unset: event-driven) |
    /// | `WSDF_PARTITIONER=blocks` | contiguous blocks (any other value, or unset: locality) |
    /// | `WSDF_THREADS=N` | N workers (trumps `RAYON_NUM_THREADS`) |
    /// | `RAYON_NUM_THREADS=N` | N workers (only when `WSDF_THREADS` is unset/invalid) |
    ///
    /// Invalid or zero thread counts are ignored (fall through to the
    /// next source); stepping/partitioner values never fail — unknown
    /// strings select the default.
    pub fn resolve(get: impl Fn(&str) -> Option<String>) -> SessionConfig {
        SessionConfig {
            event_driven: wsdf_sim::config::resolve_event_driven(&get),
            partitioner: match get("WSDF_PARTITIONER") {
                Some(v) if v == "blocks" => PartitionerKind::Blocks,
                _ => PartitionerKind::Locality,
            },
            threads: wsdf_exec::resolve_threads(&get),
        }
    }

    /// [`SessionConfig::resolve`] over the process environment, cached on
    /// first use (so a test harness mutating the environment mid-process
    /// cannot race running simulations). The `event_driven` entry shares
    /// the cache behind `SimConfig::default()`.
    pub fn from_env() -> SessionConfig {
        use std::sync::OnceLock;
        static CFG: OnceLock<SessionConfig> = OnceLock::new();
        *CFG.get_or_init(|| SessionConfig {
            // Not `resolve()` wholesale: `SimConfig::default()` already
            // caches the stepping read, and the two caches must agree.
            event_driven: wsdf_sim::config::event_driven_default(),
            partitioner: SessionConfig::resolve(|k| std::env::var(k).ok()).partitioner,
            threads: wsdf_exec::resolve_threads(|k| std::env::var(k).ok()),
        })
    }
}

/// Where a session's trace stream went, and (for in-memory captures) the
/// stream itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOutcome {
    /// FNV-1a digest of the JSONL stream (`fnv64:` + 16 hex digits).
    /// `Some` for in-memory captures ([`Session::trace`]), `None` when
    /// the stream went to a file or external writer.
    pub digest: Option<String>,
    /// The captured JSONL stream (in-memory captures only).
    pub jsonl: Option<String>,
    /// Destination file ([`Session::trace_to_path`] captures only).
    pub path: Option<PathBuf>,
}

/// Result of one session run: the run kind's report plus the trace
/// outcome when telemetry was attached.
#[derive(Debug)]
pub struct Outcome<T> {
    /// The run kind's report (e.g. [`Metrics`], [`SaturationReport`],
    /// [`ScenarioOutcome`]).
    pub report: T,
    /// Trace capture summary; `None` when telemetry was not configured.
    pub trace: Option<TraceOutcome>,
}

/// What the session runs on.
#[derive(Clone, Copy)]
enum Source<'a> {
    Bench(&'a Bench),
    Scenario(&'a Scenario),
}

/// Where the trace stream goes.
enum SinkSpec {
    /// In-memory capture; the outcome carries the stream and its digest.
    Buffer,
    /// Stream to a file created at run start.
    Path(PathBuf),
    /// Stream to a caller-supplied writer.
    Writer(Box<dyn Write + Send>),
}

/// A live trace pipeline during a run.
struct ActiveTrace {
    tracer: Tracer,
    guard: TraceGuard,
    buf: Option<SharedBuf>,
    path: Option<PathBuf>,
}

/// The unified run builder. See the module docs for the design; every
/// run-kind method consumes the session (one build, one run).
pub struct Session<'a> {
    source: Source<'a>,
    sim: Option<SimConfig>,
    partitions: Option<usize>,
    stepping: Option<Stepping>,
    partitioner: Option<PartitionerKind>,
    pool: Option<&'a BspPool>,
    dyn_dispatch: bool,
    trace: Option<(TraceConfig, SinkSpec)>,
}

impl<'a> Session<'a> {
    fn new(source: Source<'a>) -> Session<'a> {
        Session {
            source,
            sim: None,
            partitions: None,
            stepping: None,
            partitioner: None,
            pool: None,
            dyn_dispatch: false,
            trace: None,
        }
    }

    /// A session over a built [`Bench`]; pick a run kind to execute.
    pub fn bench(bench: &'a Bench) -> Session<'a> {
        Session::new(Source::Bench(bench))
    }

    /// A session over a declarative [`Scenario`]; [`Session::run`]
    /// dispatches on its run section. The scenario's own `telemetry`
    /// section (if any) is honored unless a `trace*` builder method
    /// overrides it.
    pub fn scenario(scenario: &'a Scenario) -> Session<'a> {
        Session::new(Source::Scenario(scenario))
    }

    /// Simulation config template (windows, seed, buffering). Bench
    /// sessions default to [`SimConfig::default`]; for kind configs that
    /// embed their own template ([`SweepConfig::sim`],
    /// [`ResilienceConfig::sim`]) this replaces it. Scenario sessions
    /// take their sim section from the scenario instead and ignore this.
    pub fn sim(mut self, cfg: SimConfig) -> Session<'a> {
        self.sim = Some(cfg);
        self
    }

    /// Requested BSP partition count (the engine clamps to live routers
    /// and worker count, exactly like `SimConfig::partitions`).
    pub fn partitions(mut self, partitions: usize) -> Session<'a> {
        self.partitions = Some(partitions);
        self
    }

    /// Engine stepping mode, overriding the environment default (and the
    /// scenario's `stepping` section for scenario sessions).
    pub fn stepping(mut self, stepping: Stepping) -> Session<'a> {
        self.stepping = Some(stepping);
        self
    }

    /// Partition-map scheme, overriding the `WSDF_PARTITIONER` default
    /// (and the scenario's `partitioning.partitioner` for scenario
    /// sessions with auto partitioning).
    pub fn partitioner(mut self, kind: PartitionerKind) -> Session<'a> {
        self.partitioner = Some(kind);
        self
    }

    /// Run on an explicit executor instead of the process-wide pool.
    /// Results are bit-identical for any pool size.
    pub fn pool(mut self, pool: &'a BspPool) -> Session<'a> {
        self.pool = Some(pool);
        self
    }

    /// Use per-flit dynamic oracle dispatch instead of the monomorphized
    /// engine (the old `Bench::run_dyn` behavior; only affects
    /// [`Session::metrics`]). Results are identical — this is purely a
    /// compile-time/runtime trade.
    pub fn dyn_dispatch(mut self) -> Session<'a> {
        self.dyn_dispatch = true;
        self
    }

    /// Attach streaming telemetry, capturing the JSONL stream in memory.
    /// The outcome's [`TraceOutcome`] carries the stream and its digest.
    pub fn trace(mut self, cfg: TraceConfig) -> Session<'a> {
        self.trace = Some((cfg, SinkSpec::Buffer));
        self
    }

    /// Attach streaming telemetry writing JSONL to `path` (created at
    /// run start, flushed and closed before the run returns).
    pub fn trace_to_path(mut self, cfg: TraceConfig, path: impl Into<PathBuf>) -> Session<'a> {
        self.trace = Some((cfg, SinkSpec::Path(path.into())));
        self
    }

    /// Attach streaming telemetry writing JSONL to a caller-supplied
    /// sink (e.g. a [`SharedBuf`] clone, a socket, a compressor).
    pub fn trace_to_writer(mut self, cfg: TraceConfig, sink: Box<dyn Write + Send>) -> Session<'a> {
        self.trace = Some((cfg, SinkSpec::Writer(sink)));
        self
    }

    /// The partitioner scheme this session resolves to.
    fn pk(&self) -> PartitionerKind {
        self.partitioner
            .unwrap_or_else(|| SessionConfig::from_env().partitioner)
    }

    /// The sim template for bench sessions: builder overrides applied on
    /// top of `base` (the kind config's template, or the default).
    fn merge_sim(&self, base: &SimConfig) -> SimConfig {
        let mut cfg = self.sim.clone().unwrap_or_else(|| base.clone());
        if let Some(p) = self.partitions {
            cfg.partitions = p;
        }
        if let Some(st) = self.stepping {
            cfg.event_driven = st == Stepping::Event;
        }
        cfg
    }

    /// The bench source, or a uniform error for scenario sessions.
    fn need_bench(&self, kind: &str) -> Result<&'a Bench, String> {
        match self.source {
            Source::Bench(b) => Ok(b),
            Source::Scenario(_) => Err(format!(
                "Session::{kind}: scenario sessions dispatch via Session::run(); \
                 run kinds are picked by bench sessions"
            )),
        }
    }

    /// Spin up the trace pipeline (if configured).
    fn start_trace(trace: Option<(TraceConfig, SinkSpec)>) -> Result<Option<ActiveTrace>, String> {
        let Some((cfg, sink)) = trace else {
            return Ok(None);
        };
        let (buf, path, sink): (Option<SharedBuf>, Option<PathBuf>, Box<dyn Write + Send>) =
            match sink {
                SinkSpec::Buffer => {
                    let b = SharedBuf::new();
                    (Some(b.clone()), None, Box::new(b))
                }
                SinkSpec::Path(p) => {
                    let f = std::fs::File::create(&p)
                        .map_err(|e| format!("trace file {}: {e}", p.display()))?;
                    (None, Some(p), Box::new(f))
                }
                SinkSpec::Writer(w) => (None, None, w),
            };
        let (tracer, guard) = Tracer::new(cfg, sink);
        Ok(Some(ActiveTrace {
            tracer,
            guard,
            buf,
            path,
        }))
    }

    /// Join the writer and summarize where the stream went.
    fn finish_trace(active: Option<ActiveTrace>) -> Result<Option<TraceOutcome>, String> {
        let Some(ActiveTrace {
            tracer,
            guard,
            buf,
            path,
        }) = active
        else {
            return Ok(None);
        };
        drop(tracer);
        guard.finish()?;
        let (digest, jsonl) = match buf {
            None => (None, None),
            Some(b) => {
                let text = String::from_utf8(b.contents())
                    .map_err(|e| format!("trace stream is not UTF-8: {e}"))?;
                (Some(json::digest_hex(&text)), Some(text))
            }
        };
        Ok(Some(TraceOutcome {
            digest,
            jsonl,
            path,
        }))
    }

    /// Run one open-loop simulation and return its raw [`Metrics`] — the
    /// successor of `Bench::run` / `Bench::run_on` / `Bench::run_dyn`.
    pub fn metrics(self, pattern: &dyn TrafficPattern) -> Result<Outcome<Metrics>, String> {
        let bench = self.need_bench("metrics")?;
        let cfg = bench.prepare_cfg(&self.merge_sim(&SimConfig::default()), self.pk());
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let dyn_dispatch = self.dyn_dispatch;
        let active = Self::start_trace(self.trace)?;
        let tracer = active.as_ref().map(|a| &a.tracer);
        let report = if dyn_dispatch {
            bench.run_dyn_prepared(&cfg, pattern, pool, tracer)
        } else {
            bench.run_prepared(&cfg, pattern, pool, tracer)
        }
        .map_err(|e| format!("session metrics run failed: {e}"))?;
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }

    /// Run a fixed-grid load-latency sweep — the successor of `sweep` /
    /// `sweep_on`. The session's sim/partitions/stepping overrides apply
    /// on top of `cfg.sim`.
    pub fn sweep(
        self,
        cfg: &SweepConfig,
        spec: PatternSpec,
        rates_chip: &[f64],
    ) -> Result<Outcome<Vec<SweepPoint>>, String> {
        let bench = self.need_bench("sweep")?;
        let scfg = SweepConfig {
            sim: self.merge_sim(&cfg.sim),
            ..cfg.clone()
        };
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let pk = self.pk();
        let active = Self::start_trace(self.trace)?;
        let report = sweep_impl(
            bench,
            &scfg,
            spec,
            rates_chip,
            pool,
            pk,
            active.as_ref().map(|a| &a.tracer),
        );
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }

    /// Run a saturation-seeking adaptive sweep — the successor of
    /// `adaptive_sweep` / `adaptive_sweep_on`.
    pub fn adaptive(
        self,
        cfg: &AdaptiveConfig,
        spec: PatternSpec,
    ) -> Result<Outcome<SaturationReport>, String> {
        let bench = self.need_bench("adaptive")?;
        let acfg = AdaptiveConfig {
            base: SweepConfig {
                sim: self.merge_sim(&cfg.base.sim),
                ..cfg.base.clone()
            },
            ..cfg.clone()
        };
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let pk = self.pk();
        let active = Self::start_trace(self.trace)?;
        let report = adaptive_impl(
            bench,
            &acfg,
            spec,
            pool,
            pk,
            active.as_ref().map(|a| &a.tracer),
        );
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }

    /// Run a collective workload DAG closed-loop — the successor of
    /// `run_workload` / `run_workload_on`.
    pub fn workload(
        self,
        wl: &Workload,
        units: &WorkloadUnits,
    ) -> Result<Outcome<WorkloadReport>, String> {
        let bench = self.need_bench("workload")?;
        let cfg = bench.prepare_cfg(&self.merge_sim(&SimConfig::default()), self.pk());
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let active = Self::start_trace(self.trace)?;
        let report = run_workload_impl(
            bench,
            &cfg,
            wl,
            units,
            pool,
            active.as_ref().map(|a| &a.tracer),
        )
        .map_err(|e| format!("session workload run failed: {e}"))?;
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }

    /// Run a multi-tenant serving mix — the successor of `run_serving` /
    /// `run_serving_on`. The trace's job stream covers the concurrent
    /// run only (isolated baselines are untraced).
    pub fn serving(self, spec: &ServingSpec) -> Result<Outcome<ServingReport>, String> {
        let bench = self.need_bench("serving")?;
        let cfg = bench.prepare_cfg(&self.merge_sim(&SimConfig::default()), self.pk());
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let active = Self::start_trace(self.trace)?;
        let report = run_serving_impl(bench, &cfg, spec, pool, active.as_ref().map(|a| &a.tracer))?;
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }

    /// Run a fault-injection resilience sweep — the successor of
    /// `resilience_sweep` / `resilience_sweep_on`. With the `epochs`
    /// stream enabled, each fault fraction is delimited by an `epoch`
    /// record in the trace.
    pub fn resilience(
        self,
        cfg: &ResilienceConfig,
        spec: PatternSpec,
    ) -> Result<Outcome<ResilienceReport>, String> {
        let bench = self.need_bench("resilience")?;
        let rcfg = ResilienceConfig {
            sim: self.merge_sim(&cfg.sim),
            ..cfg.clone()
        };
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let pk = self.pk();
        let active = Self::start_trace(self.trace)?;
        let report = resilience_impl(
            bench,
            &rcfg,
            spec,
            pool,
            pk,
            active.as_ref().map(|a| &a.tracer),
        );
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }

    /// Execute a scenario session: dispatch on the scenario's run
    /// section, with builder overrides applied (stepping, partitions,
    /// partitioner) and telemetry from the builder or, failing that, the
    /// scenario's own `telemetry` section (captured in memory).
    pub fn run(self) -> Result<Outcome<ScenarioOutcome>, String> {
        let Source::Scenario(scenario) = self.source else {
            return Err("Session::run: bench sessions pick a run kind \
                 (metrics/sweep/adaptive/workload/serving/resilience)"
                .to_string());
        };
        // Builder overrides rewrite the scenario sections they shadow,
        // so the single scenario run path sees one consistent spec.
        let mut eff = scenario.clone();
        if let Some(st) = self.stepping {
            eff.stepping = st;
        }
        if let Some(p) = self.partitions {
            let keep = match &eff.partitioning {
                Partitioning::Auto { partitioner, .. } => *partitioner,
                Partitioning::Map(_) => PartitionerKind::Locality,
            };
            eff.partitioning = Partitioning::Auto {
                partitions: p as u64,
                partitioner: self.partitioner.unwrap_or(keep),
            };
        } else if let Some(pk) = self.partitioner {
            if let Partitioning::Auto { partitioner, .. } = &mut eff.partitioning {
                *partitioner = pk;
            }
        }
        let trace = match self.trace {
            Some(t) => Some(t),
            None => eff.telemetry.clone().map(|cfg| (cfg, SinkSpec::Buffer)),
        };
        let pool = self.pool.unwrap_or_else(|| wsdf_exec::global_pool());
        let active = Self::start_trace(trace)?;
        let report = eff.run_traced_on(pool, active.as_ref().map(|a| &a.tracer))?;
        let trace = Self::finish_trace(active)?;
        Ok(Outcome { report, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'p>(pairs: &'p [(&'p str, &'p str)]) -> impl Fn(&str) -> Option<String> + 'p {
        move |k| {
            pairs
                .iter()
                .find(|(name, _)| *name == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn precedence_table_stepping() {
        assert!(SessionConfig::resolve(env(&[])).event_driven);
        assert!(!SessionConfig::resolve(env(&[("WSDF_EVENT_DRIVEN", "0")])).event_driven);
        assert!(SessionConfig::resolve(env(&[("WSDF_EVENT_DRIVEN", "1")])).event_driven);
        // Only the literal "0" opts out — anything else is event-driven.
        assert!(SessionConfig::resolve(env(&[("WSDF_EVENT_DRIVEN", "false")])).event_driven);
        assert!(SessionConfig::resolve(env(&[("WSDF_EVENT_DRIVEN", "")])).event_driven);
    }

    #[test]
    fn precedence_table_partitioner() {
        let pk = |pairs: &[(&str, &str)]| SessionConfig::resolve(env(pairs)).partitioner;
        assert_eq!(pk(&[]), PartitionerKind::Locality);
        assert_eq!(
            pk(&[("WSDF_PARTITIONER", "blocks")]),
            PartitionerKind::Blocks
        );
        assert_eq!(
            pk(&[("WSDF_PARTITIONER", "locality")]),
            PartitionerKind::Locality
        );
        // Unknown values select the default, never error.
        assert_eq!(
            pk(&[("WSDF_PARTITIONER", "BLOCKS")]),
            PartitionerKind::Locality
        );
    }

    #[test]
    fn precedence_table_threads() {
        let th = |pairs: &[(&str, &str)]| SessionConfig::resolve(env(pairs)).threads;
        assert_eq!(th(&[]), None);
        assert_eq!(th(&[("WSDF_THREADS", "3")]), Some(3));
        assert_eq!(th(&[("RAYON_NUM_THREADS", "7")]), Some(7));
        // WSDF_THREADS trumps RAYON_NUM_THREADS.
        assert_eq!(
            th(&[("WSDF_THREADS", "2"), ("RAYON_NUM_THREADS", "9")]),
            Some(2)
        );
        // Invalid and zero values fall through to the next source.
        assert_eq!(th(&[("WSDF_THREADS", "0")]), None);
        assert_eq!(
            th(&[("WSDF_THREADS", "lots"), ("RAYON_NUM_THREADS", "5")]),
            Some(5)
        );
        assert_eq!(th(&[("WSDF_THREADS", " 4 ")]), Some(4));
    }

    #[test]
    fn from_env_is_cached_and_consistent() {
        let a = SessionConfig::from_env();
        let b = SessionConfig::from_env();
        assert_eq!(a, b);
        assert_eq!(
            a.event_driven,
            wsdf_sim::config::event_driven_default(),
            "from_env must share the stepping cache behind SimConfig::default()"
        );
    }

    #[test]
    fn bench_session_runs_and_traces_in_memory() {
        let bench = Bench::single_mesh(2, 2, 1);
        let cfg = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 400,
            ..SimConfig::default()
        };
        let pat = bench.pattern(PatternSpec::Uniform, 0.05);
        let out = Session::bench(&bench)
            .sim(cfg.clone())
            .trace(TraceConfig {
                stride: 64,
                ..TraceConfig::default()
            })
            .metrics(pat.as_ref())
            .unwrap();
        assert!(out.report.packets_ejected > 0);
        let trace = out.trace.expect("trace was configured");
        let jsonl = trace.jsonl.expect("in-memory capture");
        assert!(!jsonl.is_empty());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"t\": \"")));
        assert_eq!(trace.digest.as_deref(), Some(&*json::digest_hex(&jsonl)));

        // Observe-only: the same session without telemetry is bit-identical.
        let plain = Session::bench(&bench)
            .sim(cfg)
            .metrics(pat.as_ref())
            .unwrap();
        assert!(plain.trace.is_none());
        assert_eq!(format!("{:?}", plain.report), format!("{:?}", out.report));
    }

    #[test]
    fn run_kinds_reject_wrong_source() {
        let bench = Bench::single_mesh(2, 2, 1);
        let err = Session::bench(&bench).run().unwrap_err();
        assert!(err.contains("bench sessions pick a run kind"), "{err}");
    }
}
