//! Minimal JSON support for the report types.
//!
//! The build environment is offline, so instead of `serde`/`serde_json`
//! the harness hand-rolls the small amount of JSON it needs: a writer
//! (string escaping + number formatting helpers used by
//! [`crate::report`]) and a tiny recursive-descent parser returning a
//! dynamic [`Value`], enough to read figure files back in tests and
//! downstream tooling.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced when writing non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, with `null` mapping to NaN (the writer's encoding of
    /// non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escape a string for embedding in JSON (without surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number; non-finite values become `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // Combine UTF-16 surrogate pairs (standard
                            // serializers escape non-BMP chars this way).
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes.get(self.pos + 1..self.pos + 3)
                                    == Some(br"\u".as_slice())
                            {
                                let low = self.hex4(self.pos + 3)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    self.pos += 6;
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Four hex digits starting at byte `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = Value::parse(
            r#"{"a": 1.5, "b": [true, false, null], "s": "x\"y\n", "o": {"k": -2e3}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(
            v.get("o").unwrap().get("k").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nwith \"quotes\" \\ and \t tabs";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Value::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.25), "2.25");
        let v = Value::parse("null").unwrap();
        assert!(v.as_f64().unwrap().is_nan());
    }

    #[test]
    fn surrogate_pairs_combine() {
        // "😀" as a standard serializer escapes it (ensure_ascii):
        // high surrogate D83D + low surrogate DE00 → U+1F600.
        let v = Value::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Raw (unescaped) non-BMP chars pass through too.
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Unpaired high surrogate degrades to U+FFFD, not an error.
        let v = Value::parse(r#""\ud83d x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd} x"));
        // BMP escapes still work.
        let v = Value::parse(r#""é""#).unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"open").is_err());
    }
}
