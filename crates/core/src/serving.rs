//! Multi-tenant serving runs on a [`Bench`], and their reports.
//!
//! [`run_serving`] materializes a [`ServingSpec`] (seeded arrivals ×
//! class mix × placements) against the bench's live endpoints, drives all
//! jobs concurrently through [`wsdf_workload::tenancy::MultiJobDriver`],
//! then re-runs one instance of each job class **alone** on the same
//! fabric to obtain the isolated-run interference baseline. The
//! [`ServingReport`] carries per-job completion records, job-CT
//! percentiles from a [`LatencyHistogram`], per-class slowdown vs. the
//! isolated baseline, Jain's fairness index over class throughputs, and
//! SLO-miss counts against per-class deadline budgets.

use crate::bench::{Bench, BenchOracle};
use crate::collective::{field, int, opt_int, opt_num};
use crate::json::{self, Value};
use crate::session::SessionConfig;
use wsdf_exec::BspPool;
use wsdf_sim::Tracer;
use wsdf_sim::{LatencyHistogram, SimConfig};
use wsdf_workload::run_collective_faulted_on;
use wsdf_workload::tenancy::{build_jobs, run_multi_job_traced_on, JobInstance, ServingSpec};

/// Completion record of one served job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id (arrival order).
    pub id: u32,
    /// Class name (from the spec's mix).
    pub class: String,
    /// Arrival cycle.
    pub arrival: u64,
    /// Completion cycle (last message fully arrived).
    pub completion: u64,
    /// Job completion time, `completion - arrival`.
    pub ct: u64,
}

/// Aggregate interference metrics of one job class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStat {
    /// Class name.
    pub name: String,
    /// Jobs of this class served.
    pub jobs: u64,
    /// Total payload flits served for this class.
    pub flits: u64,
    /// Mean job completion time, cycles (NaN when no jobs).
    pub mean_ct: f64,
    /// Completion cycles of one instance run alone on the same fabric
    /// (0 when no jobs — no baseline to run).
    pub isolated_ct: u64,
    /// Interference slowdown: `mean_ct / isolated_ct` (NaN when no jobs).
    pub slowdown: f64,
    /// Class throughput over the run: flits per kilocycle of makespan.
    pub throughput_flits_per_kcycle: f64,
    /// Per-job deadline budget, cycles (0 = no SLO tracked).
    pub slo_cycles: u64,
    /// Jobs whose CT exceeded the budget (always 0 when `slo_cycles` is 0).
    pub slo_misses: u64,
}

/// Result of one multi-tenant serving run on one bench.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Bench label (`SW-less`, `SW-based`, ...).
    pub label: String,
    /// Cycle the last job completed.
    pub makespan_cycles: u64,
    /// Median job completion time, cycles (NaN when no jobs).
    pub ct_p50: f64,
    /// 95th-percentile job CT, cycles.
    pub ct_p95: f64,
    /// 99th-percentile job CT, cycles.
    pub ct_p99: f64,
    /// Jain's fairness index over class throughputs, in (0, 1]
    /// (1 = perfectly fair; NaN when no class served any flits).
    pub fairness: f64,
    /// Job-CT histogram (the percentile source). Not serialized raw — it
    /// is rebuilt from the job records on parse, so JSON round-trips
    /// compare equal.
    pub ct_hist: LatencyHistogram,
    /// Per-job completion records, in job-id (arrival) order.
    pub jobs: Vec<JobRecord>,
    /// Per-class aggregates, in spec mix order.
    pub classes: Vec<ClassStat>,
    /// Cycles the engine actually stepped.
    pub busy_cycles: u64,
    /// Cycles fast-forwarded over by event-driven stepping.
    pub skipped_cycles: u64,
}

impl ServingReport {
    /// Assemble the report from a run's raw pieces. `isolated[c]` is the
    /// isolated-run completion of class `c` (0 when the class served no
    /// jobs); `class_meta` is `(name, slo_cycles)` in spec order.
    #[allow(clippy::too_many_arguments)]
    fn build(
        label: &str,
        jobs: &[JobInstance],
        completion: &[u64],
        class_meta: &[(String, u64)],
        isolated: &[u64],
        makespan: u64,
        busy_cycles: u64,
        skipped_cycles: u64,
    ) -> Self {
        let mut hist = LatencyHistogram::default();
        let records: Vec<JobRecord> = jobs
            .iter()
            .zip(completion)
            .map(|(j, &done)| {
                let ct = done - j.arrival;
                hist.record(ct);
                JobRecord {
                    id: j.id,
                    class: class_meta[j.class as usize].0.clone(),
                    arrival: j.arrival,
                    completion: done,
                    ct,
                }
            })
            .collect();
        let classes: Vec<ClassStat> = class_meta
            .iter()
            .enumerate()
            .map(|(ci, (name, slo))| {
                let mine: Vec<&JobRecord> = records
                    .iter()
                    .zip(jobs)
                    .filter(|(_, j)| j.class as usize == ci)
                    .map(|(r, _)| r)
                    .collect();
                let flits: u64 = jobs
                    .iter()
                    .filter(|j| j.class as usize == ci)
                    .map(|j| j.workload.total_flits())
                    .sum();
                let n = mine.len() as u64;
                let mean_ct = if n == 0 {
                    f64::NAN
                } else {
                    mine.iter().map(|r| r.ct as f64).sum::<f64>() / n as f64
                };
                let slowdown = if n == 0 || isolated[ci] == 0 {
                    f64::NAN
                } else {
                    mean_ct / isolated[ci] as f64
                };
                ClassStat {
                    name: name.clone(),
                    jobs: n,
                    flits,
                    mean_ct,
                    isolated_ct: isolated[ci],
                    slowdown,
                    throughput_flits_per_kcycle: flits as f64 * 1000.0 / makespan.max(1) as f64,
                    slo_cycles: *slo,
                    slo_misses: if *slo == 0 {
                        0
                    } else {
                        mine.iter().filter(|r| r.ct > *slo).count() as u64
                    },
                }
            })
            .collect();
        let pct = |q: Option<u64>| q.map(|v| v as f64).unwrap_or(f64::NAN);
        ServingReport {
            label: label.to_string(),
            makespan_cycles: makespan,
            ct_p50: pct(hist.p50()),
            ct_p95: pct(hist.p95()),
            ct_p99: pct(hist.p99()),
            fairness: jain_fairness(
                &classes
                    .iter()
                    .filter(|c| c.jobs > 0)
                    .map(|c| c.throughput_flits_per_kcycle)
                    .collect::<Vec<f64>>(),
            ),
            ct_hist: hist,
            jobs: records,
            classes,
            busy_cycles,
            skipped_cycles,
        }
    }

    /// Render as aligned text rows (harness output).
    pub fn render(&self) -> String {
        let mut s = format!(
            "  {:<14} {:>4} jobs  makespan {:>8} cycles  CT p50 {:.0} p95 {:.0} p99 {:.0}  \
             fairness {:.3}\n",
            self.label,
            self.jobs.len(),
            self.makespan_cycles,
            self.ct_p50,
            self.ct_p95,
            self.ct_p99,
            self.fairness,
        );
        for c in &self.classes {
            s.push_str(&format!(
                "    {:<16} {:>4} jobs  {:>9} flits  mean CT {:>8.0}  slowdown {:>6.2}x  \
                 SLO {:>6} miss {}\n",
                c.name, c.jobs, c.flits, c.mean_ct, c.slowdown, c.slo_cycles, c.slo_misses,
            ));
        }
        s
    }

    /// Serialize to pretty JSON (the digested text of `serving`
    /// scenarios).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"label\": \"{}\",\n",
            json::escape(&self.label)
        ));
        s.push_str(&format!(
            "  \"makespan_cycles\": {},\n",
            self.makespan_cycles
        ));
        s.push_str(&format!("  \"busy_cycles\": {},\n", self.busy_cycles));
        s.push_str(&format!("  \"skipped_cycles\": {},\n", self.skipped_cycles));
        s.push_str(&format!("  \"ct_p50\": {},\n", json::num(self.ct_p50)));
        s.push_str(&format!("  \"ct_p95\": {},\n", json::num(self.ct_p95)));
        s.push_str(&format!("  \"ct_p99\": {},\n", json::num(self.ct_p99)));
        s.push_str(&format!("  \"fairness\": {},\n", json::num(self.fairness)));
        s.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"class\": \"{}\", \"arrival\": {}, \
                 \"completion\": {}, \"ct\": {}}}{}\n",
                j.id,
                json::escape(&j.class),
                j.arrival,
                j.completion,
                j.ct,
                if i + 1 < self.jobs.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"jobs\": {}, \"flits\": {}, \"mean_ct\": {}, \
                 \"isolated_ct\": {}, \"slowdown\": {}, \"throughput_flits_per_kcycle\": {}, \
                 \"slo_cycles\": {}, \"slo_misses\": {}}}{}\n",
                json::escape(&c.name),
                c.jobs,
                c.flits,
                json::num(c.mean_ct),
                c.isolated_ct,
                json::num(c.slowdown),
                json::num(c.throughput_flits_per_kcycle),
                c.slo_cycles,
                c.slo_misses,
                if i + 1 < self.classes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by [`to_json`](Self::to_json).
    ///
    /// Forward-compatible: missing numeric summaries parse as NaN,
    /// missing counters as 0, and missing `jobs`/`classes` arrays as
    /// empty. The CT histogram is rebuilt from the job records, so a
    /// round-trip compares equal.
    pub fn from_json(text: &str) -> Result<ServingReport, String> {
        let v = Value::parse(text)?;
        let mut hist = LatencyHistogram::default();
        let mut jobs = Vec::new();
        for j in match v.get("jobs") {
            None => &[][..],
            Some(a) => a.as_arr().ok_or("'jobs' not an array")?,
        } {
            let ct = int(j, "ct")?;
            hist.record(ct);
            jobs.push(JobRecord {
                id: int(j, "id")? as u32,
                class: field(j, "class")?
                    .as_str()
                    .ok_or("'class' not a string")?
                    .to_string(),
                arrival: int(j, "arrival")?,
                completion: int(j, "completion")?,
                ct,
            });
        }
        let mut classes = Vec::new();
        for c in match v.get("classes") {
            None => &[][..],
            Some(a) => a.as_arr().ok_or("'classes' not an array")?,
        } {
            classes.push(ClassStat {
                name: field(c, "name")?
                    .as_str()
                    .ok_or("'name' not a string")?
                    .to_string(),
                jobs: int(c, "jobs")?,
                flits: opt_int(c, "flits")?,
                mean_ct: opt_num(c, "mean_ct")?,
                isolated_ct: opt_int(c, "isolated_ct")?,
                slowdown: opt_num(c, "slowdown")?,
                throughput_flits_per_kcycle: opt_num(c, "throughput_flits_per_kcycle")?,
                slo_cycles: opt_int(c, "slo_cycles")?,
                slo_misses: opt_int(c, "slo_misses")?,
            });
        }
        Ok(ServingReport {
            label: field(&v, "label")?
                .as_str()
                .ok_or("'label' not a string")?
                .to_string(),
            makespan_cycles: opt_int(&v, "makespan_cycles")?,
            ct_p50: opt_num(&v, "ct_p50")?,
            ct_p95: opt_num(&v, "ct_p95")?,
            ct_p99: opt_num(&v, "ct_p99")?,
            fairness: opt_num(&v, "fairness")?,
            ct_hist: hist,
            jobs,
            classes,
            busy_cycles: opt_int(&v, "busy_cycles")?,
            skipped_cycles: opt_int(&v, "skipped_cycles")?,
        })
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over the given allocations —
/// 1 when all equal, → 1/n under total capture; NaN for an empty or
/// all-zero allocation vector.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if xs.is_empty() || sq == 0.0 {
        return f64::NAN;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Run a serving spec on `bench`, on an explicit executor.
///
/// Materializes the jobs against the bench's live endpoints (so
/// placements avoid faulted regions), runs them all concurrently, then
/// runs one instance per served class in isolation for the interference
/// baseline. Dispatches on the bench's oracle enum once — same
/// monomorphization discipline as [`crate::collective::run_workload_on`].
/// Errors are human-readable strings (spec materialization and engine
/// failures both).
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).pool(pool).serving(&spec)"
)]
pub fn run_serving_on(
    bench: &Bench,
    cfg: &SimConfig,
    spec: &ServingSpec,
    pool: &BspPool,
) -> Result<ServingReport, String> {
    let cfg = bench.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
    run_serving_impl(bench, &cfg, spec, pool, None)
}

/// The multi-tenant core on an already-prepared config. Telemetry covers
/// the *concurrent* run only — the per-class isolated baselines are
/// auxiliary reference simulations and stay untraced, so the job stream
/// in the trace corresponds one-to-one with the report's job table.
pub(crate) fn run_serving_impl(
    bench: &Bench,
    cfg: &SimConfig,
    spec: &ServingSpec,
    pool: &BspPool,
    trace: Option<&Tracer>,
) -> Result<ServingReport, String> {
    let endpoints = crate::scenario::live_chips(bench);
    let jobs = build_jobs(spec, &endpoints)?;
    let net = bench.fabric.net();
    let faults = bench.fault_map();
    let out = match &bench.oracle {
        BenchOracle::Sl(o) => run_multi_job_traced_on(net, cfg, o, &jobs, pool, faults, trace),
        BenchOracle::Sw(o) => run_multi_job_traced_on(net, cfg, o, &jobs, pool, faults, trace),
        BenchOracle::Mesh(o) => run_multi_job_traced_on(net, cfg, o, &jobs, pool, faults, trace),
        BenchOracle::Switch(o) => run_multi_job_traced_on(net, cfg, o, &jobs, pool, faults, trace),
        BenchOracle::Detour(o) => run_multi_job_traced_on(net, cfg, o, &jobs, pool, faults, trace),
    }
    .map_err(|e| format!("serving run failed: {e}"))?;

    // Isolated baseline: the first instance of each served class, alone.
    let mut isolated = vec![0u64; spec.classes.len()];
    for (ci, slot) in isolated.iter_mut().enumerate() {
        let Some(job) = jobs.iter().find(|j| j.class as usize == ci) else {
            continue;
        };
        let iso = match &bench.oracle {
            BenchOracle::Sl(o) => {
                run_collective_faulted_on(net, cfg, o, &job.workload, pool, faults)
            }
            BenchOracle::Sw(o) => {
                run_collective_faulted_on(net, cfg, o, &job.workload, pool, faults)
            }
            BenchOracle::Mesh(o) => {
                run_collective_faulted_on(net, cfg, o, &job.workload, pool, faults)
            }
            BenchOracle::Switch(o) => {
                run_collective_faulted_on(net, cfg, o, &job.workload, pool, faults)
            }
            BenchOracle::Detour(o) => {
                run_collective_faulted_on(net, cfg, o, &job.workload, pool, faults)
            }
        }
        .map_err(|e| format!("isolated baseline failed: {e}"))?;
        *slot = iso.completion_cycles;
    }

    let class_meta: Vec<(String, u64)> = spec
        .classes
        .iter()
        .map(|c| (c.name.clone(), c.slo_cycles))
        .collect();
    let makespan = out.job_completion.iter().copied().max().unwrap_or(0);
    Ok(ServingReport::build(
        &bench.label,
        &jobs,
        &out.job_completion,
        &class_meta,
        &isolated,
        makespan,
        out.metrics.busy_cycles,
        out.metrics.skipped_cycles,
    ))
}

/// [`run_serving_on`] on the process-wide executor.
#[deprecated(
    since = "0.6.0",
    note = "use the wsdf Session builder: \
             Session::bench(&b).serving(&spec)"
)]
pub fn run_serving(
    bench: &Bench,
    cfg: &SimConfig,
    spec: &ServingSpec,
) -> Result<ServingReport, String> {
    let cfg = bench.prepare_cfg(cfg, SessionConfig::from_env().partitioner);
    run_serving_impl(bench, &cfg, spec, wsdf_exec::global_pool(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsdf_workload::tenancy::{ArrivalProcess, JobClass, Placement};

    fn mix() -> Vec<JobClass> {
        vec![
            JobClass {
                name: "train".into(),
                collective: "ring_allreduce".into(),
                flits: 16,
                microbatches: 1,
                participants: 4,
                placement: Placement::Block,
                slo_cycles: 100_000,
                weight: 1.0,
            },
            JobClass {
                name: "infer".into(),
                collective: "pipeline".into(),
                flits: 8,
                microbatches: 2,
                participants: 3,
                placement: Placement::Strided,
                slo_cycles: 1,
                weight: 1.0,
            },
            JobClass {
                name: "shard".into(),
                collective: "all_to_all".into(),
                flits: 2,
                microbatches: 1,
                participants: 4,
                placement: Placement::Overlapping,
                slo_cycles: 0,
                weight: 1.0,
            },
        ]
    }

    fn spec() -> ServingSpec {
        ServingSpec {
            seed: 11,
            arrivals: ArrivalProcess::Trace {
                cycles: (0..9).map(|k| k * 50).collect(),
            },
            max_jobs: 64,
            classes: mix(),
        }
    }

    #[test]
    fn serving_on_mesh_reports_all_sections() {
        let bench = Bench::single_mesh(4, 2, 1);
        let r = crate::session::Session::bench(&bench)
            .serving(&spec())
            .unwrap()
            .report;
        assert_eq!(r.jobs.len(), 9);
        assert_eq!(r.classes.len(), 3);
        assert_eq!(r.ct_hist.count(), 9);
        assert!(r.makespan_cycles > 0);
        assert!(r.ct_p50 > 0.0 && r.ct_p50 <= r.ct_p99);
        assert!(r.fairness > 0.0 && r.fairness <= 1.0);
        for c in &r.classes {
            if c.jobs > 0 {
                assert!(c.isolated_ct > 0, "{}: no isolated baseline", c.name);
                assert!(
                    c.slowdown >= 1.0 - 1e-9,
                    "{}: speedup under contention?",
                    c.name
                );
            }
        }
        // The 1-cycle SLO is unmeetable: every served infer job misses.
        let infer = r.classes.iter().find(|c| c.name == "infer").unwrap();
        assert_eq!(infer.slo_misses, infer.jobs);
        // The untracked class never misses.
        let shard = r.classes.iter().find(|c| c.name == "shard").unwrap();
        assert_eq!(shard.slo_misses, 0);
    }

    #[test]
    fn serving_report_json_roundtrip() {
        let bench = Bench::single_mesh(4, 2, 1);
        let r = crate::session::Session::bench(&bench)
            .serving(&spec())
            .unwrap()
            .report;
        let back = ServingReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn legacy_reports_parse_with_defaults() {
        // A minimal pre-serving-era file: no percentiles, no jobs, no
        // classes, no counters.
        let r = ServingReport::from_json("{\"label\": \"old\"}").unwrap();
        assert_eq!(r.label, "old");
        assert!(r.jobs.is_empty() && r.classes.is_empty());
        assert!(r.ct_p50.is_nan() && r.ct_p99.is_nan() && r.fairness.is_nan());
        assert_eq!(r.makespan_cycles, 0);
        assert!(r.ct_hist.is_empty());
    }

    #[test]
    fn fairness_index_bounds() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_fairness(&[]).is_nan());
        assert!(jain_fairness(&[0.0, 0.0]).is_nan());
    }
}
